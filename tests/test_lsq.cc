/**
 * @file
 * Unit tests for the load/store queue.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "cpu/lsq.hh"

namespace
{

using lsim::cpu::LoadStoreQueue;

TEST(Lsq, CapacityAccounting)
{
    LoadStoreQueue lsq(2, 1);
    EXPECT_TRUE(lsq.canInsertLoad());
    EXPECT_TRUE(lsq.canInsertStore());
    lsq.insert(1, 0x100, false);
    lsq.insert(2, 0x200, false);
    EXPECT_FALSE(lsq.canInsertLoad());
    EXPECT_TRUE(lsq.canInsertStore());
    lsq.insert(3, 0x300, true);
    EXPECT_FALSE(lsq.canInsertStore());
    lsq.remove(1);
    EXPECT_TRUE(lsq.canInsertLoad());
    EXPECT_EQ(lsq.numLoads(), 1u);
    EXPECT_EQ(lsq.numStores(), 1u);
}

TEST(Lsq, OlderStoresGateLoads)
{
    LoadStoreQueue lsq(8, 8);
    lsq.insert(1, 0x100, true);  // store, address unknown
    lsq.insert(2, 0x200, false); // load
    EXPECT_FALSE(lsq.olderStoresReady(2));
    lsq.setAddrReady(1);
    EXPECT_TRUE(lsq.olderStoresReady(2));
}

TEST(Lsq, YoungerStoresDoNotGate)
{
    LoadStoreQueue lsq(8, 8);
    lsq.insert(1, 0x100, false); // load
    lsq.insert(2, 0x200, true);  // younger store
    EXPECT_TRUE(lsq.olderStoresReady(1));
}

TEST(Lsq, ForwardingSameWord)
{
    LoadStoreQueue lsq(8, 8);
    lsq.insert(1, 0x100, true);
    lsq.insert(2, 0x104, false); // same 8-byte word as 0x100
    lsq.insert(3, 0x108, false); // different word
    EXPECT_FALSE(lsq.forwardsFromStore(2, 0x104)); // addr not ready
    lsq.setAddrReady(1);
    EXPECT_TRUE(lsq.forwardsFromStore(2, 0x104));
    EXPECT_FALSE(lsq.forwardsFromStore(3, 0x108));
}

TEST(Lsq, ForwardingOnlyFromOlder)
{
    LoadStoreQueue lsq(8, 8);
    lsq.insert(1, 0x100, false); // load first
    lsq.insert(2, 0x100, true);  // younger store, same word
    lsq.setAddrReady(2);
    EXPECT_FALSE(lsq.forwardsFromStore(1, 0x100));
}

TEST(Lsq, RemoveMiddleEntry)
{
    LoadStoreQueue lsq(8, 8);
    lsq.insert(1, 0x100, true);
    lsq.insert(2, 0x200, false);
    lsq.insert(3, 0x300, true);
    lsq.remove(2);
    EXPECT_EQ(lsq.numLoads(), 0u);
    EXPECT_EQ(lsq.numStores(), 2u);
    // Ordering of the remaining stores is preserved.
    EXPECT_FALSE(lsq.olderStoresReady(3));
    lsq.setAddrReady(1);
    EXPECT_TRUE(lsq.olderStoresReady(3));
}

TEST(Lsq, RejectsZeroCapacity)
{
    EXPECT_THROW(LoadStoreQueue(0, 8), std::invalid_argument);
    EXPECT_THROW(LoadStoreQueue(8, 0), std::invalid_argument);
}

TEST(LsqDeath, Misuse)
{
    LoadStoreQueue lsq(1, 1);
    lsq.insert(1, 0x100, false);
    EXPECT_DEATH(lsq.insert(2, 0x200, false), "full");
    EXPECT_DEATH(lsq.insert(1, 0x200, true), "program order");
    EXPECT_DEATH(lsq.setAddrReady(99), "not present");
    EXPECT_DEATH(lsq.remove(99), "not present");
}

} // namespace
