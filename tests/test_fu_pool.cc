/**
 * @file
 * Unit tests for the round-robin functional unit pool and its
 * busy/idle run tracking.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include <vector>

#include "cpu/fu_pool.hh"

namespace
{

using lsim::Cycle;
using lsim::cpu::FuPool;

TEST(FuPool, RoundRobinRotation)
{
    FuPool pool(3);
    pool.beginCycle();
    EXPECT_EQ(pool.allocate(), 0);
    EXPECT_EQ(pool.allocate(), 1);
    EXPECT_EQ(pool.allocate(), 2);
    EXPECT_EQ(pool.allocate(), -1); // all busy
    pool.endCycle();
    // Pointer persists across cycles: next allocation starts at 0
    // again (wrapped past 2).
    pool.beginCycle();
    EXPECT_EQ(pool.allocate(), 0);
    pool.endCycle();
}

TEST(FuPool, RotationSpreadsSingleOpAcrossUnits)
{
    FuPool pool(2);
    std::vector<int> got;
    for (int c = 0; c < 4; ++c) {
        pool.beginCycle();
        got.push_back(pool.allocate());
        pool.endCycle();
    }
    EXPECT_EQ(got, (std::vector<int>{0, 1, 0, 1}));
}

TEST(FuPool, BusyCounting)
{
    FuPool pool(2);
    for (int c = 0; c < 5; ++c) {
        pool.beginCycle();
        pool.allocate();
        if (c < 2)
            pool.allocate();
        pool.endCycle();
    }
    pool.finish();
    EXPECT_EQ(pool.cycles(), 5u);
    // Round-robin spreads the single op over both units.
    EXPECT_EQ(pool.busyCycles(0) + pool.busyCycles(1), 7u);
}

TEST(FuPool, RunSinkReceivesMaximalRuns)
{
    FuPool pool(1);
    struct Run
    {
        unsigned fu;
        bool busy;
        Cycle len;
    };
    std::vector<Run> runs;
    pool.setRunSink([&](unsigned fu, bool busy, Cycle len) {
        runs.push_back({fu, busy, len});
    });
    // Pattern: B B I I I B
    const bool pattern[] = {true, true, false, false, false, true};
    for (bool busy : pattern) {
        pool.beginCycle();
        if (busy)
            pool.allocate();
        pool.endCycle();
    }
    pool.finish();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_TRUE(runs[0].busy);
    EXPECT_EQ(runs[0].len, 2u);
    EXPECT_FALSE(runs[1].busy);
    EXPECT_EQ(runs[1].len, 3u);
    EXPECT_TRUE(runs[2].busy);
    EXPECT_EQ(runs[2].len, 1u);
}

TEST(FuPool, IdleStatsMatchPattern)
{
    FuPool pool(1);
    const bool pattern[] = {false, false, true, false, true, true};
    for (bool busy : pattern) {
        pool.beginCycle();
        if (busy)
            pool.allocate();
        pool.endCycle();
    }
    pool.finish();
    const auto &stats = pool.idleStats(0);
    EXPECT_EQ(stats.numIntervals(), 2u);
    EXPECT_EQ(stats.idleCycles(), 3u);
    EXPECT_DOUBLE_EQ(stats.idleFraction(), 0.5);
    EXPECT_DOUBLE_EQ(pool.utilization(0), 0.5);
}

TEST(FuPoolDeath, Protocol)
{
    FuPool pool(1);
    EXPECT_DEATH(pool.allocate(), "outside a cycle");
    EXPECT_DEATH(pool.endCycle(), "without beginCycle");
    pool.beginCycle();
    EXPECT_DEATH(pool.beginCycle(), "without endCycle");
}

TEST(FuPool, RejectsUnitCountOutsideRange)
{
    EXPECT_THROW(FuPool(0), std::invalid_argument);
    EXPECT_THROW(FuPool(9), std::invalid_argument);
}

TEST(FuPoolDeath, BadUnitIndex)
{
    FuPool pool(2);
    EXPECT_DEATH((void)pool.busyCycles(2), "bad unit");
    EXPECT_DEATH((void)pool.idleStats(5), "bad unit");
}

} // namespace
