/**
 * @file
 * Unit tests for the Table 2 memory hierarchy wiring.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace
{

using lsim::cache::HierarchyConfig;
using lsim::cache::MemoryHierarchy;

TEST(Hierarchy, Table2Defaults)
{
    const HierarchyConfig cfg;
    EXPECT_EQ(cfg.l1i.size_bytes, 64u * 1024);
    EXPECT_EQ(cfg.l1i.assoc, 4u);
    EXPECT_EQ(cfg.l1i.line_bytes, 64u);
    EXPECT_EQ(cfg.l1i.hit_latency, 2u);
    EXPECT_EQ(cfg.l2.size_bytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.l2.assoc, 8u);
    EXPECT_EQ(cfg.l2.line_bytes, 128u);
    EXPECT_EQ(cfg.l2.hit_latency, 12u);
    EXPECT_EQ(cfg.itlb.entries, 256u);
    EXPECT_EQ(cfg.dtlb.entries, 512u);
    EXPECT_EQ(cfg.memory_latency, 80u);
}

TEST(Hierarchy, FetchLatencyComposition)
{
    MemoryHierarchy mem;
    // Cold fetch: ITLB miss (30) + L1I (2) + L2 (12) + mem (80).
    EXPECT_EQ(mem.fetch(0x400000), 30u + 94u);
    // Warm fetch: pure L1I hit.
    EXPECT_EQ(mem.fetch(0x400000), 2u);
}

TEST(Hierarchy, DataLatencyComposition)
{
    MemoryHierarchy mem;
    EXPECT_EQ(mem.data(0x10000000, false), 30u + 94u);
    EXPECT_EQ(mem.data(0x10000000, false), 2u);
    // Same L2 line (128 B) but different L1 line (64 B): the L2
    // access hits.
    EXPECT_EQ(mem.data(0x10000040, false), 2u + 12u);
}

TEST(Hierarchy, SplitL1SharedL2)
{
    MemoryHierarchy mem;
    (void)mem.fetch(0x400000);
    // A data access to the same line: misses L1D but hits the
    // unified L2 that the instruction fetch filled.
    EXPECT_EQ(mem.data(0x400000, false), 30u + 2u + 12u);
}

TEST(Hierarchy, FlushAllRestoresColdState)
{
    MemoryHierarchy mem;
    (void)mem.data(0x2000, false);
    mem.flushAll();
    EXPECT_EQ(mem.data(0x2000, false), 30u + 94u);
}

TEST(Hierarchy, ConfigurableL2Latency)
{
    HierarchyConfig cfg;
    cfg.l2.hit_latency = 32; // the paper's Figure 7 variant
    MemoryHierarchy mem(cfg);
    (void)mem.data(0x8000, false); // fill L1D + L2
    // Adjacent L1 line within the same 128 B L2 line: L1 miss,
    // L2 hit at the slower latency.
    EXPECT_EQ(mem.data(0x8040, false), 2u + 32u);
}

} // namespace
