/**
 * @file
 * Unit tests for the combined branch predictor.
 */

#include <gtest/gtest.h>

#include "cpu/bpred.hh"

namespace
{

using lsim::Addr;
using lsim::cpu::BpredConfig;
using lsim::cpu::BranchPredictor;
using lsim::trace::MicroOp;
using lsim::trace::OpClass;

MicroOp
branch(Addr pc, bool taken, Addr target = 0x500000)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Branch;
    op.taken = taken;
    op.target = target;
    return op;
}

MicroOp
call(Addr pc, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Call;
    op.taken = true;
    op.target = target;
    return op;
}

MicroOp
ret(Addr pc, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Return;
    op.taken = true;
    op.target = target;
    return op;
}

TEST(Bpred, LearnsStrongBias)
{
    BranchPredictor bp{BpredConfig{}};
    int mispredicts = 0;
    for (int i = 0; i < 100; ++i) {
        const auto res = bp.predict(branch(0x1000, true));
        if (res.mispredict)
            ++mispredicts;
    }
    // Counters saturate after a couple of executions.
    EXPECT_LE(mispredicts, 5);
    EXPECT_EQ(bp.stats().cond_branches, 100u);
}

TEST(Bpred, GshareLearnsAlternatingPattern)
{
    // T,N,T,N... defeats a bimodal counter but is captured by global
    // history. The combined predictor must converge to near-zero
    // mispredicts.
    BranchPredictor bp{BpredConfig{}};
    int late_mispredicts = 0;
    for (int i = 0; i < 600; ++i) {
        const auto res = bp.predict(branch(0x2000, i % 2 == 0));
        if (i >= 300 && res.mispredict)
            ++late_mispredicts;
    }
    EXPECT_LE(late_mispredicts, 10);
}

TEST(Bpred, PeriodFourPattern)
{
    BranchPredictor bp{BpredConfig{}};
    int late_mispredicts = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = (i % 4) == 3; // NNNT repeating
        const auto res = bp.predict(branch(0x3000, taken));
        if (i >= 1000 && res.mispredict)
            ++late_mispredicts;
    }
    EXPECT_LE(late_mispredicts, 20);
}

TEST(Bpred, BtbColdThenWarm)
{
    BranchPredictor bp{BpredConfig{}};
    // Train direction first (not-taken predicted initially, so the
    // first taken executions are direction mispredicts).
    for (int i = 0; i < 4; ++i)
        (void)bp.predict(branch(0x4000, true, 0x600000));
    const auto res = bp.predict(branch(0x4000, true, 0x600000));
    EXPECT_FALSE(res.mispredict);
    EXPECT_FALSE(res.btb_cold);
    EXPECT_TRUE(res.target_known);
}

TEST(Bpred, RasPredictsNestedReturns)
{
    BranchPredictor bp{BpredConfig{}};
    // call A (from 0x1000) -> call B (from 0x2000) -> return to
    // 0x2004 -> return to 0x1004.
    (void)bp.predict(call(0x1000, 0xa000));
    (void)bp.predict(call(0x2000, 0xb000));
    const auto r1 = bp.predict(ret(0xb00c, 0x2004));
    EXPECT_FALSE(r1.mispredict);
    const auto r2 = bp.predict(ret(0xa00c, 0x1004));
    EXPECT_FALSE(r2.mispredict);
    EXPECT_EQ(bp.stats().ras_pushes, 2u);
    EXPECT_EQ(bp.stats().ras_pops, 2u);
}

TEST(Bpred, RasMismatchIsMispredict)
{
    BranchPredictor bp{BpredConfig{}};
    (void)bp.predict(call(0x1000, 0xa000));
    const auto res = bp.predict(ret(0xa00c, 0x9999)); // wrong target
    EXPECT_TRUE(res.mispredict);
    EXPECT_EQ(bp.stats().target_mispredicts, 1u);
}

TEST(Bpred, EmptyRasIsMispredict)
{
    BranchPredictor bp{BpredConfig{}};
    const auto res = bp.predict(ret(0xa00c, 0x1004));
    EXPECT_TRUE(res.mispredict);
}

TEST(Bpred, CallsWarmBtb)
{
    BranchPredictor bp{BpredConfig{}};
    const auto first = bp.predict(call(0x7000, 0xc000));
    EXPECT_TRUE(first.btb_cold);
    const auto second = bp.predict(call(0x7000, 0xc000));
    EXPECT_FALSE(second.btb_cold);
    EXPECT_FALSE(second.mispredict);
}

TEST(Bpred, ResetClearsState)
{
    BranchPredictor bp{BpredConfig{}};
    for (int i = 0; i < 10; ++i)
        (void)bp.predict(branch(0x1000, true));
    bp.reset();
    EXPECT_EQ(bp.stats().lookups, 0u);
}

TEST(BpredDeath, NonControlOp)
{
    BranchPredictor bp{BpredConfig{}};
    MicroOp op;
    op.cls = OpClass::IntAlu;
    EXPECT_DEATH((void)bp.predict(op), "non-control");
}

TEST(BpredDeath, ConfigValidation)
{
    BpredConfig bad;
    bad.bimodal_entries = 1000; // not a power of two
    EXPECT_EXIT(BranchPredictor bp(bad),
                ::testing::ExitedWithCode(1), "power of two");
    BpredConfig bad2;
    bad2.hist_bits = 0;
    EXPECT_EXIT(BranchPredictor bp2(bad2),
                ::testing::ExitedWithCode(1), "history bits");
}

} // namespace
