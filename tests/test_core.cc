/**
 * @file
 * Unit and integration tests for the out-of-order core timing model.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace
{

using lsim::Cycle;
using lsim::cpu::CoreConfig;
using lsim::cpu::O3Core;
using lsim::trace::TraceGenerator;
using lsim::trace::WorkloadProfile;
using lsim::trace::profileByName;

WorkloadProfile
testProfile()
{
    WorkloadProfile p;
    p.name = "core-test";
    p.suite = "test";
    p.num_blocks = 64;
    return p;
}

TEST(Core, CommitsExactlyRequestedInstructions)
{
    TraceGenerator gen(testProfile(), 1);
    O3Core core(CoreConfig{}, gen);
    const auto res = core.run(10000);
    EXPECT_GE(res.committed, 10000u);
    EXPECT_LE(res.committed, 10000u + 3u); // commit-width slop
    EXPECT_GT(res.cycles, 0u);
}

TEST(Core, IpcBoundedByMachineWidth)
{
    TraceGenerator gen(testProfile(), 1);
    O3Core core(CoreConfig{}, gen);
    const auto res = core.run(20000);
    EXPECT_GT(res.ipc, 0.05);
    EXPECT_LE(res.ipc, 4.0);
}

TEST(Core, FuUtilizationConsistentWithIpc)
{
    // Integer busy cycles cannot exceed committed integer ops and
    // must be a plausible share of them.
    TraceGenerator gen(testProfile(), 2);
    O3Core core(CoreConfig{}, gen);
    const auto res = core.run(20000);
    double busy = 0.0;
    for (unsigned fu = 0; fu < core.fuPool().numUnits(); ++fu)
        busy += static_cast<double>(core.fuPool().busyCycles(fu));
    // Every committed int-class op occupied an FU exactly once; some
    // in-flight remainder is tolerated.
    EXPECT_GT(busy, 0.5 * static_cast<double>(res.committed));
    EXPECT_LT(busy, 1.05 * static_cast<double>(res.committed));
}

TEST(Core, MoreFusNeverHurtNorExceedWidth)
{
    double prev_ipc = 0.0;
    for (unsigned fus : {1u, 2u, 4u}) {
        TraceGenerator gen(testProfile(), 3);
        O3Core core(CoreConfig{}.withIntFus(fus), gen);
        const auto res = core.run(20000);
        EXPECT_GE(res.ipc, prev_ipc * 0.98) << fus << " FUs";
        prev_ipc = res.ipc;
    }
}

TEST(Core, StatsArePopulated)
{
    TraceGenerator gen(testProfile(), 4);
    O3Core core(CoreConfig{}, gen);
    const auto res = core.run(20000);
    EXPECT_GT(res.bpred.lookups, 0u);
    EXPECT_GT(res.bpred.cond_branches, 0u);
    EXPECT_GT(res.l1i.accesses, 0u);
    EXPECT_GT(res.l1d.accesses, 0u);
    EXPECT_EQ(res.fu_utilization.size(), 4u);
    EXPECT_GT(res.mean_fu_idle_fraction, 0.0);
    EXPECT_LT(res.mean_fu_idle_fraction, 1.0);
}

TEST(Core, RunSinkSeesEveryCycle)
{
    TraceGenerator gen(testProfile(), 5);
    O3Core core(CoreConfig{}.withIntFus(2), gen);
    Cycle total[2] = {0, 0};
    core.setFuRunSink([&](unsigned fu, bool, Cycle len) {
        total[fu] += len;
    });
    const auto res = core.run(5000);
    EXPECT_EQ(total[0], res.cycles);
    EXPECT_EQ(total[1], res.cycles);
}

TEST(Core, SlowerL2LengthensExecution)
{
    TraceGenerator gen_a(profileByName("mcf"), 1);
    O3Core fast(CoreConfig{}.withIntFus(2), gen_a);
    const auto res_fast = fast.run(30000);

    TraceGenerator gen_b(profileByName("mcf"), 1);
    O3Core slow(
        CoreConfig{}.withIntFus(2).withL2Latency(32), gen_b);
    const auto res_slow = slow.run(30000);

    EXPECT_GT(res_slow.cycles, res_fast.cycles);
}

TEST(Core, DeadlockFreeAcrossAllProfiles)
{
    for (const auto &p : lsim::trace::table3Profiles()) {
        TraceGenerator gen(p, 1);
        O3Core core(CoreConfig{}.withIntFus(p.paper_fus), gen);
        const auto res = core.run(20000);
        EXPECT_GT(res.ipc, 0.0) << p.name;
    }
}

TEST(Core, MemoryBoundRanksBelowIlpRich)
{
    auto ipc_of = [](const char *name) {
        TraceGenerator gen(profileByName(name), 1);
        O3Core core(CoreConfig{}, gen);
        return core.run(150000).ipc;
    };
    const double mcf = ipc_of("mcf");
    const double vortex = ipc_of("vortex");
    EXPECT_LT(mcf, 0.5 * vortex);
}

TEST(Core, DeterministicAcrossRuns)
{
    auto run_once = [] {
        TraceGenerator gen(testProfile(), 42);
        O3Core core(CoreConfig{}, gen);
        return core.run(20000);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.bpred.dir_mispredicts, b.bpred.dir_mispredicts);
    EXPECT_EQ(a.l1d.misses, b.l1d.misses);
}

TEST(Core, LargeCodeFootprintPressuresIcache)
{
    // gcc's static footprint (~220 KB) exceeds the 64 KB L1I;
    // gzip's hot loops fit. The simulator must show the difference.
    auto l1i_rate = [](const char *name) {
        TraceGenerator gen(profileByName(name), 1);
        O3Core core(CoreConfig{}, gen);
        return core.run(150000).l1i.missRate();
    };
    EXPECT_GT(l1i_rate("gcc"), 1.8 * l1i_rate("gzip"));
}

TEST(Core, BusyCyclesEqualIssuedIntOps)
{
    // Fully pipelined FUs: every integer-class instruction occupies
    // exactly one FU-cycle, so summed busy cycles track committed
    // integer ops to within the in-flight remainder at the end.
    TraceGenerator gen(testProfile(), 9);
    O3Core core(CoreConfig{}, gen);
    const auto res = core.run(30000);
    Cycle busy = 0;
    for (unsigned fu = 0; fu < core.fuPool().numUnits(); ++fu)
        busy += core.fuPool().busyCycles(fu);
    // The test profile has no FP ops, so every committed op is an
    // integer op; allow ROB-depth slop for in-flight work.
    EXPECT_GE(busy + 1, res.committed);
    EXPECT_LE(busy, res.committed + core.config().rob_entries);
}

TEST(CoreDeath, RunTwicePanics)
{
    TraceGenerator gen(testProfile(), 6);
    O3Core core(CoreConfig{}, gen);
    core.run(100);
    EXPECT_DEATH(core.run(100), "once");
}

TEST(CoreDeath, SinkAfterRunPanics)
{
    TraceGenerator gen(testProfile(), 7);
    O3Core core(CoreConfig{}, gen);
    core.run(100);
    EXPECT_DEATH(core.setFuRunSink([](unsigned, bool, Cycle) {}),
                 "after run");
}

TEST(Core, ConfigValidation)
{
    TraceGenerator gen(testProfile(), 8);
    // Subcomponents reject bad parameters during member
    // construction, before CoreConfig::validate() runs.
    CoreConfig bad;
    bad.num_int_fus = 0;
    EXPECT_THROW(O3Core(bad, gen), std::invalid_argument);
    CoreConfig bad2;
    bad2.int_phys_regs = 16;
    EXPECT_THROW(O3Core(bad2, gen), std::invalid_argument);
}

/** IPC responds sensibly across FU counts for every benchmark. */
class CoreFuSweepTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CoreFuSweepTest, IpcMonotoneInFus)
{
    const auto &p = profileByName(GetParam());
    double prev = 0.0;
    for (unsigned fus = 1; fus <= 4; ++fus) {
        TraceGenerator gen(p, 1);
        O3Core core(CoreConfig{}.withIntFus(fus), gen);
        const double ipc = core.run(30000).ipc;
        EXPECT_GE(ipc, prev * 0.97)
            << GetParam() << " at " << fus << " FUs";
        prev = ipc;
    }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, CoreFuSweepTest,
                         ::testing::Values("gzip", "mcf", "vortex"));

} // namespace
