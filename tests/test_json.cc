/**
 * @file
 * Unit tests for the JSON writer and the harness report emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "harness/report.hh"

namespace
{

using lsim::JsonWriter;

TEST(Json, ObjectWithFields)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("name", "alu0");
    w.field("ipc", 1.5);
    w.field("cycles", std::uint64_t{42});
    w.field("enabled", true);
    w.endObject();
    EXPECT_TRUE(w.balanced());
    EXPECT_EQ(os.str(),
              "{\"name\":\"alu0\",\"ipc\":1.5,\"cycles\":42,"
              "\"enabled\":true}");
}

TEST(Json, NestedStructures)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.beginArray("units");
    w.value(0.5);
    w.value(std::uint64_t{7});
    w.beginObject();
    w.field("x", 1.0);
    w.endObject();
    w.endArray();
    w.beginObject("inner");
    w.endObject();
    w.endObject();
    EXPECT_TRUE(w.balanced());
    EXPECT_EQ(os.str(),
              "{\"units\":[0.5,7,{\"x\":1}],\"inner\":{}}");
}

TEST(Json, EscapesSpecialCharacters)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("s", "a\"b\\c\nd");
    w.endObject();
    EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, NonFiniteBecomesNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("inf", std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(os.str(), "{\"inf\":null}");
}

TEST(JsonDeath, UnbalancedEnd)
{
    std::ostringstream os;
    JsonWriter w(os);
    EXPECT_DEATH(w.endObject(), "no open scope");
}

TEST(JsonReport, ExperimentRecordIsWellFormedish)
{
    // Build a tiny experiment and check the emitted JSON contains
    // the expected keys and balanced braces (no JSON parser
    // dependency offline, so check structure textually).
    lsim::harness::IdleProfile ip;
    ip.addRun(true, 100);
    ip.addRun(false, 20);
    lsim::energy::ModelParams mp;
    const auto res = lsim::harness::evaluatePaperPolicies(ip, mp);

    lsim::harness::WorkloadSim ws;
    ws.name = "synthetic";
    ws.num_fus = 1;
    ws.idle = ip;
    ws.sim.cycles = 120;
    ws.sim.committed = 300;
    ws.sim.ipc = 2.5;
    ws.sim.fu_utilization = {0.8};

    std::ostringstream os;
    lsim::harness::writeExperimentJson(os, ws, mp, res);
    const std::string out = os.str();

    for (const char *key :
         {"\"technology\"", "\"simulation\"", "\"policies\"",
          "\"MaxSleep\"", "\"GradualSleep\"", "\"AlwaysActive\"",
          "\"NoOverhead\"", "\"idle_histogram\"", "\"breakdown\""})
        EXPECT_NE(out.find(key), std::string::npos) << key;

    int depth = 0;
    bool in_string = false;
    char prev = 0;
    for (char ch : out) {
        if (ch == '"' && prev != '\\')
            in_string = !in_string;
        if (!in_string) {
            if (ch == '{' || ch == '[')
                ++depth;
            if (ch == '}' || ch == ']')
                --depth;
        }
        prev = ch;
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
