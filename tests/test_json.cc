/**
 * @file
 * Unit tests for the JSON writer and the harness report emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "harness/report.hh"

namespace
{

using lsim::JsonWriter;

TEST(Json, ObjectWithFields)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("name", "alu0");
    w.field("ipc", 1.5);
    w.field("cycles", std::uint64_t{42});
    w.field("enabled", true);
    w.endObject();
    EXPECT_TRUE(w.balanced());
    EXPECT_EQ(os.str(),
              "{\"name\":\"alu0\",\"ipc\":1.5,\"cycles\":42,"
              "\"enabled\":true}");
}

TEST(Json, NestedStructures)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.beginArray("units");
    w.value(0.5);
    w.value(std::uint64_t{7});
    w.beginObject();
    w.field("x", 1.0);
    w.endObject();
    w.endArray();
    w.beginObject("inner");
    w.endObject();
    w.endObject();
    EXPECT_TRUE(w.balanced());
    EXPECT_EQ(os.str(),
              "{\"units\":[0.5,7,{\"x\":1}],\"inner\":{}}");
}

TEST(Json, EscapesSpecialCharacters)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("s", "a\"b\\c\nd");
    w.endObject();
    EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, NonFiniteBecomesNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("inf", std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(os.str(), "{\"inf\":null}");
}

TEST(JsonDeath, UnbalancedEnd)
{
    std::ostringstream os;
    JsonWriter w(os);
    EXPECT_DEATH(w.endObject(), "no open scope");
}

TEST(JsonReport, ExperimentRecordIsWellFormedish)
{
    // Build a tiny experiment and check the emitted JSON contains
    // the expected keys and balanced braces (no JSON parser
    // dependency offline, so check structure textually).
    lsim::harness::IdleProfile ip;
    ip.addRun(true, 100);
    ip.addRun(false, 20);
    lsim::energy::ModelParams mp;
    const auto res = lsim::harness::evaluatePaperPolicies(ip, mp);

    lsim::harness::WorkloadSim ws;
    ws.name = "synthetic";
    ws.num_fus = 1;
    ws.idle = ip;
    ws.sim.cycles = 120;
    ws.sim.committed = 300;
    ws.sim.ipc = 2.5;
    ws.sim.fu_utilization = {0.8};

    std::ostringstream os;
    lsim::harness::writeExperimentJson(os, ws, mp, res);
    const std::string out = os.str();

    for (const char *key :
         {"\"technology\"", "\"simulation\"", "\"policies\"",
          "\"MaxSleep\"", "\"GradualSleep\"", "\"AlwaysActive\"",
          "\"NoOverhead\"", "\"idle_histogram\"", "\"breakdown\""})
        EXPECT_NE(out.find(key), std::string::npos) << key;

    int depth = 0;
    bool in_string = false;
    char prev = 0;
    for (char ch : out) {
        if (ch == '"' && prev != '\\')
            in_string = !in_string;
        if (!in_string) {
            if (ch == '{' || ch == '[')
                ++depth;
            if (ch == '}' || ch == ']')
                --depth;
        }
        prev = ch;
    }
    EXPECT_EQ(depth, 0);
}

// ------------------------------------------------------------ parser

TEST(JsonParse, ScalarsAndContainers)
{
    const auto v = lsim::parseJson(R"({
        "name": "alu0", "ipc": 1.5, "cycles": 42,
        "enabled": true, "nothing": null,
        "units": [0.5, 0.25], "nested": {"deep": [1]}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("name").asString(), "alu0");
    EXPECT_DOUBLE_EQ(v.at("ipc").asNumber(), 1.5);
    EXPECT_EQ(v.at("cycles").asU64(), 42u);
    EXPECT_TRUE(v.at("enabled").asBool());
    EXPECT_TRUE(v.at("nothing").isNull());
    ASSERT_EQ(v.at("units").items().size(), 2u);
    EXPECT_DOUBLE_EQ(v.at("units").items()[1].asNumber(), 0.25);
    EXPECT_EQ(
        v.at("nested").at("deep").items()[0].asU64(), 1u);
    EXPECT_EQ(v.find("absent"), nullptr);
    EXPECT_THROW(v.at("absent"), std::invalid_argument);
}

TEST(JsonParse, StringEscapes)
{
    const auto v = lsim::parseJson(
        R"(["a\"b", "tab\there", "line\nbreak", "\u0041\u00e9"])");
    const auto &items = v.items();
    EXPECT_EQ(items[0].asString(), "a\"b");
    EXPECT_EQ(items[1].asString(), "tab\there");
    EXPECT_EQ(items[2].asString(), "line\nbreak");
    EXPECT_EQ(items[3].asString(), "A\xc3\xa9");
}

TEST(JsonParse, SurrogatePairsDecodeToOneCodePoint)
{
    // U+1F600 as its \ud83d\ude00 pair -> one 4-byte UTF-8
    // sequence, and the first supplementary code point U+10000 at
    // the pair-arithmetic boundary.
    const auto v = lsim::parseJson(
        R"(["\ud83d\ude00", "\ud800\udc00", "x\ud83d\ude00y"])");
    EXPECT_EQ(v.items()[0].asString(), "\xf0\x9f\x98\x80");
    EXPECT_EQ(v.items()[1].asString(), "\xf0\x90\x80\x80");
    EXPECT_EQ(v.items()[2].asString(), "x\xf0\x9f\x98\x80y");
}

TEST(JsonParse, LoneSurrogatesAreRejected)
{
    // Passing any of these through as raw code units would emit
    // invalid UTF-8 that poisons every downstream result file.
    for (const char *bad :
         {R"("\ud800")",          // lone high at end of string
          R"("\ud800x")",         // high followed by a plain char
          R"("\ud800\n")",        // high followed by another escape
          R"("\ud800\u0041")",   // high followed by a non-low \u
          R"("\ud800\ud800")",    // high followed by another high
          R"("\udc00")",          // lone low
          R"("\ude00\ud83d")"})   // pair in the wrong order
    {
        try {
            (void)lsim::parseJson(bad);
            FAIL() << "accepted: " << bad;
        } catch (const std::invalid_argument &err) {
            EXPECT_NE(
                std::string(err.what()).find("surrogate"),
                std::string::npos)
                << err.what();
        }
    }
}

TEST(JsonParse, RoundTripsTheWriter)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("benchmark", "gcc \"quoted\"\n");
    w.field("ipc", 1.619);
    w.field("cycles", std::uint64_t{123456789});
    w.beginArray("values");
    w.value(0.5);
    w.value(std::uint64_t{7});
    w.endArray();
    w.endObject();

    const auto v = lsim::parseJson(os.str());
    EXPECT_EQ(v.at("benchmark").asString(), "gcc \"quoted\"\n");
    EXPECT_DOUBLE_EQ(v.at("ipc").asNumber(), 1.619);
    EXPECT_EQ(v.at("cycles").asU64(), 123456789u);
    EXPECT_EQ(v.at("values").items()[1].asU64(), 7u);
}

TEST(JsonParse, KindMismatchThrows)
{
    const auto v = lsim::parseJson(R"({"a": 1})");
    EXPECT_THROW(v.asNumber(), std::invalid_argument);
    EXPECT_THROW(v.at("a").asString(), std::invalid_argument);
    EXPECT_THROW(v.at("a").items(), std::invalid_argument);
    EXPECT_THROW(
        lsim::parseJson(R"(-1.5)").asU64(),
        std::invalid_argument);
    EXPECT_THROW(
        lsim::parseJson(R"(1.5)").asU64(),
        std::invalid_argument);
    // Exactly 2^64: casting it would be undefined, so it must be
    // rejected, not wrapped.
    EXPECT_THROW(
        lsim::parseJson("18446744073709551616").asU64(),
        std::invalid_argument);
}

TEST(JsonParse, MalformedDocumentsThrowWithPosition)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "{\"a\":}", "tru",
          "\"unterminated", "[1] trailing", "{\"a\":1,}",
          "01a", "nan", "\"\\q\""}) {
        try {
            (void)lsim::parseJson(bad);
            FAIL() << "accepted: '" << bad << "'";
        } catch (const std::invalid_argument &err) {
            EXPECT_NE(std::string(err.what()).find(
                          "JSON parse error at"),
                      std::string::npos)
                << err.what();
        }
    }
}

TEST(JsonParse, DeepNestingIsBounded)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_THROW((void)lsim::parseJson(deep),
                 std::invalid_argument);
}

} // namespace
