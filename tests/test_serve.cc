/**
 * @file
 * Unit tests for the spool daemon (serve::Daemon) and the shared
 * batch-spec parser: specs picked up and executed, malformed specs
 * routed to failed/ with machine-readable error status, results
 * byte-identical to a direct BatchRunner run, the shared store
 * serving warm requests, restart recovery of stranded specs, and
 * the metrics.json snapshot matching status.json ground truth.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/batch.hh"
#include "common/json.hh"
#include "obs/metrics.hh"
#include "serve/daemon.hh"
#include "serve/spec.hh"

namespace
{

namespace fs = std::filesystem;
using namespace lsim;
using namespace lsim::serve;

constexpr const char *kSpec =
    R"({"sweeps": [{"benchmarks": ["gcc"], "steps": 2,
                    "insts": 20000}]})";

/** Fresh per-test directory under gtest's temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lsim_serve_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

ServeConfig
baseConfig(const std::string &spool)
{
    ServeConfig cfg;
    cfg.spool_dir = spool;
    cfg.threads = 2;
    cfg.once = true;
    return cfg;
}

TEST(Spec, ParsesTheBatchFormat)
{
    const auto batch = batchConfigFromJson(parseJson(
        R"({"sweeps": [
              {"benchmarks": ["gcc", "mst"], "steps": 4,
               "insts": 12345, "seed": 7},
              {"benchmarks": ["gcc"], "policies": ["max-sleep"],
               "p_min": 0.1, "p_max": 0.4, "steps": 2}]})"));
    ASSERT_EQ(batch.sweeps.size(), 2u);
    EXPECT_EQ(batch.sweeps[0].workloads,
              (std::vector<std::string>{"gcc", "mst"}));
    EXPECT_EQ(batch.sweeps[0].technologies.size(), 4u);
    EXPECT_EQ(batch.sweeps[0].insts, 12345u);
    EXPECT_EQ(batch.sweeps[0].seed, 7u);
    EXPECT_EQ(batch.sweeps[1].policies,
              (std::vector<std::string>{"max-sleep"}));
    EXPECT_DOUBLE_EQ(batch.sweeps[1].technologies.front().p, 0.1);
    EXPECT_DOUBLE_EQ(batch.sweeps[1].technologies.back().p, 0.4);
}

TEST(Spec, RejectsMalformedDocuments)
{
    // Wrong shapes and unknown fields throw (never exit) so the
    // daemon can route the spec to failed/ and keep serving.
    for (const char *bad :
         {R"([1, 2])",                                  // not an object
          R"({"sweeps": []})",                          // empty
          R"({"sweeps": [{}], "bogus": 1})",            // unknown top field
          R"({"sweeps": [{"bogus": 1}]})",              // unknown sweep field
          R"({"sweeps": [{"steps": 0}]})",              // pSweep rejects
          R"({"sweeps": [{"insts": -5}]})"})            // negative u64
        EXPECT_THROW((void)batchConfigFromJson(parseJson(bad)),
                     std::invalid_argument)
            << bad;
}

TEST(Daemon, OnceExecutesSpecByteIdenticalToBatch)
{
    const std::string spool = freshDir("once");
    writeFile(fs::path(spool) / "req.json", kSpec);

    Daemon daemon(baseConfig(spool));
    EXPECT_EQ(daemon.drainOnce(), 1u);
    EXPECT_EQ(daemon.stats().done, 1u);
    EXPECT_EQ(daemon.stats().failed, 0u);

    // The spec was consumed into done/.
    EXPECT_FALSE(fs::exists(fs::path(spool) / "req.json"));
    EXPECT_TRUE(fs::exists(fs::path(spool) / "done" / "req.json"));

    // Results are byte-identical to a direct BatchRunner run of the
    // same spec.
    const auto reference =
        api::BatchRunner(batchConfigFromJson(parseJson(kSpec)))
            .run();
    ASSERT_EQ(reference.sweeps.size(), 1u);
    std::ostringstream csv, json;
    reference.sweeps[0].writeCsv(csv);
    reference.sweeps[0].writeJson(json);
    const fs::path results = fs::path(spool) / "results" / "req";
    EXPECT_EQ(readFile(results / "sweep_0.csv"), csv.str());
    EXPECT_EQ(readFile(results / "sweep_0.json"), json.str());

    // The status file is machine-readable and complete.
    const JsonValue status =
        parseJsonFile((results / "status.json").string());
    EXPECT_EQ(status.at("spec").asString(), "req.json");
    EXPECT_EQ(status.at("state").asString(), "done");
    EXPECT_EQ(status.at("sweeps").asU64(), 1u);
    EXPECT_GT(status.at("total_ms").asNumber(), 0.0);
    EXPECT_GE(status.at("total_ms").asNumber(),
              status.at("run_ms").asNumber());
    EXPECT_EQ(status.at("stats").at("requested_sims").asU64(), 1u);
    EXPECT_EQ(status.at("stats").at("sims_run").asU64(), 1u);
}

TEST(Daemon, MalformedSpecsLandInFailedAndDoNotStopTheDrain)
{
    const std::string spool = freshDir("malformed");
    writeFile(fs::path(spool) / "a_bad.json", "not json at all");
    writeFile(fs::path(spool) / "b_badspec.json",
              R"({"sweeps": [{"benchmarks": ["no-such-bench"],
                              "steps": 2}]})");
    writeFile(fs::path(spool) / "c_good.json", kSpec);

    Daemon daemon(baseConfig(spool));
    EXPECT_EQ(daemon.drainOnce(), 3u);
    EXPECT_EQ(daemon.stats().failed, 2u);
    EXPECT_EQ(daemon.stats().done, 1u);

    EXPECT_TRUE(
        fs::exists(fs::path(spool) / "failed" / "a_bad.json"));
    EXPECT_TRUE(
        fs::exists(fs::path(spool) / "failed" / "b_badspec.json"));
    EXPECT_TRUE(
        fs::exists(fs::path(spool) / "done" / "c_good.json"));

    const JsonValue parse_err = parseJsonFile(
        (fs::path(spool) / "results" / "a_bad" / "status.json")
            .string());
    EXPECT_EQ(parse_err.at("state").asString(), "error");
    EXPECT_NE(parse_err.at("error").asString().find(
                  "JSON parse error"),
              std::string::npos);

    const JsonValue spec_err = parseJsonFile(
        (fs::path(spool) / "results" / "b_badspec" / "status.json")
            .string());
    EXPECT_EQ(spec_err.at("state").asString(), "error");
    EXPECT_NE(spec_err.at("error").asString().find("no-such-bench"),
              std::string::npos);
}

TEST(Daemon, WarmSecondRequestIsServedFromTheSharedStore)
{
    const std::string spool = freshDir("warm");
    auto cfg = baseConfig(spool);
    cfg.cache_dir = freshDir("warm_cache");
    Daemon daemon(cfg);

    writeFile(fs::path(spool) / "first.json", kSpec);
    EXPECT_EQ(daemon.drainOnce(), 1u);
    const JsonValue first = parseJsonFile(
        (fs::path(spool) / "results" / "first" / "status.json")
            .string());
    EXPECT_EQ(first.at("stats").at("sims_run").asU64(), 1u);
    EXPECT_EQ(first.at("stats").at("cache_hits").asU64(), 0u);

    // Same daemon instance, same store: the second request must be
    // pure replay.
    writeFile(fs::path(spool) / "second.json", kSpec);
    EXPECT_EQ(daemon.drainOnce(), 1u);
    const JsonValue second = parseJsonFile(
        (fs::path(spool) / "results" / "second" / "status.json")
            .string());
    EXPECT_EQ(second.at("stats").at("sims_run").asU64(), 0u);
    EXPECT_EQ(second.at("stats").at("cache_hits").asU64(), 1u);

    // Warm output stays byte-identical to the cold request's.
    EXPECT_EQ(
        readFile(fs::path(spool) / "results" / "first" /
                 "sweep_0.csv"),
        readFile(fs::path(spool) / "results" / "second" /
                 "sweep_0.csv"));

    // A freshly constructed daemon over the same cache dir is warm
    // too (the store is on disk, not in the instance).
    Daemon restarted(cfg);
    writeFile(fs::path(spool) / "third.json", kSpec);
    EXPECT_EQ(restarted.drainOnce(), 1u);
    const JsonValue third = parseJsonFile(
        (fs::path(spool) / "results" / "third" / "status.json")
            .string());
    EXPECT_EQ(third.at("stats").at("cache_hits").asU64(), 1u);
}

TEST(Daemon, RecoversSpecsStrandedInWork)
{
    const std::string spool = freshDir("recover");
    // Simulate a daemon that died mid-request: the claimed spec
    // sits in work/ with nobody executing it.
    fs::create_directories(fs::path(spool) / "work");
    writeFile(fs::path(spool) / "work" / "stranded.json", kSpec);

    Daemon daemon(baseConfig(spool));
    EXPECT_EQ(daemon.stats().recovered, 1u);
    EXPECT_TRUE(fs::exists(fs::path(spool) / "stranded.json"))
        << "recovery must re-queue the spec into the spool root";

    EXPECT_EQ(daemon.drainOnce(), 1u);
    EXPECT_EQ(daemon.stats().done, 1u);
    EXPECT_TRUE(
        fs::exists(fs::path(spool) / "done" / "stranded.json"));
    const JsonValue status = parseJsonFile(
        (fs::path(spool) / "results" / "stranded" / "status.json")
            .string());
    EXPECT_EQ(status.at("state").asString(), "done");
}

TEST(Daemon, RecoveryNeverClobbersAResubmittedSpec)
{
    const std::string spool = freshDir("recover_shadow");
    // A crashed daemon left a stale claimed copy of req.json, and
    // the user has since submitted a corrected req.json. Recovery
    // must keep the fresh spec and park the stale one in failed/.
    fs::create_directories(fs::path(spool) / "work");
    writeFile(fs::path(spool) / "work" / "req.json", "stale spec");
    writeFile(fs::path(spool) / "req.json", kSpec);

    Daemon daemon(baseConfig(spool));
    EXPECT_EQ(daemon.stats().recovered, 0u);
    EXPECT_EQ(readFile(fs::path(spool) / "req.json"), kSpec)
        << "the resubmitted spec must survive recovery untouched";
    EXPECT_EQ(readFile(fs::path(spool) / "failed" / "req.json"),
              "stale spec");

    EXPECT_EQ(daemon.drainOnce(), 1u);
    EXPECT_EQ(daemon.stats().done, 1u);
}

TEST(Daemon, RunOnceProcessesEverythingThenReturns)
{
    const std::string spool = freshDir("run_once");
    writeFile(fs::path(spool) / "a.json", kSpec);
    writeFile(fs::path(spool) / "b.json", "broken");

    Daemon daemon(baseConfig(spool));
    const ServeStats stats = daemon.run();
    EXPECT_EQ(stats.processed, 2u);
    EXPECT_EQ(stats.done, 1u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.polls, 1u);
}

TEST(Daemon, StopFlagEndsTheLoop)
{
    const std::string spool = freshDir("stop");
    writeFile(fs::path(spool) / "req.json", kSpec);

    // Not --once: the loop would poll forever without the stop
    // hook. Stopping after the first scan must still have finished
    // the request in flight (graceful drain).
    ServeConfig cfg = baseConfig(spool);
    cfg.once = false;
    cfg.poll_ms = 10;
    cfg.stop = [] { return true; };
    Daemon daemon(cfg);
    const ServeStats stats = daemon.run();
    EXPECT_EQ(stats.done, 1u);
    EXPECT_TRUE(fs::exists(fs::path(spool) / "done" / "req.json"));
}

TEST(Daemon, MetricsSnapshotMatchesStatusGroundTruth)
{
    // The obs registry is process-wide and earlier tests fed it;
    // zero it so the snapshot reflects exactly this daemon's work.
    obs::MetricsRegistry::instance().reset();

    const std::string spool = freshDir("metrics");
    auto cfg = baseConfig(spool);
    cfg.cache_dir = freshDir("metrics_cache");
    Daemon daemon(cfg);
    // Distinct requests (different replay grids, so they do not
    // coalesce) sharing one phase-1 simulation: the second must be
    // served from the store, not re-simulated.
    writeFile(fs::path(spool) / "first.json", kSpec);
    writeFile(fs::path(spool) / "second.json",
              R"({"sweeps": [{"benchmarks": ["gcc"], "steps": 3,
                              "insts": 20000}]})");
    const ServeStats stats = daemon.run();
    ASSERT_EQ(stats.done, 2u);

    ASSERT_TRUE(fs::exists(daemon.metricsPath()))
        << daemon.metricsPath();
    const JsonValue doc = parseJsonFile(daemon.metricsPath());
    const JsonValue &counters = doc.at("counters");
    EXPECT_EQ(counters.at("serve.requests_done").asU64(), 2u);
    EXPECT_EQ(counters.at("serve.polls").asU64(), stats.polls);

    // Ground truth: the per-request status.json files the daemon
    // itself published.
    std::uint64_t cache_hits = 0, sims_run = 0;
    for (const char *stem : {"first", "second"}) {
        const JsonValue status = parseJsonFile(
            (fs::path(spool) / "results" / stem / "status.json")
                .string());
        EXPECT_EQ(status.at("state").asString(), "done");
        cache_hits += status.at("stats").at("cache_hits").asU64();
        sims_run += status.at("stats").at("sims_run").asU64();
        // Satellite: wall-clock stamps for post-hoc latency.
        EXPECT_FALSE(status.at("queued_at").asString().empty());
        EXPECT_FALSE(status.at("started_at").asString().empty());
        EXPECT_FALSE(status.at("finished_at").asString().empty());
    }
    EXPECT_EQ(counters.at("serve.cache_hits").asU64(), cache_hits);
    EXPECT_EQ(counters.at("serve.sims_run").asU64(), sims_run);
    EXPECT_EQ(cache_hits, 1u)
        << "requests sharing a phase-1 sim through one store "
           "must hit once";

    // The latency histogram counts exactly the done requests.
    const JsonValue &hist =
        doc.at("histograms").at("serve.request_ms");
    EXPECT_EQ(hist.at("count").asU64(), 2u);
    EXPECT_GT(hist.at("max").asNumber(), 0.0);

    EXPECT_DOUBLE_EQ(
        doc.at("gauges").at("serve.queue_depth").asNumber(), 0.0);
}

TEST(Daemon, MetricsCountFailuresSeparately)
{
    obs::MetricsRegistry::instance().reset();
    const std::string spool = freshDir("metrics_failed");
    writeFile(fs::path(spool) / "bad.json", "not json");
    Daemon daemon(baseConfig(spool));
    const ServeStats stats = daemon.run();
    EXPECT_EQ(stats.failed, 1u);

    const JsonValue doc = parseJsonFile(daemon.metricsPath());
    const JsonValue &counters = doc.at("counters");
    EXPECT_EQ(counters.at("serve.requests_failed").asU64(), 1u);
    EXPECT_EQ(counters.at("serve.requests_done").asU64(), 0u);
    // Failed requests stay out of the latency histogram, keeping
    // its count equal to serve.requests_done. (The histogram is
    // only registered once a request succeeds, hence find().)
    if (const JsonValue *hist =
            doc.at("histograms").find("serve.request_ms"))
        EXPECT_EQ(hist->at("count").asU64(), 0u);
}

TEST(Daemon, RejectsAnUncreatableSpool)
{
    ServeConfig cfg;
    cfg.spool_dir = "";
    EXPECT_THROW(Daemon{cfg}, std::invalid_argument);

    // A file where the spool directory should be.
    const std::string dir = freshDir("notadir");
    writeFile(fs::path(dir) / "occupied", "x");
    ServeConfig bad = baseConfig((fs::path(dir) / "occupied").string());
    EXPECT_THROW(Daemon{bad}, std::invalid_argument);
}

} // namespace
