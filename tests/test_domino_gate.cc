/**
 * @file
 * Unit tests for the domino gate model: Table 1 reproduction at the
 * default 70 nm corner, and physical scaling properties away from
 * it.
 */

#include <gtest/gtest.h>

#include "circuit/domino_gate.hh"

namespace
{

using lsim::circuit::DominoGate;
using lsim::circuit::DominoStyle;
using lsim::circuit::Technology;

/** Table 1 golden values (70 nm, Vdd = 1 V, 4 GHz). */
struct Table1Row
{
    DominoStyle style;
    double eval_ps;
    double sleep_ps;
    double dyn_fj;
    double lo_fj;
    double hi_fj;
    double sleep_fj;
};

class Table1Test : public ::testing::TestWithParam<Table1Row>
{
};

TEST_P(Table1Test, ReproducesPaperCharacterization)
{
    const auto &row = GetParam();
    DominoGate gate(Technology{}, row.style);
    const auto c = gate.characterize();
    EXPECT_NEAR(c.eval_delay_ps, row.eval_ps, 0.05);
    EXPECT_NEAR(c.sleep_delay_ps, row.sleep_ps, 0.05);
    EXPECT_NEAR(c.dynamic_fj, row.dyn_fj, 0.05);
    EXPECT_NEAR(c.leak_lo_fj, row.lo_fj, row.lo_fj * 0.02);
    EXPECT_NEAR(c.leak_hi_fj, row.hi_fj, row.hi_fj * 0.02);
    EXPECT_NEAR(c.sleep_transistor_fj, row.sleep_fj, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1Test,
    ::testing::Values(
        Table1Row{DominoStyle::LowVt, 19.3, 0.0, 26.7, 1.2, 1.4, 0.0},
        Table1Row{DominoStyle::DualVt, 15.0, 0.0, 22.2, 7.1e-4, 1.4,
                  0.0},
        Table1Row{DominoStyle::DualVtSleep, 15.0, 16.0, 22.2, 7.1e-4,
                  1.4, 0.14}));

TEST(DominoGate, DualVtLeakageRatioIsAboutTwoThousand)
{
    DominoGate gate(Technology{}, DominoStyle::DualVt);
    const double ratio = gate.leakHi() / gate.leakLo();
    // The paper reports "a factor of 2,000".
    EXPECT_GT(ratio, 1800.0);
    EXPECT_LT(ratio, 2200.0);
}

TEST(DominoGate, DualVtFasterAndCheaperThanLowVt)
{
    // Weaker keeper contention makes the dual-Vt gate both faster
    // and lower energy (Section 2).
    DominoGate low(Technology{}, DominoStyle::LowVt);
    DominoGate dual(Technology{}, DominoStyle::DualVt);
    EXPECT_LT(dual.evalDelay(), low.evalDelay());
    EXPECT_LT(dual.dynamicEnergy(), low.dynamicEnergy());
}

TEST(DominoGate, SleepModeOnlyOnSleepStyle)
{
    DominoGate plain(Technology{}, DominoStyle::DualVt);
    DominoGate sleepy(Technology{}, DominoStyle::DualVtSleep);
    EXPECT_DOUBLE_EQ(plain.sleepTransistorEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(plain.sleepDelay(), 0.0);
    EXPECT_FALSE(plain.sleepFitsInCycle());
    EXPECT_GT(sleepy.sleepTransistorEnergy(), 0.0);
    EXPECT_GT(sleepy.sleepDelay(), 0.0);
    EXPECT_TRUE(sleepy.sleepFitsInCycle());
}

TEST(DominoGate, SleepDelayComparableToEvalDelay)
{
    // "The delay in discharging the gate via the sleep transistor,
    // 16 ps, is comparable to the delay of the evaluation phase,
    // 15 ps, so the circuit can transition to the sleep state in one
    // cycle."
    DominoGate gate(Technology{}, DominoStyle::DualVtSleep);
    EXPECT_LT(gate.sleepDelay(), 2.0 * gate.evalDelay());
    EXPECT_LT(gate.sleepDelay(), gate.technology().periodPs());
}

TEST(DominoGate, LeakageRisesWhenThresholdDrops)
{
    Technology lo_vt;
    lo_vt.vt_low = 0.15;
    Technology hi_vt;
    hi_vt.vt_low = 0.25;
    DominoGate leaky(lo_vt, DominoStyle::DualVt);
    DominoGate tight(hi_vt, DominoStyle::DualVt);
    EXPECT_GT(leaky.leakHi(), tight.leakHi());
}

TEST(DominoGate, DynamicEnergyScalesWithVddSquared)
{
    Technology half;
    half.vdd = 0.5;
    half.vt_high = 0.45; // keep below vdd
    half.vt_low = 0.15;
    DominoGate nominal(Technology{}, DominoStyle::DualVt);
    DominoGate drooped(half, DominoStyle::DualVt);
    // e_base scales exactly with vdd^2; keeper strength changes the
    // contention term, so check within a loose band.
    const double ratio =
        drooped.dynamicEnergy() / nominal.dynamicEnergy();
    EXPECT_GT(ratio, 0.20);
    EXPECT_LT(ratio, 0.35);
}

TEST(DominoGate, HotterLeaksMore)
{
    Technology cool;
    cool.temperature_k = 323.15;
    DominoGate hot_gate(Technology{}, DominoStyle::DualVt);
    DominoGate cool_gate(cool, DominoStyle::DualVt);
    EXPECT_GT(hot_gate.leakHi(), cool_gate.leakHi());
    EXPECT_GT(hot_gate.leakLo(), cool_gate.leakLo());
}

TEST(DominoGate, StyleNames)
{
    EXPECT_EQ(to_string(DominoStyle::LowVt), "low-Vt");
    EXPECT_EQ(to_string(DominoStyle::DualVt), "dual-Vt");
    EXPECT_EQ(to_string(DominoStyle::DualVtSleep), "dual-Vt w/sleep");
}

} // namespace
