/**
 * @file
 * Unit tests for the gem5-style logging helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(lsim::panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(lsim::fatal("config error %s", "xyz"),
                ::testing::ExitedWithCode(1), "config error xyz");
}

TEST(LoggingDeath, PanicIfTriggersOnTrue)
{
    EXPECT_DEATH(lsim::panicIf(true, "bad"), "bad");
}

TEST(Logging, PanicIfPassesOnFalse)
{
    lsim::panicIf(false, "should not trigger");
}

TEST(Logging, InformToggle)
{
    lsim::setInformEnabled(false);
    EXPECT_FALSE(lsim::informEnabled());
    lsim::inform("silenced");
    lsim::setInformEnabled(true);
    EXPECT_TRUE(lsim::informEnabled());
}

} // namespace
