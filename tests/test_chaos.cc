/**
 * @file
 * Chaos tests: the serve/store tier under seeded fault schedules
 * (common/fault.hh). The invariants under test are the failure
 * model's headline guarantees — every admitted request terminates in
 * done/error/rejected, no waiter outlives its timeout, an exceeded
 * deadline lands as an error with no partial results, and a fresh
 * daemon over the same spool/store serves byte-identical results
 * once the faults clear.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/batch.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "obs/metrics.hh"
#include "serve/daemon.hh"
#include "serve/socket.hh"
#include "serve/spec.hh"

namespace
{

namespace fs = std::filesystem;
using namespace lsim;
using namespace lsim::serve;

constexpr const char *kSpec =
    R"({"sweeps": [{"benchmarks": ["gcc"], "steps": 2,
                    "insts": 20000}]})";

std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lsim_chaos_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Distinct spec per index (unique seed) so requests never
 * coalesce and every one exercises the full pipeline. */
std::string
specNumber(int i)
{
    return std::string(R"({"sweeps": [{"benchmarks": ["gcc"], )") +
           R"("steps": 2, "insts": 20000, "seed": )" +
           std::to_string(i + 1) + "}]}";
}

ServeConfig
chaosConfig(const std::string &spool)
{
    ServeConfig cfg;
    cfg.spool_dir = spool;
    cfg.socket_path = (fs::path(spool) / "lsim.sock").string();
    cfg.cache_dir = (fs::path(spool) / "cache").string();
    cfg.threads = 2;
    cfg.poll_ms = 20;
    return cfg;
}

std::string
stateOf(const std::string &line)
{
    return parseJson(line).at("state").asString();
}

/** Chaos runs arm the global registry; never leak triggers. */
class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

// --------------------------------------------- all-terminal sweep

TEST_F(ChaosTest, SeededFaultScheduleLeavesEveryRequestTerminal)
{
    const std::string spool = freshDir("terminal");
    ServeConfig cfg = chaosConfig(spool);
    std::atomic<bool> stop{false};
    cfg.stop = [&] { return stop.load(); };
    Daemon daemon(cfg);

    // A seeded schedule across the failure domains the daemon owns
    // (not the socket ones — the in-process clients below share
    // those helpers). Everything here only *degrades*: claims are
    // retried by later drains, status writes are backed by the
    // completion board, store faults fall back to
    // compute-without-cache — so every request must land in done.
    fault::configure("serve.claim:count=1, serve.status:every=3, "
                     "store.write:prob=0.5:seed=42, "
                     "store.index.lock:every=2");

    constexpr int kSocket = 4;
    for (int i = 0; i < kSocket; ++i) {
        const ClientResult ack = socketSubmit(
            daemon.socketPath(), "sock" + std::to_string(i),
            specNumber(i), /*priority=*/0, /*wait=*/false, 30.0);
        ASSERT_TRUE(ack.ok) << ack.error;
    }
    constexpr int kSpool = 2;
    for (int i = 0; i < kSpool; ++i)
        writeFile(fs::path(spool) /
                      ("disk" + std::to_string(i) + ".json"),
                  specNumber(kSocket + i));

    std::thread server([&] { daemon.run(); });

    // Every request must reach a terminal state within its wait
    // budget, and no waiter may outlive that budget (plus polling
    // slack) even when its request's status write was eaten.
    constexpr double kWaitS = 60.0;
    std::vector<std::string> names;
    for (int i = 0; i < kSocket; ++i)
        names.push_back("sock" + std::to_string(i));
    for (int i = 0; i < kSpool; ++i)
        names.push_back("disk" + std::to_string(i));
    for (const std::string &name : names) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::string line = daemon.waitFor(name, kWaitS);
        const double waited =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        EXPECT_LT(waited, kWaitS + 1.0) << name;
        const std::string state = stateOf(line);
        EXPECT_TRUE(state == "done" || state == "error" ||
                    state == "rejected")
            << name << ": " << line;
        EXPECT_NE(state, "error") << name << ": " << line
                                  << " (injected faults above only "
                                     "degrade, never fail)";
    }

    stop.store(true);
    server.join();

    // The schedule actually exercised the store's failure paths.
    EXPECT_GT(fault::fired("store.write") +
                  fault::fired("store.index.lock") +
                  fault::fired("serve.status"),
              0u);

    // Nothing is left claimed: work/ is empty once the drain loop
    // stops (done/failed hold the consumed specs).
    for (const auto &de :
         fs::directory_iterator(fs::path(spool) / "work"))
        ADD_FAILURE() << "stranded claim: " << de.path();
}

TEST_F(ChaosTest, LostDeliveryFailsTheRequestNotTheDaemon)
{
    const std::string spool = freshDir("delivery");
    ServeConfig cfg = chaosConfig(spool);
    cfg.once = true;
    Daemon daemon(cfg);

    // Every result write fails: the request lands in error (with
    // the write failure named), and the daemon stays serviceable.
    fault::configure("serve.deliver");
    ASSERT_TRUE(socketSubmit(daemon.socketPath(), "lost", kSpec, 0,
                             false, 30.0)
                    .ok);
    daemon.drainOnce();

    const std::string line = daemon.waitFor("lost", 10.0);
    EXPECT_EQ(stateOf(line), "error");

    // error status guarantees no result files.
    const fs::path dir = fs::path(daemon.resultsDir()) / "lost";
    for (const auto &de : fs::directory_iterator(dir))
        EXPECT_EQ(de.path().filename().string(), "status.json");

    // With the fault cleared the same daemon serves the next
    // request normally.
    fault::reset();
    ASSERT_TRUE(socketSubmit(daemon.socketPath(), "after", kSpec, 0,
                             false, 30.0)
                    .ok);
    daemon.drainOnce();
    EXPECT_EQ(stateOf(daemon.waitFor("after", 10.0)), "done");
}

// ------------------------------------------------------ deadlines

TEST_F(ChaosTest, ExceededDeadlineLandsErrorWithoutPartialResults)
{
    const std::string spool = freshDir("deadline");
    ServeConfig cfg = chaosConfig(spool);
    cfg.once = true;
    cfg.request_timeout_s = 1e-6; // expires before the first phase
    Daemon daemon(cfg);

    const auto deadline_before =
        obs::counter("serve.deadline_exceeded").value();
    ASSERT_TRUE(socketSubmit(daemon.socketPath(), "slow", kSpec, 0,
                             false, 30.0)
                    .ok);
    daemon.drainOnce();

    const auto t0 = std::chrono::steady_clock::now();
    const std::string line = daemon.waitFor("slow", 30.0);
    EXPECT_LT(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              30.0);
    EXPECT_EQ(stateOf(line), "error");
    EXPECT_NE(parseJson(line).at("error").asString().find(
                  "deadline exceeded"),
              std::string::npos)
        << line;
    EXPECT_EQ(obs::counter("serve.deadline_exceeded").value(),
              deadline_before + 1);

    // Partial work is discarded: only the status file remains.
    const fs::path dir = fs::path(daemon.resultsDir()) / "slow";
    for (const auto &de : fs::directory_iterator(dir))
        EXPECT_EQ(de.path().filename().string(), "status.json");
}

TEST_F(ChaosTest, GenerousDeadlineDoesNotPerturbResults)
{
    const std::string spool = freshDir("deadline_ok");
    ServeConfig cfg = chaosConfig(spool);
    cfg.once = true;
    cfg.request_timeout_s = 300.0;
    Daemon daemon(cfg);

    ASSERT_TRUE(socketSubmit(daemon.socketPath(), "ok", kSpec, 0,
                             false, 30.0)
                    .ok);
    daemon.drainOnce();
    EXPECT_EQ(stateOf(daemon.waitFor("ok", 10.0)), "done");

    const auto direct =
        api::BatchRunner(batchConfigFromJson(parseJson(kSpec)))
            .run();
    std::ostringstream csv;
    direct.sweeps[0].writeCsv(csv);
    EXPECT_EQ(readFile(fs::path(daemon.resultsDir()) / "ok" /
                       "sweep_0.csv"),
              csv.str());
}

// --------------------------------------------------- socket chaos

TEST_F(ChaosTest, SocketFaultsNeverWedgeTheListener)
{
    const std::string spool = freshDir("socket");
    ServeConfig cfg = chaosConfig(spool);
    std::atomic<bool> stop{false};
    cfg.stop = [&] { return stop.load(); };
    Daemon daemon(cfg);
    std::thread server([&] { daemon.run(); });

    // The socket fault points live in the shared send/recv/accept
    // helpers, so this schedule breaks client and server sides
    // alike. Submissions may fail — what must hold is that every
    // attempt returns (no hang) and the listener survives. Bounded
    // count= triggers: at most 6 of the 10 submissions can be hit,
    // however the firings interleave across connection threads.
    fault::configure("socket.accept:count=2, socket.read:count=2, "
                     "socket.write:count=2");
    int served = 0;
    for (int i = 0; i < 10; ++i) {
        const ClientResult r = socketSubmit(
            daemon.socketPath(), "c" + std::to_string(i),
            specNumber(i), 0, /*wait=*/false, 10.0);
        served += r.ok ? 1 : 0;
    }

    // With faults cleared the daemon must serve a clean round trip:
    // the injected connection drops leaked nothing.
    fault::reset();
    const ClientResult clean = socketSubmit(
        daemon.socketPath(), "clean", kSpec, 0, /*wait=*/true, 60.0);
    ASSERT_TRUE(clean.ok) << clean.error;
    EXPECT_EQ(stateOf(clean.lines.back()), "done");

    stop.store(true);
    server.join();
    // The chaos loop got at least one submission through (the
    // schedule fires on a subset of hits, not all of them).
    EXPECT_GT(served, 0);
}

// --------------------------------------- post-fault determinism

TEST_F(ChaosTest, FreshDaemonServesSameStoreByteIdentically)
{
    const std::string spool_a = freshDir("ident_a");
    const std::string spool_b = freshDir("ident_b");
    const std::string undisturbed = freshDir("ident_ref");

    // Reference: an undisturbed daemon over its own store.
    {
        ServeConfig cfg = chaosConfig(undisturbed);
        cfg.once = true;
        Daemon daemon(cfg);
        writeFile(fs::path(undisturbed) / "req.json", kSpec);
        daemon.drainOnce();
    }
    const std::string want =
        readFile(fs::path(undisturbed) / "results" / "req" /
                 "sweep_0.csv");
    ASSERT_FALSE(want.empty());

    // Chaos run: a daemon takes store and delivery faults while
    // warming the shared cache dir (the request may fail or run
    // degraded — both fine).
    {
        ServeConfig cfg = chaosConfig(spool_a);
        cfg.cache_dir = (fs::path(spool_b) / "cache").string();
        cfg.once = true;
        Daemon daemon(cfg);
        fault::configure("store.write:every=2, "
                         "store.index.lock:count=2, "
                         "serve.status:every=2");
        writeFile(fs::path(spool_a) / "req.json", kSpec);
        daemon.drainOnce();
        fault::reset();
    }

    // A fresh, fault-free daemon over the store the chaos run left
    // behind must serve the same request byte-identically to the
    // undisturbed reference — whatever the faults did to the cache,
    // they never poisoned results.
    {
        ServeConfig cfg = chaosConfig(spool_b);
        cfg.once = true;
        Daemon daemon(cfg);
        writeFile(fs::path(spool_b) / "req.json", kSpec);
        daemon.drainOnce();
        EXPECT_EQ(stateOf(daemon.waitFor("req", 10.0)), "done");
    }
    EXPECT_EQ(readFile(fs::path(spool_b) / "results" / "req" /
                       "sweep_0.csv"),
              want);
}

} // namespace
