/**
 * @file
 * Concurrency stress tests, written to run under ThreadSanitizer
 * (the CI TSan lane builds with -DLSIM_SANITIZE=thread and runs this
 * binary): many submitter threads hammering one ThreadPool, two
 * serve::Daemon instances draining one spool, and concurrent
 * save/load traffic on one ProfileStore. The assertions check the
 * exactly-once execution contracts; TSan checks the synchronization
 * that backs them.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment.hh"
#include "api/parallel.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "serve/daemon.hh"
#include "serve/queue.hh"
#include "store/profile_store.hh"

namespace
{

namespace fs = std::filesystem;
using namespace lsim;

/** Fresh per-test directory under gtest's temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lsim_stress_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Many threads submitting overlapping run() calls to ONE pool. The
 * pool's contract is per-run, not global: every submitter must see
 * each of its own indices executed exactly once, however the calls
 * interleave. (Overlapping submitters degrade gracefully — workers
 * help the latest generation, each caller participates in its own
 * job — so this is legal, just contended.)
 */
TEST(ThreadPoolStress, ManySubmittersSeeExactlyOnceExecution)
{
    constexpr unsigned kSubmitters = 6;
    constexpr unsigned kRunsEach = 20;
    constexpr std::size_t kCount = 48;

    api::detail::ThreadPool pool(4);
    std::atomic<bool> failed{false};

    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (unsigned s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &failed] {
            for (unsigned r = 0; r < kRunsEach; ++r) {
                std::vector<std::atomic<int>> hits(kCount);
                pool.run(kCount, [&hits](std::size_t i) {
                    hits[i].fetch_add(1);
                });
                for (std::size_t i = 0; i < kCount; ++i)
                    if (hits[i].load() != 1)
                        failed.store(true);
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_FALSE(failed.load())
        << "some index ran zero or multiple times";
}

/** Destroying a pool that never ran a job must not hang or race. */
TEST(ThreadPoolStress, IdlePoolShutdown)
{
    for (int i = 0; i < 16; ++i)
        api::detail::ThreadPool pool(3);
}

constexpr const char *kSpec =
    R"({"sweeps": [{"benchmarks": ["gcc"], "steps": 2,
                    "insts": 20000}]})";

/**
 * Two daemons draining ONE spool concurrently (the documented
 * multi-daemon deployment: claiming is a rename, exactly one wins
 * each spec). Every spec must be executed exactly once — the done
 * counters sum to the spec count, done/ holds every spec, work/ and
 * the spool root end empty, and every result directory reaches the
 * "done" state.
 */
TEST(ServeStress, TwoDaemonsDrainOneSpoolExactlyOnce)
{
    constexpr int kSpecs = 12;
    const std::string spool = freshDir("two_daemons");
    const std::string cache = freshDir("two_daemons_cache");

    serve::ServeConfig cfg;
    cfg.spool_dir = spool;
    cfg.cache_dir = cache;
    cfg.threads = 2;
    cfg.once = true;

    serve::Daemon a(cfg);
    serve::Daemon b(cfg);

    std::vector<std::string> stems;
    for (int i = 0; i < kSpecs; ++i) {
        std::ostringstream name;
        name << "req" << (i < 10 ? "0" : "") << i;
        stems.push_back(name.str());
        writeFile(fs::path(spool) / (name.str() + ".json"), kSpec);
    }

    serve::ServeStats sa, sb;
    std::thread ta([&] { sa = a.run(); });
    std::thread tb([&] { sb = b.run(); });
    ta.join();
    tb.join();

    EXPECT_EQ(sa.done + sb.done, static_cast<std::size_t>(kSpecs));
    EXPECT_EQ(sa.failed + sb.failed, 0u);

    std::size_t done_entries = 0;
    for (const auto &entry :
         fs::directory_iterator(fs::path(spool) / "done"))
        done_entries += entry.is_regular_file();
    EXPECT_EQ(done_entries, static_cast<std::size_t>(kSpecs));

    EXPECT_TRUE(fs::is_empty(fs::path(spool) / "work"))
        << "orphaned claims left in work/";
    for (const auto &entry : fs::directory_iterator(spool)) {
        // The daemons' metrics snapshot legitimately lives in the
        // spool root (the name is reserved, never a spec).
        if (entry.path().filename() == "metrics.json")
            continue;
        EXPECT_TRUE(entry.is_directory())
            << "unconsumed spec " << entry.path();
    }

    for (const auto &stem : stems) {
        const auto status = parseJson(readFile(
            fs::path(a.resultsDir()) / stem / "status.json"));
        EXPECT_EQ(status.at("state").asString(), "done") << stem;
    }
}

/**
 * One ProfileStore instance shared by several threads: concurrent
 * save() of distinct keys, repeated save() of one contended key, and
 * load() traffic racing both. The store serializes its in-memory
 * index behind index_mu_ and writes entries atomically, so every
 * load must return either "absent" or a complete, uncorrupted sim.
 */
TEST(StoreStress, ConcurrentSaveAndLoadOnOneInstance)
{
    const std::string dir = freshDir("store");
    store::ProfileStore store(dir);

    const harness::WorkloadSim sim = api::Experiment::builder()
                                         .workload("gcc")
                                         .insts(20000)
                                         .session()
                                         .sim();

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 8;
    std::atomic<int> torn{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, &sim, &torn, t] {
            for (unsigned i = 0; i < kIters; ++i) {
                const std::string mine =
                    "t" + std::to_string(t) + "-" +
                    std::to_string(i);
                store.save(mine, sim);
                store.save("shared", sim);
                const auto own = store.load(mine);
                if (!own || own->sim.cycles != sim.sim.cycles)
                    torn.fetch_add(1);
                const auto shared = store.load("shared");
                if (shared &&
                    shared->sim.cycles != sim.sim.cycles)
                    torn.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(torn.load(), 0) << "a load returned a torn entry";
    EXPECT_EQ(store.summaries().size(),
              static_cast<std::size_t>(kThreads * kIters + 1));
}

/*
 * Hammer the admission queue from eight submitters plus two
 * executors with fault injection armed, so the TSan lane exercises
 * the same lock interleavings (queue mutex, fault registry, metrics
 * registry) the static lock-order analyzer reasons about.  Every
 * admitted request must be executed exactly once and every coalesced
 * follower must come back from exactly one finish().
 */
TEST(QueueStress, SubmitCoalesceFinishUnderFaults)
{
    constexpr int kThreads = 8;
    constexpr int kIters = 48;
    constexpr const char *kPoint = "stress.queue.submit";

    fault::reset();
    fault::configure(std::string(kPoint) + ":prob=0.25:seed=11");

    serve::RequestQueue queue(16);

    std::atomic<int> enqueued{0};
    std::atomic<int> coalesced{0};
    std::atomic<int> rejected_full{0};
    std::atomic<int> rejected_name{0};
    std::atomic<int> faulted{0};
    std::atomic<int> executed{0};
    std::atomic<int> fanned{0};
    std::atomic<bool> done_submitting{false};

    std::vector<std::thread> executors;
    for (int e = 0; e < 2; ++e) {
        executors.emplace_back([&] {
            for (;;) {
                if (!queue.waitForWork(std::chrono::milliseconds(1))) {
                    if (done_submitting.load() && queue.depth() == 0)
                        return;
                    continue;
                }
                auto req = queue.pop();
                if (!req)
                    continue;
                const auto followers = queue.finish(req->name);
                executed.fetch_add(1);
                fanned.fetch_add(static_cast<int>(followers.size()));
            }
        });
    }

    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                // An ingress that dies before admission: the queue
                // must never learn about this request.
                if (LSIM_FAULT(kPoint)) {
                    faulted.fetch_add(1);
                    continue;
                }
                serve::QueuedRequest req;
                if (i % 8 == 7) {
                    // Shared name, unique fingerprint: collides with
                    // a live namesake as RejectedName.
                    req.name = "dup-" + std::to_string(t % 2);
                    req.fingerprint = "fp-uniq-" +
                        std::to_string(t * kIters + i);
                } else {
                    // Unique name, fingerprint drawn from a small
                    // pool: collides with in-flight work as
                    // Coalesced.
                    req.name = "s" + std::to_string(t) + "-" +
                        std::to_string(i);
                    req.fingerprint =
                        "fp-" + std::to_string((t * kIters + i) % 6);
                }
                req.spec_text = "{}";
                req.priority = i % 3;
                req.ingress = serve::Ingress::Socket;
                std::string primary;
                switch (queue.submit(std::move(req), &primary)) {
                case serve::Admission::Enqueued:
                    enqueued.fetch_add(1);
                    break;
                case serve::Admission::Coalesced:
                    coalesced.fetch_add(1);
                    EXPECT_FALSE(primary.empty());
                    break;
                case serve::Admission::RejectedFull:
                    rejected_full.fetch_add(1);
                    break;
                case serve::Admission::RejectedName:
                    rejected_name.fetch_add(1);
                    break;
                }
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    done_submitting.store(true);
    for (auto &t : executors)
        t.join();

    // Every attempt is accounted for exactly once.
    EXPECT_EQ(enqueued.load() + coalesced.load() + rejected_full.load() +
                  rejected_name.load() + faulted.load(),
              kThreads * kIters);
    // Exactly-once execution: each admitted primary finishes once...
    EXPECT_EQ(executed.load(), enqueued.load());
    // ...and each coalesced follower is fanned out by one finish().
    EXPECT_EQ(fanned.load(), coalesced.load());
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_TRUE(queue.drainPending().empty());

    // The fault point was consulted on every attempt and actually
    // fired (faulted counts exactly the fired attempts).
    EXPECT_EQ(fault::hits(kPoint),
              static_cast<std::uint64_t>(kThreads * kIters));
    EXPECT_EQ(fault::fired(kPoint),
              static_cast<std::uint64_t>(faulted.load()));
    EXPECT_GT(faulted.load(), 0);
    fault::reset();
}

} // namespace
