/**
 * @file
 * End-to-end integration tests reproducing the paper's qualitative
 * claims on real simulator output (scaled-down instruction windows).
 */

#include <gtest/gtest.h>

#include "energy/breakeven.hh"
#include "harness/benchmarks.hh"
#include "harness/experiment.hh"
#include "trace/profile.hh"

namespace
{

using lsim::energy::ModelParams;
using lsim::harness::WorkloadSim;
using lsim::harness::evaluatePaperPolicies;
using lsim::harness::simulateWorkload;
using lsim::sleep::PolicyResult;
using lsim::trace::profileByName;

ModelParams
params(double p, double alpha = 0.5)
{
    ModelParams mp;
    mp.p = p;
    mp.alpha = alpha;
    mp.k = 0.001;
    mp.s = 0.01;
    return mp;
}

const PolicyResult &
find(const std::vector<PolicyResult> &results, const char *name)
{
    for (const auto &r : results)
        if (r.name == name)
            return r;
    throw std::runtime_error("missing policy");
}

class IntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        lsim::setInformEnabled(false);
        // Simulate once; evaluate at many technology points.
        gzip_ = new WorkloadSim(simulateWorkload(
            profileByName("gzip"), 4, 150000));
        mcf_ = new WorkloadSim(simulateWorkload(
            profileByName("mcf"), 2, 100000));
    }

    static void
    TearDownTestSuite()
    {
        delete gzip_;
        delete mcf_;
        gzip_ = nullptr;
        mcf_ = nullptr;
    }

    static WorkloadSim *gzip_;
    static WorkloadSim *mcf_;
};

WorkloadSim *IntegrationTest::gzip_ = nullptr;
WorkloadSim *IntegrationTest::mcf_ = nullptr;

TEST_F(IntegrationTest, LowLeakageFavorsAlwaysActive)
{
    // Figure 8a: at p = 0.05, MaxSleep uses more energy than
    // AlwaysActive (8.3% more on average in the paper).
    for (const auto *ws : {gzip_, mcf_}) {
        const auto res = evaluatePaperPolicies(ws->idle, params(0.05));
        EXPECT_GT(find(res, "MaxSleep").energy,
                  find(res, "AlwaysActive").energy)
            << ws->name;
    }
}

TEST_F(IntegrationTest, HighLeakageFavorsMaxSleep)
{
    // Figure 8b: at p = 0.50, MaxSleep always beats AlwaysActive.
    for (const auto *ws : {gzip_, mcf_}) {
        const auto res = evaluatePaperPolicies(ws->idle, params(0.5));
        EXPECT_LT(find(res, "MaxSleep").energy,
                  find(res, "AlwaysActive").energy)
            << ws->name;
    }
}

TEST_F(IntegrationTest, NoOverheadIsGlobalLowerBound)
{
    for (double p : {0.05, 0.2, 0.5, 1.0}) {
        const auto res = evaluatePaperPolicies(gzip_->idle, params(p));
        const double no = find(res, "NoOverhead").energy;
        for (const auto &r : res)
            EXPECT_GE(r.energy, no - 1e-9) << r.name << " p=" << p;
    }
}

TEST_F(IntegrationTest, GradualSleepAvoidsBothExtremes)
{
    // Figure 9a: GradualSleep tracks the better of the two bounding
    // policies across the whole technology range (within a small
    // margin).
    for (double p = 0.1; p <= 1.0; p += 0.1) {
        const auto res = evaluatePaperPolicies(gzip_->idle, params(p));
        const double gs = find(res, "GradualSleep").energy;
        const double best = std::min(
            find(res, "MaxSleep").energy,
            find(res, "AlwaysActive").energy);
        const double worst = std::max(
            find(res, "MaxSleep").energy,
            find(res, "AlwaysActive").energy);
        EXPECT_LT(gs, worst) << "p=" << p;
        EXPECT_LT(gs, 1.35 * best) << "p=" << p;
    }
}

TEST_F(IntegrationTest, LeakageFractionGrowsWithTechnology)
{
    // Figure 9b: the leakage share of total energy rises steeply
    // with p for AlwaysActive (13% at p=0.05 to 60% at p=0.5 in the
    // paper).
    const auto lo = evaluatePaperPolicies(mcf_->idle, params(0.05));
    const auto hi = evaluatePaperPolicies(mcf_->idle, params(0.5));
    const double f_lo = find(lo, "AlwaysActive").leakage_fraction;
    const double f_hi = find(hi, "AlwaysActive").leakage_fraction;
    EXPECT_LT(f_lo, 0.45);
    EXPECT_GT(f_hi, 0.4);
    EXPECT_GT(f_hi, 2.0 * f_lo);
}

TEST_F(IntegrationTest, IdleFractionInPaperBallpark)
{
    // The paper reports ALUs idle ~46.8% of the time on average;
    // individual benchmarks range widely. Memory-bound mcf idles
    // far more than ILP-rich gzip at its paper FU count.
    EXPECT_GT(mcf_->idle.idleFraction(), gzip_->idle.idleFraction());
    EXPECT_GT(mcf_->idle.idleFraction(), 0.5);
    EXPECT_LT(gzip_->idle.idleFraction(), 0.7);
}

TEST_F(IntegrationTest, MostIdleIntervalsAreShort)
{
    // Figure 7: "nearly all of the idle intervals are shorter than
    // 128 cycles".
    const auto &h = gzip_->idle_hist;
    double below_128 = 0.0, total = 0.0;
    for (std::size_t b = 0; b < h.numBuckets(); ++b) {
        total += h.bucketWeight(b);
        if (h.bucketLow(b) < 128)
            below_128 += h.bucketWeight(b);
    }
    EXPECT_GT(below_128 / total, 0.80);
}

TEST_F(IntegrationTest, AlphaShiftsPolicyGaps)
{
    // Section 5: at lower alpha the MaxSleep-vs-AlwaysActive
    // difference grows (more nodes to discharge per transition).
    const auto lo_alpha =
        evaluatePaperPolicies(gzip_->idle, params(0.5, 0.25));
    const auto hi_alpha =
        evaluatePaperPolicies(gzip_->idle, params(0.5, 0.75));
    const double gap_lo =
        find(lo_alpha, "MaxSleep").relative_to_base -
        find(lo_alpha, "NoOverhead").relative_to_base;
    const double gap_hi =
        find(hi_alpha, "MaxSleep").relative_to_base -
        find(hi_alpha, "NoOverhead").relative_to_base;
    EXPECT_GT(gap_lo, gap_hi);
}

TEST(SuiteHarness, RunSuiteAggregation)
{
    lsim::setInformEnabled(false);
    lsim::harness::SuiteOptions opts;
    opts.insts = 20000;
    const auto suite = lsim::harness::runSuite(opts);
    ASSERT_EQ(suite.sims.size(), 9u);
    // Paper FU counts were used.
    EXPECT_EQ(suite.byName("mcf").num_fus, 2u);
    EXPECT_EQ(suite.byName("vortex").num_fus, 4u);
    // Combined histogram totals the mean idle fraction.
    const auto hist = suite.combinedIdleHistogram();
    EXPECT_NEAR(hist.totalWeight(), suite.meanIdleFraction(), 0.02);
    EXPECT_GT(suite.meanIdleFraction(), 0.2);
    EXPECT_LT(suite.meanIdleFraction(), 0.95);
    // Policy averaging returns the four paper policies with
    // NoOverhead pinned at 1.0 by construction.
    const auto avg =
        lsim::harness::averagePolicies(suite, params(0.5));
    ASSERT_EQ(avg.names.size(), 4u);
    EXPECT_NEAR(avg.rel_to_nooverhead[3], 1.0, 1e-9);
    for (double rel : avg.rel_to_nooverhead)
        EXPECT_GE(rel, 1.0 - 1e-9);
}

TEST_F(IntegrationTest, OracleBeatsAllPaperPoliciesButNoOverhead)
{
    const ModelParams mp = params(0.2);
    const auto paper = evaluatePaperPolicies(gzip_->idle, mp);
    auto ext = lsim::harness::evaluatePolicies(
        gzip_->idle, mp, lsim::sleep::makeExtensionControllers(mp));
    const double oracle = find(ext, "Oracle").energy;
    EXPECT_LE(oracle, find(paper, "MaxSleep").energy + 1e-9);
    EXPECT_LE(oracle, find(paper, "AlwaysActive").energy + 1e-9);
    EXPECT_GE(oracle, find(paper, "NoOverhead").energy - 1e-9);
}

} // namespace
