/**
 * @file
 * Unit tests for the string-keyed sleep-policy registry.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "energy/breakeven.hh"
#include "sleep/policy_registry.hh"

namespace
{

using lsim::energy::ModelParams;
using lsim::sleep::AdaptiveController;
using lsim::sleep::GradualSleepController;
using lsim::sleep::OracleController;
using lsim::sleep::PolicyRegistry;
using lsim::sleep::TimeoutController;
using lsim::sleep::WeightedGradualSleepController;
using lsim::sleep::makeExtensionControllers;
using lsim::sleep::makePaperControllers;

ModelParams
params(double p = 0.05)
{
    ModelParams mp;
    mp.p = p;
    mp.k = 0.001;
    mp.s = 0.01;
    mp.alpha = 0.5;
    return mp;
}

TEST(PolicyRegistry, EveryRegisteredNameConstructs)
{
    const auto &reg = PolicyRegistry::instance();
    const auto keys = reg.keys();
    EXPECT_GE(keys.size(), 8u);
    for (const auto &key : keys) {
        SCOPED_TRACE(key);
        auto ctrl = reg.make(key, params());
        ASSERT_NE(ctrl, nullptr);
        EXPECT_FALSE(ctrl->name().empty());
        EXPECT_FALSE(reg.summary(key).empty());
        EXPECT_TRUE(reg.has(key));
    }
}

TEST(PolicyRegistry, NamesRoundTripThroughControllerName)
{
    // spec -> controller -> keyFor -> controller must reproduce the
    // same policy (same report name, same configuration).
    const auto &reg = PolicyRegistry::instance();
    for (const auto &key : reg.keys()) {
        SCOPED_TRACE(key);
        const auto ctrl = reg.make(key, params());
        const std::string spec = PolicyRegistry::keyFor(*ctrl);
        EXPECT_TRUE(reg.has(spec));
        const auto again = reg.make(spec, params());
        EXPECT_EQ(again->name(), ctrl->name());
    }
}

TEST(PolicyRegistry, ParameterizedSpecsRoundTripExactly)
{
    const auto &reg = PolicyRegistry::instance();
    const auto timeout = reg.make("timeout:64", params());
    EXPECT_EQ(timeout->name(), "Timeout(64)");
    EXPECT_EQ(PolicyRegistry::keyFor(*timeout), "timeout:64");

    const auto gradual = reg.make("gradual:16", params());
    EXPECT_EQ(PolicyRegistry::keyFor(*gradual), "gradual:16");
    EXPECT_EQ(dynamic_cast<GradualSleepController &>(*gradual)
                  .numSlices(),
              16u);

    // Non-default weights and EWMA weight must survive the
    // spec -> controller -> spec round trip, not snap back to the
    // defaults.
    const auto wg = reg.make("weighted-gradual:0.9,0.1", params());
    const auto wg_again =
        reg.make(PolicyRegistry::keyFor(*wg), params());
    EXPECT_EQ(dynamic_cast<WeightedGradualSleepController &>(
                  *wg_again)
                  .weights(),
              dynamic_cast<WeightedGradualSleepController &>(*wg)
                  .weights());

    const auto ad = reg.make("adaptive:0.5", params());
    EXPECT_EQ(PolicyRegistry::keyFor(*ad), "adaptive:0.5");
    const auto ad_again =
        reg.make(PolicyRegistry::keyFor(*ad), params());
    EXPECT_DOUBLE_EQ(
        dynamic_cast<AdaptiveController &>(*ad_again).ewmaWeight(),
        0.5);
}

TEST(PolicyRegistry, OversizedCountsThrow)
{
    const auto &reg = PolicyRegistry::instance();
    EXPECT_THROW(reg.make("timeout:4294967296", params()),
                 std::invalid_argument);
    EXPECT_THROW(reg.make("gradual:4294967296", params()),
                 std::invalid_argument);
}

TEST(PolicyRegistry, UnknownNamesThrow)
{
    const auto &reg = PolicyRegistry::instance();
    EXPECT_THROW(reg.make("bogus", params()), std::invalid_argument);
    EXPECT_THROW(reg.make("", params()), std::invalid_argument);
    EXPECT_THROW(reg.make("gradual-sleep", params()),
                 std::invalid_argument);
    EXPECT_THROW(reg.makeSet({"max-sleep", "nope"}, params()),
                 std::invalid_argument);
    EXPECT_FALSE(reg.has("bogus"));
    EXPECT_THROW(reg.summary("bogus"), std::invalid_argument);
}

TEST(PolicyRegistry, MalformedArgumentsThrow)
{
    const auto &reg = PolicyRegistry::instance();
    EXPECT_THROW(reg.make("timeout:abc", params()),
                 std::invalid_argument);
    EXPECT_THROW(reg.make("timeout:0", params()),
                 std::invalid_argument);
    EXPECT_THROW(reg.make("gradual:-3", params()),
                 std::invalid_argument);
    EXPECT_THROW(reg.make("gradual:12x", params()),
                 std::invalid_argument);
    EXPECT_THROW(reg.make("adaptive:2.0", params()),
                 std::invalid_argument);
    EXPECT_THROW(reg.make("weighted-gradual:0.5,oops", params()),
                 std::invalid_argument);
}

TEST(PolicyRegistry, DefaultsFollowTheTechnologyPoint)
{
    // "gradual" sizes its slice count to the breakeven interval of
    // the supplied technology point.
    const auto mp = params(0.05);
    const auto be = lsim::energy::breakevenInterval(mp);
    const auto ctrl =
        PolicyRegistry::instance().make("gradual", mp);
    EXPECT_EQ(dynamic_cast<GradualSleepController &>(*ctrl)
                  .numSlices(),
              static_cast<unsigned>(std::llround(be)));

    // "oracle" picks up the breakeven threshold directly.
    const auto oracle =
        PolicyRegistry::instance().make("oracle", mp);
    EXPECT_DOUBLE_EQ(
        dynamic_cast<OracleController &>(*oracle).breakeven(), be);
}

TEST(PolicyRegistry, ParameterizedArgumentsConfigure)
{
    const auto &reg = PolicyRegistry::instance();
    EXPECT_EQ(dynamic_cast<TimeoutController &>(
                  *reg.make("timeout:128", params()))
                  .timeout(),
              128u);
    EXPECT_DOUBLE_EQ(dynamic_cast<AdaptiveController &>(
                         *reg.make("adaptive:0.5", params()))
                         .prediction(),
                     lsim::energy::breakevenInterval(params()));
    const auto wg = reg.make("weighted-gradual:0.5,0.25,0.25",
                             params());
    const auto &weights =
        dynamic_cast<WeightedGradualSleepController &>(*wg).weights();
    ASSERT_EQ(weights.size(), 3u);
    EXPECT_DOUBLE_EQ(weights[0], 0.5);
}

TEST(PolicyRegistry, MakeSetPreservesOrder)
{
    const auto set = PolicyRegistry::instance().makeSet(
        {"no-overhead", "max-sleep", "always-active"}, params());
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0]->name(), "NoOverhead");
    EXPECT_EQ(set[1]->name(), "MaxSleep");
    EXPECT_EQ(set[2]->name(), "AlwaysActive");
}

TEST(PolicyRegistry, LegacyFactoriesAreRegistryShims)
{
    // makePaperControllers / makeExtensionControllers must agree
    // with the registry's canonical spec lists.
    const auto paper = makePaperControllers(params());
    const auto &specs = PolicyRegistry::paperSpecs();
    ASSERT_EQ(paper.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto from_registry =
            PolicyRegistry::instance().make(specs[i], params());
        EXPECT_EQ(paper[i]->name(), from_registry->name());
    }
    EXPECT_EQ(paper[0]->name(), "MaxSleep");
    EXPECT_EQ(paper[1]->name(), "GradualSleep");
    EXPECT_EQ(paper[2]->name(), "AlwaysActive");
    EXPECT_EQ(paper[3]->name(), "NoOverhead");

    const auto ext = makeExtensionControllers(params());
    ASSERT_EQ(ext.size(), PolicyRegistry::extensionSpecs().size());
    EXPECT_EQ(ext[1]->name(), "Oracle");
}

} // namespace
