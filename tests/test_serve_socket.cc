/**
 * @file
 * Unit tests for the daemon's network front door: the admission
 * queue (bounded capacity, priorities, request coalescing, name
 * collisions), the Unix-socket submit/wait protocol end to end, and
 * the tentpole guarantee — N identical in-flight submissions
 * collapse to exactly one BatchRunner execution whose results fan
 * out byte-identically to every waiter.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/batch.hh"
#include "common/json.hh"
#include "obs/metrics.hh"
#include "serve/daemon.hh"
#include "serve/queue.hh"
#include "serve/socket.hh"
#include "serve/spec.hh"

namespace
{

namespace fs = std::filesystem;
using namespace lsim;
using namespace lsim::serve;

constexpr const char *kSpec =
    R"({"sweeps": [{"benchmarks": ["gcc"], "steps": 2,
                    "insts": 20000}]})";

/** Same spec, different whitespace: must coalesce with kSpec (the
 * fingerprint hashes the parsed config, not the bytes). */
constexpr const char *kSpecReformatted =
    R"({ "sweeps":[ {"steps": 2, "insts": 20000,
                     "benchmarks":["gcc"] } ] })";

/** A different request (other replay grid): never coalesces. */
constexpr const char *kOtherSpec =
    R"({"sweeps": [{"benchmarks": ["gcc"], "steps": 3,
                    "insts": 20000}]})";

std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lsim_socket_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Daemon config with a live socket; not draining until told. */
ServeConfig
socketConfig(const std::string &spool)
{
    ServeConfig cfg;
    cfg.spool_dir = spool;
    cfg.socket_path = (fs::path(spool) / "lsim.sock").string();
    cfg.threads = 2;
    cfg.once = true;
    return cfg;
}

QueuedRequest
request(const std::string &name, const std::string &fingerprint,
        int priority = 0)
{
    QueuedRequest req;
    req.name = name;
    req.fingerprint = fingerprint;
    req.priority = priority;
    return req;
}

std::string
stateOf(const std::string &line)
{
    return parseJson(line).at("state").asString();
}

// ------------------------------------------------- RequestQueue

TEST(RequestQueue, PopsByPriorityThenAdmissionOrder)
{
    RequestQueue queue(10);
    ASSERT_EQ(queue.submit(request("a", "f1", 0), nullptr),
              Admission::Enqueued);
    ASSERT_EQ(queue.submit(request("b", "f2", 5), nullptr),
              Admission::Enqueued);
    ASSERT_EQ(queue.submit(request("c", "f3", 5), nullptr),
              Admission::Enqueued);
    ASSERT_EQ(queue.submit(request("d", "f4", 1), nullptr),
              Admission::Enqueued);

    std::vector<std::string> order;
    while (auto req = queue.pop()) {
        order.push_back(req->name);
        queue.finish(req->name);
    }
    EXPECT_EQ(order,
              (std::vector<std::string>{"b", "c", "d", "a"}));
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueue, BoundsAdmissionButNotCoalescing)
{
    RequestQueue queue(2);
    ASSERT_EQ(queue.submit(request("a", "f1"), nullptr),
              Admission::Enqueued);
    ASSERT_EQ(queue.submit(request("b", "f2"), nullptr),
              Admission::Enqueued);
    EXPECT_TRUE(queue.full());
    EXPECT_EQ(queue.submit(request("c", "f3"), nullptr),
              Admission::RejectedFull);

    // A follower rides an admitted request: no slot consumed, so
    // backpressure does not apply to it.
    std::string primary;
    EXPECT_EQ(queue.submit(request("d", "f1"), &primary),
              Admission::Coalesced);
    EXPECT_EQ(primary, "a");
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_TRUE(queue.live("d"));
}

TEST(RequestQueue, RejectsDuplicateLiveNames)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.submit(request("a", "f1"), nullptr),
              Admission::Enqueued);
    EXPECT_EQ(queue.submit(request("a", "f2"), nullptr),
              Admission::RejectedName);

    // The name frees up once the request is finished.
    ASSERT_TRUE(queue.pop().has_value());
    queue.finish("a");
    EXPECT_EQ(queue.submit(request("a", "f2"), nullptr),
              Admission::Enqueued);
}

TEST(RequestQueue, CoalescesOntoAnExecutingPrimary)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.submit(request("a", "f1"), nullptr),
              Admission::Enqueued);
    const auto popped = queue.pop();
    ASSERT_TRUE(popped.has_value());

    // "a" is executing (popped, not finished): an identical request
    // still attaches to it.
    std::string primary;
    EXPECT_EQ(queue.submit(request("b", "f1"), &primary),
              Admission::Coalesced);
    EXPECT_EQ(primary, "a");

    const auto followers = queue.finish("a");
    ASSERT_EQ(followers.size(), 1u);
    EXPECT_EQ(followers[0].name, "b");

    // After finish() the fingerprint is free: no stale coalescing.
    EXPECT_EQ(queue.submit(request("c", "f1"), nullptr),
              Admission::Enqueued);
    EXPECT_FALSE(queue.live("a"));
    EXPECT_FALSE(queue.live("b"));
}

TEST(RequestQueue, DrainPendingAbandonsFollowersWithPrimaries)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.submit(request("a", "f1"), nullptr),
              Admission::Enqueued);
    ASSERT_EQ(queue.submit(request("b", "f1"), nullptr),
              Admission::Coalesced);

    const auto drained = queue.drainPending();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_FALSE(queue.live("a"));
    EXPECT_FALSE(queue.live("b"));
}

// ---------------------------------------- coalescing end to end

TEST(SocketServe, CoalescesIdenticalSubmissionsToOneExecution)
{
    obs::MetricsRegistry::instance().reset();
    const std::string spool = freshDir("coalesce");
    Daemon daemon(socketConfig(spool));

    // Admit N identical requests (one reformatted: identity is the
    // parsed spec, not its bytes) while the executor is idle, from
    // concurrent client threads — exactly what a fleet of clients
    // hitting one daemon looks like.
    constexpr int kClients = 4;
    std::vector<ClientResult> acks(kClients);
    {
        std::vector<std::thread> clients;
        for (int i = 0; i < kClients; ++i)
            clients.emplace_back([&, i] {
                acks[static_cast<std::size_t>(i)] = socketSubmit(
                    daemon.socketPath(),
                    "run" + std::to_string(i),
                    i == 1 ? kSpecReformatted : kSpec,
                    /*priority=*/0, /*wait=*/false,
                    /*timeout_s=*/30.0);
            });
        for (auto &t : clients)
            t.join();
    }
    for (const auto &ack : acks) {
        ASSERT_TRUE(ack.ok) << ack.error;
        ASSERT_EQ(ack.lines.size(), 1u);
        EXPECT_EQ(stateOf(ack.lines[0]), "queued");
    }

    EXPECT_EQ(daemon.drainOnce(), static_cast<std::size_t>(kClients));
    const ServeStats stats = daemon.stats();
    EXPECT_EQ(stats.done, static_cast<std::size_t>(kClients));
    EXPECT_EQ(stats.coalesced,
              static_cast<std::size_t>(kClients - 1));
    EXPECT_EQ(stats.failed, 0u);

    // Exactly one execution: the work counters tick per BatchRunner
    // run, the request counters tick per request served.
    EXPECT_EQ(obs::counter("serve.sims_run").value(), 1u);
    EXPECT_EQ(obs::counter("serve.requests_done").value(),
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(obs::counter("serve.requests_coalesced").value(),
              static_cast<std::uint64_t>(kClients - 1));
    EXPECT_EQ(obs::histogram("serve.request_ms").count(),
              static_cast<std::uint64_t>(kClients));

    // Byte-identical fan-out, and identical to a direct run. The
    // clients race, so any one of them may have arrived first and
    // become the primary; the other three must name it.
    api::BatchConfig reference =
        batchConfigFromJson(parseJson(kSpec));
    const api::BatchResult direct =
        api::BatchRunner(reference).run();
    std::ostringstream csv, json;
    direct.sweeps[0].writeCsv(csv);
    direct.sweeps[0].writeJson(json);
    std::string primary;
    std::vector<std::string> followers;
    for (int i = 0; i < kClients; ++i) {
        const std::string name = "run" + std::to_string(i);
        const fs::path dir = fs::path(daemon.resultsDir()) / name;
        EXPECT_EQ(readFile(dir / "sweep_0.csv"), csv.str()) << dir;
        EXPECT_EQ(readFile(dir / "sweep_0.json"), json.str())
            << dir;
        const JsonValue status =
            parseJsonFile((dir / "status.json").string());
        EXPECT_EQ(status.at("state").asString(), "done");
        // Followers record whose execution served them.
        if (status.find("coalesced_with")) {
            followers.push_back(
                status.at("coalesced_with").asString());
        } else {
            EXPECT_TRUE(primary.empty())
                << "two primaries: " << primary << " and " << name;
            primary = name;
        }
    }
    ASSERT_FALSE(primary.empty());
    EXPECT_EQ(followers.size(),
              static_cast<std::size_t>(kClients - 1));
    for (const auto &served_by : followers)
        EXPECT_EQ(served_by, primary);
}

TEST(SocketServe, MixedIngressCoalescesSpoolOntoSocket)
{
    const std::string spool = freshDir("mixed");
    Daemon daemon(socketConfig(spool));

    // Socket submission lands first (the executor is idle), then an
    // identical spec arrives through the spool.
    const ClientResult ack =
        socketSubmit(daemon.socketPath(), "sock", kSpec, 0,
                     /*wait=*/false, 30.0);
    ASSERT_TRUE(ack.ok) << ack.error;
    writeFile(fs::path(spool) / "file.json", kSpec);

    EXPECT_EQ(daemon.drainOnce(), 2u);
    const ServeStats stats = daemon.stats();
    EXPECT_EQ(stats.done, 2u);
    EXPECT_EQ(stats.coalesced, 1u);

    // The coalesced spool spec was still consumed normally.
    EXPECT_TRUE(fs::exists(fs::path(spool) / "done" /
                           "file.json"));
    EXPECT_EQ(readFile(fs::path(daemon.resultsDir()) / "sock" /
                       "sweep_0.csv"),
              readFile(fs::path(daemon.resultsDir()) / "file" /
                       "sweep_0.csv"));
    const JsonValue status = parseJsonFile(
        (fs::path(daemon.resultsDir()) / "file" / "status.json")
            .string());
    EXPECT_EQ(status.at("state").asString(), "done");
    EXPECT_EQ(status.at("coalesced_with").asString(), "sock");
}

// --------------------------------------------- socket protocol

TEST(SocketServe, SubmitWaitRoundTrip)
{
    const std::string spool = freshDir("roundtrip");
    ServeConfig cfg = socketConfig(spool);
    cfg.once = false;
    cfg.poll_ms = 20;
    std::atomic<bool> stop{false};
    cfg.stop = [&] { return stop.load(); };
    Daemon daemon(cfg);
    std::thread server([&] { daemon.run(); });

    const ClientResult result =
        socketSubmit(daemon.socketPath(), "rt", kSpec, 0,
                     /*wait=*/true, 60.0);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(result.lines.size(), 2u);
    EXPECT_EQ(stateOf(result.lines[0]), "queued");
    EXPECT_EQ(stateOf(result.lines[1]), "done");

    // wait on a finished request resolves immediately (board or
    // status file, either source is terminal).
    const ClientResult again =
        socketWait(daemon.socketPath(), "rt", 10.0);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(stateOf(again.lines[0]), "done");

    stop.store(true);
    server.join();
    EXPECT_TRUE(fs::exists(fs::path(daemon.resultsDir()) / "rt" /
                           "sweep_0.csv"));
}

TEST(SocketServe, AppliesBackpressureWhenTheQueueIsFull)
{
    const std::string spool = freshDir("backpressure");
    ServeConfig cfg = socketConfig(spool);
    cfg.max_queue = 1;
    Daemon daemon(cfg); // not draining: the queue stays full

    const ClientResult first = socketSubmit(
        daemon.socketPath(), "one", kSpec, 0, false, 30.0);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(stateOf(first.lines[0]), "queued");

    // A *different* request must bounce; an identical one rides
    // along for free.
    const ClientResult second = socketSubmit(
        daemon.socketPath(), "two", kOtherSpec, 0, false, 30.0);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(stateOf(second.lines[0]), "rejected");

    const ClientResult third = socketSubmit(
        daemon.socketPath(), "three", kSpec, 0, false, 30.0);
    ASSERT_TRUE(third.ok) << third.error;
    EXPECT_EQ(stateOf(third.lines[0]), "queued");

    EXPECT_EQ(daemon.drainOnce(), 2u);
    EXPECT_EQ(daemon.stats().rejected, 1u);
    EXPECT_EQ(daemon.stats().done, 2u);
}

TEST(SocketServe, RejectsMalformedSpecsAndBadNames)
{
    const std::string spool = freshDir("reject");
    Daemon daemon(socketConfig(spool));

    const ClientResult bad_spec = socketSubmit(
        daemon.socketPath(), "bad", "not json", 0, false, 30.0);
    ASSERT_TRUE(bad_spec.ok) << bad_spec.error;
    EXPECT_EQ(stateOf(bad_spec.lines[0]), "rejected");

    const ClientResult bad_name = socketSubmit(
        daemon.socketPath(), "../escape", kSpec, 0, false, 30.0);
    ASSERT_TRUE(bad_name.ok) << bad_name.error;
    EXPECT_EQ(stateOf(bad_name.lines[0]), "rejected");

    // A name collision with a live request is a rejection, not a
    // clobber.
    ASSERT_EQ(stateOf(socketSubmit(daemon.socketPath(), "dup",
                                   kSpec, 0, false, 30.0)
                          .lines[0]),
              "queued");
    EXPECT_EQ(stateOf(socketSubmit(daemon.socketPath(), "dup",
                                   kOtherSpec, 0, false, 30.0)
                          .lines[0]),
              "rejected");
    EXPECT_EQ(daemon.drainOnce(), 1u);
}

TEST(SocketServe, WaitTimesOutOnUnknownRequests)
{
    const std::string spool = freshDir("timeout");
    Daemon daemon(socketConfig(spool));

    const ClientResult result =
        socketWait(daemon.socketPath(), "never", 0.2);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(stateOf(result.lines[0]), "error");
    EXPECT_NE(parseJson(result.lines[0])
                  .at("error")
                  .asString()
                  .find("timed out"),
              std::string::npos);
}

TEST(SocketServe, WaitFindsResultsWrittenByAnEarlierDaemon)
{
    // waitFor's disk fallback: a request that finished before this
    // daemon existed (fresh completion board) must still resolve
    // from its on-disk status.json, not time out.
    const std::string spool = freshDir("wait_disk");
    writeFile(fs::path(spool) / "run0.json", kSpec);
    {
        Daemon first(socketConfig(spool));
        first.drainOnce();
    }
    Daemon second(socketConfig(spool));
    EXPECT_EQ(stateOf(second.waitFor("run0", 2.0)), "done");
}

TEST(SocketServe, PriorityOrdersExecutionAcrossTheSocket)
{
    obs::MetricsRegistry::instance().reset();
    const std::string spool = freshDir("priority");
    Daemon daemon(socketConfig(spool));

    // Admitted low before high while the executor is idle; the
    // high-priority request must still execute first.
    ASSERT_TRUE(socketSubmit(daemon.socketPath(), "low", kSpec, 0,
                             false, 30.0)
                    .ok);
    ASSERT_TRUE(socketSubmit(daemon.socketPath(), "high",
                             kOtherSpec, 7, false, 30.0)
                    .ok);
    EXPECT_EQ(daemon.drainOnce(), 2u);

    const auto finishedAt = [&](const char *name) {
        return parseJsonFile((fs::path(daemon.resultsDir()) /
                              name / "status.json")
                                 .string())
            .at("finished_at")
            .asString();
    };
    EXPECT_LE(finishedAt("high"), finishedAt("low"));
}

TEST(SocketServe, RefusesASocketServedByAnotherDaemon)
{
    const std::string spool = freshDir("busy");
    Daemon daemon(socketConfig(spool));
    EXPECT_THROW(Daemon(socketConfig(spool)),
                 std::invalid_argument);

    // A *stale* socket file (bound once by a dead process, nobody
    // listening) is reclaimed instead of wedging the daemon.
    const std::string other = freshDir("busy_stale");
    const ServeConfig cfg = socketConfig(other);
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        ASSERT_LT(cfg.socket_path.size(), sizeof addr.sun_path);
        std::memcpy(addr.sun_path, cfg.socket_path.c_str(),
                    cfg.socket_path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::bind(fd,
                         reinterpret_cast<const sockaddr *>(&addr),
                         sizeof addr),
                  0);
        ::close(fd); // the socket file outlives the process
    }
    ASSERT_TRUE(fs::exists(cfg.socket_path));
    Daemon reclaimed(cfg);
    const ClientResult ping =
        socketWait(reclaimed.socketPath(), "nothing", 0.1);
    ASSERT_TRUE(ping.ok) << ping.error;
    EXPECT_EQ(stateOf(ping.lines[0]), "error");
}

} // namespace
