/**
 * @file
 * Unit tests for the 500-gate generic functional unit circuit
 * (Section 2.1, Figure 3).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/fu_circuit.hh"

namespace
{

using lsim::Cycle;
using lsim::circuit::FunctionalUnitCircuit;
using lsim::circuit::Technology;

TEST(FuCircuit, PaperGeometry)
{
    FunctionalUnitCircuit fu{Technology{}};
    EXPECT_EQ(fu.numGates(), 500u);
    // 500 gates x 22.2 fJ.
    EXPECT_NEAR(fu.dynamicEnergy(), 11100.0, 1.0);
    EXPECT_NEAR(fu.leakHi(), 700.0, 1.0);       // 500 x 1.4
    EXPECT_NEAR(fu.leakLo(), 0.355, 0.01);      // 500 x 7.1e-4
}

TEST(FuCircuit, BreakevenSeventeenCyclesAtLowActivity)
{
    // "If the circuit is not idle for at least 17 cycles then more
    // energy is used than is saved" (alpha = 0.1).
    FunctionalUnitCircuit fu{Technology{}};
    EXPECT_EQ(fu.breakevenInterval(0.1), 17u);
}

TEST(FuCircuit, BreakevenInsensitiveToActivity)
{
    // "the time to break even is relatively insensitive across this
    // range of activity factor."
    FunctionalUnitCircuit fu{Technology{}};
    const Cycle be_lo = fu.breakevenInterval(0.1);
    const Cycle be_mid = fu.breakevenInterval(0.5);
    const Cycle be_hi = fu.breakevenInterval(0.9);
    EXPECT_NEAR(static_cast<double>(be_mid),
                static_cast<double>(be_lo), 4.0);
    EXPECT_NEAR(static_cast<double>(be_hi),
                static_cast<double>(be_lo), 6.0);
}

TEST(FuCircuit, UncontrolledIdleLinesPassThroughOrigin)
{
    FunctionalUnitCircuit fu{Technology{}};
    EXPECT_DOUBLE_EQ(fu.uncontrolledIdleEnergy(0, 0.5), 0.0);
    const double one = fu.uncontrolledIdleEnergy(1, 0.5);
    EXPECT_NEAR(fu.uncontrolledIdleEnergy(10, 0.5), 10.0 * one, 1e-9);
}

TEST(FuCircuit, SleepCurveRisesThenPlateaus)
{
    // Figure 3: sleep curves jump at the transition then stay nearly
    // flat; uncontrolled idle grows linearly and crosses them.
    FunctionalUnitCircuit fu{Technology{}};
    const double jump = fu.sleepIdleEnergy(1, 0.1);
    const double later = fu.sleepIdleEnergy(25, 0.1);
    EXPECT_GT(jump, 10000.0); // ~10.3 pJ in fJ
    EXPECT_LT(later - jump, 0.01 * jump);
}

TEST(FuCircuit, TransitionCostDecreasesWithActivity)
{
    // More nodes already discharged -> cheaper transition.
    FunctionalUnitCircuit fu{Technology{}};
    EXPECT_GT(fu.sleepTransitionEnergy(0.1),
              fu.sleepTransitionEnergy(0.5));
    EXPECT_GT(fu.sleepTransitionEnergy(0.5),
              fu.sleepTransitionEnergy(0.9));
}

TEST(FuCircuit, UncontrolledLeakDecreasesWithActivity)
{
    // Both sides shrink roughly with (1 - alpha) — the reason the
    // breakeven is insensitive to alpha.
    FunctionalUnitCircuit fu{Technology{}};
    EXPECT_GT(fu.leakAfterEval(0.1), fu.leakAfterEval(0.5));
    EXPECT_GT(fu.leakAfterEval(0.5), fu.leakAfterEval(0.9));
}

TEST(FuCircuit, SleepBeatsUncontrolledBeyondBreakeven)
{
    FunctionalUnitCircuit fu{Technology{}};
    for (double alpha : {0.1, 0.5, 0.9}) {
        const Cycle be = fu.breakevenInterval(alpha);
        EXPECT_GT(fu.sleepIdleEnergy(be - 1, alpha),
                  fu.uncontrolledIdleEnergy(be - 1, alpha));
        EXPECT_LE(fu.sleepIdleEnergy(be, alpha),
                  fu.uncontrolledIdleEnergy(be, alpha));
    }
}

TEST(FuCircuit, CustomShape)
{
    FunctionalUnitCircuit::Shape shape;
    shape.rows = 10;
    shape.cascade_depth = 2;
    shape.sleep_driver_fj = 0.0;
    FunctionalUnitCircuit fu(Technology{}, shape);
    EXPECT_EQ(fu.numGates(), 20u);
}

TEST(FuCircuitDeath, DegenerateShape)
{
    FunctionalUnitCircuit::Shape shape;
    shape.rows = 0;
    EXPECT_THROW(FunctionalUnitCircuit(Technology{}, shape),
                 std::invalid_argument);
}

} // namespace
