/**
 * @file
 * Unit tests for the micro-op classification helpers.
 */

#include <gtest/gtest.h>

#include "trace/op.hh"

namespace
{

using lsim::trace::MicroOp;
using lsim::trace::OpClass;
using lsim::trace::execLatency;
using lsim::trace::isControlClass;
using lsim::trace::isFpClass;
using lsim::trace::isIntClass;
using lsim::trace::isMemClass;

TEST(OpClass, IntegerClassesIncludeMemAndControl)
{
    // SimpleScalar convention: loads/stores generate addresses on
    // the integer ALUs; branches execute there too.
    for (auto cls : {OpClass::IntAlu, OpClass::IntMult, OpClass::Load,
                     OpClass::Store, OpClass::Branch, OpClass::Call,
                     OpClass::Return})
        EXPECT_TRUE(isIntClass(cls)) << to_string(cls);
    EXPECT_FALSE(isIntClass(OpClass::FpAlu));
    EXPECT_FALSE(isIntClass(OpClass::FpMult));
}

TEST(OpClass, PartitionsAreConsistent)
{
    for (unsigned i = 0; i < lsim::trace::kNumOpClasses; ++i) {
        const auto cls = static_cast<OpClass>(i);
        // FP and integer classes partition the space.
        EXPECT_NE(isIntClass(cls), isFpClass(cls)) << to_string(cls);
        // Memory and control classes are integer classes.
        if (isMemClass(cls) || isControlClass(cls)) {
            EXPECT_TRUE(isIntClass(cls)) << to_string(cls);
        }
        // Nothing is both memory and control.
        EXPECT_FALSE(isMemClass(cls) && isControlClass(cls));
    }
}

TEST(OpClass, Latencies)
{
    EXPECT_EQ(execLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(execLatency(OpClass::IntMult), 7u);
    EXPECT_EQ(execLatency(OpClass::Load), 1u); // agen only
    EXPECT_EQ(execLatency(OpClass::Store), 1u);
    EXPECT_EQ(execLatency(OpClass::Branch), 1u);
    EXPECT_EQ(execLatency(OpClass::FpAlu), 4u);
}

TEST(OpClass, Names)
{
    EXPECT_EQ(to_string(OpClass::IntAlu), "IntAlu");
    EXPECT_EQ(to_string(OpClass::Load), "Load");
    EXPECT_EQ(to_string(OpClass::Return), "Return");
    EXPECT_EQ(to_string(OpClass::FpMult), "FpMult");
}

TEST(MicroOp, ConvenienceAccessors)
{
    MicroOp op;
    op.cls = OpClass::Load;
    EXPECT_TRUE(op.isInt());
    EXPECT_TRUE(op.isMem());
    EXPECT_TRUE(op.isLoad());
    EXPECT_FALSE(op.isStore());
    EXPECT_FALSE(op.isControl());
    EXPECT_FALSE(op.isFp());
    op.cls = OpClass::Call;
    EXPECT_TRUE(op.isControl());
    op.cls = OpClass::FpAlu;
    EXPECT_TRUE(op.isFp());
    EXPECT_FALSE(op.isInt());
}

} // namespace
