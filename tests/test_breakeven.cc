/**
 * @file
 * Unit and property tests for the breakeven interval (equations 4-5,
 * Figure 4a).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/breakeven.hh"

namespace
{

using lsim::energy::EnergyModel;
using lsim::energy::ModelParams;
using lsim::energy::breakevenInterval;
using lsim::energy::breakevenIntervalNumeric;
using lsim::energy::sleepPaysOff;

ModelParams
params(double p, double alpha, double k = 0.001, double s = 0.01)
{
    ModelParams mp;
    mp.p = p;
    mp.alpha = alpha;
    mp.k = k;
    mp.s = s;
    return mp;
}

TEST(Breakeven, PaperOperatingPoints)
{
    // Figure 4a: at p = 0.05 the breakeven is ~20 cycles and nearly
    // independent of alpha; at p = 0.5 it is ~2 cycles.
    EXPECT_NEAR(breakevenInterval(params(0.05, 0.1)), 20.2, 0.3);
    EXPECT_NEAR(breakevenInterval(params(0.05, 0.5)), 20.4, 0.3);
    EXPECT_NEAR(breakevenInterval(params(0.05, 0.9)), 22.0, 0.3);
    EXPECT_NEAR(breakevenInterval(params(0.50, 0.5)), 2.04, 0.05);
}

TEST(Breakeven, ScalesInverselyWithLeakage)
{
    // "as leakage becomes a larger component of the energy, the
    // break even interval decreases, approximately as 1/p."
    const double be1 = breakevenInterval(params(0.1, 0.5));
    const double be2 = breakevenInterval(params(0.2, 0.5));
    const double be4 = breakevenInterval(params(0.4, 0.5));
    EXPECT_NEAR(be1 / be2, 2.0, 1e-9);
    EXPECT_NEAR(be1 / be4, 4.0, 1e-9);
}

TEST(Breakeven, InfiniteWhenSleepCannotWin)
{
    EXPECT_TRUE(std::isinf(breakevenInterval(params(0.0, 0.5))));
    // k = 1: sleeping leaks as much as idling.
    EXPECT_TRUE(std::isinf(
        breakevenInterval(params(0.5, 0.5, 1.0))));
}

TEST(Breakeven, SleepPaysOffPredicate)
{
    const ModelParams mp = params(0.05, 0.5);
    const double be = breakevenInterval(mp);
    EXPECT_FALSE(sleepPaysOff(mp, be - 1.0));
    EXPECT_TRUE(sleepPaysOff(mp, be));
    EXPECT_TRUE(sleepPaysOff(mp, be + 100.0));
}

/**
 * The closed form (eq. 5) must agree exactly with the direct
 * numerical solve of eq. 4 built from the model's per-cycle terms —
 * this cross-validates the algebra the paper omits.
 */
class BreakevenCrossCheckTest
    : public ::testing::TestWithParam<
          std::tuple<double, double, double, double>>
{
};

TEST_P(BreakevenCrossCheckTest, ClosedFormEqualsNumericSolve)
{
    auto [p, alpha, k, s] = GetParam();
    const ModelParams mp = params(p, alpha, k, s);
    const double closed = breakevenInterval(mp);
    const double numeric = breakevenIntervalNumeric(EnergyModel(mp));
    EXPECT_NEAR(closed, numeric, 1e-9 * closed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BreakevenCrossCheckTest,
    ::testing::Combine(
        ::testing::Values(0.01, 0.05, 0.2, 0.5, 1.0),  // p
        ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9),  // alpha
        ::testing::Values(0.0005, 0.001, 0.01),        // k
        ::testing::Values(0.001, 0.01, 0.05)));        // s

} // namespace
