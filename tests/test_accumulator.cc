/**
 * @file
 * Unit tests for the run-length trace and PolicyEvaluator harness.
 */

#include <gtest/gtest.h>

#include "energy/policy_model.hh"
#include "sleep/accumulator.hh"

namespace
{

using lsim::Cycle;
using lsim::energy::ModelParams;
using lsim::energy::Policy;
using lsim::energy::PolicyModel;
using lsim::energy::WorkloadPoint;
using lsim::sleep::PolicyEvaluator;
using lsim::sleep::RunLengthTrace;

ModelParams
params(double p = 0.05)
{
    ModelParams mp;
    mp.p = p;
    mp.k = 0.001;
    mp.s = 0.01;
    mp.alpha = 0.5;
    return mp;
}

TEST(RunLengthTrace, AppendMergesSameState)
{
    RunLengthTrace t;
    t.append(true, 3);
    t.append(true, 2);
    t.append(false, 1);
    t.append(false, 0); // ignored
    EXPECT_EQ(t.runs.size(), 2u);
    EXPECT_EQ(t.runs[0].len, 5u);
    EXPECT_EQ(t.totalCycles(), 6u);
    EXPECT_EQ(t.busyCycles(), 5u);
}

TEST(RunLengthTrace, FromBits)
{
    const auto t = RunLengthTrace::fromBits(
        {true, true, false, false, false, true});
    ASSERT_EQ(t.runs.size(), 3u);
    EXPECT_TRUE(t.runs[0].busy);
    EXPECT_EQ(t.runs[0].len, 2u);
    EXPECT_FALSE(t.runs[1].busy);
    EXPECT_EQ(t.runs[1].len, 3u);
    EXPECT_EQ(t.totalCycles(), 6u);
}

TEST(PolicyEvaluator, ResultsForPeriodicTraceMatchClosedForm)
{
    // A perfectly periodic workload (5 active, 10 idle) must
    // reproduce the closed-form PolicyModel with usage 1/3 and
    // L_idle = 10 for all run-local policies.
    const ModelParams mp = params(0.5);
    auto eval = PolicyEvaluator::paperPolicies(mp);
    const int periods = 1000;
    for (int i = 0; i < periods; ++i) {
        eval.feedRun(true, 5);
        eval.feedRun(false, 10);
    }
    WorkloadPoint w;
    w.usage = 5.0 / 15.0;
    w.idle_interval = 10;
    w.total_cycles = periods * 15.0;
    PolicyModel closed(mp, w);

    EXPECT_NEAR(eval.resultFor("MaxSleep").energy,
                closed.energy(Policy::MaxSleep), 1e-6);
    EXPECT_NEAR(eval.resultFor("AlwaysActive").energy,
                closed.energy(Policy::AlwaysActive), 1e-6);
    EXPECT_NEAR(eval.resultFor("NoOverhead").energy,
                closed.energy(Policy::NoOverhead), 1e-6);
    EXPECT_NEAR(eval.baseEnergy(),
                closed.baseEnergy(), 1e-6);
}

TEST(PolicyEvaluator, FeedTraceEqualsFeedRuns)
{
    const ModelParams mp = params();
    auto a = PolicyEvaluator::paperPolicies(mp);
    auto b = PolicyEvaluator::paperPolicies(mp);
    RunLengthTrace t;
    t.append(true, 4);
    t.append(false, 6);
    t.append(true, 1);
    t.append(false, 30);
    a.feedTrace(t);
    for (const auto &run : t.runs)
        b.feedRun(run.busy, run.len);
    const auto ra = a.results();
    const auto rb = b.results();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_DOUBLE_EQ(ra[i].energy, rb[i].energy);
}

TEST(PolicyEvaluator, BulkFeedRunsEqualsLoop)
{
    const ModelParams mp = params();
    auto bulk = PolicyEvaluator::paperPolicies(mp);
    auto loop = PolicyEvaluator::paperPolicies(mp);
    bulk.feedRun(true, 100);
    loop.feedRun(true, 100);
    bulk.feedRuns(12, 50);
    for (int i = 0; i < 50; ++i)
        loop.feedRun(false, 12);
    EXPECT_EQ(bulk.totalCycles(), loop.totalCycles());
    const auto rb = bulk.results();
    const auto rl = loop.results();
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_NEAR(rb[i].energy, rl[i].energy, 1e-9);
    EXPECT_EQ(bulk.idleStats().numIntervals(),
              loop.idleStats().numIntervals());
}

TEST(PolicyEvaluator, IdleStatsTrackFeed)
{
    auto eval = PolicyEvaluator::paperPolicies(params());
    eval.feedRun(true, 10);
    eval.feedRun(false, 5);
    eval.feedRun(true, 1);
    EXPECT_EQ(eval.totalCycles(), 16u);
    EXPECT_EQ(eval.idleStats().numIntervals(), 1u);
    EXPECT_DOUBLE_EQ(eval.idleStats().meanInterval(), 5.0);
}

TEST(PolicyEvaluator, LeakageFractionGrowsWithP)
{
    auto lo = PolicyEvaluator::paperPolicies(params(0.05));
    auto hi = PolicyEvaluator::paperPolicies(params(0.5));
    for (auto *e : {&lo, &hi}) {
        e->feedRun(true, 100);
        e->feedRuns(10, 20);
    }
    EXPECT_LT(lo.resultFor("AlwaysActive").leakage_fraction,
              hi.resultFor("AlwaysActive").leakage_fraction);
}

TEST(PolicyEvaluatorDeath, EmptyControllerSet)
{
    EXPECT_EXIT(PolicyEvaluator(params(), {}),
                ::testing::ExitedWithCode(1), "no controllers");
}

TEST(PolicyEvaluatorDeath, UnknownName)
{
    auto eval = PolicyEvaluator::paperPolicies(params());
    EXPECT_EXIT((void)eval.resultFor("Nonexistent"),
                ::testing::ExitedWithCode(1), "no controller named");
}

} // namespace
