/**
 * @file
 * Unit tests for custom-workload JSON ingestion and the hardened
 * WorkloadProfile validation behind it: every error must name the
 * offending field, and hostile values (NaN, infinities, sums over
 * 1) must be rejected rather than silently simulated.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "api/experiment.hh"
#include "trace/profile.hh"
#include "trace/profile_json.hh"

namespace
{

using lsim::trace::WorkloadProfile;
using lsim::trace::workloadProfileFromJsonText;

/** EXPECT that parsing @p text throws and the message mentions
 * @p needle (typically the offending field's name). */
void
expectRejects(const std::string &text, const std::string &needle)
{
    try {
        (void)workloadProfileFromJsonText(text);
        FAIL() << "accepted: " << text;
    } catch (const std::invalid_argument &err) {
        EXPECT_NE(std::string(err.what()).find(needle),
                  std::string::npos)
            << "error '" << err.what() << "' does not mention '"
            << needle << "'";
    }
}

TEST(ProfileJson, ParsesACompleteProfile)
{
    const auto p = workloadProfileFromJsonText(R"({
        "name": "webserver", "suite": "custom",
        "frac_load": 0.30, "frac_store": 0.12,
        "frac_branch": 0.18, "frac_mult": 0.01, "frac_fp": 0.02,
        "dep_density": 0.45, "dep_distance_p": 0.2,
        "num_blocks": 4000, "branch_bias_strong": 0.9,
        "noisy_taken_prob": 0.4, "call_fraction": 0.05,
        "working_set": 8388608, "local_frac": 0.5,
        "stream_frac": 0.04, "irregular_frac": 0.08,
        "strong_taken_bias": 0.96, "mean_loop_iters": 30,
        "paper_fus": 3, "window": "custom"})");
    EXPECT_EQ(p.name, "webserver");
    EXPECT_EQ(p.suite, "custom");
    EXPECT_DOUBLE_EQ(p.frac_load, 0.30);
    EXPECT_DOUBLE_EQ(p.dep_distance_p, 0.2);
    EXPECT_EQ(p.num_blocks, 4000u);
    EXPECT_EQ(p.working_set, 8388608u);
    EXPECT_EQ(p.paper_fus, 3u);
    EXPECT_TRUE(p.validationError().empty());
}

TEST(ProfileJson, DefaultsApplyToOmittedFields)
{
    const auto p =
        workloadProfileFromJsonText(R"({"name": "minimal"})");
    const WorkloadProfile defaults;
    EXPECT_DOUBLE_EQ(p.frac_load, defaults.frac_load);
    EXPECT_EQ(p.num_blocks, defaults.num_blocks);
    EXPECT_EQ(p.paper_fus, defaults.paper_fus);
}

TEST(ProfileJson, RequiresAName)
{
    expectRejects(R"({"frac_load": 0.3})", "name");
    expectRejects(R"({"name": ""})", "name");
}

TEST(ProfileJson, RejectsUnknownFieldsByName)
{
    expectRejects(R"({"name": "x", "frac_laod": 0.3})",
                  "frac_laod");
    expectRejects(R"({"name": "x", "threads": 4})", "threads");
}

TEST(ProfileJson, RejectsWrongTypesNamingTheField)
{
    expectRejects(R"({"name": "x", "frac_load": "lots"})",
                  "frac_load");
    expectRejects(R"({"name": "x", "num_blocks": 3.5})",
                  "num_blocks");
    expectRejects(R"({"name": "x", "num_blocks": -5})",
                  "num_blocks");
    expectRejects(R"({"name": 42})", "name");
}

TEST(ProfileJson, RejectsOutOfRangeValuesNamingTheField)
{
    expectRejects(R"({"name": "x", "frac_load": 1.5})",
                  "frac_load");
    expectRejects(R"({"name": "x", "dep_density": -0.1})",
                  "dep_density");
    expectRejects(R"({"name": "x", "dep_distance_p": 0})",
                  "dep_distance_p");
    expectRejects(R"({"name": "x", "strong_taken_bias": 0.4})",
                  "strong_taken_bias");
    expectRejects(R"({"name": "x", "working_set": 16})",
                  "working_set");
    expectRejects(R"({"name": "x", "num_blocks": 2})",
                  "num_blocks");
    expectRejects(R"({"name": "x", "paper_fus": 9})", "paper_fus");
}

TEST(ProfileJson, RejectsFractionSumsOverOne)
{
    expectRejects(
        R"({"name": "x", "frac_load": 0.6, "frac_store": 0.5})",
        "sums to");
    expectRejects(
        R"({"name": "x", "local_frac": 0.6, "stream_frac": 0.3,
            "irregular_frac": 0.2})",
        "memory site fractions");
}

TEST(ProfileJson, ParseErrorsCarryAPosition)
{
    try {
        (void)workloadProfileFromJsonText("{\"name\": \n!}");
        FAIL() << "accepted malformed JSON";
    } catch (const std::invalid_argument &err) {
        EXPECT_NE(std::string(err.what()).find("2:"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Validation, NonFiniteValuesAreRejected)
{
    WorkloadProfile p;
    p.name = "hostile";
    p.frac_load = std::nan("");
    EXPECT_NE(p.validationError().find("frac_load"),
              std::string::npos);

    p = WorkloadProfile{};
    p.mean_loop_iters = std::numeric_limits<double>::infinity();
    EXPECT_NE(p.validationError().find("mean_loop_iters"),
              std::string::npos);
}

TEST(Validation, Table3ProfilesAreAllValid)
{
    for (const auto &p : lsim::trace::table3Profiles())
        EXPECT_EQ(p.validationError(), "") << p.name;
}

TEST(ProfileJson, LoadedProfileRunsThroughTheFacade)
{
    const auto profile = workloadProfileFromJsonText(R"({
        "name": "tiny", "num_blocks": 64, "working_set": 65536,
        "mean_loop_iters": 10})");
    const auto result = lsim::api::Experiment::builder()
                            .profile(profile)
                            .insts(5000)
                            .technology(0.1)
                            .run();
    EXPECT_EQ(result.sim.name, "tiny");
    EXPECT_GT(result.sim.sim.cycles, 0u);
    ASSERT_EQ(result.policies.size(), 4u);
}

} // namespace
