/**
 * @file
 * Unit tests for the multi-point replay engine: scalar-path
 * equivalence across every registry policy, chunk-sharding
 * tolerances, thread-count determinism, and the empty/degenerate
 * cells that must not divide by zero.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "api/experiment.hh"
#include "api/parallel.hh"
#include "api/sweep.hh"
#include "harness/experiment.hh"
#include "replay/engine.hh"
#include "sleep/policy_registry.hh"

namespace
{

using namespace lsim;
using lsim::energy::ModelParams;

/** A hand-built interval multiset exercising short runs, the log2
 * bucket spread, and the >= 8192 clamp region. */
harness::IdleProfile
syntheticProfile()
{
    harness::IdleProfile idle;
    idle.num_fus = 2;
    idle.addRun(true, 12'345);
    const std::pair<Cycle, std::uint64_t> runs[] = {
        {1, 400}, {2, 210},  {3, 77},    {5, 31},    {9, 19},
        {17, 11}, {40, 7},   {100, 5},   {260, 3},   {900, 2},
        {3000, 2}, {8192, 1}, {20'000, 1}, {65'536, 1}};
    for (const auto &[len, count] : runs)
        for (std::uint64_t i = 0; i < count; ++i)
            idle.addRun(false, len);
    return idle;
}

/** Every registered policy key plus explicit-argument variants. */
std::vector<std::string>
allPolicySpecs()
{
    auto specs = sleep::PolicyRegistry::instance().keys();
    specs.push_back("gradual:7");
    specs.push_back("timeout:64");
    specs.push_back("adaptive:0.5");
    specs.push_back("weighted-gradual:0.5,0.3,0.2");
    return specs;
}

std::vector<ModelParams>
somePoints()
{
    auto points = api::pSweep(0.05, 1.0, 6);
    points.push_back(api::analysisPoint(0.3, 0.25));
    points.push_back(api::analysisPoint(0.7, 0.9));
    return points;
}

void
expectBitExact(const std::vector<sleep::PolicyResult> &multi,
               const std::vector<sleep::PolicyResult> &scalar)
{
    ASSERT_EQ(multi.size(), scalar.size());
    for (std::size_t i = 0; i < multi.size(); ++i) {
        EXPECT_EQ(multi[i].name, scalar[i].name);
        EXPECT_EQ(multi[i].energy, scalar[i].energy);
        EXPECT_EQ(multi[i].relative_to_base,
                  scalar[i].relative_to_base);
        EXPECT_EQ(multi[i].leakage_fraction,
                  scalar[i].leakage_fraction);
        EXPECT_EQ(multi[i].counts.active, scalar[i].counts.active);
        EXPECT_EQ(multi[i].counts.unctrl_idle,
                  scalar[i].counts.unctrl_idle);
        EXPECT_EQ(multi[i].counts.sleep, scalar[i].counts.sleep);
        EXPECT_EQ(multi[i].counts.transitions,
                  scalar[i].counts.transitions);
    }
}

/** Reduction order may differ (sharded merges): 1e-12 relative. */
void
expectNear(const std::vector<sleep::PolicyResult> &multi,
           const std::vector<sleep::PolicyResult> &scalar)
{
    ASSERT_EQ(multi.size(), scalar.size());
    const auto near = [](double a, double b) {
        const double scale =
            std::max({1.0, std::abs(a), std::abs(b)});
        EXPECT_LE(std::abs(a - b), 1e-12 * scale);
    };
    for (std::size_t i = 0; i < multi.size(); ++i) {
        EXPECT_EQ(multi[i].name, scalar[i].name);
        near(multi[i].energy, scalar[i].energy);
        near(multi[i].relative_to_base, scalar[i].relative_to_base);
        near(multi[i].leakage_fraction, scalar[i].leakage_fraction);
        near(multi[i].counts.unctrl_idle,
             scalar[i].counts.unctrl_idle);
        near(multi[i].counts.sleep, scalar[i].counts.sleep);
        near(multi[i].counts.transitions,
             scalar[i].counts.transitions);
    }
}

TEST(IntervalSet, FlattensSortedAndDropsZeroes)
{
    harness::IdleProfile idle;
    idle.active_cycles = 500;
    idle.intervals[7] = 3;
    idle.intervals[2] = 5;
    idle.intervals[0] = 9;  // length 0: dropped like feedRuns does
    idle.intervals[100] = 0; // count 0: dropped
    const auto set = replay::IntervalSet::fromProfile(idle);
    ASSERT_EQ(set.numDistinct(), 2u);
    EXPECT_EQ(set.lengths[0], 2u);
    EXPECT_EQ(set.lengths[1], 7u);
    EXPECT_EQ(set.counts[0], 5u);
    EXPECT_EQ(set.counts[1], 3u);
    EXPECT_EQ(set.active_cycles, 500u);
    EXPECT_EQ(set.idle_cycles, 2u * 5u + 7u * 3u);
    EXPECT_EQ(set.totalCycles(), 500u + 31u);
}

TEST(MultiPointReplay, MatchesScalarPathBitExactly)
{
    // The engine contract: with a single chunk, every registry
    // policy at every point reproduces harness::evaluatePolicies to
    // the last bit.
    const auto idle = syntheticProfile();
    const auto points = somePoints();
    const auto specs = allPolicySpecs();

    const auto multi = replay::replayProfile(idle, points, specs);
    ASSERT_EQ(multi.size(), points.size());
    for (std::size_t t = 0; t < points.size(); ++t)
        expectBitExact(multi[t],
                       api::evaluateProfile(idle, points[t], specs));
}

TEST(MultiPointReplay, DedupesPointInvariantPolicies)
{
    const auto idle = syntheticProfile();
    const auto points = api::pSweep(0.05, 1.0, 20);
    replay::MultiPointReplay engine(
        replay::IntervalSet::fromProfile(idle), points, {});
    EXPECT_EQ(engine.numPoints(), 20u);
    EXPECT_EQ(engine.numPolicies(), 4u);
    // max-sleep/always-active/no-overhead collapse to one unit each;
    // gradual varies only through its (colliding) slice count.
    EXPECT_LT(engine.numUnits(), 20u);
    EXPECT_GE(engine.numUnits(), 3u + 1u);
}

TEST(MultiPointReplay, ShardedChunksStayWithinTolerance)
{
    const auto idle = syntheticProfile();
    const auto points = somePoints();
    const auto specs = allPolicySpecs();

    for (std::size_t chunk : {std::size_t{1}, std::size_t{3},
                              std::size_t{5}, std::size_t{64}}) {
        replay::ReplayOptions options;
        options.chunk_intervals = chunk;
        const auto multi =
            replay::replayProfile(idle, points, specs, options);
        for (std::size_t t = 0; t < points.size(); ++t)
            expectNear(multi[t],
                       api::evaluateProfile(idle, points[t], specs));
    }
}

TEST(MultiPointReplay, ShardedReplayIsThreadCountInvariant)
{
    const auto idle = syntheticProfile();
    const auto points = somePoints();
    const auto specs = allPolicySpecs();
    replay::ReplayOptions options;
    options.chunk_intervals = 2; // force many chunks

    std::vector<std::vector<std::vector<sleep::PolicyResult>>> runs;
    for (unsigned threads : {1u, 4u, 8u}) {
        replay::MultiPointReplay engine(
            replay::IntervalSet::fromProfile(idle), points, specs,
            options);
        EXPECT_GT(engine.numChunks(), 1u);
        api::detail::parallelFor(engine.numTasks(), threads,
                                 [&](std::size_t i) {
            engine.runTask(i);
        });
        runs.push_back(engine.finalize());
    }
    // Merges happen in chunk order, so scheduling cannot change a
    // single bit.
    for (std::size_t r = 1; r < runs.size(); ++r)
        for (std::size_t t = 0; t < points.size(); ++t)
            expectBitExact(runs[r][t], runs[0][t]);
}

TEST(MultiPointReplay, EmptyProfileDoesNotDivide)
{
    // A cell with no idle intervals at all (and no cycles): chunk
    // sharding and result normalization must not divide by zero.
    harness::IdleProfile empty;
    const auto points = api::pSweep(0.05, 0.5, 3);

    const auto multi = replay::replayProfile(empty, points, {});
    ASSERT_EQ(multi.size(), points.size());
    for (std::size_t t = 0; t < points.size(); ++t) {
        expectBitExact(multi[t],
                       api::evaluateProfile(empty, points[t]));
        for (const auto &r : multi[t]) {
            EXPECT_EQ(r.energy, 0.0);
            EXPECT_EQ(r.relative_to_base, 0.0);
            EXPECT_TRUE(std::isfinite(r.leakage_fraction));
        }
    }

    // Same with explicit (nonsense-sized) sharding requested.
    replay::ReplayOptions options;
    options.chunk_intervals = 1;
    const auto sharded =
        replay::replayProfile(empty, points, {}, options);
    for (std::size_t t = 0; t < points.size(); ++t)
        expectBitExact(sharded[t], multi[t]);
}

TEST(MultiPointReplay, ActiveOnlyProfile)
{
    harness::IdleProfile idle;
    idle.addRun(true, 4096);
    const auto points = api::pSweep(0.05, 0.5, 2);
    const auto multi = replay::replayProfile(idle, points, {});
    for (std::size_t t = 0; t < points.size(); ++t)
        expectBitExact(multi[t],
                       api::evaluateProfile(idle, points[t]));
}

TEST(MultiPointReplay, SinglePointMatchesScalar)
{
    // The --steps 1 shape: one technology point must behave exactly
    // like one scalar evaluation.
    const auto idle = syntheticProfile();
    const std::vector<ModelParams> one = {api::analysisPoint(0.05)};
    const auto multi = replay::replayProfile(idle, one);
    ASSERT_EQ(multi.size(), 1u);
    expectBitExact(multi[0], api::evaluateProfile(idle, one[0]));
}

TEST(SweepRunner, SingleStepSweepRuns)
{
    // Regression: `lsim sweep --steps 1` (single technology point)
    // through the engine-backed phase 2.
    api::SweepConfig cfg;
    cfg.workloads = {"gcc"};
    cfg.technologies = api::pSweep(0.05, 1.0, 1);
    cfg.insts = 20'000;
    const auto result = api::SweepRunner(cfg).run();
    ASSERT_EQ(result.cells.size(), 1u);
    ASSERT_EQ(result.cells[0].policies.size(), 4u);
    EXPECT_GT(result.cells[0].policies[0].energy, 0.0);
}

TEST(SweepRunner, ScalarFlagMatchesEngineByteForByte)
{
    api::SweepConfig cfg;
    cfg.workloads = {"gcc", "mst"};
    cfg.technologies = api::pSweep(0.05, 1.0, 5);
    cfg.insts = 20'000;
    cfg.policies = {"max-sleep", "gradual", "timeout", "adaptive",
                    "no-overhead"};

    api::SweepConfig scalar = cfg;
    scalar.scalar_replay = true;

    const auto engine_result = api::SweepRunner(cfg).run();
    const auto scalar_result = api::SweepRunner(scalar).run();

    std::ostringstream engine_csv, scalar_csv, engine_json,
        scalar_json;
    engine_result.writeCsv(engine_csv);
    scalar_result.writeCsv(scalar_csv);
    engine_result.writeJson(engine_json);
    scalar_result.writeJson(scalar_json);
    EXPECT_EQ(engine_csv.str(), scalar_csv.str());
    EXPECT_EQ(engine_json.str(), scalar_json.str());
}

TEST(SweepRunner, ChunkedSweepStaysWithinTolerance)
{
    api::SweepConfig cfg;
    cfg.workloads = {"gcc"};
    cfg.technologies = api::pSweep(0.05, 1.0, 4);
    cfg.insts = 20'000;

    api::SweepConfig chunked = cfg;
    chunked.chunk_intervals = 3;
    chunked.threads = 4;

    const auto ref = api::SweepRunner(cfg).run();
    const auto shard = api::SweepRunner(chunked).run();
    ASSERT_EQ(ref.cells.size(), shard.cells.size());
    for (std::size_t i = 0; i < ref.cells.size(); ++i)
        expectNear(shard.cells[i].policies, ref.cells[i].policies);
}

TEST(Session, MultiPointEvaluationMatchesSinglePoint)
{
    const auto session = api::Experiment::builder()
                             .workload("gcc")
                             .insts(20'000)
                             .policies({"max-sleep", "gradual",
                                        "oracle", "no-overhead"})
                             .session();
    const auto points = somePoints();
    const auto multi = session.policiesAt(points);
    ASSERT_EQ(multi.size(), points.size());
    for (std::size_t t = 0; t < points.size(); ++t)
        expectBitExact(multi[t], session.policiesAt(points[t]));
}

} // namespace
