/**
 * @file
 * Unit tests for the lsim::store subsystem and its integration with
 * SweepRunner / BatchRunner: bit-exact serialization round trips,
 * byte-identical warm-cache sweeps, rejection of corrupted or
 * version-mismatched entries, cross-request simulation dedup, and
 * imported idle profiles flowing through the facade.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "api/batch.hh"
#include "api/experiment.hh"
#include "api/sweep.hh"
#include "store/profile_store.hh"
#include "store/serialize.hh"
#include "trace/profile.hh"

namespace
{

namespace fs = std::filesystem;
using namespace lsim;
using namespace lsim::api;
using namespace lsim::store;

constexpr std::uint64_t kInsts = 20000;

/** Fresh per-test directory under gtest's temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
        ("lsim_store_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

harness::WorkloadSim
simulateSmall(const std::string &bench)
{
    return Experiment::builder()
        .workload(bench)
        .insts(kInsts)
        .session()
        .sim();
}

void
expectBitExact(const harness::WorkloadSim &a,
               const harness::WorkloadSim &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.num_fus, b.num_fus);

    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.committed, b.sim.committed);
    EXPECT_EQ(a.sim.ipc, b.sim.ipc);
    EXPECT_EQ(a.sim.bpred.lookups, b.sim.bpred.lookups);
    EXPECT_EQ(a.sim.bpred.cond_branches, b.sim.bpred.cond_branches);
    EXPECT_EQ(a.sim.bpred.dir_mispredicts,
              b.sim.bpred.dir_mispredicts);
    EXPECT_EQ(a.sim.bpred.target_mispredicts,
              b.sim.bpred.target_mispredicts);
    EXPECT_EQ(a.sim.bpred.btb_cold_misses,
              b.sim.bpred.btb_cold_misses);
    EXPECT_EQ(a.sim.bpred.ras_pushes, b.sim.bpred.ras_pushes);
    EXPECT_EQ(a.sim.bpred.ras_pops, b.sim.bpred.ras_pops);
    EXPECT_EQ(a.sim.l1i.accesses, b.sim.l1i.accesses);
    EXPECT_EQ(a.sim.l1i.misses, b.sim.l1i.misses);
    EXPECT_EQ(a.sim.l1i.writebacks, b.sim.l1i.writebacks);
    EXPECT_EQ(a.sim.l1d.accesses, b.sim.l1d.accesses);
    EXPECT_EQ(a.sim.l1d.misses, b.sim.l1d.misses);
    EXPECT_EQ(a.sim.l2.accesses, b.sim.l2.accesses);
    EXPECT_EQ(a.sim.l2.misses, b.sim.l2.misses);
    EXPECT_EQ(a.sim.itlb.accesses, b.sim.itlb.accesses);
    EXPECT_EQ(a.sim.itlb.misses, b.sim.itlb.misses);
    EXPECT_EQ(a.sim.dtlb.accesses, b.sim.dtlb.accesses);
    EXPECT_EQ(a.sim.dtlb.misses, b.sim.dtlb.misses);
    EXPECT_EQ(a.sim.fu_utilization, b.sim.fu_utilization);
    EXPECT_EQ(a.sim.mean_fu_idle_fraction,
              b.sim.mean_fu_idle_fraction);

    // The sufficient statistic must survive exactly.
    EXPECT_EQ(a.idle.intervals, b.idle.intervals);
    EXPECT_EQ(a.idle.active_cycles, b.idle.active_cycles);
    EXPECT_EQ(a.idle.idle_cycles, b.idle.idle_cycles);
    EXPECT_EQ(a.idle.num_fus, b.idle.num_fus);

    ASSERT_EQ(a.idle_hist.numBuckets(), b.idle_hist.numBuckets());
    EXPECT_EQ(a.idle_hist.clampValue(), b.idle_hist.clampValue());
    EXPECT_EQ(a.idle_hist.totalCount(), b.idle_hist.totalCount());
    for (std::size_t i = 0; i < a.idle_hist.numBuckets(); ++i)
        EXPECT_EQ(a.idle_hist.bucketWeight(i),
                  b.idle_hist.bucketWeight(i));
}

TEST(Serialize, WorkloadSimRoundTripIsBitExact)
{
    const auto original = simulateSmall("gcc");

    std::ostringstream out;
    BinaryWriter w(out);
    writeWorkloadSim(w, original);
    const std::string bytes = out.str();

    std::istringstream in(bytes);
    BinaryReader r(in, bytes.size());
    const auto restored = readWorkloadSim(r);
    EXPECT_TRUE(r.exhausted());
    expectBitExact(original, restored);
}

TEST(Serialize, TruncatedPayloadThrows)
{
    const auto original = simulateSmall("mst");
    std::ostringstream out;
    BinaryWriter w(out);
    writeWorkloadSim(w, original);
    const std::string bytes = out.str();

    for (std::size_t cut : {std::size_t{0}, std::size_t{5},
                            bytes.size() / 2, bytes.size() - 1}) {
        std::istringstream in(bytes.substr(0, cut));
        BinaryReader r(in, cut);
        EXPECT_THROW((void)readWorkloadSim(r), StoreError)
            << "at cut " << cut;
    }
}

TEST(SimKey, FingerprintSeparatesEveryKnob)
{
    const auto base = [] {
        SimKey key;
        key.profile = trace::profileByName("gcc");
        key.fus = 2;
        key.insts = kInsts;
        key.seed = 1;
        return key;
    };
    const std::string reference = base().fingerprint();
    EXPECT_EQ(reference, base().fingerprint()) << "not deterministic";
    EXPECT_EQ(reference.substr(0, 4), "gcc-");

    SimKey other = base();
    other.fus = 3;
    EXPECT_NE(reference, other.fingerprint());
    other = base();
    other.insts = kInsts + 1;
    EXPECT_NE(reference, other.fingerprint());
    other = base();
    other.seed = 2;
    EXPECT_NE(reference, other.fingerprint());
    other = base();
    other.profile.frac_load += 0.01;
    EXPECT_NE(reference, other.fingerprint());
    other = base();
    other.base = other.base.withL2Latency(32);
    EXPECT_NE(reference, other.fingerprint());
}

TEST(ProfileStore, SaveLoadRoundTrip)
{
    const std::string dir = freshDir("roundtrip");
    const ProfileStore db(dir);
    const auto sim = simulateSmall("gcc");
    db.save("gcc-test", sim);

    const auto loaded = db.load("gcc-test");
    ASSERT_TRUE(loaded.has_value());
    expectBitExact(sim, *loaded);

    EXPECT_FALSE(db.load("no-such-key").has_value());

    const auto entries = db.list();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].key, "gcc-test");
}

TEST(ProfileStore, RemoveDeletesExactlyOneEntry)
{
    const std::string dir = freshDir("remove");
    const ProfileStore db(dir);
    const auto sim = simulateSmall("gcc");
    db.save("keep", sim);
    db.save("drop", sim);

    EXPECT_TRUE(db.remove("drop"));
    EXPECT_FALSE(db.remove("drop"));   // already gone
    EXPECT_FALSE(db.remove("absent")); // never existed
    EXPECT_FALSE(db.load("drop").has_value());
    ASSERT_TRUE(db.load("keep").has_value());
    EXPECT_EQ(db.list().size(), 1u);
}

/** Backdate @p key's index touch-time by @p seconds (as a restarted
 * process would observe it: rewrite index.json on disk). */
void
backdateIndexTouch(const std::string &dir, const std::string &key,
                   double seconds)
{
    StoreIndex index(dir);
    const IndexEntry *entry = index.find(key);
    ASSERT_NE(entry, nullptr) << key;
    index.touch(key, entry->touched - seconds);
    ASSERT_TRUE(index.save());
}

TEST(ProfileStore, GcEvictsByIndexAge)
{
    const std::string dir = freshDir("gc_age");
    const auto sim = simulateSmall("gcc");
    {
        const ProfileStore db(dir);
        db.save("old", sim);
        db.save("fresh", sim);
    }
    // Age comes from the index touch-time (the LRU signal), not the
    // file mtime — backdate "old" past the limit.
    backdateIndexTouch(dir, "old", 48.0 * 3600.0);

    const ProfileStore db(dir);
    ProfileStore::GcOptions options;
    options.max_age_seconds = 24.0 * 3600.0;
    const auto stats = db.gc(options);
    EXPECT_EQ(stats.scanned, 2u);
    EXPECT_EQ(stats.removed, 1u);
    EXPECT_EQ(stats.stat_errors, 0u);
    EXPECT_LT(stats.bytes_after, stats.bytes_before);
    EXPECT_FALSE(db.load("old").has_value());
    EXPECT_TRUE(db.load("fresh").has_value());
}

TEST(ProfileStore, GcFallsBackToMtimeForUnindexedEntries)
{
    const std::string dir = freshDir("gc_mtime");
    const auto sim = simulateSmall("gcc");
    {
        const ProfileStore db(dir);
        db.save("old", sim);
        db.save("fresh", sim);
    }
    // A pre-index store: no index.json, only the entry files. mtime
    // is then the best available age signal.
    fs::remove(fs::path(dir) / StoreIndex::kFileName);
    fs::last_write_time(fs::path(dir) / "old.lsimprof",
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(48));

    const ProfileStore db(dir);
    ProfileStore::GcOptions options;
    options.max_age_seconds = 24.0 * 3600.0;
    const auto stats = db.gc(options);
    EXPECT_EQ(stats.scanned, 2u);
    EXPECT_EQ(stats.removed, 1u);
    EXPECT_FALSE(db.load("old").has_value());
    EXPECT_TRUE(db.load("fresh").has_value());
}

TEST(ProfileStore, GcEvictsLeastRecentlyUsedFirstUntilUnderBudget)
{
    const std::string dir = freshDir("gc_bytes");
    const auto sim = simulateSmall("gcc");
    {
        const ProfileStore db(dir);
        for (const char *key : {"a", "b", "c"})
            db.save(key, sim);
    }
    // Distinct touch-times, coldest first: a, then b, then c.
    backdateIndexTouch(dir, "a", 3.0 * 3600.0);
    backdateIndexTouch(dir, "b", 2.0 * 3600.0);
    backdateIndexTouch(dir, "c", 1.0 * 3600.0);
    const std::uint64_t each =
        fs::file_size(fs::path(dir) / "a.lsimprof");

    const ProfileStore db(dir);
    ProfileStore::GcOptions options;
    options.max_bytes = 2 * each; // room for exactly two entries
    const auto stats = db.gc(options);
    EXPECT_EQ(stats.removed, 1u);
    EXPECT_EQ(stats.bytes_after, 2 * each);
    EXPECT_FALSE(db.load("a").has_value()); // coldest went first
    EXPECT_TRUE(db.load("b").has_value());
    EXPECT_TRUE(db.load("c").has_value());

    // A zero-byte budget clears the store.
    options.max_bytes = 0;
    const auto wipe = db.gc(options);
    EXPECT_EQ(wipe.removed, 2u);
    EXPECT_EQ(wipe.bytes_after, 0u);
    EXPECT_TRUE(db.list().empty());
}

TEST(ProfileStore, LoadRefreshesTheLruSignal)
{
    const std::string dir = freshDir("gc_lru");
    const auto sim = simulateSmall("gcc");
    {
        const ProfileStore db(dir);
        db.save("hot", sim);
        db.save("cold", sim);
    }
    // Both look two days old...
    backdateIndexTouch(dir, "hot", 48.0 * 3600.0);
    backdateIndexTouch(dir, "cold", 48.0 * 3600.0);

    // ...but a load touches "hot", so only "cold" ages out. This is
    // exactly what file mtimes cannot express: reads do not move
    // them.
    const ProfileStore db(dir);
    ASSERT_TRUE(db.load("hot").has_value());
    ProfileStore::GcOptions options;
    options.max_age_seconds = 24.0 * 3600.0;
    const auto stats = db.gc(options);
    EXPECT_EQ(stats.removed, 1u);
    EXPECT_FALSE(db.load("cold").has_value());
    EXPECT_TRUE(db.load("hot").has_value());
}

TEST(ProfileStore, GcWithoutLimitsEvictsNothing)
{
    const std::string dir = freshDir("gc_noop");
    const ProfileStore db(dir);
    db.save("only", simulateSmall("gcc"));
    const auto stats = db.gc({});
    EXPECT_EQ(stats.scanned, 1u);
    EXPECT_EQ(stats.removed, 0u);
    EXPECT_EQ(stats.bytes_before, stats.bytes_after);
    EXPECT_TRUE(db.load("only").has_value());
}

TEST(ProfileStore, CorruptedEntryIsRejected)
{
    const std::string dir = freshDir("corrupt");
    const ProfileStore db(dir);
    db.save("entry", simulateSmall("mst"));
    const std::string path =
        dir + "/entry" + std::string(ProfileStore::kExtension);

    // Flip one byte in the middle of the payload.
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size / 2);
    f.put('\xff');
    f.close();

    EXPECT_FALSE(db.load("entry").has_value());
}

TEST(ProfileStore, TruncatedEntryIsRejected)
{
    const std::string dir = freshDir("truncated");
    const ProfileStore db(dir);
    db.save("entry", simulateSmall("mst"));
    const std::string path =
        dir + "/entry" + std::string(ProfileStore::kExtension);
    fs::resize_file(path, fs::file_size(path) / 2);
    EXPECT_FALSE(db.load("entry").has_value());
}

TEST(ProfileStore, VersionMismatchIsRejected)
{
    const std::string dir = freshDir("version");
    const ProfileStore db(dir);
    db.save("entry", simulateSmall("mst"));
    const std::string path =
        dir + "/entry" + std::string(ProfileStore::kExtension);

    // The format version is the 4 bytes right after the magic.
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    f.put('\x7f');
    f.close();
    EXPECT_FALSE(db.load("entry").has_value());
}

SweepConfig
smallSweep(const std::string &cache_dir)
{
    SweepConfig cfg;
    cfg.workloads = {"gcc"};
    cfg.technologies = pSweep(0.05, 0.5, 3);
    cfg.insts = kInsts;
    cfg.threads = 2;
    cfg.cache_dir = cache_dir;
    return cfg;
}

std::string
csvOf(const SweepResult &result)
{
    std::ostringstream ss;
    result.writeCsv(ss);
    return ss.str();
}

std::string
jsonOf(const SweepResult &result)
{
    std::ostringstream ss;
    result.writeJson(ss);
    return ss.str();
}

TEST(CachedSweep, WarmRunIsByteIdenticalAndSkipsPhase1)
{
    const std::string dir = freshDir("warm");

    const auto cold = SweepRunner(smallSweep(dir)).run();
    EXPECT_EQ(cold.stats.sims_run, 1u);
    EXPECT_EQ(cold.stats.cache_hits, 0u);

    const auto warm = SweepRunner(smallSweep(dir)).run();
    EXPECT_EQ(warm.stats.sims_run, 0u) << "phase 1 must be skipped";
    EXPECT_EQ(warm.stats.cache_hits, 1u);

    EXPECT_EQ(csvOf(cold), csvOf(warm));
    EXPECT_EQ(jsonOf(cold), jsonOf(warm));

    // And both match an uncached reference run.
    auto uncached_cfg = smallSweep("");
    const auto uncached = SweepRunner(uncached_cfg).run();
    EXPECT_EQ(csvOf(uncached), csvOf(warm));
    EXPECT_EQ(jsonOf(uncached), jsonOf(warm));
}

TEST(CachedSweep, CorruptedCacheEntryIsResimulated)
{
    const std::string dir = freshDir("resim");
    const auto cold = SweepRunner(smallSweep(dir)).run();

    // Corrupt every stored entry.
    for (const auto &de : fs::directory_iterator(dir)) {
        std::fstream f(de.path(), std::ios::in | std::ios::out |
                                      std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            fs::file_size(de.path()) / 2));
        f.put('\x55');
    }

    const auto retry = SweepRunner(smallSweep(dir)).run();
    EXPECT_EQ(retry.stats.sims_run, 1u)
        << "a corrupted entry must be re-simulated, never trusted";
    EXPECT_EQ(retry.stats.cache_hits, 0u);
    EXPECT_EQ(csvOf(cold), csvOf(retry));

    // The re-simulation healed the store.
    const auto healed = SweepRunner(smallSweep(dir)).run();
    EXPECT_EQ(healed.stats.cache_hits, 1u);
}

TEST(CachedSweep, DifferentConfigsDoNotShareEntries)
{
    const std::string dir = freshDir("keyed");
    (void)SweepRunner(smallSweep(dir)).run();

    auto other = smallSweep(dir);
    other.seed = 7;
    const auto run = SweepRunner(other).run();
    EXPECT_EQ(run.stats.sims_run, 1u)
        << "a different seed must miss the cache";
}

TEST(Batch, SharedWorkloadSimulatesExactlyOnce)
{
    // The acceptance criterion: two configs sharing one workload
    // run that workload's timing simulation exactly once.
    SweepConfig a;
    a.workloads = {"gcc", "mst"};
    a.technologies = pSweep(0.05, 0.5, 3);
    a.insts = kInsts;

    SweepConfig b;
    b.workloads = {"gcc"};
    b.policies = {"max-sleep", "timeout:64"};
    b.technologies = pSweep(0.1, 0.4, 2);
    b.insts = kInsts;

    BatchConfig batch;
    batch.sweeps = {a, b};
    batch.threads = 2;
    const auto result = BatchRunner(batch).run();

    EXPECT_EQ(result.stats.requested_sims, 3u);
    EXPECT_EQ(result.stats.unique_sims, 2u) << "gcc must dedup";
    EXPECT_EQ(result.stats.sims_run, 2u);
    EXPECT_EQ(result.stats.cache_hits, 0u);

    // Each result is byte-identical to running its config alone.
    ASSERT_EQ(result.sweeps.size(), 2u);
    EXPECT_EQ(csvOf(result.sweeps[0]), csvOf(SweepRunner(a).run()));
    EXPECT_EQ(jsonOf(result.sweeps[1]),
              jsonOf(SweepRunner(b).run()));
}

TEST(Batch, ConsultsTheSharedStore)
{
    const std::string dir = freshDir("batchcache");
    (void)SweepRunner(smallSweep(dir)).run(); // prime with gcc

    SweepConfig a = smallSweep("");
    SweepConfig b = smallSweep("");
    b.workloads = {"gcc", "mst"};

    BatchConfig batch;
    batch.sweeps = {a, b};
    batch.cache_dir = dir;
    const auto result = BatchRunner(batch).run();
    EXPECT_EQ(result.stats.unique_sims, 2u);
    EXPECT_EQ(result.stats.cache_hits, 1u) << "gcc was primed";
    EXPECT_EQ(result.stats.sims_run, 1u) << "only mst is new";
}

TEST(Batch, HonorsPerSweepCacheDirs)
{
    // With no batch-level cache_dir, each sweep's own store must be
    // consulted and updated.
    const std::string dir_a = freshDir("persweep_a");
    const std::string dir_b = freshDir("persweep_b");
    (void)SweepRunner(smallSweep(dir_b)).run(); // prime B with gcc

    SweepConfig a = smallSweep(dir_a); // cold store
    SweepConfig b = smallSweep(dir_b); // warm store

    BatchConfig batch;
    batch.sweeps = {a, b};
    const auto result = BatchRunner(batch).run();
    // The shared gcc task may be served from either sweep's store —
    // B's is warm, so nothing should simulate.
    EXPECT_EQ(result.stats.unique_sims, 1u);
    EXPECT_EQ(result.stats.cache_hits, 1u);
    EXPECT_EQ(result.stats.sims_run, 0u);
}

TEST(Imports, IdleProfileJsonFlowsThroughSweep)
{
    const std::string dir = freshDir("imports");
    const std::string path = dir + "/measured.json";
    {
        std::ofstream out(path);
        out << R"({"name": "measured-alu", "num_fus": 2,
                   "active_cycles": 7300, "idle_cycles": 2700,
                   "intervals": [[1, 700], [2, 500], [10, 100]]})";
    }

    SweepConfig cfg;
    cfg.workloads = {"gcc"};
    cfg.imports = {path};
    cfg.technologies = pSweep(0.05, 0.5, 2);
    cfg.insts = kInsts;
    const auto result = SweepRunner(cfg).run();

    ASSERT_EQ(result.workloads.size(), 2u);
    EXPECT_EQ(result.workloads[1], "measured-alu");
    EXPECT_EQ(result.stats.imported, 1u);
    EXPECT_EQ(result.stats.sims_run, 1u) << "only gcc simulates";

    // The imported cell must equal a direct facade evaluation of
    // the same idle profile.
    const harness::IdleProfile &idle = result.sims[1].idle;
    EXPECT_EQ(idle.idle_cycles, 2700u);
    const auto direct =
        evaluateProfile(idle, result.technologies[0]);
    const auto &cell = result.cell(1, 0).policies;
    ASSERT_EQ(cell.size(), direct.size());
    for (std::size_t i = 0; i < cell.size(); ++i) {
        EXPECT_EQ(cell[i].name, direct[i].name);
        EXPECT_EQ(cell[i].energy, direct[i].energy);
    }
}

TEST(Imports, ShadowingASimulatedWorkloadIsRejected)
{
    const std::string dir = freshDir("shadow");
    const std::string path = dir + "/gcc.json";
    std::ofstream(path) <<
        R"({"name": "gcc", "num_fus": 1, "active_cycles": 10,
            "idle_cycles": 2, "intervals": [[2, 1]]})";

    // Explicitly requested gcc, and defaulted (full-suite) gcc,
    // must both refuse to be silently replaced by external data.
    SweepConfig cfg;
    cfg.workloads = {"gcc"};
    cfg.imports = {path};
    cfg.technologies = pSweep(0.05, 0.5, 2);
    EXPECT_THROW(SweepRunner{cfg}, std::invalid_argument);

    SweepConfig whole_suite;
    whole_suite.imports = {path};
    whole_suite.technologies = pSweep(0.05, 0.5, 2);
    EXPECT_THROW(SweepRunner{whole_suite}, std::invalid_argument);
}

TEST(Imports, MalformedIdleProfileIsRejected)
{
    const std::string dir = freshDir("badimports");

    const auto rejects = [&](const char *text) {
        const std::string path = dir + "/bad.json";
        std::ofstream(path) << text;
        SweepConfig cfg;
        cfg.workloads = {"gcc"};
        cfg.imports = {path};
        cfg.technologies = pSweep(0.05, 0.5, 2);
        EXPECT_THROW(SweepRunner{cfg}, std::invalid_argument)
            << text;
    };
    // Interval cycles disagree with idle_cycles.
    rejects(R"({"name": "x", "num_fus": 1, "active_cycles": 10,
                "idle_cycles": 99, "intervals": [[1, 1]]})");
    // Non-increasing interval lengths.
    rejects(R"({"name": "x", "num_fus": 1, "active_cycles": 10,
                "idle_cycles": 4, "intervals": [[2, 1], [2, 1]]})");
    // Unknown field.
    rejects(R"({"name": "x", "num_fus": 1, "active_cycles": 10,
                "idle_cycles": 1, "intervals": [[1, 1]],
                "bogus": 1})");
}

TEST(StoreIndex, RoundTripsThroughIndexJson)
{
    const std::string dir = freshDir("index_roundtrip");
    {
        StoreIndex index(dir);
        IndexEntry entry;
        entry.bytes = 4321;
        entry.touched = 1753700000.25;
        entry.name = "gcc";
        entry.fus = 2;
        entry.committed = 500000;
        entry.ipc = 1.619;
        entry.idle_fraction = 0.4125;
        entry.intervals = 125;
        index.put("gcc-abcd", entry);
        ASSERT_TRUE(index.save());
    }
    StoreIndex reloaded(dir);
    const IndexEntry *entry = reloaded.find("gcc-abcd");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->bytes, 4321u);
    EXPECT_DOUBLE_EQ(entry->touched, 1753700000.25);
    EXPECT_EQ(entry->name, "gcc");
    EXPECT_EQ(entry->fus, 2u);
    EXPECT_EQ(entry->committed, 500000u);
    EXPECT_DOUBLE_EQ(entry->ipc, 1.619);
    EXPECT_DOUBLE_EQ(entry->idle_fraction, 0.4125);
    EXPECT_EQ(entry->intervals, 125u);
    EXPECT_EQ(reloaded.find("absent"), nullptr);
}

TEST(StoreIndex, MalformedIndexFileIsIgnored)
{
    const std::string dir = freshDir("index_malformed");
    std::ofstream(fs::path(dir) / StoreIndex::kFileName)
        << "this is not an index";
    StoreIndex index(dir);
    EXPECT_TRUE(index.entries().empty());
}

TEST(StoreIndex, SaveKeepsItInSyncWithTheStore)
{
    const std::string dir = freshDir("index_sync");
    const ProfileStore db(dir);
    const auto sim = simulateSmall("gcc");
    db.save("gcc-key", sim);

    // The index row carries the `ls` summary without reading the
    // entry back.
    StoreIndex index(dir);
    const IndexEntry *entry = index.find("gcc-key");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->name, "gcc");
    EXPECT_EQ(entry->fus, sim.num_fus);
    EXPECT_EQ(entry->committed, sim.sim.committed);
    // Summary doubles round-trip through JSON at the writer's 12
    // significant digits — near, not bit-exact (the entry file, not
    // the index, is the exact record).
    EXPECT_NEAR(entry->ipc, sim.sim.ipc, 1e-9);
    EXPECT_EQ(entry->intervals, sim.idle.numIntervals());
    EXPECT_EQ(entry->bytes,
              fs::file_size(fs::path(dir) / "gcc-key.lsimprof"));
    EXPECT_GT(entry->touched, 0.0);

    // remove() drops the row too.
    EXPECT_TRUE(db.remove("gcc-key"));
    EXPECT_EQ(StoreIndex(dir).find("gcc-key"), nullptr);
}

TEST(StoreIndex, SummariesRebuildAMissingIndex)
{
    const std::string dir = freshDir("index_rebuild");
    const auto sim = simulateSmall("gcc");
    {
        const ProfileStore db(dir);
        db.save("one", sim);
        db.save("two", sim);
    }
    // A pre-index store (or a deleted index): summaries() must
    // still list everything and adopt it into a fresh index.
    fs::remove(fs::path(dir) / StoreIndex::kFileName);

    const ProfileStore db(dir);
    const auto rows = db.summaries();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].key, "one");
    EXPECT_EQ(rows[1].key, "two");
    EXPECT_EQ(rows[0].entry.name, "gcc");
    EXPECT_TRUE(fs::exists(fs::path(dir) / StoreIndex::kFileName))
        << "summaries() must persist the rebuilt index";
    EXPECT_NE(StoreIndex(dir).find("one"), nullptr);
}

TEST(StoreIndex, SummariesDropRowsWhoseFileVanished)
{
    const std::string dir = freshDir("index_stale");
    const auto sim = simulateSmall("gcc");
    const ProfileStore db(dir);
    db.save("keep", sim);
    db.save("gone", sim);
    // Delete the file behind the store's back (another process's
    // rm/gc): the stale index row must disappear, not be listed.
    fs::remove(fs::path(dir) / "gone.lsimprof");

    const auto rows = db.summaries();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].key, "keep");
    EXPECT_EQ(StoreIndex(dir).find("gone"), nullptr);
}

IndexEntry
namedEntry(const std::string &name)
{
    IndexEntry entry;
    entry.name = name;
    entry.bytes = 1;
    entry.touched = StoreIndex::now();
    return entry;
}

TEST(StoreIndex, GenerationBumpsByOnePerSave)
{
    const std::string dir = freshDir("index_generation");
    StoreIndex index(dir);
    EXPECT_EQ(index.generation(), 0u);
    index.put("a", namedEntry("a"));
    ASSERT_TRUE(index.save());
    EXPECT_EQ(index.generation(), 1u);
    index.put("b", namedEntry("b"));
    ASSERT_TRUE(index.save());
    EXPECT_EQ(index.generation(), 2u);
    EXPECT_EQ(StoreIndex(dir).generation(), 2u);
}

TEST(StoreIndex, VersionOneFilesLoadAsGenerationZero)
{
    const std::string dir = freshDir("index_v1");
    std::ofstream(fs::path(dir) / StoreIndex::kFileName)
        << R"({"version": 1, "entries": [
               {"key": "old", "bytes": 7, "touched": 5.0,
                "name": "gcc", "fus": 2, "committed": 10,
                "ipc": 1.0, "idle_fraction": 0.5,
                "intervals": 3}]})";
    StoreIndex index(dir);
    EXPECT_EQ(index.generation(), 0u);
    ASSERT_NE(index.find("old"), nullptr);
    // The first protocol save upgrades the file in place.
    ASSERT_TRUE(index.save());
    EXPECT_EQ(StoreIndex(dir).generation(), 1u);
    EXPECT_NE(StoreIndex(dir).find("old"), nullptr);
}

TEST(StoreIndex, SaveMergesConcurrentWritersInsteadOfClobbering)
{
    const std::string dir = freshDir("index_merge");
    // Two instances load the same (empty) image, then flush
    // disjoint entries. Under last-writer-wins the second save
    // would erase the first writer's entry; the reload-merge-bump
    // protocol must keep both.
    StoreIndex a(dir);
    StoreIndex b(dir);
    a.put("from_a", namedEntry("a"));
    b.put("from_b", namedEntry("b"));
    ASSERT_TRUE(a.save());
    ASSERT_TRUE(b.save());

    StoreIndex merged(dir);
    EXPECT_NE(merged.find("from_a"), nullptr);
    EXPECT_NE(merged.find("from_b"), nullptr);
    EXPECT_EQ(merged.generation(), 2u);

    // b adopted the merged image at save(): a's entry is visible
    // there too, without a reload.
    EXPECT_NE(b.find("from_a"), nullptr);
}

TEST(StoreIndex, ErasePropagatesThroughTheMerge)
{
    const std::string dir = freshDir("index_erase");
    {
        StoreIndex seed(dir);
        seed.put("victim", namedEntry("v"));
        seed.put("keep", namedEntry("k"));
        ASSERT_TRUE(seed.save());
    }
    // One instance erases while another flushes an unrelated put:
    // the erase must not resurrect through the other's merge.
    StoreIndex eraser(dir);
    StoreIndex writer(dir);
    EXPECT_TRUE(eraser.erase("victim"));
    ASSERT_TRUE(eraser.save());
    writer.put("new", namedEntry("n"));
    ASSERT_TRUE(writer.save());

    StoreIndex merged(dir);
    EXPECT_EQ(merged.find("victim"), nullptr);
    EXPECT_NE(merged.find("keep"), nullptr);
    EXPECT_NE(merged.find("new"), nullptr);
    EXPECT_EQ(merged.generation(), 3u);
}

TEST(StoreIndex, ConcurrentStoreFlushesNeverLoseEntries)
{
    const std::string dir = freshDir("index_concurrent");
    const auto sim = simulateSmall("gcc");
    // Two ProfileStore instances (two daemons sharding one cache —
    // flock excludes between fds even inside one process) save and
    // gc concurrently. Every save must survive, and the generation
    // counter must count every flush exactly once.
    constexpr int kPerWriter = 6;
    const ProfileStore store_a(dir);
    const ProfileStore store_b(dir);
    std::thread writer_a([&] {
        for (int i = 0; i < kPerWriter; ++i)
            store_a.save("a" + std::to_string(i), sim);
    });
    std::thread writer_b([&] {
        for (int i = 0; i < kPerWriter; ++i) {
            store_b.save("b" + std::to_string(i), sim);
            // Age-based gc with no limit set evicts nothing but
            // still walks (and flushes) the shared index.
            ProfileStore::GcOptions options;
            store_b.gc(options);
        }
    });
    writer_a.join();
    writer_b.join();

    const StoreIndex merged(dir);
    for (int i = 0; i < kPerWriter; ++i) {
        EXPECT_NE(merged.find("a" + std::to_string(i)), nullptr)
            << "a" << i;
        EXPECT_NE(merged.find("b" + std::to_string(i)), nullptr)
            << "b" << i;
    }
    EXPECT_GE(merged.generation(),
              static_cast<std::uint64_t>(2 * kPerWriter));
    const ProfileStore verify(dir);
    EXPECT_EQ(verify.summaries().size(),
              static_cast<std::size_t>(2 * kPerWriter));
}

TEST(Exports, ExportImportRoundTripsThroughAFile)
{
    const std::string dir = freshDir("export");
    const auto sim = simulateSmall("gcc");
    const std::string path = dir + "/gcc.lsimprof";
    exportSim(path, "gcc-somekey", sim);

    const auto imported = importSimFile(path);
    EXPECT_EQ(imported.key, "gcc-somekey");
    expectBitExact(sim, imported.sim);

    // importAnySim sniffs the binary format too.
    const auto any = importAnySim(path);
    expectBitExact(sim, any.sim);
}

} // namespace
