// Analyzer fixture: a correctly-locked translation unit. Exercises
// the safe patterns the real tree relies on — scoped snapshot blocks
// that release the guard before blocking I/O (obs::MetricsRegistry::
// exportFile, obs::TraceSession::flush), condition-variable waits
// (which park with the lock released), and consistent nesting. The
// analyzer must report nothing here.
//
// NOT compiled (the test glob is non-recursive); consumed by
// tools/analyze/analyze.py --selftest.

#include <string>

#include "common/files.hh"
#include "common/mutex.hh"

namespace fx
{

using lsim::CondVar;
using lsim::Mutex;
using lsim::MutexLock;

class Journal
{
  public:
    void append(int v);
    void flush();
    int waitNonEmpty();
    int total();

  private:
    Mutex mu_;
    CondVar cv_;
    int pending_ GUARDED_BY(mu_) = 0;
    std::string path_;
};

void Journal::append(int v)
{
    MutexLock lock(mu_);
    pending_ += v;
    cv_.notify_all();
}

void Journal::flush()
{
    int snapshot = 0;
    {
        MutexLock lock(mu_);
        snapshot = pending_;
        pending_ = 0;
    } // guard released here — the write below runs unlocked
    lsim::atomicWriteFile(path_, std::to_string(snapshot));
}

int Journal::waitNonEmpty()
{
    MutexLock lock(mu_);
    while (pending_ == 0) {
        cv_.wait(lock); // parks with mu_ released: not a finding
    }
    return pending_;
}

int Journal::total()
{
    MutexLock lock(mu_);
    return pending_; // by value: a copy, not an escape
}

} // namespace fx
