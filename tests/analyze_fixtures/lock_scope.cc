// Analyzer fixture: guard-scope bugs — an unnamed guard temporary
// that releases on the same statement, and a reference to guarded
// state escaping its critical section.
//
// NOT compiled (the test glob is non-recursive); consumed by
// tools/analyze/analyze.py --selftest.
//
// EXPECT-FINDING: guard-temporary
// EXPECT-FINDING: guard-escape

#include "common/mutex.hh"

namespace fx
{

using lsim::Mutex;
using lsim::MutexLock;

class Cell
{
  public:
    void bump();
    int &value();

  private:
    Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

void Cell::bump()
{
    MutexLock(mu_); // unnamed: the lock is gone before ++ runs
    ++value_;
}

int &Cell::value()
{
    MutexLock lock(mu_);
    return value_; // the reference outlives the guard
}

} // namespace fx
