// Analyzer fixture: classic AB/BA lock-order inversion, one leg
// direct and one leg hidden behind a call, so the cycle only shows
// up after cross-function acquisition sets propagate.
//
// NOT compiled (the test glob is non-recursive); consumed by
// tools/analyze/analyze.py --selftest.
//
// EXPECT-FINDING: deadlock-cycle

#include "common/mutex.hh"

namespace fx
{

using lsim::Mutex;
using lsim::MutexLock;

class Pair
{
  public:
    void forward();
    void backward();

  private:
    void grabA();

    Mutex a_mu_;
    Mutex b_mu_;
    int a_state_ GUARDED_BY(a_mu_) = 0;
    int b_state_ GUARDED_BY(b_mu_) = 0;
};

void Pair::forward()
{
    MutexLock a(a_mu_);
    MutexLock b(b_mu_); // order: a -> b
    b_state_ += a_state_;
}

void Pair::grabA()
{
    MutexLock a(a_mu_);
    ++a_state_;
}

void Pair::backward()
{
    MutexLock b(b_mu_);
    ++b_state_;
    grabA(); // order: b -> a, through the call graph
}

} // namespace fx
