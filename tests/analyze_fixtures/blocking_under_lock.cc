// Analyzer fixture: blocking primitives reached while a mutex is
// held — once directly (a recv(2) syscall) and once transitively
// (a helper that ends in atomicWriteFile).
//
// NOT compiled (the test glob is non-recursive); consumed by
// tools/analyze/analyze.py --selftest.
//
// EXPECT-FINDING: blocking-under-lock
// EXPECT-FINDING: blocking-under-lock

#include <string>

#include "common/files.hh"
#include "common/mutex.hh"

namespace fx
{

using lsim::Mutex;
using lsim::MutexLock;

class Pump
{
  public:
    void drain(int fd);
    void persist();

  private:
    void writeSide();

    Mutex mu_;
    char buf_[64] = {};
    std::string path_;
    std::string data_;
};

void Pump::drain(int fd)
{
    MutexLock lock(mu_);
    ::recv(fd, buf_, sizeof(buf_), 0); // parks the thread under mu_
}

void Pump::persist()
{
    MutexLock lock(mu_);
    writeSide(); // blocks transitively through the helper
}

void Pump::writeSide()
{
    lsim::atomicWriteFile(path_, data_);
}

} // namespace fx
