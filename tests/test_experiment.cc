/**
 * @file
 * Unit tests for the experiment harness (IdleProfile capture and
 * policy evaluation over stored interval statistics).
 */

#include <gtest/gtest.h>

#include "harness/benchmarks.hh"
#include "harness/experiment.hh"
#include "trace/profile.hh"

namespace
{

using lsim::Cycle;
using lsim::energy::ModelParams;
using lsim::harness::IdleProfile;
using lsim::harness::evaluatePaperPolicies;
using lsim::harness::selectFuCount;
using lsim::harness::simulateWorkload;
using lsim::sleep::PolicyEvaluator;
using lsim::trace::WorkloadProfile;
using lsim::trace::profileByName;

ModelParams
params(double p = 0.05)
{
    ModelParams mp;
    mp.p = p;
    mp.k = 0.001;
    mp.s = 0.01;
    mp.alpha = 0.5;
    return mp;
}

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p;
    p.name = "harness-test";
    p.suite = "test";
    p.num_blocks = 64;
    return p;
}

TEST(IdleProfile, AccumulatesRuns)
{
    IdleProfile ip;
    ip.addRun(true, 10);
    ip.addRun(false, 5);
    ip.addRun(true, 3);
    ip.addRun(false, 5);
    ip.addRun(false, 7);
    EXPECT_EQ(ip.active_cycles, 13u);
    EXPECT_EQ(ip.idle_cycles, 17u);
    EXPECT_EQ(ip.numIntervals(), 3u);
    EXPECT_EQ(ip.intervals.at(5), 2u);
    EXPECT_NEAR(ip.meanInterval(), 17.0 / 3.0, 1e-12);
    EXPECT_NEAR(ip.idleFraction(), 17.0 / 30.0, 1e-12);
}

TEST(IdleProfile, ReplayMatchesDirectFeeding)
{
    // Evaluating from the stored interval multiset must equal
    // feeding the original run sequence (controllers are
    // history-free).
    IdleProfile ip;
    auto direct = PolicyEvaluator::paperPolicies(params());
    const struct
    {
        bool busy;
        Cycle len;
    } runs[] = {{true, 4}, {false, 10}, {true, 2}, {false, 3},
                {true, 7}, {false, 10}, {true, 1}, {false, 50}};
    for (const auto &r : runs) {
        ip.addRun(r.busy, r.len);
        direct.feedRun(r.busy, r.len);
    }
    const auto via_profile = evaluatePaperPolicies(ip, params());
    const auto via_direct = direct.results();
    ASSERT_EQ(via_profile.size(), via_direct.size());
    for (std::size_t i = 0; i < via_profile.size(); ++i) {
        EXPECT_EQ(via_profile[i].name, via_direct[i].name);
        EXPECT_NEAR(via_profile[i].energy, via_direct[i].energy,
                    1e-9);
        EXPECT_NEAR(via_profile[i].relative_to_base,
                    via_direct[i].relative_to_base, 1e-12);
    }
}

TEST(Harness, SimulateWorkloadConsistency)
{
    const auto ws = simulateWorkload(tinyProfile(), 2, 20000);
    EXPECT_EQ(ws.num_fus, 2u);
    EXPECT_EQ(ws.idle.num_fus, 2u);
    // The idle profile aggregates both FUs over all cycles.
    EXPECT_EQ(ws.idle.totalCycles(), 2 * ws.sim.cycles);
    EXPECT_NEAR(ws.idle.idleFraction(),
                ws.sim.mean_fu_idle_fraction, 0.01);
    // The Figure 7 histogram totals the benchmark's mean idle
    // fraction (per-FU fractions averaged over the unit count).
    EXPECT_NEAR(ws.idle_hist.totalWeight(),
                ws.sim.mean_fu_idle_fraction, 0.01);
}

TEST(Harness, SelectFuCountReasonable)
{
    const auto sel = selectFuCount(tinyProfile(), 20000);
    EXPECT_GE(sel.chosen, 1u);
    EXPECT_LE(sel.chosen, 4u);
    EXPECT_GE(sel.chosen_ipc, 0.95 * sel.max_ipc);
    // IPC at the chosen count must match the sweep entry.
    EXPECT_DOUBLE_EQ(sel.chosen_ipc, sel.ipc_by_fus[sel.chosen - 1]);
}

TEST(Harness, SelectFuCountPrefersFewerForSerialWorkloads)
{
    // mcf (memory bound) needs fewer FUs than vortex (ILP rich).
    const auto mcf = selectFuCount(profileByName("mcf"), 30000);
    const auto vortex = selectFuCount(profileByName("vortex"), 30000);
    EXPECT_LE(mcf.chosen, vortex.chosen);
}

TEST(Harness, PolicyResultsOrderedAsPaper)
{
    IdleProfile ip;
    ip.addRun(true, 100);
    ip.addRun(false, 30);
    const auto results = evaluatePaperPolicies(ip, params());
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].name, "MaxSleep");
    EXPECT_EQ(results[1].name, "GradualSleep");
    EXPECT_EQ(results[2].name, "AlwaysActive");
    EXPECT_EQ(results[3].name, "NoOverhead");
}

} // namespace
