/**
 * @file
 * Property tests for the batched replay kernels: across randomized
 * interval multisets, the kernel path must be bit-identical — not
 * merely close — to the virtual-dispatch controllers for every
 * registry policy spec, including argument variants; unknown and
 * history-dependent policies must transparently fall back; and a
 * moved-from engine must refuse to replay.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <utility>
#include <vector>

#include "api/experiment.hh"
#include "api/sweep.hh"
#include "energy/breakeven.hh"
#include "harness/experiment.hh"
#include "replay/engine.hh"
#include "sleep/controllers.hh"
#include "sleep/kernel_spec.hh"
#include "sleep/policy_registry.hh"

namespace
{

using namespace lsim;
using lsim::energy::ModelParams;

/** Every registered policy key plus explicit-argument variants. */
std::vector<std::string>
allPolicySpecs()
{
    auto specs = sleep::PolicyRegistry::instance().keys();
    specs.push_back("gradual:1");
    specs.push_back("gradual:7");
    specs.push_back("timeout:1");
    specs.push_back("timeout:64");
    specs.push_back("adaptive:0.5");
    specs.push_back("weighted-gradual:0.5,0.3,0.2");
    return specs;
}

/**
 * allPolicySpecs() minus adaptive: the history-dependent policy
 * takes the identical fallback code in both engine modes (covered
 * by the fallback and scalar tests), and its O(total intervals)
 * per-interval replay would dominate the randomized sweep for zero
 * kernel coverage.
 */
std::vector<std::string>
kernelPolicySpecs()
{
    std::vector<std::string> specs;
    for (auto &spec : allPolicySpecs())
        if (spec.rfind("adaptive", 0) != 0)
            specs.push_back(std::move(spec));
    return specs;
}

/** Points spanning small and large breakeven intervals. */
std::vector<ModelParams>
somePoints()
{
    auto points = api::pSweep(0.05, 1.0, 5);
    points.push_back(api::analysisPoint(0.3, 0.25));
    points.push_back(api::analysisPoint(0.7, 0.9));
    return points;
}

void
expectBitExact(const std::vector<sleep::PolicyResult> &a,
               const std::vector<sleep::PolicyResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].counts.active, b[i].counts.active);
        EXPECT_EQ(a[i].counts.unctrl_idle, b[i].counts.unctrl_idle);
        EXPECT_EQ(a[i].counts.sleep, b[i].counts.sleep);
        EXPECT_EQ(a[i].counts.transitions, b[i].counts.transitions);
        EXPECT_EQ(a[i].energy, b[i].energy);
        EXPECT_EQ(a[i].relative_to_base, b[i].relative_to_base);
        EXPECT_EQ(a[i].leakage_fraction, b[i].leakage_fraction);
    }
}

/**
 * The property under test: for any interval multiset, the kernel
 * engine (default) and the virtual-dispatch engine
 * (use_kernels = false) agree to the last bit at every point under
 * every policy spec.
 */
void
expectKernelMatchesVirtual(const harness::IdleProfile &idle,
                           const std::vector<ModelParams> &points,
                           const std::vector<std::string> &specs)
{
    replay::ReplayOptions virt;
    virt.use_kernels = false;
    const auto kernel = replay::replayProfile(idle, points, specs);
    const auto virtual_path =
        replay::replayProfile(idle, points, specs, virt);
    ASSERT_EQ(kernel.size(), points.size());
    for (std::size_t t = 0; t < points.size(); ++t) {
        SCOPED_TRACE("point " + std::to_string(t));
        expectBitExact(kernel[t], virtual_path[t]);
    }
}

/**
 * A randomized multiset: lengths drawn from mixed scales (short
 * runs, mid-range, log-uniform tails) plus values straddling the
 * breakeven-derived thresholds of the points under test, so the
 * timeout/oracle partition points and the gradual saturation
 * boundary all land inside the array.
 */
harness::IdleProfile
randomProfile(std::uint64_t seed,
              const std::vector<ModelParams> &points)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<Cycle> shortlen(1, 50);
    std::uniform_int_distribution<Cycle> midlen(51, 4000);
    std::uniform_real_distribution<double> logtail(2.0, 17.0);
    std::uniform_int_distribution<std::uint64_t> cnt(1, 1'000'000);
    std::uniform_int_distribution<int> coin(0, 3);

    std::set<Cycle> lengths;
    const std::size_t distinct = 20 + seed % 180;
    while (lengths.size() < distinct) {
        switch (coin(rng)) {
        case 0:
            lengths.insert(shortlen(rng));
            break;
        case 1:
            lengths.insert(midlen(rng));
            break;
        default:
            lengths.insert(static_cast<Cycle>(
                std::exp2(logtail(rng))));
            break;
        }
    }
    // Straddle every threshold a policy in the suite could use:
    // breakeven (oracle/timeout defaults, gradual slice counts) and
    // the explicit timeout:64 variant.
    for (const auto &mp : points) {
        const double be = energy::breakevenInterval(mp);
        if (be >= 2.0 && be < 1e6) {
            const auto b = static_cast<Cycle>(be);
            lengths.insert(b - 1);
            lengths.insert(b);
            lengths.insert(b + 1);
        }
    }
    for (Cycle edge : {Cycle{63}, Cycle{64}, Cycle{65}})
        lengths.insert(edge);

    harness::IdleProfile idle;
    idle.num_fus = 2;
    idle.active_cycles = coin(rng) == 0 ? 0 : cnt(rng);
    for (Cycle len : lengths) {
        const std::uint64_t count = cnt(rng);
        idle.intervals[len] = count;
        idle.idle_cycles += len * count;
    }
    return idle;
}

TEST(ReplayKernels, RandomizedSetsMatchVirtualBitExactly)
{
    const auto points = somePoints();
    const auto specs = kernelPolicySpecs();
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectKernelMatchesVirtual(randomProfile(seed, points),
                                   points, specs);
    }
}

TEST(ReplayKernels, RandomizedSetsMatchScalarBitExactly)
{
    // Transitivity guard: the virtual engine is itself checked
    // against the scalar path elsewhere; spot-check the kernel
    // engine against the scalar path directly too.
    const auto points = somePoints();
    const auto specs = allPolicySpecs();
    const auto idle = randomProfile(7, points);
    const auto kernel = replay::replayProfile(idle, points, specs);
    for (std::size_t t = 0; t < points.size(); ++t) {
        SCOPED_TRACE("point " + std::to_string(t));
        expectBitExact(kernel[t],
                       api::evaluateProfile(idle, points[t], specs));
    }
}

TEST(ReplayKernels, EmptyAndDegenerateSets)
{
    const auto points = somePoints();
    const auto specs = allPolicySpecs(); // adaptive included: cheap

    harness::IdleProfile empty;
    expectKernelMatchesVirtual(empty, points, specs);

    harness::IdleProfile active_only;
    active_only.addRun(true, 4096);
    expectKernelMatchesVirtual(active_only, points, specs);

    // Single-interval sets at boundary-sensitive lengths: 1, the
    // explicit timeout, one past it, and deep saturation.
    for (Cycle len : {Cycle{1}, Cycle{64}, Cycle{65}, Cycle{8192}}) {
        SCOPED_TRACE("len " + std::to_string(len));
        harness::IdleProfile one;
        one.addRun(true, 1000);
        one.addRun(false, len);
        expectKernelMatchesVirtual(one, points, specs);
    }
}

TEST(ReplayKernels, OracleLookaheadStraddlesBreakeven)
{
    // The oracle's per-interval choice flips exactly at the
    // breakeven threshold; a dense ladder across it exercises both
    // sides and the equality edge of the partition search.
    const auto points = somePoints();
    harness::IdleProfile idle;
    idle.num_fus = 1;
    idle.addRun(true, 5000);
    for (const auto &mp : points) {
        const double be = energy::breakevenInterval(mp);
        if (!(be >= 2.0) || be >= 1e6)
            continue;
        const auto b = static_cast<Cycle>(be);
        for (Cycle len = b > 3 ? b - 3 : 1; len <= b + 3; ++len)
            idle.intervals[len] += 10;
    }
    for (const auto &[len, count] : idle.intervals)
        idle.idle_cycles += len * count;
    expectKernelMatchesVirtual(idle, points,
                               {"oracle", "timeout", "gradual"});
}

TEST(ReplayKernels, PaperPoliciesFullyKernelize)
{
    const auto idle = randomProfile(3, somePoints());
    replay::MultiPointReplay engine(
        replay::IntervalSet::fromProfile(idle),
        api::pSweep(0.05, 1.0, 20), {});
    // max-sleep, gradual, always-active, no-overhead: one kernel
    // group per kind, every unit on the kernel path.
    EXPECT_EQ(engine.numKernelGroups(), 4u);
    EXPECT_EQ(engine.numKernelUnits(), engine.numUnits());
}

/** A controller the engine knows nothing about: accounting happens
 * to match AlwaysActive, but it does not override kernelSpec(). */
class OpaqueController : public sleep::SleepController
{
  public:
    std::string name() const override { return "Opaque"; }

  protected:
    void doIdleRun(Cycle len) override
    {
        counts_.unctrl_idle += static_cast<double>(len);
    }
};

TEST(ReplayKernels, UnknownAndHistoryPoliciesFallBack)
{
    sleep::PolicyRegistry::instance().add(
        "opaque-test", "unclassified test policy",
        sleep::PolicyRegistry::Factory(
            [](const ModelParams &, const std::string &) {
                return std::make_unique<OpaqueController>();
            }));

    const auto points = api::pSweep(0.05, 1.0, 6);
    const std::vector<std::string> specs = {"opaque-test", "adaptive",
                                            "max-sleep"};
    const auto idle = randomProfile(11, points);
    replay::MultiPointReplay engine(
        replay::IntervalSet::fromProfile(idle), points, specs);

    // Only max-sleep kernelizes (one deduplicated unit in one
    // group); the unclassified policy cannot dedup across points.
    EXPECT_EQ(engine.numKernelGroups(), 1u);
    EXPECT_EQ(engine.numKernelUnits(), 1u);
    EXPECT_GE(engine.numUnits(), 1u + 1u + points.size());

    // And the fallback path still reproduces the scalar results bit
    // for bit, adaptive's interval-order history included.
    engine.runAll();
    const auto results = engine.finalize();
    for (std::size_t t = 0; t < points.size(); ++t) {
        SCOPED_TRACE("point " + std::to_string(t));
        expectBitExact(results[t],
                       api::evaluateProfile(idle, points[t], specs));
    }
}

TEST(ReplayKernels, KernelSpecRoundTripsThroughControllers)
{
    // Every built-in history-free controller's self-classification
    // reconstructs an equivalent controller.
    const auto mp = api::analysisPoint(0.2);
    const auto &registry = sleep::PolicyRegistry::instance();
    for (const char *spec :
         {"always-active", "max-sleep", "no-overhead", "gradual:9",
          "weighted-gradual:0.5,0.25,0.25", "timeout:42", "oracle"}) {
        SCOPED_TRACE(spec);
        const auto ctrl = registry.make(spec, mp);
        const auto kspec = ctrl->kernelSpec();
        ASSERT_TRUE(kspec.historyFree());
        const auto rebuilt = kspec.makeController();
        EXPECT_EQ(rebuilt->name(), ctrl->name());
        EXPECT_TRUE(rebuilt->kernelSpec() == kspec);
    }
    // History-dependent and base-class defaults classify as None.
    EXPECT_FALSE(registry.make("adaptive", mp)
                     ->kernelSpec()
                     .historyFree());
    EXPECT_FALSE(OpaqueController().kernelSpec().historyFree());
}

TEST(ReplayKernels, MovedFromEngineRefusesToReplay)
{
    const auto points = api::pSweep(0.05, 1.0, 3);
    const auto idle = randomProfile(5, points);

    replay::MultiPointReplay source(
        replay::IntervalSet::fromProfile(idle), points, {});
    replay::MultiPointReplay engine(std::move(source));

    // The destination owns the replay end to end...
    engine.runAll();
    const auto results = engine.finalize();
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t t = 0; t < points.size(); ++t)
        expectBitExact(results[t],
                       api::evaluateProfile(idle, points[t]));

    // ...and the moved-from shell refuses every entry point instead
    // of silently replaying emptied vectors.
    EXPECT_DEATH(source.runTask(0), "moved from");
    EXPECT_DEATH(source.runAll(), "moved from");
    EXPECT_DEATH((void)source.finalize(), "moved from");

    // Move assignment leaves the right-hand side equally inert.
    replay::MultiPointReplay other(
        replay::IntervalSet::fromProfile(idle), points, {});
    replay::MultiPointReplay target(
        replay::IntervalSet::fromProfile(idle), points, {});
    target = std::move(other);
    EXPECT_DEATH(other.runAll(), "moved from");
    target.runAll();
    (void)target.finalize();
}

} // namespace
