/**
 * @file
 * Unit and property tests for the closed-form policy model
 * (equations 6-9, Figures 4b-4d).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "energy/breakeven.hh"
#include "energy/policy_model.hh"

namespace
{

/**
 * These sites formerly fatal()ed out of the process; the library now
 * throws std::invalid_argument (caught at the CLI boundary), so the
 * tests assert on the exception and its message, not a process exit.
 */
template <typename Fn>
void
expectRejects(Fn &&fn, const std::string &substr)
{
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(std::string(e.what()).find(substr) !=
                    std::string::npos)
            << "unexpected message: " << e.what();
    }
}

using lsim::energy::ModelParams;
using lsim::energy::Policy;
using lsim::energy::PolicyModel;
using lsim::energy::WorkloadPoint;
using lsim::energy::breakevenInterval;

ModelParams
params(double p, double alpha = 0.5)
{
    ModelParams mp;
    mp.p = p;
    mp.alpha = alpha;
    mp.k = 0.001;
    mp.s = 0.01;
    return mp;
}

WorkloadPoint
workload(double usage, double interval)
{
    WorkloadPoint w;
    w.usage = usage;
    w.idle_interval = interval;
    w.total_cycles = 1e6;
    return w;
}

TEST(PolicyModel, CountsPartitionTotalCycles)
{
    PolicyModel pm(params(0.5), workload(0.3, 10));
    for (auto pol : {Policy::AlwaysActive, Policy::MaxSleep,
                     Policy::NoOverhead}) {
        const auto cc = pm.counts(pol);
        EXPECT_DOUBLE_EQ(cc.total(), 1e6);
        EXPECT_DOUBLE_EQ(cc.active, 0.3e6);
    }
}

TEST(PolicyModel, AlwaysActiveHasNoSleepState)
{
    PolicyModel pm(params(0.5), workload(0.3, 10));
    const auto cc = pm.counts(Policy::AlwaysActive);
    EXPECT_DOUBLE_EQ(cc.sleep, 0.0);
    EXPECT_DOUBLE_EQ(cc.transitions, 0.0);
    EXPECT_DOUBLE_EQ(cc.unctrl_idle, 0.7e6);
}

TEST(PolicyModel, MaxSleepTransitionCount)
{
    PolicyModel pm(params(0.5), workload(0.3, 10));
    const auto cc = pm.counts(Policy::MaxSleep);
    EXPECT_DOUBLE_EQ(cc.unctrl_idle, 0.0);
    EXPECT_DOUBLE_EQ(cc.sleep, 0.7e6);
    EXPECT_DOUBLE_EQ(cc.transitions, 0.7e6 / 10);
}

TEST(PolicyModel, TransitionsCappedByActiveCycles)
{
    // Every transition implies a prior active cycle (the min() in
    // Section 3.1).
    PolicyModel pm(params(0.5), workload(0.05, 1.0));
    const auto cc = pm.counts(Policy::MaxSleep);
    EXPECT_DOUBLE_EQ(cc.transitions, 0.05e6);
}

TEST(PolicyModel, NoOverheadIsLowerBound)
{
    for (double p : {0.01, 0.05, 0.2, 0.5, 1.0}) {
        for (double L : {1.0, 10.0, 100.0}) {
            PolicyModel pm(params(p), workload(0.5, L));
            const double no = pm.energy(Policy::NoOverhead);
            EXPECT_LE(no, pm.energy(Policy::MaxSleep));
            EXPECT_LE(no, pm.energy(Policy::AlwaysActive));
        }
    }
}

TEST(PolicyModel, CrossoverAtBreakeven)
{
    // MaxSleep wins exactly when the idle interval exceeds the
    // breakeven interval.
    const ModelParams mp = params(0.05);
    const double be = breakevenInterval(mp);
    PolicyModel shorter(mp, workload(0.5, be * 0.5));
    EXPECT_GT(shorter.energy(Policy::MaxSleep),
              shorter.energy(Policy::AlwaysActive));
    PolicyModel longer(mp, workload(0.5, be * 2.0));
    EXPECT_LT(longer.energy(Policy::MaxSleep),
              longer.energy(Policy::AlwaysActive));
}

TEST(PolicyModel, HighLeakageFavorsMaxSleepAtTenCycles)
{
    // Figure 4b: with L_idle = 10 and large p, MaxSleep beats
    // AlwaysActive; at small p the ordering flips.
    PolicyModel high(params(0.5), workload(0.1, 10));
    EXPECT_LT(high.energy(Policy::MaxSleep),
              high.energy(Policy::AlwaysActive));
    PolicyModel low(params(0.01), workload(0.1, 10));
    EXPECT_GT(low.energy(Policy::MaxSleep),
              low.energy(Policy::AlwaysActive));
}

TEST(PolicyModel, LongIdleMakesMaxSleepNearOptimal)
{
    // Figure 4c: at L_idle = 100 and 10% usage, MaxSleep is nearly
    // identical to NoOverhead.
    PolicyModel pm(params(0.5), workload(0.1, 100));
    const double ms = pm.energy(Policy::MaxSleep);
    const double no = pm.energy(Policy::NoOverhead);
    EXPECT_LT((ms - no) / no, 0.06);
}

TEST(PolicyModel, RelativeEnergyBelowOneForIdleWorkloads)
{
    // A unit that idles most of the time must spend less than the
    // 100%-compute baseline under every policy.
    for (auto pol : {Policy::AlwaysActive, Policy::MaxSleep,
                     Policy::NoOverhead}) {
        PolicyModel pm(params(0.3), workload(0.1, 20));
        EXPECT_LT(pm.relativeEnergy(pol), 1.0);
    }
}

TEST(PolicyModel, MinOfBoundingPolicies)
{
    PolicyModel pm(params(0.05), workload(0.5, 5));
    EXPECT_DOUBLE_EQ(pm.minOfBoundingPolicies(),
                     std::min(pm.energy(Policy::AlwaysActive),
                              pm.energy(Policy::MaxSleep)));
}

TEST(PolicyModel, BreakdownConsistentWithEnergy)
{
    PolicyModel pm(params(0.5), workload(0.4, 8));
    for (auto pol : {Policy::AlwaysActive, Policy::MaxSleep,
                     Policy::NoOverhead}) {
        EXPECT_NEAR(pm.breakdown(pol).total(), pm.energy(pol), 1e-6);
    }
}

TEST(PolicyModel, PolicyNames)
{
    EXPECT_EQ(to_string(Policy::AlwaysActive), "AlwaysActive");
    EXPECT_EQ(to_string(Policy::MaxSleep), "MaxSleep");
    EXPECT_EQ(to_string(Policy::NoOverhead), "NoOverhead");
}

TEST(PolicyModelReject, WorkloadValidation)
{
    WorkloadPoint w;
    w.usage = 1.5;
    expectRejects([&] { PolicyModel(params(0.5), w); }, "usage factor");
    WorkloadPoint w2;
    w2.idle_interval = 0.0;
    expectRejects([&] { PolicyModel(params(0.5), w2); }, "idle interval");
    WorkloadPoint w3;
    w3.total_cycles = 0.0;
    expectRejects([&] { PolicyModel(params(0.5), w3); }, "total cycles");
}

/**
 * Property sweep over the Figure 4 parameter plane: energies are
 * positive, ordered (NoOverhead least), and AlwaysActive is
 * monotone increasing in p.
 */
class PolicyPlaneTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(PolicyPlaneTest, InvariantsHold)
{
    auto [usage, interval] = GetParam();
    double prev_aa = 0.0;
    for (double p = 0.05; p <= 1.0; p += 0.05) {
        PolicyModel pm(params(p), workload(usage, interval));
        const double aa = pm.energy(Policy::AlwaysActive);
        const double ms = pm.energy(Policy::MaxSleep);
        const double no = pm.energy(Policy::NoOverhead);
        EXPECT_GT(no, 0.0);
        EXPECT_LE(no, ms);
        EXPECT_LE(no, aa);
        EXPECT_GE(aa, prev_aa); // monotone in p
        prev_aa = aa;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fig4Plane, PolicyPlaneTest,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Values(1.0, 10.0, 100.0)));

} // namespace
