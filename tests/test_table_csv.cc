/**
 * @file
 * Unit tests for the ASCII table and CSV output helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/table.hh"

namespace
{

using lsim::CsvWriter;
using lsim::Table;

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "2.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TableDeath, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Format, FixedAndSci)
{
    EXPECT_EQ(lsim::fixed(1.23456, 2), "1.23");
    EXPECT_EQ(lsim::fixed(-0.5, 1), "-0.5");
    EXPECT_EQ(lsim::sci(12345.0, 2), "1.23e+04");
}

TEST(Csv, WritesAndEscapes)
{
    const std::string path = ::testing::TempDir() + "/lsim_test.csv";
    {
        CsvWriter w(path);
        w.writeRow({"plain", "with,comma", "with\"quote"});
        ASSERT_TRUE(w.good());
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
    std::remove(path.c_str());
}

TEST(CsvDeath, BadPathFatal)
{
    EXPECT_EXIT(CsvWriter w("/nonexistent-dir/x/y.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
