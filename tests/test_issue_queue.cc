/**
 * @file
 * Unit tests for the age-ordered issue queue.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include <vector>

#include "cpu/issue_queue.hh"

namespace
{

using lsim::cpu::IssueQueue;

TEST(IssueQueue, InsertAndCapacity)
{
    IssueQueue iq(3);
    EXPECT_TRUE(iq.empty());
    iq.insert(1);
    iq.insert(2);
    iq.insert(3);
    EXPECT_TRUE(iq.full());
    EXPECT_EQ(iq.size(), 3u);
}

TEST(IssueQueue, SelectIssueRemovesChosen)
{
    IssueQueue iq(8);
    for (std::uint64_t s : {1, 2, 3, 4, 5})
        iq.insert(s);
    // Issue the even seqs.
    iq.selectIssue([](std::uint64_t seq, bool &) {
        return seq % 2 == 0;
    });
    EXPECT_EQ(iq.size(), 3u);
    std::vector<std::uint64_t> rest;
    iq.selectIssue([&](std::uint64_t seq, bool &) {
        rest.push_back(seq);
        return false;
    });
    EXPECT_EQ(rest, (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(IssueQueue, VisitsOldestFirst)
{
    IssueQueue iq(8);
    for (std::uint64_t s : {10, 20, 30})
        iq.insert(s);
    std::vector<std::uint64_t> order;
    iq.selectIssue([&](std::uint64_t seq, bool &) {
        order.push_back(seq);
        return false;
    });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(IssueQueue, StopTokenHaltsScan)
{
    IssueQueue iq(8);
    for (std::uint64_t s : {1, 2, 3, 4})
        iq.insert(s);
    int visited = 0;
    iq.selectIssue([&](std::uint64_t, bool &stop) {
        ++visited;
        if (visited == 2)
            stop = true;
        return true; // issue everything we see
    });
    EXPECT_EQ(visited, 2);
    // The two visited entries issued; the rest remain.
    EXPECT_EQ(iq.size(), 2u);
}

TEST(IssueQueue, InsertAfterIssueKeepsOrder)
{
    IssueQueue iq(4);
    iq.insert(1);
    iq.insert(2);
    iq.selectIssue([](std::uint64_t seq, bool &) {
        return seq == 1;
    });
    iq.insert(3);
    std::vector<std::uint64_t> order;
    iq.selectIssue([&](std::uint64_t seq, bool &) {
        order.push_back(seq);
        return false;
    });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 3}));
}

TEST(IssueQueue, RejectsZeroCapacity)
{
    EXPECT_THROW(IssueQueue(0), std::invalid_argument);
}

TEST(IssueQueueDeath, Misuse)
{
    IssueQueue iq(1);
    iq.insert(5);
    EXPECT_DEATH(iq.insert(6), "full");
    IssueQueue iq2(4);
    iq2.insert(5);
    EXPECT_DEATH(iq2.insert(5), "program order");
}

} // namespace
