/**
 * @file
 * Unit and property tests for the cycle-level sleep controllers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "energy/breakeven.hh"
#include "energy/gradual_sleep_model.hh"
#include "sleep/controllers.hh"

namespace
{

/**
 * These sites formerly fatal()ed out of the process; the library now
 * throws std::invalid_argument (caught at the CLI boundary), so the
 * tests assert on the exception and its message, not a process exit.
 */
template <typename Fn>
void
expectRejects(Fn &&fn, const std::string &substr)
{
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(std::string(e.what()).find(substr) !=
                    std::string::npos)
            << "unexpected message: " << e.what();
    }
}

using lsim::Cycle;
using lsim::energy::EnergyModel;
using lsim::energy::ModelParams;
using lsim::sleep::AdaptiveController;
using lsim::sleep::AlwaysActiveController;
using lsim::sleep::GradualSleepController;
using lsim::sleep::MaxSleepController;
using lsim::sleep::NoOverheadController;
using lsim::sleep::OracleController;
using lsim::sleep::SleepController;
using lsim::sleep::TimeoutController;
using lsim::sleep::WeightedGradualSleepController;
using lsim::sleep::makeExtensionControllers;
using lsim::sleep::makePaperControllers;

ModelParams
params(double p = 0.05)
{
    ModelParams mp;
    mp.p = p;
    mp.k = 0.001;
    mp.s = 0.01;
    mp.alpha = 0.5;
    return mp;
}

TEST(AlwaysActive, AllIdleIsUncontrolled)
{
    AlwaysActiveController c;
    c.activeRun(10);
    c.idleRun(7);
    c.idleRun(3);
    EXPECT_DOUBLE_EQ(c.counts().active, 10.0);
    EXPECT_DOUBLE_EQ(c.counts().unctrl_idle, 10.0);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 0.0);
    EXPECT_DOUBLE_EQ(c.counts().transitions, 0.0);
}

TEST(MaxSleep, OneTransitionPerInterval)
{
    MaxSleepController c;
    c.activeRun(5);
    c.idleRun(7);
    c.activeRun(1);
    c.idleRun(2);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 9.0);
    EXPECT_DOUBLE_EQ(c.counts().transitions, 2.0);
    EXPECT_DOUBLE_EQ(c.counts().unctrl_idle, 0.0);
}

TEST(NoOverhead, SleepWithoutTransitions)
{
    NoOverheadController c;
    c.idleRun(7);
    c.idleRun(2);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 9.0);
    EXPECT_DOUBLE_EQ(c.counts().transitions, 0.0);
}

TEST(Controllers, TickMatchesRuns)
{
    MaxSleepController by_tick, by_run;
    // busy busy idle idle idle busy idle
    for (bool b : {true, true, false, false, false, true, false})
        by_tick.tick(b);
    by_tick.finish(); // flush the trailing idle interval
    by_run.activeRun(2);
    by_run.idleRun(3);
    by_run.activeRun(1);
    by_run.idleRun(1);
    EXPECT_DOUBLE_EQ(by_tick.counts().active, by_run.counts().active);
    EXPECT_DOUBLE_EQ(by_tick.counts().sleep, by_run.counts().sleep);
    EXPECT_DOUBLE_EQ(by_tick.counts().transitions,
                     by_run.counts().transitions);
}

TEST(Controllers, ConsecutiveIdleTicksFormOneInterval)
{
    MaxSleepController c;
    c.tick(true);
    for (int i = 0; i < 10; ++i)
        c.tick(false);
    c.tick(true);
    EXPECT_DOUBLE_EQ(c.counts().transitions, 1.0);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 10.0);
}

TEST(Controllers, RunCallsWithPendingTickIdleAreRejected)
{
    // Regression for the tick()/idleRun() interleaving footgun: an
    // explicit run call while tick()-fed idle is still accumulating
    // would silently split the interval, so the guard must throw.
    auto interleave = [](auto use) {
        MaxSleepController c;
        c.tick(true);
        c.tick(false); // leaves one pending idle cycle
        use(c);
    };
    expectRejects(
        [&] { interleave([](auto &c) { c.idleRun(3); }); },
        "pending");
    expectRejects(
        [&] { interleave([](auto &c) { c.idleRuns(3, 2); }); },
        "pending");
    expectRejects(
        [&] { interleave([](auto &c) { c.activeRun(4); }); },
        "pending");
}

TEST(Controllers, FinishUnblocksExplicitRunCalls)
{
    MaxSleepController c;
    c.tick(true);
    c.tick(false);
    c.finish(); // flushes the pending interval
    c.idleRun(3);
    c.activeRun(2);
    EXPECT_DOUBLE_EQ(c.counts().transitions, 2.0);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 4.0);
    EXPECT_DOUBLE_EQ(c.counts().active, 3.0);
}

TEST(GradualSleep, MatchesAnalyticalModel)
{
    const ModelParams mp = params();
    lsim::energy::GradualSleepModel model(mp, 20);
    GradualSleepController ctrl(20);
    ctrl.idleRun(37);
    const auto expect = model.idleCounts(37);
    EXPECT_NEAR(ctrl.counts().sleep, expect.sleep, 1e-9);
    EXPECT_NEAR(ctrl.counts().unctrl_idle, expect.unctrl_idle, 1e-9);
    EXPECT_NEAR(ctrl.counts().transitions, expect.transitions, 1e-9);
}

TEST(GradualSleep, ResetClearsCounts)
{
    GradualSleepController c(4);
    c.idleRun(10);
    c.reset();
    EXPECT_DOUBLE_EQ(c.counts().sleep, 0.0);
    EXPECT_DOUBLE_EQ(c.counts().transitions, 0.0);
}

TEST(GradualSleep, ZeroSlicesRejected)
{
    expectRejects([] { GradualSleepController c(0); (void)c; },
                  "slice count");
}

TEST(Timeout, WaitsThenSleeps)
{
    TimeoutController c(5);
    c.idleRun(3); // shorter than timeout: all uncontrolled
    EXPECT_DOUBLE_EQ(c.counts().unctrl_idle, 3.0);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 0.0);
    c.idleRun(12); // 5 uncontrolled + 7 asleep
    EXPECT_DOUBLE_EQ(c.counts().unctrl_idle, 8.0);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 7.0);
    EXPECT_DOUBLE_EQ(c.counts().transitions, 1.0);
}

TEST(Timeout, ZeroTimeoutIsMaxSleep)
{
    TimeoutController t(0);
    MaxSleepController m;
    for (Cycle len : {1u, 5u, 100u}) {
        t.idleRun(len);
        m.idleRun(len);
    }
    EXPECT_DOUBLE_EQ(t.counts().sleep, m.counts().sleep);
    EXPECT_DOUBLE_EQ(t.counts().transitions,
                     m.counts().transitions);
}

TEST(Oracle, ChoosesPerIntervalOptimum)
{
    const ModelParams mp = params();
    const double be = lsim::energy::breakevenInterval(mp);
    OracleController c(be);
    const auto below = static_cast<Cycle>(be) - 1;
    const auto above = static_cast<Cycle>(be) + 5;
    c.idleRun(below);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 0.0);
    c.idleRun(above);
    EXPECT_DOUBLE_EQ(c.counts().sleep, static_cast<double>(above));
    EXPECT_DOUBLE_EQ(c.counts().transitions, 1.0);
}

TEST(Oracle, NeverWorseThanEitherBoundingPolicy)
{
    const ModelParams mp = params();
    const EnergyModel model(mp);
    const double be = lsim::energy::breakevenInterval(mp);
    OracleController oracle(be);
    MaxSleepController ms;
    AlwaysActiveController aa;
    const Cycle lens[] = {1, 3, 5, 18, 20, 25, 60, 200, 1};
    for (Cycle len : lens) {
        oracle.idleRun(len);
        ms.idleRun(len);
        aa.idleRun(len);
    }
    const double e_oracle = model.normalizedEnergy(oracle.counts());
    EXPECT_LE(e_oracle, model.normalizedEnergy(ms.counts()) + 1e-9);
    EXPECT_LE(e_oracle, model.normalizedEnergy(aa.counts()) + 1e-9);
}

TEST(Adaptive, PredictionTracksIntervals)
{
    AdaptiveController c(20.0, 0.5);
    EXPECT_DOUBLE_EQ(c.prediction(), 20.0);
    c.idleRun(100);
    EXPECT_DOUBLE_EQ(c.prediction(), 60.0); // 0.5*100 + 0.5*20
    c.idleRun(2);
    EXPECT_DOUBLE_EQ(c.prediction(), 31.0);
}

TEST(Adaptive, SleepsWhenPredictingLong)
{
    AdaptiveController c(10.0, 0.25);
    // Initial prediction equals breakeven: sleeps immediately.
    c.idleRun(50);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 50.0);
    EXPECT_DOUBLE_EQ(c.counts().unctrl_idle, 0.0);
}

TEST(Adaptive, TimesOutWhenPredictingShort)
{
    AdaptiveController c(10.0, 1.0); // prediction = last interval
    c.idleRun(2);  // sleeps (initial prediction = breakeven)
    c.idleRun(30); // prediction now 2 -> timeout path: 10 ui + 20 sleep
    EXPECT_DOUBLE_EQ(c.counts().unctrl_idle, 10.0);
    EXPECT_DOUBLE_EQ(c.counts().sleep, 2.0 + 20.0);
    c.reset();
    EXPECT_DOUBLE_EQ(c.prediction(), 10.0);
}

TEST(Adaptive, BadWeightRejected)
{
    expectRejects([] { AdaptiveController c(10.0, 0.0); (void)c; },
                  "EWMA");
}

TEST(WeightedGradualSleep, UniformWeightsMatchGradualSleep)
{
    // Equal weights must reproduce the plain GradualSleep design.
    WeightedGradualSleepController weighted(
        {0.25, 0.25, 0.25, 0.25});
    GradualSleepController uniform(4);
    for (Cycle len : {1u, 2u, 3u, 4u, 5u, 50u}) {
        weighted.idleRun(len);
        uniform.idleRun(len);
    }
    EXPECT_NEAR(weighted.counts().sleep, uniform.counts().sleep,
                1e-9);
    EXPECT_NEAR(weighted.counts().unctrl_idle,
                uniform.counts().unctrl_idle, 1e-9);
    EXPECT_NEAR(weighted.counts().transitions,
                uniform.counts().transitions, 1e-9);
}

TEST(WeightedGradualSleep, FrontLoadedSleepsMoreEarly)
{
    // Datapath weights put most of the unit to sleep on cycle 1:
    // more sleep state than uniform slicing for short intervals.
    WeightedGradualSleepController dp(
        WeightedGradualSleepController::datapathWeights());
    GradualSleepController uniform(4);
    dp.idleRun(2);
    uniform.idleRun(2);
    EXPECT_GT(dp.counts().sleep, uniform.counts().sleep);
}

TEST(WeightedGradualSleep, ConservesCycles)
{
    WeightedGradualSleepController c(
        WeightedGradualSleepController::datapathWeights());
    for (Cycle len : {1u, 3u, 4u, 10u, 100u})
        c.idleRun(len);
    EXPECT_NEAR(c.counts().unctrl_idle + c.counts().sleep,
                1.0 + 3 + 4 + 10 + 100, 1e-9);
    EXPECT_LE(c.counts().transitions, 5.0 + 1e-12);
}

TEST(WeightedGradualSleep, BadWeightsRejected)
{
    expectRejects(
        [] { WeightedGradualSleepController c({}); (void)c; },
        "no slices");
    expectRejects(
        [] {
            WeightedGradualSleepController c({0.5, 0.4});
            (void)c;
        },
        "sum");
    expectRejects(
        [] {
            WeightedGradualSleepController c({1.5, -0.5});
            (void)c;
        },
        "positive");
}

TEST(Factories, PaperSetOrderAndNames)
{
    const auto set = makePaperControllers(params());
    ASSERT_EQ(set.size(), 4u);
    EXPECT_EQ(set[0]->name(), "MaxSleep");
    EXPECT_EQ(set[1]->name(), "GradualSleep");
    EXPECT_EQ(set[2]->name(), "AlwaysActive");
    EXPECT_EQ(set[3]->name(), "NoOverhead");
}

TEST(Factories, ExtensionSet)
{
    const auto set = makeExtensionControllers(params());
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0]->name().substr(0, 7), "Timeout");
    EXPECT_EQ(set[1]->name(), "Oracle");
    EXPECT_EQ(set[2]->name(), "Adaptive");
}

/**
 * Property: the bulk idleRuns path must match the per-run loop for
 * every history-free controller.
 */
class BulkEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, Cycle>>
{
  protected:
    std::unique_ptr<SleepController>
    make(int which) const
    {
        switch (which) {
          case 0:
            return std::make_unique<AlwaysActiveController>();
          case 1:
            return std::make_unique<MaxSleepController>();
          case 2:
            return std::make_unique<NoOverheadController>();
          case 3:
            return std::make_unique<GradualSleepController>(20);
          case 4:
            return std::make_unique<TimeoutController>(10);
          default:
            return std::make_unique<OracleController>(20.0);
        }
    }
};

TEST_P(BulkEquivalenceTest, IdleRunsEqualsLoop)
{
    auto [which, len] = GetParam();
    auto bulk = make(which);
    auto loop = make(which);
    bulk->idleRuns(len, 137);
    for (int i = 0; i < 137; ++i)
        loop->idleRun(len);
    EXPECT_NEAR(bulk->counts().sleep, loop->counts().sleep, 1e-6);
    EXPECT_NEAR(bulk->counts().unctrl_idle,
                loop->counts().unctrl_idle, 1e-6);
    EXPECT_NEAR(bulk->counts().transitions,
                loop->counts().transitions, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllControllers, BulkEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values<Cycle>(1, 7, 10, 11, 20, 21,
                                                100)));

} // namespace
