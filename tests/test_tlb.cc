/**
 * @file
 * Unit tests for the TLB model.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/tlb.hh"

namespace
{

using lsim::Addr;
using lsim::cache::Tlb;
using lsim::cache::TlbConfig;

TlbConfig
smallConfig()
{
    TlbConfig cfg;
    cfg.name = "test";
    cfg.entries = 8;
    cfg.assoc = 2;
    cfg.page_bytes = 8 * 1024;
    cfg.miss_latency = 30;
    return cfg;
}

TEST(Tlb, MissThenHit)
{
    Tlb t(smallConfig());
    EXPECT_EQ(t.access(0x10000), 30u);
    EXPECT_EQ(t.access(0x10000), 0u);
    EXPECT_EQ(t.access(0x10000 + 8191), 0u); // same page
    EXPECT_EQ(t.access(0x10000 + 8192), 30u); // next page
    EXPECT_EQ(t.stats().accesses, 4u);
    EXPECT_EQ(t.stats().misses, 2u);
}

TEST(Tlb, LruWithinSet)
{
    Tlb t(smallConfig());
    // 4 sets; pages with the same (vpn % 4) collide.
    const Addr page = 8 * 1024;
    const Addr set_stride = 4 * page;
    t.access(0 * set_stride); // way 0
    t.access(1 * set_stride); // way 1
    t.access(0 * set_stride); // refresh
    t.access(2 * set_stride); // evicts 1*set_stride
    EXPECT_EQ(t.access(0 * set_stride), 0u);
    EXPECT_EQ(t.access(1 * set_stride), 30u);
}

TEST(Tlb, FlushDropsTranslations)
{
    Tlb t(smallConfig());
    t.access(0x4000);
    t.flush();
    EXPECT_EQ(t.access(0x4000), 30u);
}

TEST(Tlb, MissRate)
{
    Tlb t(smallConfig());
    t.access(0x0);
    t.access(0x0);
    EXPECT_DOUBLE_EQ(t.stats().missRate(), 0.5);
}

TEST(TlbConfig, Validation)
{
    TlbConfig bad = smallConfig();
    bad.entries = 6; // 3 sets
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    TlbConfig bad2 = smallConfig();
    bad2.assoc = 3;
    EXPECT_THROW(bad2.validate(), std::invalid_argument);
    TlbConfig bad3 = smallConfig();
    bad3.page_bytes = 5000;
    EXPECT_THROW(bad3.validate(), std::invalid_argument);
}

} // namespace
