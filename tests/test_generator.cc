/**
 * @file
 * Unit and statistical tests for the synthetic workload generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generator.hh"
#include "trace/profile.hh"

namespace
{

using lsim::Addr;
using lsim::kNoReg;
using lsim::trace::MicroOp;
using lsim::trace::OpClass;
using lsim::trace::TraceGenerator;
using lsim::trace::WorkloadProfile;
using lsim::trace::kCodeBase;
using lsim::trace::kNumLogicalRegs;
using lsim::trace::profileByName;

WorkloadProfile
simpleProfile()
{
    WorkloadProfile p;
    p.name = "unit-test";
    p.suite = "test";
    p.num_blocks = 64;
    return p;
}

TEST(Generator, DeterministicForSameSeed)
{
    TraceGenerator a(simpleProfile(), 99);
    TraceGenerator b(simpleProfile(), 99);
    for (int i = 0; i < 5000; ++i) {
        const MicroOp oa = a.next();
        const MicroOp ob = b.next();
        ASSERT_EQ(oa.pc, ob.pc);
        ASSERT_EQ(oa.cls, ob.cls);
        ASSERT_EQ(oa.mem_addr, ob.mem_addr);
        ASSERT_EQ(oa.taken, ob.taken);
    }
}

TEST(Generator, DifferentSeedsDiverge)
{
    TraceGenerator a(simpleProfile(), 1);
    TraceGenerator b(simpleProfile(), 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next().pc == b.next().pc)
            ++same;
    EXPECT_LT(same, 1000);
}

TEST(Generator, MixFractionsApproximated)
{
    WorkloadProfile p = simpleProfile();
    p.frac_load = 0.30;
    p.frac_store = 0.10;
    p.frac_branch = 0.20;
    p.num_blocks = 256;
    TraceGenerator gen(p, 7);
    std::map<OpClass, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().cls];
    const double load_frac =
        static_cast<double>(counts[OpClass::Load]) / n;
    const double store_frac =
        static_cast<double>(counts[OpClass::Store]) / n;
    const double ctrl_frac = static_cast<double>(
        counts[OpClass::Branch] + counts[OpClass::Call] +
        counts[OpClass::Return]) / n;
    EXPECT_NEAR(load_frac, 0.30, 0.04);
    EXPECT_NEAR(store_frac, 0.10, 0.03);
    EXPECT_NEAR(ctrl_frac, 0.20, 0.05);
}

TEST(Generator, RegistersWithinConvention)
{
    TraceGenerator gen(simpleProfile(), 3);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.dst != kNoReg) {
            if (op.isFp()) {
                EXPECT_GE(op.dst, kNumLogicalRegs);
                EXPECT_LT(op.dst, 2 * kNumLogicalRegs);
            } else {
                EXPECT_GE(op.dst, 0);
                EXPECT_LT(op.dst, kNumLogicalRegs);
            }
        }
        if (op.isStore()) {
            EXPECT_EQ(op.dst, kNoReg);
        }
        if (op.isControl()) {
            EXPECT_EQ(op.dst, kNoReg);
            EXPECT_NE(op.src1, kNoReg);
        }
    }
}

TEST(Generator, ControlOpsHaveValidTargets)
{
    TraceGenerator gen(simpleProfile(), 5);
    for (int i = 0; i < 50000; ++i) {
        const MicroOp op = gen.next();
        if (op.isControl() && op.taken) {
            EXPECT_GE(op.target, kCodeBase);
            EXPECT_LT(op.target, kCodeBase + gen.codeFootprint());
        }
    }
}

TEST(Generator, CallsAndReturnsBalance)
{
    WorkloadProfile p = simpleProfile();
    p.call_fraction = 0.10;
    TraceGenerator gen(p, 11);
    std::int64_t depth = 0;
    std::int64_t max_depth = 0;
    int calls = 0, rets = 0;
    for (int i = 0; i < 100000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls == OpClass::Call) {
            ++depth;
            ++calls;
        } else if (op.cls == OpClass::Return) {
            --depth;
            ++rets;
        }
        max_depth = std::max(max_depth, depth);
    }
    EXPECT_GT(calls, 0);
    // Every return matches some call (depth never goes negative by
    // more than the generator's empty-stack fallback allows).
    EXPECT_GE(depth, -1);
    EXPECT_NEAR(calls, rets, calls * 0.05 + 10);
}

TEST(Generator, PcsFallInsideCodeFootprint)
{
    TraceGenerator gen(simpleProfile(), 13);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        EXPECT_GE(op.pc, kCodeBase);
        EXPECT_LT(op.pc, kCodeBase + gen.codeFootprint());
    }
}

TEST(Generator, MemAddressesInDataOrStackRegions)
{
    TraceGenerator gen(simpleProfile(), 17);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.isMem()) {
            const bool in_data =
                op.mem_addr >= lsim::trace::kDataBase &&
                op.mem_addr < lsim::trace::kDataBase +
                    2 * gen.profile().working_set;
            const bool in_stack =
                op.mem_addr >= lsim::trace::kStackBase &&
                op.mem_addr < lsim::trace::kStackBase + 32 * 1024;
            EXPECT_TRUE(in_data || in_stack)
                << std::hex << op.mem_addr;
        }
    }
}

TEST(Generator, BranchFractionTracksProfile)
{
    for (const char *name : {"gcc", "gzip", "mcf"}) {
        const auto &p = profileByName(name);
        TraceGenerator gen(p, 1);
        int ctrl = 0;
        const int n = 100000;
        for (int i = 0; i < n; ++i)
            if (gen.next().isControl())
                ++ctrl;
        EXPECT_NEAR(static_cast<double>(ctrl) / n, p.frac_branch,
                    0.05)
            << name;
    }
}

TEST(Generator, IcountAdvances)
{
    TraceGenerator gen(simpleProfile(), 19);
    EXPECT_EQ(gen.icount(), 0u);
    gen.next();
    gen.next();
    EXPECT_EQ(gen.icount(), 2u);
    EXPECT_GT(gen.numStaticInsts(), 0u);
}

TEST(Generator, LoopStructureRevisitsBlocks)
{
    // Loop nests revisit the same pc many times within a window.
    TraceGenerator gen(simpleProfile(), 23);
    std::map<Addr, int> pc_counts;
    for (int i = 0; i < 50000; ++i)
        ++pc_counts[gen.next().pc];
    int max_count = 0;
    for (const auto &[pc, count] : pc_counts)
        max_count = std::max(max_count, count);
    EXPECT_GT(max_count, 10);
}

} // namespace
