/**
 * @file
 * Unit tests for the idle-interval recorder (Figure 7 statistics).
 */

#include <gtest/gtest.h>

#include "sleep/idle_stats.hh"

namespace
{

using lsim::sleep::IdleIntervalRecorder;

TEST(IdleStats, TickStreamBasics)
{
    IdleIntervalRecorder r;
    // busy busy idle idle idle busy idle idle
    for (bool b : {true, true, false, false, false, true, false,
                   false})
        r.tick(b);
    r.finish();
    EXPECT_EQ(r.totalCycles(), 8u);
    EXPECT_EQ(r.idleCycles(), 5u);
    EXPECT_EQ(r.numIntervals(), 2u);
    EXPECT_DOUBLE_EQ(r.meanInterval(), 2.5);
    EXPECT_DOUBLE_EQ(r.idleFraction(), 5.0 / 8.0);
}

TEST(IdleStats, HistogramWeightedByCycles)
{
    IdleIntervalRecorder r;
    r.idleRun(3);
    r.activeRun(1);
    r.idleRun(8);
    r.activeRun(1);
    r.finish();
    const auto &h = r.histogram();
    // 3 cycles in bucket [2,4), 8 cycles in bucket [8,16).
    EXPECT_DOUBLE_EQ(h.bucketWeight(1), 3.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(3), 8.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 11.0);
}

TEST(IdleStats, OpenRunCountedInIdleCycles)
{
    IdleIntervalRecorder r;
    r.idleRun(4);
    // Not yet finished: interval open but cycles counted.
    EXPECT_EQ(r.idleCycles(), 4u);
    EXPECT_EQ(r.numIntervals(), 0u);
    r.finish();
    EXPECT_EQ(r.numIntervals(), 1u);
}

TEST(IdleStats, RunsMergeAcrossCalls)
{
    IdleIntervalRecorder r;
    r.idleRun(2);
    r.idleRun(3); // same interval continues
    r.activeRun(1);
    r.finish();
    EXPECT_EQ(r.numIntervals(), 1u);
    EXPECT_DOUBLE_EQ(r.meanInterval(), 5.0);
}

TEST(IdleStats, BulkIdleRunsMatchesLoop)
{
    IdleIntervalRecorder bulk, loop;
    bulk.idleRuns(6, 100);
    for (int i = 0; i < 100; ++i) {
        loop.idleRun(6);
        loop.activeRun(0); // close the interval without cycles
    }
    // activeRun(0) is a no-op, so close manually via alternation:
    loop.reset();
    for (int i = 0; i < 100; ++i) {
        loop.idleRun(6);
        loop.activeRun(1);
    }
    bulk.finish();
    loop.finish();
    EXPECT_EQ(bulk.numIntervals(), loop.numIntervals());
    EXPECT_DOUBLE_EQ(bulk.meanInterval(), loop.meanInterval());
    EXPECT_DOUBLE_EQ(bulk.histogram().totalWeight(),
                     loop.histogram().totalWeight());
}

TEST(IdleStats, ClampAccumulatesLongIntervals)
{
    IdleIntervalRecorder r(8192);
    r.idleRun(10000);
    r.activeRun(1);
    r.idleRun(20000);
    r.activeRun(1);
    r.finish();
    const auto &h = r.histogram();
    EXPECT_DOUBLE_EQ(h.bucketWeight(h.numBuckets() - 1), 30000.0);
}

TEST(IdleStats, ResetRestoresEmpty)
{
    IdleIntervalRecorder r;
    r.idleRun(5);
    r.finish();
    r.reset();
    EXPECT_EQ(r.totalCycles(), 0u);
    EXPECT_EQ(r.numIntervals(), 0u);
    EXPECT_DOUBLE_EQ(r.idleFraction(), 0.0);
}

TEST(IdleStats, TickAfterFinishStartsFresh)
{
    IdleIntervalRecorder r;
    r.idleRun(3);
    r.finish();
    r.idleRun(2);
    r.finish();
    EXPECT_EQ(r.numIntervals(), 2u);
}

} // namespace
