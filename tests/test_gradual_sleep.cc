/**
 * @file
 * Unit and property tests for the GradualSleep analytical model
 * (Section 3.2, Figure 5c).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/breakeven.hh"
#include "energy/gradual_sleep_model.hh"

namespace
{

using lsim::Cycle;
using lsim::energy::GradualSleepModel;
using lsim::energy::ModelParams;
using lsim::energy::breakevenInterval;

ModelParams
params(double p = 0.05, double alpha = 0.5)
{
    ModelParams mp;
    mp.p = p;
    mp.alpha = alpha;
    mp.k = 0.001;
    mp.s = 0.01;
    return mp;
}

TEST(GradualSleep, DefaultSliceCountIsBreakeven)
{
    const ModelParams mp = params();
    GradualSleepModel gs(mp);
    EXPECT_EQ(gs.numSlices(),
              static_cast<unsigned>(
                  std::llround(breakevenInterval(mp))));
}

TEST(GradualSleep, CountsConserveCycles)
{
    GradualSleepModel gs(params(), 20);
    for (Cycle len : {0u, 1u, 5u, 19u, 20u, 21u, 100u}) {
        const auto cc = gs.idleCounts(len);
        EXPECT_NEAR(cc.unctrl_idle + cc.sleep,
                    static_cast<double>(len), 1e-9)
            << "interval " << len;
        EXPECT_DOUBLE_EQ(cc.active, 0.0);
    }
}

TEST(GradualSleep, TransitionsProportionalToSleepingSlices)
{
    GradualSleepModel gs(params(), 10);
    EXPECT_NEAR(gs.idleCounts(3).transitions, 0.3, 1e-12);
    EXPECT_NEAR(gs.idleCounts(10).transitions, 1.0, 1e-12);
    EXPECT_NEAR(gs.idleCounts(50).transitions, 1.0, 1e-12);
}

TEST(GradualSleep, SingleSliceEqualsMaxSleep)
{
    GradualSleepModel gs(params(), 1);
    for (Cycle len : {1u, 2u, 10u, 100u}) {
        EXPECT_NEAR(gs.idleEnergy(len), gs.maxSleepIdleEnergy(len),
                    1e-9);
    }
}

TEST(GradualSleep, ManySlicesApproachAlwaysActive)
{
    GradualSleepModel gs(params(), 100000);
    for (Cycle len : {1u, 10u, 100u}) {
        EXPECT_NEAR(gs.idleEnergy(len),
                    gs.alwaysActiveIdleEnergy(len),
                    0.05 * gs.alwaysActiveIdleEnergy(len) + 1e-3);
    }
}

TEST(GradualSleep, Figure5cShape)
{
    // p = 0.05, alpha = 0.5, slices = breakeven (Section 3.2):
    // GradualSleep beats MaxSleep for short intervals, beats
    // AlwaysActive for long ones, and exceeds both near breakeven.
    const ModelParams mp = params();
    GradualSleepModel gs(mp);
    const auto be =
        static_cast<Cycle>(std::llround(breakevenInterval(mp)));

    EXPECT_LT(gs.idleEnergy(1), gs.maxSleepIdleEnergy(1));
    EXPECT_LT(gs.idleEnergy(100), gs.alwaysActiveIdleEnergy(100));
    EXPECT_GT(gs.idleEnergy(be), gs.maxSleepIdleEnergy(be));
    EXPECT_GT(gs.idleEnergy(be), gs.alwaysActiveIdleEnergy(be));
}

TEST(GradualSleep, HedgesAgainstWorstCaseAlternation)
{
    // Figure 4d's pathology: 1-cycle idle intervals. GradualSleep's
    // cost per interval is a 1/n fraction of MaxSleep's transition.
    const ModelParams mp = params(0.5);
    GradualSleepModel gs(mp, 2);
    EXPECT_LT(gs.idleEnergy(1), gs.maxSleepIdleEnergy(1));
}

TEST(GradualSleep, EnergyMonotoneInInterval)
{
    GradualSleepModel gs(params(), 20);
    double prev = 0.0;
    for (Cycle len = 1; len <= 200; ++len) {
        const double e = gs.idleEnergy(len);
        EXPECT_GE(e, prev);
        prev = e;
    }
}

TEST(GradualSleep, DegenerateTechnologyFallsBackToOneSlice)
{
    ModelParams mp = params();
    mp.p = 0.0; // sleep never pays off; breakeven infinite
    GradualSleepModel gs(mp);
    EXPECT_EQ(gs.numSlices(), 1u);
}

/**
 * Cross-validation against an explicit per-cycle shift-register
 * simulation of the sliced circuit.
 */
class GradualSleepSimTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Cycle>>
{
};

TEST_P(GradualSleepSimTest, ClosedFormMatchesShiftRegisterSim)
{
    auto [slices, len] = GetParam();
    GradualSleepModel gs(params(), slices);
    const auto cc = gs.idleCounts(len);

    // Simulate: at idle cycle t (1-based), slices 1..min(t, n) are
    // asleep; slice i transitions at cycle i.
    double sim_sleep = 0.0, sim_ui = 0.0, sim_trans = 0.0;
    const double n = slices;
    for (Cycle t = 1; t <= len; ++t) {
        const double asleep = std::min<double>(t, n);
        sim_sleep += asleep / n;
        sim_ui += (n - asleep) / n;
        if (t <= slices)
            sim_trans += 1.0 / n;
    }
    EXPECT_NEAR(cc.sleep, sim_sleep, 1e-9);
    EXPECT_NEAR(cc.unctrl_idle, sim_ui, 1e-9);
    EXPECT_NEAR(cc.transitions, sim_trans, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GradualSleepSimTest,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 20u, 64u),
                       ::testing::Values<Cycle>(1, 3, 19, 20, 21, 64,
                                                100, 1000)));

} // namespace
