/**
 * @file
 * Unit tests for the reorder buffer.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "cpu/rob.hh"

namespace
{

using lsim::cpu::InstState;
using lsim::cpu::ReorderBuffer;
using lsim::cpu::RobEntry;

TEST(Rob, AllocateAssignsIncreasingSeq)
{
    ReorderBuffer rob(8);
    const auto s1 = rob.allocate().seq;
    const auto s2 = rob.allocate().seq;
    EXPECT_EQ(s2, s1 + 1);
    EXPECT_EQ(rob.size(), 2u);
}

TEST(Rob, HeadIsOldest)
{
    ReorderBuffer rob(8);
    const auto s1 = rob.allocate().seq;
    rob.allocate();
    EXPECT_EQ(rob.head().seq, s1);
    rob.popHead();
    EXPECT_EQ(rob.head().seq, s1 + 1);
}

TEST(Rob, BySeqAndContains)
{
    ReorderBuffer rob(8);
    const auto s1 = rob.allocate().seq;
    const auto s2 = rob.allocate().seq;
    rob.bySeq(s2).state = InstState::Complete;
    EXPECT_EQ(rob.bySeq(s2).state, InstState::Complete);
    EXPECT_EQ(rob.bySeq(s1).state, InstState::Dispatched);
    EXPECT_TRUE(rob.contains(s1));
    rob.popHead();
    EXPECT_FALSE(rob.contains(s1));
    EXPECT_TRUE(rob.contains(s2));
}

TEST(Rob, ForEachVisitsOldestFirst)
{
    ReorderBuffer rob(4);
    rob.allocate();
    rob.allocate();
    rob.allocate();
    std::uint64_t prev = 0;
    rob.forEach([&](RobEntry &e) {
        EXPECT_GT(e.seq, prev);
        prev = e.seq;
    });
}

TEST(Rob, FullAndEmpty)
{
    ReorderBuffer rob(2);
    EXPECT_TRUE(rob.empty());
    rob.allocate();
    rob.allocate();
    EXPECT_TRUE(rob.full());
    rob.popHead();
    EXPECT_FALSE(rob.full());
}

TEST(Rob, RejectsZeroCapacity)
{
    EXPECT_THROW(ReorderBuffer(0), std::invalid_argument);
}

TEST(RobDeath, Misuse)
{
    ReorderBuffer rob(1);
    EXPECT_DEATH(rob.head(), "empty");
    EXPECT_DEATH(rob.popHead(), "empty");
    rob.allocate();
    EXPECT_DEATH(rob.allocate(), "full");
    EXPECT_DEATH(rob.bySeq(999), "not in flight");
}

/** Wraparound across many allocate/pop cycles at varied capacity. */
class RobWrapTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RobWrapTest, SeqStableAcrossWraparound)
{
    const unsigned cap = GetParam();
    ReorderBuffer rob(cap);
    std::uint64_t expected_head = 1;
    for (int round = 0; round < 100; ++round) {
        // Fill half, drain a quarter, repeatedly.
        while (!rob.full())
            rob.allocate();
        for (unsigned i = 0; i < (cap + 1) / 2; ++i) {
            ASSERT_EQ(rob.head().seq, expected_head);
            ASSERT_TRUE(rob.contains(expected_head));
            rob.popHead();
            ++expected_head;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RobWrapTest,
                         ::testing::Values(1u, 2u, 3u, 8u, 128u));

} // namespace
