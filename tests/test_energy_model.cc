/**
 * @file
 * Unit tests for the equation (1)-(3) energy model.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "energy/model.hh"

namespace
{

/**
 * These sites formerly fatal()ed out of the process; the library now
 * throws std::invalid_argument (caught at the CLI boundary), so the
 * tests assert on the exception and its message, not a process exit.
 */
template <typename Fn>
void
expectRejects(Fn &&fn, const std::string &substr)
{
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(std::string(e.what()).find(substr) !=
                    std::string::npos)
            << "unexpected message: " << e.what();
    }
}

using lsim::energy::CycleCounts;
using lsim::energy::EnergyBreakdown;
using lsim::energy::EnergyModel;
using lsim::energy::ModelParams;

ModelParams
paperDefaults()
{
    // Section 3.1 / Table 4 analysis values.
    ModelParams mp;
    mp.p = 0.05;
    mp.k = 0.001;
    mp.s = 0.01;
    mp.alpha = 0.5;
    mp.duty = 0.5;
    return mp;
}

TEST(EnergyModel, PureComputeWithoutLeakageIsUnity)
{
    ModelParams mp = paperDefaults();
    mp.p = 0.0; // no leakage at all
    EnergyModel m(mp);
    CycleCounts cc;
    cc.active = 1000;
    EXPECT_DOUBLE_EQ(m.normalizedEnergy(cc), 1000.0);
}

TEST(EnergyModel, ActiveCycleTermMatchesClosedForm)
{
    const ModelParams mp = paperDefaults();
    EnergyModel m(mp);
    // 1 + (p/alpha) * [(1-D) + D*(alpha*k + 1-alpha)]
    const double expected = 1.0 + (0.05 / 0.5) *
        (0.5 + 0.5 * (0.5 * 0.001 + 0.5));
    EXPECT_NEAR(m.activeCycleEnergy(), expected, 1e-12);
}

TEST(EnergyModel, UncontrolledIdleTermMatchesClosedForm)
{
    const ModelParams mp = paperDefaults();
    EnergyModel m(mp);
    const double expected = (0.05 / 0.5) * (0.5 * 0.001 + 0.5);
    EXPECT_NEAR(m.unctrlIdleCycleEnergy(), expected, 1e-12);
}

TEST(EnergyModel, SleepAndTransitionTerms)
{
    const ModelParams mp = paperDefaults();
    EnergyModel m(mp);
    EXPECT_NEAR(m.sleepCycleEnergy(), 0.001 * 0.05 / 0.5, 1e-15);
    EXPECT_NEAR(m.transitionEnergy(), 0.5 / 0.5 + 0.01 / 0.5, 1e-12);
}

TEST(EnergyModel, BreakdownSumsToTotal)
{
    EnergyModel m(paperDefaults());
    CycleCounts cc;
    cc.active = 500;
    cc.unctrl_idle = 300;
    cc.sleep = 200;
    cc.transitions = 40;
    const EnergyBreakdown eb = m.breakdown(cc);
    EXPECT_NEAR(eb.total(), m.normalizedEnergy(cc), 1e-9);
    EXPECT_NEAR(eb.leakage(),
                eb.active_leak + eb.idle_leak + eb.sleep_leak, 1e-12);
    EXPECT_GT(eb.leakageFraction(), 0.0);
    EXPECT_LT(eb.leakageFraction(), 1.0);
}

TEST(EnergyModel, AbsoluteEnergyScalesWithEA)
{
    ModelParams mp = paperDefaults();
    mp.e_dyn_fj = 2000.0;
    EnergyModel m(mp);
    CycleCounts cc;
    cc.active = 10;
    // E_A = alpha * E_D = 1000 fJ per unit of normalized energy.
    EXPECT_NEAR(m.absoluteEnergyFj(cc),
                m.normalizedEnergy(cc) * 1000.0, 1e-6);
}

TEST(EnergyModel, SleepingIsCheaperThanUncontrolledIdle)
{
    EnergyModel m(paperDefaults());
    EXPECT_LT(m.sleepCycleEnergy(), m.unctrlIdleCycleEnergy());
}

TEST(EnergyModel, CountsAddCommutatively)
{
    EnergyModel m(paperDefaults());
    CycleCounts a, b;
    a.active = 10;
    a.sleep = 5;
    b.unctrl_idle = 7;
    b.transitions = 2;
    CycleCounts ab = a;
    ab += b;
    EXPECT_NEAR(m.normalizedEnergy(ab),
                m.normalizedEnergy(a) + m.normalizedEnergy(b), 1e-9);
    EXPECT_DOUBLE_EQ(ab.total(), 22.0);
}

TEST(EnergyModel, BreakdownOperators)
{
    EnergyModel m(paperDefaults());
    CycleCounts cc;
    cc.active = 100;
    cc.unctrl_idle = 50;
    EnergyBreakdown eb = m.breakdown(cc);
    EnergyBreakdown sum = eb;
    sum += eb;
    EXPECT_NEAR(sum.total(), 2.0 * eb.total(), 1e-9);
    sum *= 0.5;
    EXPECT_NEAR(sum.total(), eb.total(), 1e-9);
}

TEST(EnergyModel, LeakageFractionZeroWhenEmpty)
{
    EnergyBreakdown eb;
    EXPECT_DOUBLE_EQ(eb.leakageFraction(), 0.0);
}

TEST(EnergyModel, HigherAlphaCheapensTransition)
{
    // More nodes already in the low leakage state -> less discharge.
    ModelParams lo = paperDefaults();
    lo.alpha = 0.25;
    ModelParams hi = paperDefaults();
    hi.alpha = 0.75;
    EXPECT_GT(EnergyModel(lo).transitionEnergy(),
              EnergyModel(hi).transitionEnergy());
}

TEST(EnergyModelReject, Validation)
{
    ModelParams mp = paperDefaults();
    mp.p = 1.5;
    expectRejects([&] { EnergyModel m(mp); (void)m; }, "leakage factor");

    ModelParams mp2 = paperDefaults();
    mp2.alpha = 0.0;
    expectRejects([&] { EnergyModel m2(mp2); (void)m2; }, "activity factor");

    ModelParams mp3 = paperDefaults();
    mp3.duty = 1.5;
    expectRejects([&] { EnergyModel m3(mp3); (void)m3; }, "duty");

    ModelParams mp4 = paperDefaults();
    mp4.e_dyn_fj = -1.0;
    expectRejects([&] { EnergyModel m4(mp4); (void)m4; }, "positive");
}

/** Property sweep: energy is monotone in each count. */
class EnergyMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(EnergyMonotonicityTest, MonotoneInCounts)
{
    auto [p, alpha] = GetParam();
    ModelParams mp = paperDefaults();
    mp.p = p;
    mp.alpha = alpha;
    EnergyModel m(mp);
    CycleCounts base;
    base.active = 100;
    base.unctrl_idle = 100;
    base.sleep = 100;
    base.transitions = 10;
    const double e0 = m.normalizedEnergy(base);
    for (auto bump : {&CycleCounts::active, &CycleCounts::unctrl_idle,
                      &CycleCounts::sleep, &CycleCounts::transitions}) {
        CycleCounts more = base;
        more.*bump += 1.0;
        EXPECT_GE(m.normalizedEnergy(more), e0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnergyMonotonicityTest,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.5, 1.0),
                       ::testing::Values(0.25, 0.5, 0.75)));

} // namespace
