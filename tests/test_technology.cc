/**
 * @file
 * Unit tests for circuit/technology: subthreshold leakage scaling and
 * the alpha-power delay model.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include <cmath>

#include "circuit/technology.hh"

namespace
{

/**
 * These sites formerly fatal()ed out of the process; the library now
 * throws std::invalid_argument (caught at the CLI boundary), so the
 * tests assert on the exception and its message, not a process exit.
 */
template <typename Fn>
void
expectRejects(Fn &&fn, const std::string &substr)
{
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(std::string(e.what()).find(substr) !=
                    std::string::npos)
            << "unexpected message: " << e.what();
    }
}

using lsim::circuit::Technology;

TEST(Technology, DefaultsValidate)
{
    Technology t;
    t.validate();
    EXPECT_DOUBLE_EQ(t.periodPs(), 250.0);
}

TEST(Technology, ThermalVoltageAtRoomTemp)
{
    Technology t;
    t.temperature_k = 300.0;
    EXPECT_NEAR(t.thermalVoltage(), 0.02585, 2e-4);
}

TEST(Technology, LeakageScaleExponential)
{
    Technology t;
    const double s1 = t.leakageScale(0.2);
    const double s2 = t.leakageScale(0.3);
    const double s3 = t.leakageScale(0.4);
    // Equal Vt steps give equal ratios.
    EXPECT_NEAR(s1 / s2, s2 / s3, 1e-9 * s1 / s2);
    EXPECT_GT(s1, s2);
    EXPECT_GT(s2, s3);
}

TEST(Technology, LeakageGrowsWithTemperature)
{
    Technology cold, hot;
    cold.temperature_k = 300.0;
    hot.temperature_k = 400.0;
    EXPECT_GT(hot.leakageScale(0.3), cold.leakageScale(0.3));
}

TEST(Technology, DelayFactorNormalizedAtDefaultCorner)
{
    Technology t;
    EXPECT_NEAR(t.delayFactor(t.vt_low), 1.0, 1e-12);
    // Higher threshold means slower device.
    EXPECT_GT(t.delayFactor(t.vt_high), t.delayFactor(t.vt_low));
}

TEST(Technology, LowerVddIsSlower)
{
    Technology nominal, drooped;
    drooped.vdd = 0.8;
    EXPECT_GT(drooped.delayFactor(nominal.vt_low),
              nominal.delayFactor(nominal.vt_low));
}

TEST(TechnologyReject, Validation)
{
    Technology t;
    t.vdd = -1.0;
    expectRejects([&] { t.validate(); }, "vdd must be positive");

    Technology t2;
    t2.vt_high = t2.vt_low; // not strictly greater
    expectRejects([&] { t2.validate(); }, "vt_low < vt_high");

    Technology t3;
    t3.vt_high = t3.vdd + 0.1;
    expectRejects([&] { t3.validate(); }, "below vdd");

    Technology t4;
    t4.clock_ghz = 0.0;
    expectRejects([&] { t4.validate(); }, "clock frequency");

    Technology t5;
    t5.swing_factor = 5.0;
    expectRejects([&] { t5.validate(); }, "swing factor");
}

} // namespace
