/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/cache.hh"

namespace
{

using lsim::Addr;
using lsim::Cycle;
using lsim::cache::Cache;
using lsim::cache::CacheConfig;

CacheConfig
smallConfig()
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    CacheConfig cfg;
    cfg.name = "test";
    cfg.size_bytes = 512;
    cfg.assoc = 2;
    cfg.line_bytes = 64;
    cfg.hit_latency = 2;
    return cfg;
}

TEST(CacheConfig, GeometryDerivation)
{
    EXPECT_EQ(smallConfig().numSets(), 4u);
    CacheConfig l2;
    l2.size_bytes = 2 * 1024 * 1024;
    l2.assoc = 8;
    l2.line_bytes = 128;
    EXPECT_EQ(l2.numSets(), 2048u);
}

TEST(CacheConfig, Validation)
{
    CacheConfig bad = smallConfig();
    bad.line_bytes = 48;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    CacheConfig bad2 = smallConfig();
    bad2.size_bytes = 0;
    EXPECT_THROW(bad2.validate(), std::invalid_argument);
    CacheConfig bad3 = smallConfig();
    bad3.size_bytes = 384; // 3 sets
    EXPECT_THROW(bad3.validate(), std::invalid_argument);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallConfig(), nullptr, 80);
    EXPECT_EQ(c.access(0x1000, false), 2u + 80u);
    EXPECT_EQ(c.access(0x1000, false), 2u);
    EXPECT_EQ(c.access(0x103f, false), 2u); // same line
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallConfig(), nullptr, 80);
    // Three lines mapping to set 0 (stride = sets*line = 256).
    c.access(0x0000, false);
    c.access(0x0100, false);
    c.access(0x0000, false); // refresh LRU of first line
    c.access(0x0200, false); // evicts 0x0100
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0100));
    EXPECT_TRUE(c.probe(0x0200));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    CacheConfig l2cfg = smallConfig();
    l2cfg.name = "l2";
    l2cfg.size_bytes = 4096;
    Cache l2(l2cfg, nullptr, 80);
    Cache l1(smallConfig(), &l2, 0);

    l1.access(0x0000, true); // dirty
    l1.access(0x0100, false);
    l1.access(0x0200, false); // evicts dirty 0x0000 -> writeback
    EXPECT_EQ(l1.stats().writebacks, 1u);
    // The writeback installed the line downstream.
    EXPECT_TRUE(l2.probe(0x0000));
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallConfig(), nullptr, 80);
    c.access(0x0000, false);
    c.access(0x0100, false);
    c.access(0x0200, false);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, HierarchicalLatency)
{
    CacheConfig l2cfg;
    l2cfg.name = "l2";
    l2cfg.size_bytes = 4096;
    l2cfg.assoc = 2;
    l2cfg.line_bytes = 64;
    l2cfg.hit_latency = 12;
    Cache l2(l2cfg, nullptr, 80);
    Cache l1(smallConfig(), &l2, 0);

    // Cold: L1 (2) + L2 (12) + memory (80).
    EXPECT_EQ(l1.access(0x4000, false), 94u);
    // L1 hit.
    EXPECT_EQ(l1.access(0x4000, false), 2u);
    // Evict from L1, still in L2: 2 + 12.
    l1.access(0x4100, false);
    l1.access(0x4200, false);
    EXPECT_FALSE(l1.probe(0x4000));
    EXPECT_EQ(l1.access(0x4000, false), 14u);
}

TEST(Cache, WriteAllocates)
{
    Cache c(smallConfig(), nullptr, 80);
    c.access(0x2000, true);
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(smallConfig(), nullptr, 80);
    c.access(0x0000, true);
    c.access(0x1000, false);
    c.flush();
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x1000));
    // No writeback of flushed dirty data is modeled (tests/sim reset).
}

TEST(Cache, MissRateStat)
{
    Cache c(smallConfig(), nullptr, 80);
    c.access(0x0000, false);
    c.access(0x0000, false);
    c.access(0x0000, false);
    c.access(0x0000, false);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.25);
}

/** Parameterized geometry sweep: a linear sweep of exactly
 * `size` bytes fits and then hits on re-traversal. */
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometryTest, WorkingSetExactlyFits)
{
    auto [assoc, line] = GetParam();
    CacheConfig cfg;
    cfg.size_bytes = 8192;
    cfg.assoc = assoc;
    cfg.line_bytes = line;
    cfg.hit_latency = 1;
    Cache c(cfg, nullptr, 50);
    for (Addr a = 0; a < 8192; a += line)
        c.access(a, false);
    const auto cold_misses = c.stats().misses;
    EXPECT_EQ(cold_misses, 8192u / line);
    for (Addr a = 0; a < 8192; a += line)
        c.access(a, false);
    EXPECT_EQ(c.stats().misses, cold_misses); // all hits
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(32u, 64u, 128u)));

} // namespace
