/**
 * @file
 * Unit tests for the deterministic PRNG and its distribution
 * samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/random.hh"

namespace
{

using lsim::Rng;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BelowBounds)
{
    Rng r(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(11);
    bool seen[5] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(5)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(13);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.between(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo = lo || v == -3;
        hi = hi || v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

class RngGeometricTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngGeometricTest, MeanMatchesTheory)
{
    const double p = GetParam();
    Rng r(23);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const auto v = r.geometric(p);
        ASSERT_GE(v, 1u);
        sum += static_cast<double>(v);
    }
    // Mean of a geometric (trials to first success) is 1/p.
    EXPECT_NEAR(sum / n, 1.0 / p, 0.05 / p);
}

INSTANTIATE_TEST_SUITE_P(Probs, RngGeometricTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.9));

TEST(Rng, GeometricEdgeProbabilities)
{
    Rng r(29);
    EXPECT_EQ(r.geometric(1.0), 1u);
    EXPECT_EQ(r.geometric(1.5), 1u);
}

} // namespace
