/**
 * @file
 * Unit tests for register renaming.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "cpu/rename.hh"

namespace
{

using lsim::cpu::RenameMap;
using lsim::cpu::kNoPhysReg;

TEST(Rename, InitialIdentityMapping)
{
    RenameMap m(32, 96);
    for (int r = 0; r < 32; ++r) {
        EXPECT_EQ(m.lookup(r), r);
        EXPECT_TRUE(m.isReady(m.lookup(r)));
    }
    EXPECT_EQ(m.numFree(), 64u);
}

TEST(Rename, AllocateTracksPrevious)
{
    RenameMap m(32, 96);
    int prev = kNoPhysReg;
    const int phys = m.allocate(5, prev);
    EXPECT_EQ(prev, 5);
    EXPECT_NE(phys, 5);
    EXPECT_EQ(m.lookup(5), phys);
    EXPECT_FALSE(m.isReady(phys));
    m.setReady(phys);
    EXPECT_TRUE(m.isReady(phys));
}

TEST(Rename, CommitReleaseCycle)
{
    RenameMap m(32, 34);
    // Only 2 rename registers: exhaust, then release.
    int prev1 = kNoPhysReg, prev2 = kNoPhysReg;
    (void)m.allocate(0, prev1);
    (void)m.allocate(1, prev2);
    EXPECT_FALSE(m.hasFreeReg());
    m.release(prev1); // commit of the first instruction
    EXPECT_TRUE(m.hasFreeReg());
    int prev3 = kNoPhysReg;
    const int phys3 = m.allocate(2, prev3);
    EXPECT_EQ(phys3, prev1); // recycled
}

TEST(Rename, SerialRenamesOfSameLogicalChain)
{
    RenameMap m(32, 96);
    int prev_a = kNoPhysReg, prev_b = kNoPhysReg;
    const int a = m.allocate(7, prev_a);
    const int b = m.allocate(7, prev_b);
    EXPECT_EQ(prev_b, a); // second rename displaces the first
    EXPECT_EQ(m.lookup(7), b);
}

TEST(Rename, NoPhysRegAlwaysReady)
{
    RenameMap m(32, 96);
    EXPECT_TRUE(m.isReady(kNoPhysReg));
}

TEST(Rename, RejectsFewerPhysicalThanLogicalRegisters)
{
    EXPECT_THROW(RenameMap(32, 16), std::invalid_argument);
}

TEST(RenameDeath, Misuse)
{
    RenameMap m(32, 33);
    int prev = kNoPhysReg;
    (void)m.allocate(0, prev);
    EXPECT_DEATH((void)m.allocate(1, prev), "empty free list");

    RenameMap m2(32, 96);
    EXPECT_DEATH((void)m2.lookup(32), "bad logical");
    EXPECT_DEATH((void)m2.lookup(-1), "bad logical");
    EXPECT_DEATH(m2.setReady(96), "bad physical");
    EXPECT_DEATH(m2.release(200), "bad physical");
}

TEST(RenameDeath, OverRelease)
{
    // The free list starts full; releasing without a prior allocate
    // overflows it.
    RenameMap m(32, 34);
    EXPECT_DEATH(m.release(33), "free list overflow");
}

} // namespace
