/**
 * @file
 * Unit tests for the api:: experiment facade: builder defaults,
 * facade/shim equivalence, and SweepRunner determinism across
 * thread counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "api/experiment.hh"
#include "api/sweep.hh"
#include "harness/benchmarks.hh"
#include "harness/report.hh"
#include "sleep/policy_registry.hh"
#include "trace/profile.hh"

namespace
{

using lsim::energy::ModelParams;
using namespace lsim::api;

ModelParams
params(double p = 0.05, double alpha = 0.5)
{
    ModelParams mp;
    mp.p = p;
    mp.alpha = alpha;
    mp.k = 0.001;
    mp.s = 0.01;
    return mp;
}

constexpr std::uint64_t kInsts = 30000;

void
expectSameResults(const std::vector<lsim::sleep::PolicyResult> &a,
                  const std::vector<lsim::sleep::PolicyResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        // Bit-exact: both sides must run the identical computation.
        EXPECT_EQ(a[i].energy, b[i].energy);
        EXPECT_EQ(a[i].relative_to_base, b[i].relative_to_base);
        EXPECT_EQ(a[i].leakage_fraction, b[i].leakage_fraction);
        EXPECT_EQ(a[i].counts.active, b[i].counts.active);
        EXPECT_EQ(a[i].counts.sleep, b[i].counts.sleep);
        EXPECT_EQ(a[i].counts.transitions, b[i].counts.transitions);
    }
}

TEST(ExperimentBuilder, DefaultsMatchThePaperSetup)
{
    const auto result = Experiment::builder()
                            .workload("gcc")
                            .insts(kInsts)
                            .run();
    // Default FU count is the profile's Table 3 value; default
    // technology is the paper's analysis point; default policies
    // are the paper's four.
    const auto &profile = lsim::trace::profileByName("gcc");
    EXPECT_EQ(result.sim.num_fus, profile.paper_fus);
    EXPECT_EQ(result.technology.p, 0.05);
    EXPECT_EQ(result.technology.alpha, 0.5);
    EXPECT_EQ(result.technology.k, 0.001);
    EXPECT_EQ(result.technology.s, 0.01);
    ASSERT_EQ(result.policies.size(), 4u);
    EXPECT_EQ(result.policies[0].name, "MaxSleep");
    EXPECT_EQ(result.policies[3].name, "NoOverhead");
    EXPECT_EQ(result.policy_keys,
              lsim::sleep::PolicyRegistry::paperSpecs());
    EXPECT_FALSE(result.fu_selection.has_value());
}

TEST(ExperimentBuilder, MatchesTheLegacyFreeFunctionPath)
{
    const auto facade = Experiment::builder()
                            .workload("mcf")
                            .insts(kInsts)
                            .technology(0.3)
                            .run();
    const auto &profile = lsim::trace::profileByName("mcf");
    const auto ws = lsim::harness::simulateWorkload(
        profile, profile.paper_fus, kInsts);
    const auto legacy =
        lsim::harness::evaluatePaperPolicies(ws.idle, params(0.3));
    EXPECT_EQ(facade.sim.sim.cycles, ws.sim.cycles);
    EXPECT_EQ(facade.sim.sim.ipc, ws.sim.ipc);
    expectSameResults(facade.policies, legacy);
}

TEST(ExperimentBuilder, JsonIsBitIdenticalToTheShimWriter)
{
    const auto result = Experiment::builder()
                            .workload("gzip")
                            .insts(kInsts)
                            .technology(0.05)
                            .run();
    std::ostringstream shim;
    lsim::harness::writeExperimentJson(shim, result.sim,
                                       result.technology,
                                       result.policies);
    EXPECT_EQ(result.toJson(), shim.str());
}

TEST(ExperimentBuilder, AutoSelectDerivesTheFuCount)
{
    const auto session = Experiment::builder()
                             .workload("mcf")
                             .insts(kInsts)
                             .fus(auto_select)
                             .session();
    ASSERT_TRUE(session.fuSelection().has_value());
    const auto reference = lsim::harness::selectFuCount(
        lsim::trace::profileByName("mcf"), kInsts);
    EXPECT_EQ(session.fuSelection()->chosen, reference.chosen);
    EXPECT_EQ(session.sim().num_fus, reference.chosen);
}

TEST(ExperimentBuilder, UnknownNamesThrowBeforeSimulating)
{
    EXPECT_THROW(Experiment::builder().run(), std::invalid_argument);
    EXPECT_THROW(
        Experiment::builder().workload("nonesuch").session(),
        std::invalid_argument);
    EXPECT_THROW(Experiment::builder()
                     .workload("gcc")
                     .policies({"bogus"})
                     .session(),
                 std::invalid_argument);
}

TEST(Session, EvaluateReplaysWithoutResimulating)
{
    const auto session = Experiment::builder()
                             .workload("gcc")
                             .insts(kInsts)
                             .session();
    const auto at_low = session.evaluate(0.05);
    const auto at_high = session.evaluate(0.5);
    // Same simulation object underneath...
    EXPECT_EQ(at_low.sim.sim.cycles, at_high.sim.sim.cycles);
    // ...and each evaluation matches the legacy replay path.
    expectSameResults(at_low.policies,
                      lsim::harness::evaluatePaperPolicies(
                          session.sim().idle, params(0.05)));
    expectSameResults(at_high.policies,
                      lsim::harness::evaluatePaperPolicies(
                          session.sim().idle, params(0.5)));
}

TEST(RunResult, PolicyLookupAndCsv)
{
    const auto result = Experiment::builder()
                            .workload("gcc")
                            .insts(kInsts)
                            .policies({"max-sleep", "timeout:64"})
                            .run();
    EXPECT_EQ(result.policy("max-sleep").name, "MaxSleep");
    EXPECT_EQ(result.policy("Timeout(64)").name, "Timeout(64)");
    EXPECT_THROW(result.policy("gradual"), std::invalid_argument);

    const std::string csv = result.toCsv();
    EXPECT_NE(csv.find("benchmark,policy_key,policy"),
              std::string::npos);
    EXPECT_NE(csv.find("gcc,timeout:64,Timeout(64)"),
              std::string::npos);
}

TEST(PSweep, GridIsInclusiveAndEvenlySpaced)
{
    const auto points = pSweep(0.05, 1.0, 20);
    ASSERT_EQ(points.size(), 20u);
    EXPECT_DOUBLE_EQ(points.front().p, 0.05);
    EXPECT_DOUBLE_EQ(points.back().p, 1.0);
    EXPECT_NEAR(points[1].p - points[0].p, 0.05, 1e-12);
    EXPECT_THROW(pSweep(0.1, 1.0, 0), std::invalid_argument);
}

TEST(SweepRunner, RejectsBadConfigsEagerly)
{
    SweepConfig no_points;
    EXPECT_THROW(SweepRunner{no_points}, std::invalid_argument);

    SweepConfig bad_workload;
    bad_workload.technologies = pSweep(0.05, 0.5, 2);
    bad_workload.workloads = {"gcc", "nonesuch"};
    EXPECT_THROW(SweepRunner{bad_workload}, std::invalid_argument);

    SweepConfig bad_policy;
    bad_policy.technologies = pSweep(0.05, 0.5, 2);
    bad_policy.policies = {"max-sleep", "bogus"};
    EXPECT_THROW(SweepRunner{bad_policy}, std::invalid_argument);
}

TEST(SweepRunner, ParallelSweepMatchesSingleThreadedExactly)
{
    // The acceptance check: a 16-point p-sweep on 4 threads must be
    // bit-identical to the single-threaded reference.
    SweepConfig cfg;
    cfg.workloads = {"gcc", "mcf"};
    cfg.technologies = pSweep(0.05, 0.8, 16);
    cfg.insts = kInsts;

    SweepConfig single = cfg;
    single.threads = 1;
    SweepConfig parallel = cfg;
    parallel.threads = 4;

    const auto ref = SweepRunner(single).run();
    const auto par = SweepRunner(parallel).run();

    ASSERT_EQ(ref.cells.size(), 2u * 16u);
    ASSERT_EQ(par.cells.size(), ref.cells.size());
    for (std::size_t w = 0; w < 2; ++w) {
        EXPECT_EQ(ref.sims[w].sim.cycles, par.sims[w].sim.cycles);
        EXPECT_EQ(ref.sims[w].idle.intervals,
                  par.sims[w].idle.intervals);
    }
    for (std::size_t i = 0; i < ref.cells.size(); ++i) {
        EXPECT_EQ(ref.cells[i].workload, par.cells[i].workload);
        EXPECT_EQ(ref.cells[i].technology, par.cells[i].technology);
        expectSameResults(ref.cells[i].policies,
                          par.cells[i].policies);
    }
}

TEST(SweepRunner, CellsMatchSessionEvaluations)
{
    SweepConfig cfg;
    cfg.workloads = {"gcc"};
    cfg.technologies = pSweep(0.1, 0.5, 3);
    cfg.insts = kInsts;
    cfg.threads = 2;
    const auto sweep = SweepRunner(cfg).run();

    const auto session = Experiment::builder()
                             .workload("gcc")
                             .insts(kInsts)
                             .session();
    for (std::size_t t = 0; t < cfg.technologies.size(); ++t)
        expectSameResults(
            sweep.cell(0, t).policies,
            session.evaluate(cfg.technologies[t]).policies);
}

TEST(SweepRunner, AveragesMatchTheLegacySuitePath)
{
    SweepConfig cfg;
    cfg.workloads = {"gcc", "mcf"};
    cfg.technologies = pSweep(0.05, 0.5, 2);
    cfg.insts = kInsts;
    const auto sweep = SweepRunner(cfg).run();

    lsim::harness::SuiteRun suite;
    for (const auto &name : cfg.workloads) {
        const auto &profile = lsim::trace::profileByName(name);
        suite.sims.push_back(lsim::harness::simulateWorkload(
            profile, profile.paper_fus, kInsts));
    }
    for (std::size_t t = 0; t < cfg.technologies.size(); ++t) {
        const auto avg = sweep.averagesAt(t);
        const auto legacy = lsim::harness::averagePolicies(
            suite, cfg.technologies[t]);
        ASSERT_EQ(avg.names, legacy.names);
        for (std::size_t i = 0; i < avg.names.size(); ++i) {
            EXPECT_EQ(avg.rel_to_nooverhead[i],
                      legacy.rel_to_nooverhead[i]);
            EXPECT_EQ(avg.leakage_fraction[i],
                      legacy.leakage_fraction[i]);
        }
    }
}

} // namespace
