/**
 * @file
 * Unit tests for the observability layer: counter/gauge/histogram
 * semantics (including percentile edges and concurrent increments —
 * the CI TSan lane runs this binary), registry JSON dumps parsed
 * back through common/json, and TraceSpan well-formedness plus the
 * disabled-by-default zero-overhead path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace
{

namespace fs = std::filesystem;
using namespace lsim;
using namespace lsim::obs;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksLevelsIncludingNegative)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0);
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.add(3);
    g.sub(12);
    EXPECT_EQ(g.value(), -2);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, EmptyPercentilesAreZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, SingleSampleCollapsesEveryPercentile)
{
    Histogram h;
    h.observe(3.5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 3.5);
    EXPECT_DOUBLE_EQ(h.max(), 3.5);
    EXPECT_DOUBLE_EQ(h.sum(), 3.5);
    // Interpolation is clamped to the observed range, so with one
    // sample every percentile is exactly that sample.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.5);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.5);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.5);
}

TEST(Histogram, PercentilesSeparateABimodalDistribution)
{
    Histogram h;
    for (int i = 0; i < 90; ++i)
        h.observe(0.3); // bucket (0.2, 0.5]
    for (int i = 0; i < 10; ++i)
        h.observe(40.0); // bucket (20, 50]
    EXPECT_EQ(h.count(), 100u);
    // p50 lands in the low mode, p99 in the high mode.
    EXPECT_GT(h.percentile(50.0), 0.2);
    EXPECT_LE(h.percentile(50.0), 0.5);
    EXPECT_GT(h.percentile(99.0), 20.0);
    EXPECT_LE(h.percentile(99.0), 40.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 40.0);
}

TEST(Histogram, OverflowBucketReportsTheObservedMax)
{
    Histogram h;
    h.observe(1.0);
    h.observe(1e9); // beyond the last finite bound (50 s)
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 1e9);
    EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Histogram, BucketCountsAreCumulative)
{
    Histogram h;
    h.observe(0.015); // bucket 1 (0.01, 0.02]
    h.observe(0.3);   // bucket 5 (0.2, 0.5]
    h.observe(0.4);   // bucket 5
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.bucketCount(5), 3u);
    EXPECT_EQ(h.bucketCount(Histogram::kBounds - 1), 3u);
}

TEST(Registry, NamesInternToStableObjects)
{
    auto &reg = MetricsRegistry::instance();
    Counter &a = reg.counter("test.registry.a");
    Counter &b = reg.counter("test.registry.a");
    Counter &other = reg.counter("test.registry.b");
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);
    // reset() zeroes values but keeps references valid.
    reg.reset();
    EXPECT_EQ(a.value(), 0u);
    a.add(1);
    EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, DumpParsesBackThroughCommonJson)
{
    auto &reg = MetricsRegistry::instance();
    reg.reset();
    reg.counter("test.dump.count").add(12);
    reg.gauge("test.dump.depth").set(-3);
    auto &h = reg.histogram("test.dump.ms");
    h.observe(1.5);
    h.observe(2.5);

    const JsonValue doc = parseJson(reg.dumpJson());
    EXPECT_EQ(doc.at("version").asU64(), 1u);
    EXPECT_EQ(doc.at("counters").at("test.dump.count").asU64(), 12u);
    EXPECT_DOUBLE_EQ(
        doc.at("gauges").at("test.dump.depth").asNumber(), -3.0);

    const JsonValue &hist = doc.at("histograms").at("test.dump.ms");
    EXPECT_EQ(hist.at("count").asU64(), 2u);
    EXPECT_DOUBLE_EQ(hist.at("sum").asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(hist.at("min").asNumber(), 1.5);
    EXPECT_DOUBLE_EQ(hist.at("max").asNumber(), 2.5);
    const auto &buckets = hist.at("buckets").items();
    ASSERT_EQ(buckets.size(), Histogram::kBounds);
    // Cumulative: the last finite bucket holds every finite sample.
    EXPECT_EQ(buckets.back().at("count").asU64(), 2u);
    std::uint64_t prev = 0;
    for (const auto &bucket : buckets) {
        const std::uint64_t n = bucket.at("count").asU64();
        EXPECT_GE(n, prev);
        prev = n;
    }
}

TEST(Registry, ExportFileWritesAParseableSnapshot)
{
    auto &reg = MetricsRegistry::instance();
    reg.reset();
    reg.counter("test.export.events").add(3);
    const fs::path path =
        fs::path(::testing::TempDir()) / "lsim_obs_metrics.json";
    ASSERT_TRUE(reg.exportFile(path.string()));
    const JsonValue doc = parseJsonFile(path.string());
    EXPECT_EQ(
        doc.at("counters").at("test.export.events").asU64(), 3u);
    fs::remove(path);
}

TEST(Registry, ConcurrentUpdatesLoseNothing)
{
    // Run under the CI TSan lane: relaxed atomics must be exact and
    // race-free across many writer threads.
    auto &reg = MetricsRegistry::instance();
    reg.reset();
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            // Lookups race against other threads' first-use interning.
            Counter &c = reg.counter("test.mt.count");
            Gauge &g = reg.gauge("test.mt.level");
            Histogram &h = reg.histogram("test.mt.ms");
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                g.add(2);
                g.sub(1);
                h.observe(0.5 + (i % 4));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(reg.counter("test.mt.count").value(),
              std::uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(reg.gauge("test.mt.level").value(),
              std::int64_t(kThreads) * kPerThread);
    Histogram &h = reg.histogram("test.mt.ms");
    EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 3.5);
}

TEST(ScopedTimer, RecordsOneSample)
{
    Histogram h;
    {
        ScopedTimerMs timer(h);
        EXPECT_GE(timer.elapsedMs(), 0.0);
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.min(), 0.0);
}

TEST(Clock, MonotonicMicrosNeverGoesBackwards)
{
    const std::uint64_t a = monotonicMicros();
    const std::uint64_t b = monotonicMicros();
    EXPECT_LE(a, b);
}

TEST(Clock, IsoTimestampShape)
{
    const std::string ts = isoTimestampNow();
    // e.g. "2026-08-08T12:34:56.789Z"
    ASSERT_EQ(ts.size(), 24u);
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[7], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts[13], ':');
    EXPECT_EQ(ts[16], ':');
    EXPECT_EQ(ts[19], '.');
    EXPECT_EQ(ts.back(), 'Z');
}

TEST(Trace, DisabledByDefaultCollectsNothing)
{
    auto &session = TraceSession::instance();
    session.resetForTest();
    EXPECT_FALSE(session.enabled());
    {
        TraceSpan span("test.noop");
        TraceSpan nested("test.noop.nested", "test");
    }
    EXPECT_EQ(session.eventCount(), 0u);
    // flush() without a path is a no-op, not a crash.
    EXPECT_FALSE(session.flush());
}

TEST(Trace, EmitsWellFormedChromeTraceJson)
{
    auto &session = TraceSession::instance();
    session.resetForTest();
    const fs::path path =
        fs::path(::testing::TempDir()) / "lsim_obs_trace.json";
    session.start(path.string());
    EXPECT_TRUE(session.enabled());
    {
        TraceSpan outer("test.outer", "unit");
        TraceSpan inner("test.inner", "unit");
    }
    session.stop(); // flushes and disables
    EXPECT_FALSE(session.enabled());

    const JsonValue doc = parseJsonFile(path.string());
    const auto &events = doc.at("traceEvents").items();
    ASSERT_EQ(events.size(), 2u);
    for (const auto &ev : events) {
        EXPECT_EQ(ev.at("ph").asString(), "X");
        EXPECT_FALSE(ev.at("name").asString().empty());
        EXPECT_GE(ev.at("dur").asNumber(), 0.0);
        (void)ev.at("ts").asU64();
        (void)ev.at("pid").asU64();
        (void)ev.at("tid").asU64();
    }
    // Destructor ordering: the inner span closes first.
    EXPECT_EQ(events[0].at("name").asString(), "test.inner");
    EXPECT_EQ(events[1].at("name").asString(), "test.outer");

    session.resetForTest();
    fs::remove(path);
}

TEST(Trace, SpansFromConcurrentThreadsAllArrive)
{
    auto &session = TraceSession::instance();
    session.resetForTest();
    const fs::path path =
        fs::path(::testing::TempDir()) / "lsim_obs_trace_mt.json";
    session.start(path.string());
    constexpr int kThreads = 4, kSpans = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < kSpans; ++i)
                TraceSpan span("test.mt", "unit");
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(session.eventCount(),
              static_cast<std::size_t>(kThreads) * kSpans);
    session.stop();
    const JsonValue doc = parseJsonFile(path.string());
    EXPECT_EQ(doc.at("traceEvents").items().size(),
              static_cast<std::size_t>(kThreads) * kSpans);
    session.resetForTest();
    fs::remove(path);
}

} // namespace
