/**
 * @file
 * Unit tests for the shared bench-harness argument parsing
 * (bench/args.hh), the replacement for the retired
 * harness::SuiteOptions::parseArgs: every figure/table bench relies
 * on these "insts=<n> seed=<n>" overrides.
 */

#include <gtest/gtest.h>

#include "../bench/args.hh"

namespace
{

using lsim::bench::Args;

TEST(BenchArgs, ParsesInstsAndSeed)
{
    Args args(500'000);
    const char *argv[] = {"prog", "insts=12345", "seed=9"};
    args.parse(3, const_cast<char **>(argv));
    EXPECT_EQ(args.insts, 12345u);
    EXPECT_EQ(args.seed, 9u);
}

TEST(BenchArgs, KeepsDefaultsWithoutOverrides)
{
    Args args(2'000'000);
    const char *argv[] = {"prog"};
    args.parse(1, const_cast<char **>(argv));
    EXPECT_EQ(args.insts, 2'000'000u);
    EXPECT_EQ(args.seed, 1u);
}

TEST(BenchArgs, IgnoresUnknownArguments)
{
    Args args(1000);
    const char *argv[] = {"prog", "bogus=7", "insts=42"};
    args.parse(3, const_cast<char **>(argv));
    EXPECT_EQ(args.insts, 42u);
    EXPECT_EQ(args.seed, 1u);
}

TEST(BenchArgs, ZeroInstsIsFatal)
{
    Args args(1000);
    const char *argv[] = {"prog", "insts=0"};
    EXPECT_DEATH(args.parse(2, const_cast<char **>(argv)),
                 "bad insts= argument");
}

} // namespace
