/**
 * @file
 * Unit tests for the Table 3 workload profiles.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "trace/profile.hh"

namespace
{

/**
 * These sites formerly fatal()ed out of the process; the library now
 * throws std::invalid_argument (caught at the CLI boundary), so the
 * tests assert on the exception and its message, not a process exit.
 */
template <typename Fn>
void
expectRejects(Fn &&fn, const std::string &substr)
{
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(std::string(e.what()).find(substr) !=
                    std::string::npos)
            << "unexpected message: " << e.what();
    }
}

using lsim::trace::WorkloadProfile;
using lsim::trace::profileByName;
using lsim::trace::table3Profiles;

TEST(Profiles, NineBenchmarksInPaperOrder)
{
    const auto &all = table3Profiles();
    ASSERT_EQ(all.size(), 9u);
    const char *expected[] = {"health", "mst", "gcc",   "gzip",
                              "mcf",    "parser", "twolf", "vortex",
                              "vpr"};
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].name, expected[i]);
}

TEST(Profiles, AllValidate)
{
    for (const auto &p : table3Profiles())
        p.validate(); // fatal() on failure
}

TEST(Profiles, Table3MetadataMatchesPaper)
{
    EXPECT_EQ(profileByName("health").paper_fus, 2u);
    EXPECT_EQ(profileByName("mst").paper_fus, 4u);
    EXPECT_EQ(profileByName("gcc").paper_fus, 2u);
    EXPECT_EQ(profileByName("gzip").paper_fus, 4u);
    EXPECT_EQ(profileByName("mcf").paper_fus, 2u);
    EXPECT_EQ(profileByName("parser").paper_fus, 4u);
    EXPECT_EQ(profileByName("twolf").paper_fus, 3u);
    EXPECT_EQ(profileByName("vortex").paper_fus, 4u);
    EXPECT_EQ(profileByName("vpr").paper_fus, 3u);

    EXPECT_NEAR(profileByName("vortex").paper_max_ipc, 2.387, 1e-9);
    EXPECT_NEAR(profileByName("mcf").paper_ipc, 0.503, 1e-9);
}

TEST(Profiles, QualitativeCharacterPreserved)
{
    // The memory-bound pair has the largest irregular footprints.
    const auto &mcf = profileByName("mcf");
    const auto &health = profileByName("health");
    const auto &vortex = profileByName("vortex");
    EXPECT_GT(mcf.working_set, vortex.working_set);
    EXPECT_GT(health.working_set, vortex.working_set);
    EXPECT_GT(mcf.irregular_frac, vortex.irregular_frac);
    // The ILP-rich pair has the most predictable control flow.
    EXPECT_GT(vortex.branch_bias_strong,
              profileByName("vpr").branch_bias_strong);
}

TEST(ProfilesReject, UnknownName)
{
    expectRejects([&] { (void)profileByName("nonexistent"); },
                  "unknown workload");
}

TEST(ProfilesReject, ValidationCatchesBadMix)
{
    WorkloadProfile p = profileByName("gcc");
    p.frac_load = 0.9;
    p.frac_store = 0.9;
    expectRejects([&] { p.validate(); }, "sums to");
}

TEST(ProfilesReject, ValidationCatchesBadMemoryFractions)
{
    WorkloadProfile p = profileByName("gcc");
    p.local_frac = 0.9;
    p.irregular_frac = 0.9;
    expectRejects([&] { p.validate(); }, "memory site fractions");
}

} // namespace
