/**
 * @file
 * Unit tests for common/stats: running scalars and power-of-two
 * histograms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hh"

namespace
{

using lsim::stats::Log2Histogram;
using lsim::stats::Scalar;
using lsim::stats::floorLog2;

TEST(Scalar, EmptyIsZero)
{
    Scalar s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Scalar, BasicMoments)
{
    Scalar s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Scalar, MergeMatchesCombinedStream)
{
    Scalar a, b, combined;
    for (int i = 0; i < 50; ++i) {
        const double v = 0.37 * i - 3.0;
        a.sample(v);
        combined.sample(v);
    }
    for (int i = 0; i < 31; ++i) {
        const double v = 1.1 * i + 10.0;
        b.sample(v);
        combined.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(Scalar, MergeWithEmptySides)
{
    Scalar a, empty;
    a.sample(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    Scalar e2;
    e2.merge(a);
    EXPECT_EQ(e2.count(), 1u);
    EXPECT_DOUBLE_EQ(e2.mean(), 3.0);
}

TEST(Scalar, SampleNMatchesLoop)
{
    Scalar bulk, loop;
    bulk.sampleN(4.5, 1000);
    bulk.sample(2.0);
    for (int i = 0; i < 1000; ++i)
        loop.sample(4.5);
    loop.sample(2.0);
    EXPECT_EQ(bulk.count(), loop.count());
    EXPECT_NEAR(bulk.mean(), loop.mean(), 1e-12);
    EXPECT_NEAR(bulk.variance(), loop.variance(), 1e-9);
}

TEST(Scalar, ResetClears)
{
    Scalar s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(FloorLog2, PowersAndBetween)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(4), 2);
    EXPECT_EQ(floorLog2(8191), 12);
    EXPECT_EQ(floorLog2(8192), 13);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 63), 63);
}

TEST(Log2Histogram, BucketLayout)
{
    Log2Histogram h(8192);
    // Buckets [1,2),[2,4),...,[4096,8192), plus the clamp bucket.
    EXPECT_EQ(h.numBuckets(), 14u);
    EXPECT_EQ(h.bucketLow(0), 1u);
    EXPECT_EQ(h.bucketLow(13), 8192u);
}

TEST(Log2Histogram, SampleRouting)
{
    Log2Histogram h(8192);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(4095);
    h.sample(8192);
    h.sample(100000);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(11), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(13), 2.0); // clamp bucket
    EXPECT_EQ(h.totalCount(), 6u);
}

TEST(Log2Histogram, ZeroIgnored)
{
    Log2Histogram h(64);
    h.sample(0);
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
}

TEST(Log2Histogram, WeightsAccumulate)
{
    Log2Histogram h(64);
    h.sample(5, 2.5);
    h.sample(5, 0.5);
    EXPECT_DOUBLE_EQ(h.bucketWeight(2), 3.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 3.0);
}

TEST(Log2Histogram, MergeAndNormalize)
{
    Log2Histogram a(64), b(64);
    a.sample(1, 1.0);
    b.sample(32, 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.totalWeight(), 4.0);
    const auto n = a.normalized();
    EXPECT_NEAR(n.totalWeight(), 1.0, 1e-12);
    EXPECT_NEAR(n.bucketWeight(5), 0.75, 1e-12);
}

TEST(Log2HistogramDeath, BadClamp)
{
    EXPECT_EXIT(Log2Histogram h(100),
                ::testing::ExitedWithCode(1), "power of two");
}

class Log2HistogramClampTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Log2HistogramClampTest, ClampBucketCatchesEverythingAbove)
{
    const std::uint64_t clamp = GetParam();
    Log2Histogram h(clamp);
    h.sample(clamp - 1);
    h.sample(clamp);
    h.sample(clamp * 3);
    EXPECT_DOUBLE_EQ(h.bucketWeight(h.numBuckets() - 1), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Clamps, Log2HistogramClampTest,
                         ::testing::Values(2, 8, 64, 1024, 8192));

} // namespace
