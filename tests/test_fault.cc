/**
 * @file
 * Unit tests for the fault-injection layer (common/fault.hh) and the
 * failure-domain hardening it drives: trigger grammar, deterministic
 * schedules, file/lock fault points, store write retries, graceful
 * degradation, and corruption quarantine.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "api/experiment.hh"
#include "common/fault.hh"
#include "common/files.hh"
#include "obs/metrics.hh"
#include "store/profile_store.hh"
#include "store/store_index.hh"

namespace
{

namespace fs = std::filesystem;
using namespace lsim;
using store::ProfileStore;
using store::StoreIndex;

/** Fresh per-test directory under gtest's temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lsim_fault_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

harness::WorkloadSim
simulateSmall()
{
    return api::Experiment::builder()
        .workload("mst")
        .insts(20000)
        .session()
        .sim();
}

/** Every test starts and ends disarmed; the registry is process-
 * global, so a leaked trigger would poison unrelated tests. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

// ------------------------------------------------------ grammar

TEST_F(FaultTest, DisarmedByDefault)
{
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(LSIM_FAULT("store.write"));
    // Disarmed sites record nothing — the fast path never reaches
    // the registry.
    EXPECT_EQ(fault::hits("store.write"), 0u);
}

TEST_F(FaultTest, ConfigureArmsAndResetDisarms)
{
    fault::configure("store.write");
    EXPECT_TRUE(fault::armed());
    fault::reset();
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(LSIM_FAULT("store.write"));
}

TEST_F(FaultTest, EmptySpecIsANoOp)
{
    fault::configure("");
    fault::configure("  \t\n ");
    EXPECT_FALSE(fault::armed());
}

TEST_F(FaultTest, BadSpecsThrow)
{
    EXPECT_THROW(fault::configure("Bad.Point"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("p:after"), std::invalid_argument);
    EXPECT_THROW(fault::configure("p:after=x"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("p:count=0"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("p:every=0"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("p:prob=0"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("p:prob=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("p:bogus=1"),
                 std::invalid_argument);
    // A throwing configure installs nothing.
    EXPECT_FALSE(fault::armed());
}

TEST_F(FaultTest, AfterSkipsLeadingHits)
{
    fault::configure("p:after=3");
    int fired = 0;
    for (int i = 0; i < 6; ++i)
        fired += LSIM_FAULT("p") ? 1 : 0;
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(fault::hits("p"), 6u);
    EXPECT_EQ(fault::fired("p"), 3u);
}

TEST_F(FaultTest, CountBoundsFirings)
{
    fault::configure("p:count=2");
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += LSIM_FAULT("p") ? 1 : 0;
    EXPECT_EQ(fired, 2);
}

TEST_F(FaultTest, EveryFiresPeriodically)
{
    fault::configure("p:every=3");
    std::string pattern;
    for (int i = 0; i < 9; ++i)
        pattern += LSIM_FAULT("p") ? 'F' : '.';
    EXPECT_EQ(pattern, "..F..F..F");
}

TEST_F(FaultTest, ProbScheduleIsSeedDeterministic)
{
    const auto schedule = [](unsigned seed) {
        fault::reset();
        fault::configure("p:prob=0.5:seed=" +
                         std::to_string(seed));
        std::string s;
        for (int i = 0; i < 64; ++i)
            s += LSIM_FAULT("p") ? 'F' : '.';
        return s;
    };
    const std::string a = schedule(7);
    const std::string b = schedule(7);
    EXPECT_EQ(a, b); // same seed, same schedule
    EXPECT_NE(a, std::string(64, '.'));
    EXPECT_NE(a, std::string(64, 'F'));
    EXPECT_NE(a, schedule(8)); // different seed, different schedule
}

TEST_F(FaultTest, ErrnoIsSurfaced)
{
    fault::configure("p:error=ENOSPC, q:error=71");
    int err = 0;
    EXPECT_TRUE(LSIM_FAULT_ERRNO("p", &err));
    EXPECT_EQ(err, ENOSPC);
    EXPECT_TRUE(LSIM_FAULT_ERRNO("q", &err));
    EXPECT_EQ(err, 71);
}

TEST_F(FaultTest, PointsAreIndependent)
{
    fault::configure("p");
    EXPECT_TRUE(LSIM_FAULT("p"));
    EXPECT_FALSE(LSIM_FAULT("unrelated"));
    // Armed sites record hits even without a trigger of their own,
    // so chaos runs can see which domains were exercised.
    EXPECT_EQ(fault::hits("unrelated"), 1u);
    EXPECT_EQ(fault::fired("unrelated"), 0u);
}

// --------------------------------------------- file fault points

TEST_F(FaultTest, AtomicWriteFileFault)
{
    const std::string dir = freshDir("write");
    fault::configure("file.write:count=1");
    EXPECT_FALSE(atomicWriteFile(dir + "/f", "data"));
    EXPECT_FALSE(fs::exists(dir + "/f"));
    // The trigger is spent: the next write goes through.
    EXPECT_TRUE(atomicWriteFile(dir + "/f", "data"));
    EXPECT_TRUE(fs::exists(dir + "/f"));
}

TEST_F(FaultTest, FileLockFault)
{
    const std::string dir = freshDir("lock");
    fault::configure("file.lock:count=1");
    EXPECT_FALSE(FileLock::acquire(dir + "/l", 100).has_value());
    EXPECT_TRUE(FileLock::acquire(dir + "/l", 100).has_value());
}

// ------------------------------------ index lock degraded path

TEST_F(FaultTest, IndexLockTimeoutDegradesAndCounts)
{
    const std::string dir = freshDir("index_lock");
    StoreIndex index(dir);
    index.put("k", store::IndexEntry{});

    const auto retries_before =
        obs::counter("store.retries").value();
    const auto timeouts_before =
        obs::counter("store.lock_timeouts").value();

    // Every acquisition attempt fails, so save() exhausts its
    // bounded retries and falls back to the degraded no-lock path:
    // it still returns true (the index is written) but the shared
    // reconcile was skipped.
    fault::configure("store.index.lock");
    EXPECT_TRUE(index.save());
    EXPECT_TRUE(fs::exists(fs::path(dir) / "index.json"));

    EXPECT_GE(obs::counter("store.retries").value(),
              retries_before + 3);
    EXPECT_EQ(obs::counter("store.lock_timeouts").value(),
              timeouts_before + 1);
}

TEST_F(FaultTest, IndexLockTransientFailureIsRetried)
{
    const std::string dir = freshDir("index_retry");
    StoreIndex index(dir);
    index.put("k", store::IndexEntry{});

    const auto timeouts_before =
        obs::counter("store.lock_timeouts").value();
    // First attempt fails, the retry succeeds: the locked path runs
    // and the generation advances as usual.
    fault::configure("store.index.lock:count=1");
    EXPECT_TRUE(index.save());
    EXPECT_EQ(index.generation(), 1u);
    EXPECT_EQ(obs::counter("store.lock_timeouts").value(),
              timeouts_before);
}

// --------------------------------------- store write hardening

TEST_F(FaultTest, SaveRetriesTransientWriteFault)
{
    const std::string dir = freshDir("save_retry");
    const ProfileStore db(dir);
    const auto retries_before =
        obs::counter("store.retries").value();

    fault::configure("store.write:count=1");
    db.save("entry", simulateSmall());

    EXPECT_FALSE(db.degraded());
    EXPECT_TRUE(db.load("entry").has_value());
    EXPECT_GE(obs::counter("store.retries").value(),
              retries_before + 1);
}

TEST_F(FaultTest, PersistentWriteFaultDegradesStore)
{
    const std::string dir = freshDir("degraded");
    const ProfileStore db(dir);

    fault::configure("store.write");
    db.save("entry", simulateSmall());

    EXPECT_TRUE(db.degraded());
    EXPECT_EQ(obs::gauge("store.degraded").value(), 1);
    EXPECT_FALSE(db.load("entry").has_value());

    // Degraded is sticky: even with the fault gone, this instance
    // stays compute-without-cache (no half-alive flapping).
    fault::reset();
    db.save("entry2", simulateSmall());
    EXPECT_FALSE(db.load("entry2").has_value());

    // A fresh instance over the same directory starts healthy.
    const ProfileStore fresh(dir);
    EXPECT_FALSE(fresh.degraded());
    fresh.save("entry3", simulateSmall());
    EXPECT_TRUE(fresh.load("entry3").has_value());
}

// --------------------------------------------------- quarantine

TEST_F(FaultTest, CorruptEntryIsQuarantinedOnce)
{
    const std::string dir = freshDir("quarantine");
    const ProfileStore db(dir);
    db.save("entry", simulateSmall());

    // Flip one byte mid-payload so the checksum fails.
    const std::string path =
        dir + "/entry" + std::string(ProfileStore::kExtension);
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(0, std::ios::end);
        const auto size = static_cast<std::streamoff>(f.tellg());
        f.seekp(size / 2);
        f.put('\xff');
    }

    const auto quarantined_before =
        obs::counter("store.quarantined").value();
    EXPECT_FALSE(db.load("entry").has_value());

    // The corrupt file moved to <dir>/quarantine/ and left the
    // index, instead of being warned about forever.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(fs::path(dir) /
                           ProfileStore::kQuarantineDir /
                           ("entry" +
                            std::string(ProfileStore::kExtension))));
    EXPECT_EQ(obs::counter("store.quarantined").value(),
              quarantined_before + 1);

    // The second load is a plain miss — no second quarantine.
    EXPECT_FALSE(db.load("entry").has_value());
    EXPECT_EQ(obs::counter("store.quarantined").value(),
              quarantined_before + 1);

    // The slot is reusable: a fresh save round-trips.
    db.save("entry", simulateSmall());
    EXPECT_TRUE(db.load("entry").has_value());
}

TEST_F(FaultTest, InjectedReadFaultQuarantines)
{
    const std::string dir = freshDir("read_fault");
    const ProfileStore db(dir);
    db.save("entry", simulateSmall());

    fault::configure("store.read:count=1");
    EXPECT_FALSE(db.load("entry").has_value());
    EXPECT_TRUE(fs::exists(fs::path(dir) /
                           ProfileStore::kQuarantineDir /
                           ("entry" +
                            std::string(ProfileStore::kExtension))));
}

TEST_F(FaultTest, ExportFaultThrowsStoreError)
{
    const std::string dir = freshDir("export");
    const auto sim = simulateSmall();
    fault::configure("store.export");
    EXPECT_THROW(
        store::exportSim(dir + "/out.lsimprof", "key", sim),
        store::StoreError);
}

} // namespace
