#include "energy/breakeven.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace lsim::energy
{

double
breakevenInterval(const ModelParams &params)
{
    params.validate();
    if (params.p <= 0.0 || params.k >= 1.0 || params.alpha >= 1.0)
        return std::numeric_limits<double>::infinity();
    return ((1.0 - params.alpha) + params.s) /
        (params.p * (1.0 - params.alpha) * (1.0 - params.k));
}

double
breakevenIntervalNumeric(const EnergyModel &model)
{
    const double e_ui = model.unctrlIdleCycleEnergy();
    const double e_sl = model.sleepCycleEnergy();
    const double e_tr = model.transitionEnergy();
    if (e_ui <= e_sl)
        return std::numeric_limits<double>::infinity();
    return e_tr / (e_ui - e_sl);
}

bool
sleepPaysOff(const ModelParams &params, double interval)
{
    return interval >= breakevenInterval(params);
}

} // namespace lsim::energy
