#include "energy/policy_model.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace lsim::energy
{

namespace
{

/** %g-style rendering for exception messages. */
std::string
fmt(double v)
{
    std::ostringstream ss;
    ss << v;
    return ss.str();
}
} // namespace

std::string
to_string(Policy policy)
{
    switch (policy) {
      case Policy::AlwaysActive:
        return "AlwaysActive";
      case Policy::MaxSleep:
        return "MaxSleep";
      case Policy::NoOverhead:
        return "NoOverhead";
    }
    panic("unknown Policy %d", static_cast<int>(policy));
}

void
WorkloadPoint::validate() const
{
    // Configuration errors throw (the CLI boundary catches and
    // exits); fatal() would take down a daemon serving other
    // requests.
    const auto reject = [](const std::string &what) {
        throw std::invalid_argument("WorkloadPoint: " + what);
    };
    if (usage < 0.0 || usage > 1.0)
        reject("usage factor " + fmt(usage) + " outside [0,1]");
    if (idle_interval <= 0.0)
        reject("idle interval " + fmt(idle_interval) +
               " must be positive");
    if (total_cycles <= 0.0)
        reject("total cycles " + fmt(total_cycles) +
               " must be positive");
}

PolicyModel::PolicyModel(const ModelParams &params,
                         const WorkloadPoint &workload)
    : model_(params), workload_(workload)
{
    workload_.validate();
}

CycleCounts
PolicyModel::counts(Policy policy) const
{
    const double total = workload_.total_cycles;
    const double active = workload_.usage * total;
    const double idle = total - active;

    CycleCounts cc;
    cc.active = active;
    switch (policy) {
      case Policy::AlwaysActive:
        cc.unctrl_idle = idle;
        break;
      case Policy::MaxSleep:
        cc.sleep = idle;
        // Every transition into sleep implies at least one prior
        // active cycle, hence the min() (Section 3.1).
        cc.transitions =
            std::min(idle / workload_.idle_interval, active);
        break;
      case Policy::NoOverhead:
        cc.sleep = idle;
        cc.transitions = 0.0;
        break;
    }
    return cc;
}

double
PolicyModel::energy(Policy policy) const
{
    return model_.normalizedEnergy(counts(policy));
}

double
PolicyModel::baseEnergy() const
{
    CycleCounts cc;
    cc.active = workload_.total_cycles;
    return model_.normalizedEnergy(cc);
}

double
PolicyModel::relativeEnergy(Policy policy) const
{
    return energy(policy) / baseEnergy();
}

EnergyBreakdown
PolicyModel::breakdown(Policy policy) const
{
    return model_.breakdown(counts(policy));
}

double
PolicyModel::minOfBoundingPolicies() const
{
    return std::min(energy(Policy::AlwaysActive),
                    energy(Policy::MaxSleep));
}

} // namespace lsim::energy
