/**
 * @file
 * Breakeven idle interval, Section 3 equations (4)-(5) and Figure 4a.
 *
 * The breakeven interval N_be is the idle length at which the energy
 * of remaining in uncontrolled idle equals the energy of one sleep
 * transition plus sleeping for the same duration (eq. 4):
 *
 *   N_be * p*(alpha*k + 1-alpha)/alpha
 *     = (1-alpha)/alpha + s/alpha + N_be * k*p/alpha
 *
 * Solving (the paper omits the algebra; note alpha*k + 1-alpha - k
 * = (1-alpha)(1-k)):
 *
 *   N_be = [(1-alpha) + s] / [p * (1-alpha) * (1-k)]
 *
 * which decreases ~1/p as the paper observes, and is nearly
 * independent of alpha when s << (1-alpha) (the reason the alpha=0.1
 * and alpha=0.9 curves of Figure 4a coincide).
 */

#ifndef LSIM_ENERGY_BREAKEVEN_HH
#define LSIM_ENERGY_BREAKEVEN_HH

#include "energy/model.hh"
#include "energy/params.hh"

namespace lsim::energy
{

/**
 * Closed-form breakeven idle interval (cycles, fractional) per
 * equation (5). Requires p > 0, k < 1, alpha < 1.
 */
double breakevenInterval(const ModelParams &params);

/**
 * Direct numerical solve of equation (4) using the EnergyModel's
 * per-cycle terms: smallest real N with
 * N * E_ui >= E_trans + N * E_sleep. Used to cross-validate the
 * closed form in tests.
 */
double breakevenIntervalNumeric(const EnergyModel &model);

/**
 * True when sleeping for an idle interval of @p interval cycles uses
 * no more energy than uncontrolled idle for the same interval.
 */
bool sleepPaysOff(const ModelParams &params, double interval);

} // namespace lsim::energy

#endif // LSIM_ENERGY_BREAKEVEN_HH
