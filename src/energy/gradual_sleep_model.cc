#include "energy/gradual_sleep_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "energy/breakeven.hh"

namespace lsim::energy
{

GradualSleepModel::GradualSleepModel(const ModelParams &params,
                                     unsigned num_slices)
    : model_(params), slices_(num_slices)
{
    if (slices_ == 0) {
        const double be = breakevenInterval(params);
        if (!std::isfinite(be)) {
            // Degenerate technology where sleep never pays off: a
            // single slice (pure MaxSleep behavior) is as good as any.
            slices_ = 1;
        } else {
            slices_ = std::max(1u,
                static_cast<unsigned>(std::llround(be)));
        }
    }
}

CycleCounts
GradualSleepModel::idleCounts(Cycle interval) const
{
    const double n = static_cast<double>(slices_);
    const double len = static_cast<double>(interval);
    // Slices 1..m have entered sleep by the end of the interval.
    const double m = std::min(len, n);

    CycleCounts cc;
    // Transition weight: m slices of size 1/n each performed a
    // (scaled) transition.
    cc.transitions = m / n;
    // Slice i idles uncontrolled for (i-1) cycles: sum_{i=1..m} (i-1)
    // = m(m-1)/2, each weighted 1/n. Slices that never slept idle
    // uncontrolled for the whole interval.
    cc.unctrl_idle = (m * (m - 1.0) / 2.0) / n + (n - m) / n * len;
    // Slice i sleeps for (L-i+1) cycles: sum_{i=1..m} (L-i+1)
    // = m*L - m(m-1)/2 ... each weighted 1/n.
    cc.sleep = (m * len - m * (m - 1.0) / 2.0) / n;
    return cc;
}

double
GradualSleepModel::idleEnergy(Cycle interval) const
{
    return model_.normalizedEnergy(idleCounts(interval));
}

double
GradualSleepModel::maxSleepIdleEnergy(Cycle interval) const
{
    CycleCounts cc;
    cc.transitions = 1.0;
    cc.sleep = static_cast<double>(interval);
    return model_.normalizedEnergy(cc);
}

double
GradualSleepModel::alwaysActiveIdleEnergy(Cycle interval) const
{
    CycleCounts cc;
    cc.unctrl_idle = static_cast<double>(interval);
    return model_.normalizedEnergy(cc);
}

} // namespace lsim::energy
