#include "energy/model.hh"

#include "common/logging.hh"

namespace lsim::energy
{

CycleCounts &
CycleCounts::operator+=(const CycleCounts &o)
{
    active += o.active;
    unctrl_idle += o.unctrl_idle;
    sleep += o.sleep;
    transitions += o.transitions;
    return *this;
}

double
EnergyBreakdown::total() const
{
    return dynamic + active_leak + idle_leak + sleep_leak + transition;
}

double
EnergyBreakdown::leakage() const
{
    return active_leak + idle_leak + sleep_leak;
}

double
EnergyBreakdown::leakageFraction() const
{
    const double t = total();
    return t > 0.0 ? leakage() / t : 0.0;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    dynamic += o.dynamic;
    active_leak += o.active_leak;
    idle_leak += o.idle_leak;
    sleep_leak += o.sleep_leak;
    transition += o.transition;
    return *this;
}

EnergyBreakdown &
EnergyBreakdown::operator*=(double scale)
{
    dynamic *= scale;
    active_leak *= scale;
    idle_leak *= scale;
    sleep_leak *= scale;
    transition *= scale;
    return *this;
}

EnergyModel::EnergyModel(const ModelParams &params)
    : params_(params)
{
    params_.validate();
}

double
EnergyModel::activeCycleEnergy() const
{
    const auto &mp = params_;
    const double post_eval = mp.alpha * mp.k + (1.0 - mp.alpha);
    return 1.0 + (mp.p / mp.alpha) *
        ((1.0 - mp.duty) + mp.duty * post_eval);
}

double
EnergyModel::unctrlIdleCycleEnergy() const
{
    const auto &mp = params_;
    return (mp.p / mp.alpha) * (mp.alpha * mp.k + (1.0 - mp.alpha));
}

double
EnergyModel::sleepCycleEnergy() const
{
    const auto &mp = params_;
    return mp.k * mp.p / mp.alpha;
}

double
EnergyModel::transitionEnergy() const
{
    const auto &mp = params_;
    return (1.0 - mp.alpha) / mp.alpha + mp.s / mp.alpha;
}

EnergyBreakdown
EnergyModel::breakdown(const CycleCounts &counts) const
{
    EnergyBreakdown eb;
    eb.dynamic = counts.active * 1.0;
    eb.active_leak = counts.active * (activeCycleEnergy() - 1.0);
    eb.idle_leak = counts.unctrl_idle * unctrlIdleCycleEnergy();
    eb.sleep_leak = counts.sleep * sleepCycleEnergy();
    eb.transition = counts.transitions * transitionEnergy();
    return eb;
}

double
EnergyModel::normalizedEnergy(const CycleCounts &counts) const
{
    return breakdown(counts).total();
}

double
EnergyModel::absoluteEnergyFj(const CycleCounts &counts) const
{
    return normalizedEnergy(counts) * params_.activeEnergyFj();
}

} // namespace lsim::energy
