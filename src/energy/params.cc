#include "energy/params.hh"

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace lsim::energy
{

namespace
{

/** %g-style rendering for exception messages. */
std::string
fmt(double v)
{
    std::ostringstream ss;
    ss << v;
    return ss.str();
}
} // namespace

void
ModelParams::validate() const
{
    // Configuration errors throw (the CLI boundary catches and
    // exits); fatal() would take down a daemon serving other
    // requests.
    const auto reject = [](const std::string &what) {
        throw std::invalid_argument("ModelParams: " + what);
    };
    if (p < 0.0 || p > 1.0)
        reject("leakage factor p=" + fmt(p) + " outside [0,1]");
    if (k < 0.0 || k > 1.0)
        reject("sleep ratio k=" + fmt(k) + " outside [0,1]");
    if (s < 0.0)
        reject("sleep overhead s=" + fmt(s) + " negative");
    if (alpha <= 0.0 || alpha > 1.0)
        reject("activity factor alpha=" + fmt(alpha) +
               " outside (0,1]");
    if (duty < 0.0 || duty > 1.0)
        reject("duty cycle D=" + fmt(duty) + " outside [0,1]");
    if (e_dyn_fj <= 0.0)
        reject("E_D=" + fmt(e_dyn_fj) + " must be positive");
}

ModelParams
ModelParams::fromCircuit(const circuit::FunctionalUnitCircuit &fu,
                         double alpha, double duty)
{
    ModelParams mp;
    mp.e_dyn_fj = fu.dynamicEnergy();
    mp.p = fu.leakHi() / fu.dynamicEnergy();
    mp.k = fu.leakLo() / fu.leakHi();
    // The overhead term covers the sleep transistors plus the Sleep
    // distribution drivers; the (1 - alpha) node-discharge cost is
    // modeled separately by the transition term of equation (3).
    mp.s = (fu.numGates() * fu.gate().sleepTransistorEnergy() +
            fu.shape().sleep_driver_fj) / fu.dynamicEnergy();
    mp.alpha = alpha;
    mp.duty = duty;
    mp.validate();
    return mp;
}

} // namespace lsim::energy
