#include "energy/params.hh"

#include "common/logging.hh"

namespace lsim::energy
{

void
ModelParams::validate() const
{
    if (p < 0.0 || p > 1.0)
        fatal("ModelParams: leakage factor p=%g outside [0,1]", p);
    if (k < 0.0 || k > 1.0)
        fatal("ModelParams: sleep ratio k=%g outside [0,1]", k);
    if (s < 0.0)
        fatal("ModelParams: sleep overhead s=%g negative", s);
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("ModelParams: activity factor alpha=%g outside (0,1]",
              alpha);
    if (duty < 0.0 || duty > 1.0)
        fatal("ModelParams: duty cycle D=%g outside [0,1]", duty);
    if (e_dyn_fj <= 0.0)
        fatal("ModelParams: E_D=%g must be positive", e_dyn_fj);
}

ModelParams
ModelParams::fromCircuit(const circuit::FunctionalUnitCircuit &fu,
                         double alpha, double duty)
{
    ModelParams mp;
    mp.e_dyn_fj = fu.dynamicEnergy();
    mp.p = fu.leakHi() / fu.dynamicEnergy();
    mp.k = fu.leakLo() / fu.leakHi();
    // The overhead term covers the sleep transistors plus the Sleep
    // distribution drivers; the (1 - alpha) node-discharge cost is
    // modeled separately by the transition term of equation (3).
    mp.s = (fu.numGates() * fu.gate().sleepTransistorEnergy() +
            fu.shape().sleep_driver_fj) / fu.dynamicEnergy();
    mp.alpha = alpha;
    mp.duty = duty;
    mp.validate();
    return mp;
}

} // namespace lsim::energy
