/**
 * @file
 * The paper's total-energy model, equations (1)-(3) of Section 3.
 *
 * Run time is divided into three operating categories:
 *   N_A   active cycles (the unit evaluates);
 *   N_UI  uncontrolled idle cycles (clock gated, sleep NOT entered);
 *   N_S   sleep cycles (dynamic nodes forced to the low-leakage
 *         state);
 * plus n_s, the number of transitions into the sleep state.
 *
 * Equation (1) in absolute units:
 *
 *   E = N_A  * [ alpha*E_D + (1-D)*E_LHI
 *                + D*(alpha*E_LLO + (1-alpha)*E_LHI) ]
 *     + N_UI * [ alpha*E_LLO + (1-alpha)*E_LHI ]
 *     + n_s  * [ (1-alpha)*E_D + E_sleepOH ]
 *     + N_S  * E_LLO
 *
 * Equation (3) divides through by E_A = alpha * E_D. This module
 * exposes both, plus a per-category breakdown used for the Figure 9b
 * leakage-vs-total analysis.
 */

#ifndef LSIM_ENERGY_MODEL_HH
#define LSIM_ENERGY_MODEL_HH

#include "common/types.hh"
#include "energy/params.hh"

namespace lsim::energy
{

/** Operating-category cycle counts consumed by the model. */
struct CycleCounts
{
    double active = 0.0;        ///< N_A
    double unctrl_idle = 0.0;   ///< N_UI
    double sleep = 0.0;         ///< N_S
    double transitions = 0.0;   ///< n_s

    /** Total accounted cycles (transitions are not cycles). */
    double total() const { return active + unctrl_idle + sleep; }

    CycleCounts &operator+=(const CycleCounts &o);
};

/**
 * Energy split by physical source. "Dynamic" covers useful
 * evaluation switching; "transition" covers the extra discharge +
 * overhead of entering sleep; the three leakage terms cover
 * subthreshold current in each operating category.
 */
struct EnergyBreakdown
{
    double dynamic = 0.0;       ///< N_A * alpha * E_D
    double active_leak = 0.0;   ///< leakage during active cycles
    double idle_leak = 0.0;     ///< leakage during uncontrolled idle
    double sleep_leak = 0.0;    ///< leakage during sleep cycles
    double transition = 0.0;    ///< sleep-entry discharge + overhead

    /** Sum of every component. */
    double total() const;

    /**
     * All leakage energy. Following the paper's Figure 9b accounting,
     * the transition cost is dynamic (node discharge/precharge), not
     * leakage.
     */
    double leakage() const;

    /** Fraction of total energy that is leakage (0 when total==0). */
    double leakageFraction() const;

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
    EnergyBreakdown &operator*=(double scale);
};

/**
 * Evaluator for equations (1)-(3). Stateless apart from the
 * parameters; cheap to copy.
 */
class EnergyModel
{
  public:
    /** @param params Model parameters (validated). */
    explicit EnergyModel(const ModelParams &params);

    /**
     * Total energy normalized to E_A = alpha*E_D per equation (3).
     * One active cycle with zero leakage contributes exactly 1.0.
     */
    double normalizedEnergy(const CycleCounts &counts) const;

    /** Total energy in femtojoules per equation (1)/(2). */
    double absoluteEnergyFj(const CycleCounts &counts) const;

    /** Per-source breakdown in normalized (E_A) units. */
    EnergyBreakdown breakdown(const CycleCounts &counts) const;

    /**
     * Normalized leakage energy of one uncontrolled-idle cycle:
     * p * (alpha*k + 1 - alpha) / alpha. The slope of the Figure 3
     * "uncontrolled idle" lines in model units.
     */
    double unctrlIdleCycleEnergy() const;

    /** Normalized leakage energy of one sleep cycle: k*p/alpha. */
    double sleepCycleEnergy() const;

    /**
     * Normalized cost of one transition into sleep:
     * (1-alpha)/alpha + s/alpha.
     */
    double transitionEnergy() const;

    /**
     * Normalized energy of one active cycle including its leakage:
     * 1 + (p/alpha) * [(1-D) + D*(alpha*k + 1-alpha)].
     */
    double activeCycleEnergy() const;

    const ModelParams &params() const { return params_; }

  private:
    ModelParams params_;
};

} // namespace lsim::energy

#endif // LSIM_ENERGY_MODEL_HH
