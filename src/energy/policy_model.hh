/**
 * @file
 * Closed-form policy energies, Section 3.1 equations (6)-(9) and
 * Figures 4b-4d.
 *
 * The parameter space is reduced to a usage factor f_U (fraction of
 * cycles the unit computes) and an average idle interval L_idle. For
 * a run of T cycles:
 *
 *   N_A = f_U * T, and the (1 - f_U) * T idle cycles are split by
 *   policy:
 *     AlwaysActive: all idle cycles uncontrolled, no transitions;
 *     MaxSleep:     all idle cycles asleep,
 *                   n_s = min((1-f_U)*T / L_idle, N_A);
 *     NoOverhead:   MaxSleep with the transition cost waived — an
 *                   unachievable lower bound on energy.
 *
 * Energies are reported relative to E_base (eq. 9), the energy if
 * the unit computed on every one of the T cycles.
 */

#ifndef LSIM_ENERGY_POLICY_MODEL_HH
#define LSIM_ENERGY_POLICY_MODEL_HH

#include <string>

#include "energy/model.hh"
#include "energy/params.hh"

namespace lsim::energy
{

/** The closed-form-modeled control policies of Section 3.1. */
enum class Policy
{
    AlwaysActive, ///< never assert Sleep; idle cycles leak at HI rate
    MaxSleep,     ///< assert Sleep on every idle cycle
    NoOverhead,   ///< MaxSleep minus transition cost (lower bound)
};

/** @return human-readable policy name as used in the paper. */
std::string to_string(Policy policy);

/** Workload abstraction for the closed forms. */
struct WorkloadPoint
{
    double usage = 0.5;        ///< f_U: fraction of cycles active
    double idle_interval = 10; ///< L_idle: mean idle interval, cycles
    double total_cycles = 1e6; ///< T (only scales absolute energy)

    /** Validate ranges; throws std::invalid_argument on
     * out-of-domain values. */
    void validate() const;
};

/**
 * Evaluates equations (6)-(9) for a (technology, workload) pair.
 */
class PolicyModel
{
  public:
    PolicyModel(const ModelParams &params, const WorkloadPoint &workload);

    /** Cycle counts the given policy induces on this workload. */
    CycleCounts counts(Policy policy) const;

    /** Normalized (to E_A) total energy of @p policy, eq. (6)-(8). */
    double energy(Policy policy) const;

    /** E_base of eq. (9): energy at 100% usage, same alpha. */
    double baseEnergy() const;

    /** energy(policy) / baseEnergy() — the Figure 4b-4d y-axis. */
    double relativeEnergy(Policy policy) const;

    /** Per-source breakdown for @p policy in E_A units. */
    EnergyBreakdown breakdown(Policy policy) const;

    /**
     * The min(MaxSleep, AlwaysActive) combination Section 3.2 calls
     * "the best combination of the two policies".
     */
    double minOfBoundingPolicies() const;

    const EnergyModel &model() const { return model_; }
    const WorkloadPoint &workload() const { return workload_; }

  private:
    EnergyModel model_;
    WorkloadPoint workload_;
};

} // namespace lsim::energy

#endif // LSIM_ENERGY_POLICY_MODEL_HH
