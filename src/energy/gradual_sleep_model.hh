/**
 * @file
 * Analytical model of the GradualSleep design (Section 3.2,
 * Figure 5).
 *
 * The circuit is divided into n_sl equal slices fed by a shift
 * register: when Sleep is asserted at the start of an idle period,
 * slice i enters the sleep state at idle cycle i (1-based). All
 * slices wake simultaneously when Sleep deasserts. The paper sets
 * n_sl to the breakeven interval of the technology so that each
 * cycle 1/N_be of the circuit enters sleep; fewer slices behave like
 * MaxSleep, more like AlwaysActive.
 *
 * For an idle interval of length L, slice i (fraction 1/n_sl of the
 * unit):
 *   - if i <= L: pays 1/n_sl of a full sleep transition, leaks
 *     uncontrolled for (i-1) cycles and asleep for (L-i+1) cycles;
 *   - if i > L: never sleeps; leaks uncontrolled for all L cycles.
 */

#ifndef LSIM_ENERGY_GRADUAL_SLEEP_MODEL_HH
#define LSIM_ENERGY_GRADUAL_SLEEP_MODEL_HH

#include "common/types.hh"
#include "energy/model.hh"
#include "energy/params.hh"

namespace lsim::energy
{

/** Closed-form energy of GradualSleep over a single idle interval. */
class GradualSleepModel
{
  public:
    /**
     * @param params Technology/application parameters.
     * @param num_slices Number of circuit slices; 0 selects the
     *        paper's default of round(breakeven interval), min 1.
     */
    explicit GradualSleepModel(const ModelParams &params,
                               unsigned num_slices = 0);

    /** Number of slices in effect. */
    unsigned numSlices() const { return slices_; }

    /**
     * Normalized (to E_A) energy spent during one idle interval of
     * @p interval cycles under GradualSleep, including transition
     * costs — the Figure 5c "Gradual Sleep" curve.
     */
    double idleEnergy(Cycle interval) const;

    /** Same quantity under MaxSleep (Figure 5c comparison curve). */
    double maxSleepIdleEnergy(Cycle interval) const;

    /** Same quantity under AlwaysActive. */
    double alwaysActiveIdleEnergy(Cycle interval) const;

    /**
     * Cycle counts (fractional, weighted by slice size) that the
     * GradualSleep schedule induces over one idle interval; feeding
     * these to EnergyModel reproduces idleEnergy(). Exposed for the
     * cycle-level controller tests.
     */
    CycleCounts idleCounts(Cycle interval) const;

    const EnergyModel &model() const { return model_; }

  private:
    EnergyModel model_;
    unsigned slices_;
};

} // namespace lsim::energy

#endif // LSIM_ENERGY_GRADUAL_SLEEP_MODEL_HH
