/**
 * @file
 * Parameters of the architectural static-energy model (Section 3).
 *
 * The model abstracts circuit detail into a handful of ratios:
 *
 *   p      leakage factor: E_LHI / E_D, per-cycle worst-case leakage
 *          relative to max dynamic energy;
 *   k      sleep-state ratio: E_LLO / E_LHI (LO vs HI leakage);
 *   s      sleep overhead: E_sleepOH / E_D, cost of toggling the
 *          sleep devices and distributing the Sleep signal;
 *   alpha  activity factor: fraction of dynamic nodes discharged per
 *          evaluation (application-determined);
 *   duty   clock duty cycle D.
 *
 * The paper's analysis defaults (Section 3.1 / Table 4) set k = 0.001
 * and s = 0.01 — deliberately pessimistic relative to the measured
 * circuit (k = 5.1e-4, s = 0.006) — and sweep p over (0, 1].
 */

#ifndef LSIM_ENERGY_PARAMS_HH
#define LSIM_ENERGY_PARAMS_HH

#include "circuit/fu_circuit.hh"

namespace lsim::energy
{

/** Technology + application parameters feeding equation (3). */
struct ModelParams
{
    /** Leakage factor p = E_LHI / E_D. */
    double p = 0.05;

    /** Sleep-state leakage ratio k = E_LLO / E_LHI. */
    double k = 0.001;

    /** Sleep transition overhead s = E_sleepOH / E_D. */
    double s = 0.01;

    /** Activity factor alpha (fraction of nodes discharged/eval). */
    double alpha = 0.5;

    /** Clock duty cycle D (fraction of the period the clock is high). */
    double duty = 0.5;

    /**
     * Absolute max dynamic energy E_D of the unit per cycle, fJ.
     * Only needed when absolute (rather than normalized) energies are
     * requested; defaults to the paper's generic 500-gate FU value.
     */
    double e_dyn_fj = 11100.0; // 500 gates x 22.2 fJ

    /** @return E_A = alpha * E_D, the normalization baseline, fJ. */
    double activeEnergyFj() const { return alpha * e_dyn_fj; }

    /** Validate ranges; throws std::invalid_argument on
     * out-of-domain values. */
    void validate() const;

    /**
     * Derive parameters from the circuit model: p, k, s and E_D are
     * computed from a FunctionalUnitCircuit characterization so
     * architecture studies can be driven directly by the circuit
     * level (alpha and duty are application/clock properties and are
     * taken from @p alpha and @p duty).
     */
    static ModelParams fromCircuit(const circuit::FunctionalUnitCircuit &fu,
                                   double alpha = 0.5, double duty = 0.5);
};

} // namespace lsim::energy

#endif // LSIM_ENERGY_PARAMS_HH
