#include "cache/cache.hh"

#include <bit>
#include <stdexcept>
#include <string>

namespace lsim::cache
{

std::uint64_t
CacheConfig::numSets() const
{
    return size_bytes / (static_cast<std::uint64_t>(assoc) * line_bytes);
}

void
CacheConfig::validate() const
{
    if (size_bytes == 0 || assoc == 0 || line_bytes == 0)
        throw std::invalid_argument("cache " + name +
                                    ": zero geometry parameter");
    if (!std::has_single_bit(static_cast<std::uint64_t>(line_bytes)))
        throw std::invalid_argument(
            "cache " + name + ": line size " +
            std::to_string(line_bytes) + " not a power of two");
    const std::uint64_t sets = numSets();
    if (sets == 0 || !std::has_single_bit(sets))
        throw std::invalid_argument(
            "cache " + name + ": set count " + std::to_string(sets) +
            " not a nonzero power of two");
}

Cache::Cache(const CacheConfig &config, Cache *next,
             Cycle memory_latency)
    : config_(config), next_(next), memory_latency_(memory_latency)
{
    config_.validate();
    lines_.assign(config_.numSets() * config_.assoc, Line{});
    set_mask_ = config_.numSets() - 1;
    line_shift_ = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint64_t>(config_.line_bytes)));
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> line_shift_) & set_mask_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> line_shift_;
}

Cycle
Cache::access(Addr addr, bool is_write)
{
    ++stats_.accesses;
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.assoc];

    Line *victim = base;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lru = ++lru_clock_;
            line.dirty = line.dirty || is_write;
            return config_.hit_latency;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    // Miss: fill from downstream (write-allocate).
    ++stats_.misses;
    Cycle fill = memory_latency_;
    if (next_)
        fill = next_->access(addr, false);

    if (victim->valid && victim->dirty) {
        ++stats_.writebacks;
        if (next_) {
            // Writebacks occupy the next level (affecting its
            // contents) but are buffered, so they add no latency to
            // the demand fill.
            const Addr victim_addr =
                victim->tag << line_shift_;
            (void)next_->access(victim_addr, true);
        }
    }

    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = ++lru_clock_;
    return config_.hit_latency + fill;
}

bool
Cache::probe(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way)
        if (base[way].valid && base[way].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace lsim::cache
