/**
 * @file
 * The full memory system of Table 2: split L1 I/D caches, a unified
 * L2, instruction and data TLBs, and a flat memory latency behind
 * the L2.
 */

#ifndef LSIM_CACHE_HIERARCHY_HH
#define LSIM_CACHE_HIERARCHY_HH

#include <memory>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/types.hh"

namespace lsim::cache
{

/** Configuration of the whole hierarchy (Table 2 defaults). */
struct HierarchyConfig
{
    CacheConfig l1i{"L1I", 64 * 1024, 4, 64, 2};
    CacheConfig l1d{"L1D", 64 * 1024, 4, 64, 2};
    CacheConfig l2{"L2", 2 * 1024 * 1024, 8, 128, 12};
    TlbConfig itlb{"ITLB", 256, 4, 8 * 1024, 30};
    TlbConfig dtlb{"DTLB", 512, 4, 8 * 1024, 30};
    Cycle memory_latency = 80;
};

/** Owns and wires the cache levels and TLBs. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config = {});

    /**
     * Instruction fetch of the line containing @p pc.
     * @return total latency including any ITLB miss penalty; a
     * 2-cycle L1I hit returns 2.
     */
    Cycle fetch(Addr pc);

    /**
     * Data access at @p addr.
     * @return total latency including any DTLB miss penalty.
     */
    Cycle data(Addr addr, bool is_write);

    const Cache &l1i() const { return *l1i_; }
    const Cache &l1d() const { return *l1d_; }
    const Cache &l2() const { return *l2_; }
    const Tlb &itlb() const { return *itlb_; }
    const Tlb &dtlb() const { return *dtlb_; }
    const HierarchyConfig &config() const { return config_; }

    /** Invalidate every cache and TLB. */
    void flushAll();

  private:
    HierarchyConfig config_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Tlb> itlb_;
    std::unique_ptr<Tlb> dtlb_;
};

} // namespace lsim::cache

#endif // LSIM_CACHE_HIERARCHY_HH
