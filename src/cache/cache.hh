/**
 * @file
 * Set-associative, write-back/write-allocate cache with true-LRU
 * replacement and blocking (latency-additive) miss handling, in the
 * SimpleScalar tradition: an access returns the total latency to
 * first use, accumulating each level's hit latency down the
 * hierarchy.
 */

#ifndef LSIM_CACHE_CACHE_HH
#define LSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lsim::cache
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned line_bytes = 64;
    Cycle hit_latency = 2;

    /** Number of sets implied by the geometry. */
    std::uint64_t numSets() const;

    /** Validate: power-of-two sets/lines, nonzero sizes. Throws
     * std::invalid_argument on bad geometry. */
    void validate() const;
};

/** Access statistics of one cache level. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/**
 * One cache level. Levels are chained via the next-level pointer;
 * the last level's misses cost the configured memory latency.
 */
class Cache
{
  public:
    /**
     * @param config Geometry/timing.
     * @param next Next level (nullptr = memory is next).
     * @param memory_latency Latency charged when this level misses
     *        and there is no next level.
     */
    Cache(const CacheConfig &config, Cache *next, Cycle memory_latency);

    /**
     * Access @p addr; @return total latency to data (this level's
     * hit latency plus, on a miss, the downstream fill latency).
     * Write misses allocate (fetch-on-write). Dirty evictions access
     * the next level as writebacks (counted, not timed — writeback
     * buffers are assumed, as in SimpleScalar's default).
     */
    Cycle access(Addr addr, bool is_write);

    /** @return true if @p addr currently hits (no state change). */
    bool probe(Addr addr) const;

    /** Invalidate all lines (drops dirty state). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; ///< higher = more recently used
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig config_;
    Cache *next_;
    Cycle memory_latency_;
    std::vector<Line> lines_; ///< sets * assoc, row-major by set
    std::uint64_t lru_clock_ = 0;
    CacheStats stats_;

    std::uint64_t set_mask_;
    unsigned line_shift_;
};

} // namespace lsim::cache

#endif // LSIM_CACHE_CACHE_HH
