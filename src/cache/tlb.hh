/**
 * @file
 * Set-associative TLB with LRU replacement and a fixed miss penalty
 * (hardware page walk), per the paper's Table 2: 256/512-entry
 * 4-way, 8 KB pages, 30-cycle miss.
 */

#ifndef LSIM_CACHE_TLB_HH
#define LSIM_CACHE_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lsim::cache
{

/** TLB geometry and timing. */
struct TlbConfig
{
    std::string name = "tlb";
    unsigned entries = 256;
    unsigned assoc = 4;
    std::uint64_t page_bytes = 8 * 1024;
    Cycle miss_latency = 30;

    /** Throws std::invalid_argument on bad geometry. */
    void validate() const;
};

/** Translation statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/** A translation lookaside buffer. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Translate the page of @p addr. @return 0 on a hit, the miss
     * penalty on a miss (the entry is filled).
     */
    Cycle access(Addr addr);

    /** Drop all translations. */
    void flush();

    const TlbStats &stats() const { return stats_; }
    const TlbConfig &config() const { return config_; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    TlbConfig config_;
    std::vector<Entry> entries_;
    std::uint64_t lru_clock_ = 0;
    std::uint64_t set_mask_;
    unsigned page_shift_;
    TlbStats stats_;
};

} // namespace lsim::cache

#endif // LSIM_CACHE_TLB_HH
