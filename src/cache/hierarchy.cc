#include "cache/hierarchy.hh"

namespace lsim::cache
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : config_(config)
{
    l2_ = std::make_unique<Cache>(config_.l2, nullptr,
                                  config_.memory_latency);
    l1i_ = std::make_unique<Cache>(config_.l1i, l2_.get(), 0);
    l1d_ = std::make_unique<Cache>(config_.l1d, l2_.get(), 0);
    itlb_ = std::make_unique<Tlb>(config_.itlb);
    dtlb_ = std::make_unique<Tlb>(config_.dtlb);
}

Cycle
MemoryHierarchy::fetch(Addr pc)
{
    return itlb_->access(pc) + l1i_->access(pc, false);
}

Cycle
MemoryHierarchy::data(Addr addr, bool is_write)
{
    return dtlb_->access(addr) + l1d_->access(addr, is_write);
}

void
MemoryHierarchy::flushAll()
{
    l1i_->flush();
    l1d_->flush();
    l2_->flush();
    itlb_->flush();
    dtlb_->flush();
}

} // namespace lsim::cache
