#include "cache/tlb.hh"

#include <bit>
#include <stdexcept>
#include <string>

namespace lsim::cache
{

void
TlbConfig::validate() const
{
    if (entries == 0 || assoc == 0 || entries % assoc != 0)
        throw std::invalid_argument(
            "tlb " + name + ": entries (" + std::to_string(entries) +
            ") must be a multiple of assoc (" +
            std::to_string(assoc) + ")");
    if (!std::has_single_bit(
            static_cast<std::uint64_t>(entries / assoc)))
        throw std::invalid_argument(
            "tlb " + name + ": set count not a power of two");
    if (!std::has_single_bit(page_bytes))
        throw std::invalid_argument(
            "tlb " + name + ": page size not a power of two");
}

Tlb::Tlb(const TlbConfig &config)
    : config_(config)
{
    config_.validate();
    entries_.assign(config_.entries, Entry{});
    set_mask_ = config_.entries / config_.assoc - 1;
    page_shift_ = static_cast<unsigned>(std::countr_zero(config_.page_bytes));
}

Cycle
Tlb::access(Addr addr)
{
    ++stats_.accesses;
    const Addr vpn = addr >> page_shift_;
    const std::uint64_t set = vpn & set_mask_;
    Entry *base = &entries_[set * config_.assoc];

    Entry *victim = base;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Entry &e = base[way];
        if (e.valid && e.vpn == vpn) {
            e.lru = ++lru_clock_;
            return 0;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lru < victim->lru) {
            victim = &e;
        }
    }

    ++stats_.misses;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = ++lru_clock_;
    return config_.miss_latency;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e = Entry{};
}

} // namespace lsim::cache
