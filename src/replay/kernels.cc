#include "replay/kernels.hh"

#include <algorithm>

#include "common/logging.hh"
#include "replay/engine.hh"

namespace lsim::replay::kernels
{

void
AccumulatorBank::resize(std::size_t n)
{
    active.assign(n, 0.0);
    unctrl_idle.assign(n, 0.0);
    sleep.assign(n, 0.0);
    transitions.assign(n, 0.0);
}

energy::CycleCounts
AccumulatorBank::counts(std::size_t lane) const
{
    energy::CycleCounts c;
    c.active = active.at(lane);
    c.unctrl_idle = unctrl_idle.at(lane);
    c.sleep = sleep.at(lane);
    c.transitions = transitions.at(lane);
    return c;
}

std::size_t
KernelBatch::addLane(const sleep::KernelSpec &spec)
{
    using Kind = sleep::KernelSpec::Kind;
    if (spec.kind != kind_)
        fatal("KernelBatch::addLane: spec '%s' does not match the "
              "batch kind", spec.key().c_str());
    switch (kind_) {
    case Kind::AlwaysActive:
    case Kind::MaxSleep:
    case Kind::NoOverhead:
        break;
    case Kind::Gradual: {
        if (spec.slices == 0)
            fatal("KernelBatch::addLane: gradual slice count 0");
        const double n = static_cast<double>(spec.slices);
        slices_.push_back(n);
        // Saturated-regime constants, spelled exactly like
        // GradualSleepController::doIdleRun at m == n.
        grad_tri_.push_back(n * (n - 1.0) / 2.0);
        grad_ui_.push_back((n * (n - 1.0) / 2.0) / n);
        grad_max_n_ = std::max(grad_max_n_, n);
        break;
    }
    case Kind::Timeout:
        timeouts_.push_back(spec.timeout);
        break;
    case Kind::Oracle:
        breakevens_.push_back(spec.breakeven);
        break;
    case Kind::WeightedGradual: {
        // The asleep-after prefix sums, accumulated exactly as the
        // WeightedGradualSleepController constructor does (the
        // doIdleRuns arithmetic reads them).
        std::vector<double> prefix;
        prefix.reserve(spec.weights.size());
        double total = 0.0;
        for (double w : spec.weights) {
            total += w;
            prefix.push_back(total);
        }
        if (prefix.empty())
            fatal("KernelBatch::addLane: weighted-gradual without "
                  "weights");
        prefix.back() = 1.0; // exact despite rounding, as in the ctor
        weight_sets_.push_back(spec.weights);
        prefix_sets_.push_back(std::move(prefix));
        break;
    }
    case Kind::None:
        fatal("KernelBatch::addLane: Kind::None has no kernel");
    }
    return lanes_++;
}

namespace
{

/**
 * The per-interval lane loops below mirror each controller's
 * doIdleRuns() expression for expression — including intermediate
 * rounding — so each lane's accumulator receives the identical
 * floating-point operation sequence the virtual path would produce.
 */

void
runAlwaysActive(const IntervalSet &set, std::size_t begin,
                std::size_t end, AccumulatorBank &bank)
{
    double *__restrict ui = bank.unctrl_idle.data();
    const std::size_t lanes = bank.lanes();
    for (std::size_t i = begin; i < end; ++i) {
        // unctrl_idle += double(len) * double(count)
        const double add = static_cast<double>(set.lengths[i]) *
                           static_cast<double>(set.counts[i]);
        for (std::size_t u = 0; u < lanes; ++u)
            ui[u] += add;
    }
}

void
runMaxSleep(const IntervalSet &set, std::size_t begin,
            std::size_t end, AccumulatorBank &bank)
{
    double *__restrict tr = bank.transitions.data();
    double *__restrict sl = bank.sleep.data();
    const std::size_t lanes = bank.lanes();
    for (std::size_t i = begin; i < end; ++i) {
        // transitions += double(count); sleep += len * count
        const double n = static_cast<double>(set.counts[i]);
        const double add = static_cast<double>(set.lengths[i]) *
                           static_cast<double>(set.counts[i]);
        for (std::size_t u = 0; u < lanes; ++u) {
            tr[u] += n;
            sl[u] += add;
        }
    }
}

void
runNoOverhead(const IntervalSet &set, std::size_t begin,
              std::size_t end, AccumulatorBank &bank)
{
    double *__restrict sl = bank.sleep.data();
    const std::size_t lanes = bank.lanes();
    for (std::size_t i = begin; i < end; ++i) {
        const double add = static_cast<double>(set.lengths[i]) *
                           static_cast<double>(set.counts[i]);
        for (std::size_t u = 0; u < lanes; ++u)
            sl[u] += add;
    }
}

void
runGradual(const std::vector<double> &slices,
           const std::vector<double> &grad_tri,
           const std::vector<double> &grad_ui, double max_n,
           const IntervalSet &set, std::size_t begin,
           std::size_t end, AccumulatorBank &bank)
{
    const double *__restrict sl = slices.data();
    const double *__restrict tri = grad_tri.data();
    const double *__restrict uic = grad_ui.data();
    double *__restrict tr = bank.transitions.data();
    double *__restrict ui = bank.unctrl_idle.data();
    double *__restrict sp = bank.sleep.data();
    const std::size_t lanes = bank.lanes();

    // Once length >= n for every lane, each run saturates the shift
    // register (m == n): the transition and unctrl_idle terms become
    // lane constants, leaving one division per (interval, lane).
    // Lengths ascend, so that regime is a suffix of the range.
    const std::size_t sat = static_cast<std::size_t>(
        std::lower_bound(set.lengths.begin() + begin,
                         set.lengths.begin() + end, max_n,
                         [](Cycle len, double threshold) {
                             return static_cast<double>(len) <
                                    threshold;
                         }) -
        set.lengths.begin());

    // Mixed regime: the full doIdleRun closed form per lane.
    for (std::size_t i = begin; i < sat; ++i) {
        const double length = static_cast<double>(set.lengths[i]);
        const double cnt = static_cast<double>(set.counts[i]);
        // Lane-independent SoA updates: this loop vectorizes across
        // configurations while each lane keeps the scalar op order.
        for (std::size_t u = 0; u < lanes; ++u) {
            const double n = sl[u];
            const double m = std::min(length, n);
            // doIdleRun's closed-form per-run contributions.
            const double run_tr = m / n;
            const double run_ui =
                (m * (m - 1.0) / 2.0) / n + (n - m) / n * length;
            const double run_sp =
                (m * length - m * (m - 1.0) / 2.0) / n;
            // doIdleRuns' before/(after - before)*count rescaling,
            // intermediate roundings included.
            const double t0 = tr[u] + run_tr;
            tr[u] = tr[u] + (t0 - tr[u]) * cnt;
            const double u0 = ui[u] + run_ui;
            ui[u] = ui[u] + (u0 - ui[u]) * cnt;
            const double s0 = sp[u] + run_sp;
            sp[u] = sp[u] + (s0 - sp[u]) * cnt;
        }
    }

    // Saturated regime: m == n exactly, so run_tr == n/n == 1.0,
    // run_ui == (n*(n-1)/2)/n + 0.0 == the precomputed lane
    // constant, and only run_sp still divides.
    for (std::size_t i = sat; i < end; ++i) {
        const double length = static_cast<double>(set.lengths[i]);
        const double cnt = static_cast<double>(set.counts[i]);
        // Per-field lane loops keep each loop narrow enough for the
        // vectorizer; each field's op sequence is unchanged.
        for (std::size_t u = 0; u < lanes; ++u) {
            const double trv = tr[u];
            const double t0 = trv + 1.0;
            tr[u] = trv + (t0 - trv) * cnt;
        }
        for (std::size_t u = 0; u < lanes; ++u) {
            const double uiv = ui[u];
            const double u0 = uiv + uic[u];
            ui[u] = uiv + (u0 - uiv) * cnt;
        }
        for (std::size_t u = 0; u < lanes; ++u) {
            const double n = sl[u];
            const double run_sp = (n * length - tri[u]) / n;
            const double spv = sp[u];
            const double s0 = spv + run_sp;
            sp[u] = spv + (s0 - spv) * cnt;
        }
    }
}

void
runWeightedGradual(const std::vector<std::vector<double>> &weights,
                   const std::vector<std::vector<double>> &prefixes,
                   const IntervalSet &set, std::size_t begin,
                   std::size_t end, AccumulatorBank &bank)
{
    for (std::size_t u = 0; u < bank.lanes(); ++u) {
        const std::vector<double> &w = weights[u];
        const std::vector<double> &pre = prefixes[u];
        double tr = bank.transitions[u];
        double ui = bank.unctrl_idle[u];
        double sp = bank.sleep[u];
        for (std::size_t i = begin; i < end; ++i) {
            const Cycle len = set.lengths[i];
            const double n = static_cast<double>(set.counts[i]);
            const double length = static_cast<double>(len);
            const std::size_t m = std::min<std::size_t>(
                w.size(), static_cast<std::size_t>(len));
            double trans = 0.0, uival = 0.0, sleep = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
                const double wj = w[j];
                trans += wj;
                uival += wj * static_cast<double>(j);
                sleep += wj * (length - static_cast<double>(j));
            }
            const double awake = 1.0 - (m > 0 ? pre[m - 1] : 0.0);
            uival += awake * length;
            tr += trans * n;
            ui += uival * n;
            sp += sleep * n;
        }
        bank.transitions[u] = tr;
        bank.unctrl_idle[u] = ui;
        bank.sleep[u] = sp;
    }
}

void
runTimeout(const std::vector<Cycle> &timeouts, const IntervalSet &set,
           std::size_t begin, std::size_t end, AccumulatorBank &bank)
{
    const auto first = set.lengths.begin();
    for (std::size_t u = 0; u < bank.lanes(); ++u) {
        const Cycle to = timeouts[u];
        const double wait = static_cast<double>(to);
        // Lengths ascend, so "len > timeout" splits the range once.
        const std::size_t split = static_cast<std::size_t>(
            std::upper_bound(first + begin, first + end, to) - first);
        double ui = bank.unctrl_idle[u];
        double tr = bank.transitions[u];
        double sp = bank.sleep[u];
        // len <= timeout: the whole run idles uncontrolled.
        for (std::size_t i = begin; i < split; ++i)
            ui += static_cast<double>(set.lengths[i]) *
                  static_cast<double>(set.counts[i]);
        // len > timeout: wait, one transition, sleep the remainder.
        for (std::size_t i = split; i < end; ++i) {
            const double n = static_cast<double>(set.counts[i]);
            const double length =
                static_cast<double>(set.lengths[i]);
            ui += wait * n;
            tr += n;
            sp += (length - wait) * n;
        }
        bank.unctrl_idle[u] = ui;
        bank.transitions[u] = tr;
        bank.sleep[u] = sp;
    }
}

void
runOracle(const std::vector<double> &breakevens,
          const IntervalSet &set, std::size_t begin, std::size_t end,
          AccumulatorBank &bank)
{
    const auto first = set.lengths.begin();
    for (std::size_t u = 0; u < bank.lanes(); ++u) {
        const double be = breakevens[u];
        // First length with double(len) >= breakeven (ascending).
        const std::size_t split = static_cast<std::size_t>(
            std::lower_bound(first + begin, first + end, be,
                             [](Cycle len, double threshold) {
                                 return static_cast<double>(len) <
                                        threshold;
                             }) -
            first);
        double ui = bank.unctrl_idle[u];
        double tr = bank.transitions[u];
        double sp = bank.sleep[u];
        for (std::size_t i = begin; i < split; ++i)
            ui += static_cast<double>(set.lengths[i]) *
                  static_cast<double>(set.counts[i]);
        for (std::size_t i = split; i < end; ++i) {
            const double n = static_cast<double>(set.counts[i]);
            tr += n;
            sp += static_cast<double>(set.lengths[i]) * n;
        }
        bank.unctrl_idle[u] = ui;
        bank.transitions[u] = tr;
        bank.sleep[u] = sp;
    }
}

} // namespace

void
KernelBatch::run(const IntervalSet &set, std::size_t begin,
                 std::size_t end, bool with_active,
                 AccumulatorBank &bank) const
{
    using Kind = sleep::KernelSpec::Kind;
    if (bank.lanes() != lanes_)
        fatal("KernelBatch::run: bank has %zu lanes, batch %zu",
              bank.lanes(), lanes_);
    // The scalar call sequence opens with the active total (skipped
    // when zero), exactly like MultiPointReplay::replayRange.
    if (with_active && set.active_cycles > 0) {
        const double active = static_cast<double>(set.active_cycles);
        for (std::size_t u = 0; u < lanes_; ++u)
            bank.active[u] += active;
    }
    switch (kind_) {
    case Kind::AlwaysActive:
        runAlwaysActive(set, begin, end, bank);
        return;
    case Kind::MaxSleep:
        runMaxSleep(set, begin, end, bank);
        return;
    case Kind::NoOverhead:
        runNoOverhead(set, begin, end, bank);
        return;
    case Kind::Gradual:
        runGradual(slices_, grad_tri_, grad_ui_, grad_max_n_, set,
                   begin, end, bank);
        return;
    case Kind::WeightedGradual:
        runWeightedGradual(weight_sets_, prefix_sets_, set, begin,
                           end, bank);
        return;
    case Kind::Timeout:
        runTimeout(timeouts_, set, begin, end, bank);
        return;
    case Kind::Oracle:
        runOracle(breakevens_, set, begin, end, bank);
        return;
    case Kind::None:
        break;
    }
    fatal("KernelBatch::run: bad kind %d", static_cast<int>(kind_));
}

} // namespace lsim::replay::kernels
