/**
 * @file
 * Single-pass multi-point replay engine: evaluates every technology
 * point of a sweep cell in one pass over the idle-interval multiset.
 *
 * The scalar path (harness::evaluatePolicies) walks a workload's
 * interval multiset once per (technology point) cell — O(points x
 * intervals) work for a p-sweep, the hottest loop in the codebase.
 * This engine restructures that replay around four observations:
 *
 *  1. Most policies are *point-invariant*: an AlwaysActive, MaxSleep
 *     or NoOverhead controller accumulates the identical CycleCounts
 *     at every technology point (only the energy model applied at
 *     the end differs), and a GradualSleep controller depends on the
 *     point only through its slice count, which collides across
 *     nearby points. The engine keeps a bank of accumulators indexed
 *     by (policy, point) but deduplicates them by the exact
 *     controller configuration — compared structurally via
 *     sleep::KernelSpec — so the paper's four policies over a
 *     20-point sweep accumulate ~13 units instead of 80.
 *  2. The interval multiset can be flattened once per workload into
 *     sorted, contiguous length/count arrays (IntervalSet) that every
 *     unit streams over, instead of re-walking a std::map per cell
 *     and re-feeding the evaluator's idle recorder.
 *  3. For a history-free policy (any controller reporting a
 *     KernelSpec) the per-interval accounting is a closed form of
 *     the interval length, so the units that dedup could NOT
 *     collapse — per-point gradual slice counts, timeout and oracle
 *     thresholds — replay as one *batched kernel* pass per policy
 *     kind: a struct-of-arrays accumulator bank filled by
 *     branch-regular, auto-vectorizable array kernels
 *     (replay/kernels.hh) instead of one virtual dispatch per
 *     (unit, length). This is the default; ReplayOptions::use_kernels
 *     = false restores per-unit virtual dispatch for equivalence
 *     testing and benchmarking.
 *  4. For very long simulations the sorted interval array can be
 *     sharded into chunks aligned to Log2Histogram bucket boundaries;
 *     chunks replay into independent partial accumulators (a fresh
 *     controller or kernel bank per chunk) that are merged in chunk
 *     order, so phase 2 parallelizes below cell granularity yet
 *     stays deterministic for any thread count.
 *
 * Equivalence contract: with a single chunk (the default below the
 * auto-shard threshold) every accumulator receives the exact
 * floating-point operation sequence of the scalar path —
 * activeRun(active_cycles) then idleRuns(len, count) in ascending
 * length order, whether executed through the controller virtuals or
 * the batch kernels (which replicate the controllers' arithmetic
 * expression for expression) — so results are bit-identical to
 * harness::evaluatePolicies either way, and no equivalence flag
 * guards the kernel path. With multiple chunks the per-chunk partial
 * sums are merged in chunk order; the reduction order differs, so
 * results agree only to ~1e-12 relative (tested), which is why
 * sharding engages only above the threshold or on request.
 *
 * History-dependent policies (Adaptive) and external registrations
 * that do not override SleepController::kernelSpec() cannot be
 * kernelized or sharded: they replay the whole interval set
 * sequentially per distinct configuration, as their own parallel
 * task (the fallback path).
 */

#ifndef LSIM_REPLAY_ENGINE_HH
#define LSIM_REPLAY_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "energy/model.hh"
#include "harness/experiment.hh"
#include "replay/kernels.hh"
#include "sleep/accumulator.hh"

namespace lsim::replay
{

/**
 * A workload's idle-interval multiset flattened into sorted,
 * contiguous arrays — the stream every replay unit consumes.
 * Zero-length intervals and zero counts are dropped (mirroring
 * PolicyEvaluator::feedRuns), so `lengths` holds strictly positive,
 * strictly ascending values.
 */
struct IntervalSet
{
    std::vector<Cycle> lengths;          ///< ascending, nonzero
    std::vector<std::uint64_t> counts;   ///< parallel to lengths
    Cycle active_cycles = 0;
    Cycle idle_cycles = 0;               ///< sum of len * count

    /** Number of distinct interval lengths. */
    std::size_t numDistinct() const { return lengths.size(); }

    /** Total cycles fed to every controller (active + idle). */
    Cycle totalCycles() const { return active_cycles + idle_cycles; }

    static IntervalSet fromProfile(const harness::IdleProfile &idle);
};

/** Tuning knobs for one engine instance. */
struct ReplayOptions
{
    /**
     * Maximum distinct interval lengths per phase-2 chunk. 0 = auto:
     * a single chunk below auto_shard_threshold distinct lengths
     * (keeping results bit-identical to the scalar path), chunks of
     * auto_chunk_intervals above it.
     */
    std::size_t chunk_intervals = 0;

    /**
     * Replay history-free policies through the batched closed-form
     * kernels (bit-exact; the default). false restores the per-unit
     * virtual-dispatch replay — same results, kept for equivalence
     * tests and the kernel-vs-virtual benchmark dimension.
     */
    bool use_kernels = true;

    /** Auto mode shards only above this many distinct lengths. */
    static constexpr std::size_t auto_shard_threshold = 4096;

    /** Chunk size auto mode uses once it shards. */
    static constexpr std::size_t auto_chunk_intervals = 1024;
};

/**
 * Replays one workload's IntervalSet at many technology points under
 * registry-named policies, in independent tasks.
 *
 * Usage: construct, run all tasks (any thread assignment; tasks
 * write disjoint state), then finalize() once:
 *
 * @code
 *   replay::MultiPointReplay engine(
 *       replay::IntervalSet::fromProfile(ws.idle), points, keys);
 *   for (std::size_t t = 0; t < engine.numTasks(); ++t)  // or pool
 *       engine.runTask(t);
 *   auto results = engine.finalize();  // [point][policy]
 * @endcode
 */
class MultiPointReplay
{
  public:
    /**
     * @param intervals The workload's flattened interval multiset.
     * @param points Technology points to evaluate (may be empty).
     * @param policy_keys PolicyRegistry specs; empty = the paper's
     *        four policies. Throws std::invalid_argument on unknown
     *        or malformed specs (validated here, before any task).
     */
    MultiPointReplay(IntervalSet intervals,
                     std::vector<energy::ModelParams> points,
                     std::vector<std::string> policy_keys,
                     ReplayOptions options = {});

    /**
     * Moves transfer the whole replay; the moved-from engine keeps
     * no usable state and its runTask()/runAll()/finalize() entry
     * points fatal() instead of silently replaying emptied vectors.
     */
    MultiPointReplay(MultiPointReplay &&other) noexcept;
    MultiPointReplay &operator=(MultiPointReplay &&other) noexcept;

    /** Independent replay tasks (>= 1 unless there are no points). */
    std::size_t numTasks() const { return tasks_.size(); }

    /**
     * Run task @p index. Thread-safe for distinct indices; each task
     * writes only its own accumulator slot.
     */
    void runTask(std::size_t index);

    /** Run every task on the calling thread. */
    void runAll();

    /**
     * Merge chunk partials and build per-point results, in the exact
     * arithmetic of PolicyEvaluator::results(). Call once, after
     * every task has run.
     *
     * @return results[point][policy], policies in policy-key order.
     */
    std::vector<std::vector<sleep::PolicyResult>> finalize();

    /** Technology points under evaluation. */
    std::size_t numPoints() const { return points_.size(); }

    /** Policies per point. */
    std::size_t numPolicies() const { return policy_keys_.size(); }

    /**
     * Deduplicated accumulator units — the work the engine actually
     * replays. numUnits() <= numPoints() * numPolicies(), with
     * equality only when every policy is point-variant.
     */
    std::size_t numUnits() const { return units_.size(); }

    /** Batched kernel invocations (one per history-free kind). */
    std::size_t numKernelGroups() const { return groups_.size(); }

    /** Units replayed through batch kernels (vs the fallback). */
    std::size_t numKernelUnits() const;

    /** Chunks the interval stream was sharded into (>= 1). */
    std::size_t numChunks() const { return num_chunks_; }

    const IntervalSet &intervals() const { return intervals_; }

  private:
    /** One deduplicated (policy-config, point-set) accumulator. */
    struct Unit
    {
        /** Prototype controller; supplies name(), and accumulates
         * directly for unchunked fallback units. */
        std::unique_ptr<sleep::SleepController> proto;

        /** Closed-form self-classification. historyFree() units may
         * shard and (by default) replay through batch kernels;
         * Kind::None units take the sequential fallback path. */
        sleep::KernelSpec spec;

        /** True when a kernel group lane accumulates this unit. */
        bool kernel = false;

        /** Per-chunk partial counts (chunk order), when the unit is
         * sharded on the fallback/virtual path. */
        std::vector<energy::CycleCounts> partials;

        /** Merged counts, filled by finalize(). */
        energy::CycleCounts counts;
    };

    /** One batched kernel: every kernelized unit of one policy kind,
     * one SoA accumulator lane per unit. */
    struct KernelGroup
    {
        kernels::KernelBatch batch;
        std::vector<std::size_t> units; ///< lane -> units_ index
        kernels::AccumulatorBank bank;  ///< unchunked accumulators
        /** Per-chunk partial banks (chunk order), when sharded. */
        std::vector<kernels::AccumulatorBank> partial_banks;
    };

    /** A schedulable piece: one chunk (or the whole stream) of one
     * unit or kernel group. chunk == npos spans the full set. */
    struct Task
    {
        bool kernel = false; ///< index addresses groups_, not units_
        std::size_t index = 0;
        std::size_t chunk = npos;
        static constexpr std::size_t npos = ~std::size_t{0};
    };

    /** Feed [begin, end) of the interval arrays into a controller,
     * with the activeRun prefix when @p with_active. */
    void replayRange(sleep::SleepController &ctrl, std::size_t begin,
                     std::size_t end, bool with_active) const;

    /** fatal() when this engine was moved from. */
    void assertUsable(const char *call) const;

    IntervalSet intervals_;
    std::vector<energy::ModelParams> points_;
    std::vector<std::string> policy_keys_;

    std::vector<Unit> units_;
    /** unit_of_[point * numPolicies() + policy] -> units_ index. */
    std::vector<std::size_t> unit_of_;

    std::vector<KernelGroup> groups_;

    /** Chunk boundaries into the interval arrays: chunk c covers
     * [chunk_bounds_[c], chunk_bounds_[c + 1]). */
    std::vector<std::size_t> chunk_bounds_;
    std::size_t num_chunks_ = 1;

    std::vector<Task> tasks_;
    bool finalized_ = false;
    bool moved_from_ = false;
};

/**
 * One-shot convenience: replay @p idle at every point in @p points
 * under @p policy_keys on the calling thread.
 *
 * This is the multi-point counterpart of calling
 * api::evaluateProfile once per point; results are bit-identical to
 * that scalar path (single chunk — see the class contract).
 */
std::vector<std::vector<sleep::PolicyResult>>
replayProfile(const harness::IdleProfile &idle,
              const std::vector<energy::ModelParams> &points,
              const std::vector<std::string> &policy_keys = {},
              ReplayOptions options = {});

} // namespace lsim::replay

#endif // LSIM_REPLAY_ENGINE_HH
