/**
 * @file
 * Closed-form batch replay kernels for history-free sleep policies.
 *
 * The replay engine's inner loop was one virtual idleRuns() dispatch
 * per (accumulator unit, distinct interval length). For a policy
 * with a KernelSpec, the per-interval contribution to CycleCounts is
 * a pure function of the interval length, so the whole replay over
 * the flattened IntervalSet arrays collapses into branch-regular
 * array kernels: one pass over the length/count arrays fills the
 * accumulators of *every* distinct configuration ("lane") of that
 * policy kind at once — the lanes a 20-point sweep's configuration
 * dedup could not collapse (per-point gradual slice counts, timeout
 * and oracle thresholds).
 *
 * Accumulators live in a struct-of-arrays bank, so the per-interval
 * lane loop touches contiguous parallel arrays with no cross-lane
 * dependence — exactly the shape compilers auto-vectorize. Policies
 * whose per-interval branch is a threshold on the (sorted) length
 * array — Timeout, Oracle — are instead partitioned once per lane
 * with a binary search and replayed as two branch-free range loops.
 *
 * Bit-exactness contract: every kernel performs, per lane and per
 * accumulator field, the exact floating-point operation sequence of
 * the corresponding controller's doIdleRuns() calls in ascending
 * length order (the scalar path's order). Kernel results therefore
 * equal the virtual-dispatch path to the last bit — verified by
 * test_replay_kernels across randomized interval sets — and the
 * engine needs no equivalence flag for the unchunked kernel path.
 */

#ifndef LSIM_REPLAY_KERNELS_HH
#define LSIM_REPLAY_KERNELS_HH

#include <cstddef>
#include <vector>

#include "energy/model.hh"
#include "sleep/kernel_spec.hh"

namespace lsim::replay
{

struct IntervalSet;

namespace kernels
{

/**
 * Struct-of-arrays CycleCounts accumulators: lane i of each array is
 * one distinct policy configuration's running totals.
 */
struct AccumulatorBank
{
    std::vector<double> active;
    std::vector<double> unctrl_idle;
    std::vector<double> sleep;
    std::vector<double> transitions;

    std::size_t lanes() const { return active.size(); }

    /** Size every array to @p n zeroed lanes. */
    void resize(std::size_t n);

    /** Lane @p lane gathered back into an AoS CycleCounts. */
    energy::CycleCounts counts(std::size_t lane) const;
};

/**
 * One batched kernel invocation: every distinct configuration
 * ("lane") of a single policy kind, parameters in SoA layout
 * parallel to the AccumulatorBank lanes.
 */
class KernelBatch
{
  public:
    explicit KernelBatch(sleep::KernelSpec::Kind kind) : kind_(kind) {}

    sleep::KernelSpec::Kind kind() const { return kind_; }

    std::size_t lanes() const { return lanes_; }

    /**
     * Append one configuration; @p spec must be history-free and of
     * this batch's kind. @return the new lane index.
     */
    std::size_t addLane(const sleep::KernelSpec &spec);

    /**
     * Accumulate interval-array indices [begin, end) of @p set into
     * @p bank (+= semantics; bank lanes parallel this batch's
     * lanes), preceded by the activeRun prefix when @p with_active.
     * Bit-exact to replaying the same range through this kind's
     * controller via activeRun()/idleRuns() in ascending order.
     */
    void run(const IntervalSet &set, std::size_t begin,
             std::size_t end, bool with_active,
             AccumulatorBank &bank) const;

  private:
    sleep::KernelSpec::Kind kind_;
    std::size_t lanes_ = 0;

    std::vector<double> slices_;     ///< Gradual: slice count as double
    /** Gradual per-lane constants for the saturated regime
     * (length >= slices, every slice transitions): the triangle
     * term m*(m-1)/2 at m = n and the whole-run unctrl_idle
     * contribution, precomputed with the controller's expressions. */
    std::vector<double> grad_tri_;
    std::vector<double> grad_ui_;
    double grad_max_n_ = 0.0;        ///< max slice count over lanes
    std::vector<Cycle> timeouts_;    ///< Timeout thresholds
    std::vector<double> breakevens_; ///< Oracle thresholds
    /** WeightedGradual per-lane weights + asleep-after prefix sums
     * (recomputed with the controller constructor's arithmetic). */
    std::vector<std::vector<double>> weight_sets_;
    std::vector<std::vector<double>> prefix_sets_;
};

} // namespace kernels

} // namespace lsim::replay

#endif // LSIM_REPLAY_KERNELS_HH
