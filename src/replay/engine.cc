#include "replay/engine.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sleep/controllers.hh"
#include "sleep/policy_registry.hh"

namespace lsim::replay
{

namespace
{

/** Clamp matching the Log2Histogram default the profiles use. */
constexpr Cycle kBucketClamp = 8192;

/** Exact-double spelling for dedup keys (hexfloat round-trips). */
std::string
hexDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/**
 * Identity of a controller's *configuration*: two controllers with
 * the same key accumulate bit-identical CycleCounts from the same
 * interval stream, so they can share one accumulator unit. The
 * second member is false for history-dependent controllers, whose
 * replay cannot be sharded into chunks.
 */
struct UnitIdentity
{
    std::string key;
    bool shardable = true;
    bool known = true;
};

UnitIdentity
identify(const sleep::SleepController &ctrl)
{
    using namespace lsim::sleep;
    if (dynamic_cast<const AlwaysActiveController *>(&ctrl))
        return {"aa", true, true};
    if (dynamic_cast<const MaxSleepController *>(&ctrl))
        return {"ms", true, true};
    if (dynamic_cast<const NoOverheadController *>(&ctrl))
        return {"no", true, true};
    if (const auto *gs =
            dynamic_cast<const GradualSleepController *>(&ctrl)) {
        std::string key = "gs:";
        key += std::to_string(gs->numSlices());
        return {std::move(key), true, true};
    }
    if (const auto *wg =
            dynamic_cast<const WeightedGradualSleepController *>(
                &ctrl)) {
        std::string key = "wg";
        for (double w : wg->weights()) {
            key += ':';
            key += hexDouble(w);
        }
        return {std::move(key), true, true};
    }
    if (const auto *to =
            dynamic_cast<const TimeoutController *>(&ctrl)) {
        std::string key = "to:";
        key += std::to_string(to->timeout());
        return {std::move(key), true, true};
    }
    if (const auto *orc =
            dynamic_cast<const OracleController *>(&ctrl)) {
        std::string key = "or:";
        key += hexDouble(orc->breakeven());
        return {std::move(key), true, true};
    }
    if (const auto *ad =
            dynamic_cast<const AdaptiveController *>(&ctrl)) {
        // Deterministic but history-dependent: dedupable across
        // points with equal parameters, never shardable.
        std::string key = "ad:";
        key += hexDouble(ad->breakeven());
        key += ':';
        key += hexDouble(ad->ewmaWeight());
        return {std::move(key), false, true};
    }
    // Unknown registry additions: assume nothing — no dedup (the
    // configuration accessors are unknown) and no sharding (the
    // policy may carry history).
    return {"", false, false};
}

/**
 * A fresh controller with the same configuration as @p proto, for
 * per-chunk partial accumulation. Only called for shardable known
 * kinds (identify() gates the rest onto the prototype path).
 */
std::unique_ptr<sleep::SleepController>
freshInstance(const sleep::SleepController &proto)
{
    using namespace lsim::sleep;
    if (dynamic_cast<const AlwaysActiveController *>(&proto))
        return std::make_unique<AlwaysActiveController>();
    if (dynamic_cast<const MaxSleepController *>(&proto))
        return std::make_unique<MaxSleepController>();
    if (dynamic_cast<const NoOverheadController *>(&proto))
        return std::make_unique<NoOverheadController>();
    if (const auto *gs =
            dynamic_cast<const GradualSleepController *>(&proto))
        return std::make_unique<GradualSleepController>(
            gs->numSlices());
    if (const auto *wg =
            dynamic_cast<const WeightedGradualSleepController *>(
                &proto))
        return std::make_unique<WeightedGradualSleepController>(
            wg->weights());
    if (const auto *to =
            dynamic_cast<const TimeoutController *>(&proto))
        return std::make_unique<TimeoutController>(to->timeout());
    if (const auto *orc =
            dynamic_cast<const OracleController *>(&proto))
        return std::make_unique<OracleController>(orc->breakeven());
    fatal("replay: no fresh instance for controller '%s'",
          proto.name().c_str());
}

/**
 * Chunk boundaries over the sorted distinct-length array: contiguous
 * ranges of at most @p max_per_chunk lengths, snapped to
 * Log2Histogram bucket edges where possible (a bucket bigger than
 * the chunk size is split plainly). Always yields at least one
 * chunk, even for an empty set — no divisions are involved, so
 * empty-histogram cells cannot divide by zero here.
 */
std::vector<std::size_t>
chunkBounds(const IntervalSet &intervals, std::size_t max_per_chunk)
{
    const std::size_t n = intervals.numDistinct();
    std::vector<std::size_t> bounds{0};
    if (max_per_chunk == 0 || max_per_chunk >= n) {
        bounds.push_back(n);
        return bounds;
    }

    // Bucket edges: indices where floorLog2(min(len, clamp)) steps.
    std::vector<std::size_t> edges;
    int last_bucket = -1;
    for (std::size_t i = 0; i < n; ++i) {
        const int b = stats::floorLog2(
            std::min(intervals.lengths[i], kBucketClamp));
        if (b != last_bucket) {
            edges.push_back(i);
            last_bucket = b;
        }
    }
    edges.push_back(n);

    std::size_t start = 0;
    for (std::size_t e = 1; e < edges.size(); ++e) {
        const std::size_t bucket_begin = edges[e - 1];
        const std::size_t bucket_end = edges[e];
        if (bucket_end - start <= max_per_chunk)
            continue; // bucket still fits in the open chunk
        // Close the open chunk at the bucket edge when it is
        // non-empty, then split any oversized bucket plainly.
        if (bucket_begin > start) {
            bounds.push_back(bucket_begin);
            start = bucket_begin;
        }
        while (bucket_end - start > max_per_chunk) {
            start += max_per_chunk;
            bounds.push_back(start);
        }
    }
    if (bounds.back() != n)
        bounds.push_back(n);
    return bounds;
}

} // namespace

IntervalSet
IntervalSet::fromProfile(const harness::IdleProfile &idle)
{
    IntervalSet set;
    set.active_cycles = idle.active_cycles;
    set.lengths.reserve(idle.intervals.size());
    set.counts.reserve(idle.intervals.size());
    // std::map iterates keys ascending — the same order the scalar
    // path feeds controllers, which the equivalence contract needs.
    for (const auto &[len, count] : idle.intervals) {
        if (len == 0 || count == 0)
            continue; // PolicyEvaluator::feedRuns drops these too
        set.lengths.push_back(len);
        set.counts.push_back(count);
        set.idle_cycles += len * count;
    }
    return set;
}

MultiPointReplay::MultiPointReplay(
    IntervalSet intervals, std::vector<energy::ModelParams> points,
    std::vector<std::string> policy_keys, ReplayOptions options)
    : intervals_(std::move(intervals)), points_(std::move(points)),
      policy_keys_(policy_keys.empty()
                       ? sleep::PolicyRegistry::paperSpecs()
                       : std::move(policy_keys))
{
    const std::size_t num_policies = policy_keys_.size();
    unit_of_.resize(points_.size() * num_policies);

    // Build one controller set per point, deduplicating accumulator
    // units by exact configuration: the per-interval accounting of a
    // point-invariant policy is computed once and fanned out to every
    // consuming (point, policy) slot at finalize() time.
    std::vector<std::string> unit_keys;
    for (std::size_t t = 0; t < points_.size(); ++t) {
        auto set = sleep::PolicyRegistry::instance().makeSet(
            policy_keys_, points_[t]);
        for (std::size_t k = 0; k < num_policies; ++k) {
            const UnitIdentity id = identify(*set[k]);
            std::size_t unit = units_.size();
            if (id.known) {
                for (std::size_t u = 0; u < units_.size(); ++u) {
                    if (unit_keys[u] == id.key) {
                        unit = u;
                        break;
                    }
                }
            }
            if (unit == units_.size()) {
                Unit fresh;
                fresh.proto = std::move(set[k]);
                fresh.shardable = id.shardable;
                units_.push_back(std::move(fresh));
                unit_keys.push_back(id.known ? id.key : std::string());
            }
            unit_of_[t * num_policies + k] = unit;
        }
    }

    std::size_t chunk_intervals = options.chunk_intervals;
    if (chunk_intervals == 0)
        chunk_intervals =
            intervals_.numDistinct() >=
                    ReplayOptions::auto_shard_threshold
                ? ReplayOptions::auto_chunk_intervals
                : intervals_.numDistinct();
    chunk_bounds_ = chunkBounds(intervals_, chunk_intervals);
    num_chunks_ = chunk_bounds_.size() - 1;

    for (std::size_t u = 0; u < units_.size(); ++u) {
        if (units_[u].shardable && num_chunks_ > 1) {
            units_[u].partials.resize(num_chunks_);
            for (std::size_t c = 0; c < num_chunks_; ++c)
                tasks_.push_back({u, c});
        } else {
            tasks_.push_back({u, Task::npos});
        }
    }
}

void
MultiPointReplay::replayRange(sleep::SleepController &ctrl,
                              std::size_t begin, std::size_t end,
                              bool with_active) const
{
    // The exact scalar call sequence (harness::evaluatePolicies via
    // PolicyEvaluator): the active total first, skipped when zero,
    // then each distinct interval length ascending.
    if (with_active && intervals_.active_cycles > 0)
        ctrl.activeRun(intervals_.active_cycles);
    for (std::size_t i = begin; i < end; ++i)
        ctrl.idleRuns(intervals_.lengths[i], intervals_.counts[i]);
}

void
MultiPointReplay::runTask(std::size_t index)
{
    const Task task = tasks_.at(index);
    Unit &unit = units_[task.unit];
    if (task.chunk == Task::npos) {
        replayRange(*unit.proto, 0, intervals_.numDistinct(), true);
        return;
    }
    // Sharded: a fresh controller accumulates this chunk's partial
    // counts; the activeRun prefix belongs to chunk 0 so the merged
    // total matches the sequential accounting.
    auto ctrl = freshInstance(*unit.proto);
    replayRange(*ctrl, chunk_bounds_[task.chunk],
                chunk_bounds_[task.chunk + 1], task.chunk == 0);
    unit.partials[task.chunk] = ctrl->counts();
}

void
MultiPointReplay::runAll()
{
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        runTask(i);
}

std::vector<std::vector<sleep::PolicyResult>>
MultiPointReplay::finalize()
{
    if (finalized_)
        fatal("MultiPointReplay::finalize: called twice");
    finalized_ = true;

    for (Unit &unit : units_) {
        if (unit.partials.empty()) {
            unit.counts = unit.proto->counts();
            continue;
        }
        // Merge partials in chunk order: deterministic for any
        // thread assignment (though the reduction order differs
        // from the unsharded sequential accumulation).
        for (const auto &partial : unit.partials)
            unit.counts += partial;
    }

    // Per-point results in the exact arithmetic of
    // PolicyEvaluator::results().
    const auto total = static_cast<double>(intervals_.totalCycles());
    std::vector<std::vector<sleep::PolicyResult>> results;
    results.reserve(points_.size());
    for (std::size_t t = 0; t < points_.size(); ++t) {
        const energy::EnergyModel model(points_[t]);
        const double base = model.activeCycleEnergy() * total;
        std::vector<sleep::PolicyResult> at_point;
        at_point.reserve(policy_keys_.size());
        for (std::size_t k = 0; k < policy_keys_.size(); ++k) {
            const Unit &unit =
                units_[unit_of_[t * policy_keys_.size() + k]];
            sleep::PolicyResult r;
            r.name = unit.proto->name();
            r.counts = unit.counts;
            r.breakdown = model.breakdown(r.counts);
            r.energy = r.breakdown.total();
            r.relative_to_base = base > 0.0 ? r.energy / base : 0.0;
            r.leakage_fraction = r.breakdown.leakageFraction();
            at_point.push_back(std::move(r));
        }
        results.push_back(std::move(at_point));
    }
    return results;
}

std::vector<std::vector<sleep::PolicyResult>>
replayProfile(const harness::IdleProfile &idle,
              const std::vector<energy::ModelParams> &points,
              const std::vector<std::string> &policy_keys,
              ReplayOptions options)
{
    MultiPointReplay engine(IntervalSet::fromProfile(idle), points,
                            policy_keys, options);
    engine.runAll();
    return engine.finalize();
}

} // namespace lsim::replay
