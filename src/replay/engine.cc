#include "replay/engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sleep/controllers.hh"
#include "sleep/policy_registry.hh"

namespace lsim::replay
{

namespace
{

/** Clamp matching the Log2Histogram default the profiles use. */
constexpr Cycle kBucketClamp = 8192;

/**
 * Identity of a controller's *configuration*: two controllers that
 * compare equal accumulate bit-identical CycleCounts from the same
 * interval stream, so they can share one accumulator unit.
 * History-free controllers are identified by their KernelSpec;
 * Adaptive is deterministic but history-dependent, so it dedups by
 * its parameters yet can never shard or kernelize. Unknown registry
 * additions compare equal to nothing.
 */
struct UnitConfig
{
    sleep::KernelSpec spec;   ///< valid when spec.historyFree()
    bool adaptive = false;
    double ad_breakeven = 0.0;
    double ad_weight = 0.0;

    bool dedupable() const { return spec.historyFree() || adaptive; }

    bool matches(const UnitConfig &o) const
    {
        if (spec.historyFree())
            return o.spec.historyFree() && spec == o.spec;
        if (adaptive)
            return o.adaptive && ad_breakeven == o.ad_breakeven &&
                   ad_weight == o.ad_weight;
        return false;
    }
};

UnitConfig
configOf(const sleep::SleepController &ctrl)
{
    UnitConfig cfg;
    cfg.spec = ctrl.kernelSpec();
    if (!cfg.spec.historyFree()) {
        if (const auto *ad =
                dynamic_cast<const sleep::AdaptiveController *>(
                    &ctrl)) {
            cfg.adaptive = true;
            cfg.ad_breakeven = ad->breakeven();
            cfg.ad_weight = ad->ewmaWeight();
        }
    }
    return cfg;
}

/**
 * Chunk boundaries over the sorted distinct-length array: contiguous
 * ranges of at most @p max_per_chunk lengths, snapped to
 * Log2Histogram bucket edges where possible (a bucket bigger than
 * the chunk size is split plainly). Always yields at least one
 * chunk, even for an empty set — no divisions are involved, so
 * empty-histogram cells cannot divide by zero here.
 */
std::vector<std::size_t>
chunkBounds(const IntervalSet &intervals, std::size_t max_per_chunk)
{
    const std::size_t n = intervals.numDistinct();
    std::vector<std::size_t> bounds{0};
    if (max_per_chunk == 0 || max_per_chunk >= n) {
        bounds.push_back(n);
        return bounds;
    }

    // Bucket edges: indices where floorLog2(min(len, clamp)) steps.
    std::vector<std::size_t> edges;
    int last_bucket = -1;
    for (std::size_t i = 0; i < n; ++i) {
        const int b = stats::floorLog2(
            std::min(intervals.lengths[i], kBucketClamp));
        if (b != last_bucket) {
            edges.push_back(i);
            last_bucket = b;
        }
    }
    edges.push_back(n);

    std::size_t start = 0;
    for (std::size_t e = 1; e < edges.size(); ++e) {
        const std::size_t bucket_begin = edges[e - 1];
        const std::size_t bucket_end = edges[e];
        if (bucket_end - start <= max_per_chunk)
            continue; // bucket still fits in the open chunk
        // Close the open chunk at the bucket edge when it is
        // non-empty, then split any oversized bucket plainly.
        if (bucket_begin > start) {
            bounds.push_back(bucket_begin);
            start = bucket_begin;
        }
        while (bucket_end - start > max_per_chunk) {
            start += max_per_chunk;
            bounds.push_back(start);
        }
    }
    if (bounds.back() != n)
        bounds.push_back(n);
    return bounds;
}

} // namespace

IntervalSet
IntervalSet::fromProfile(const harness::IdleProfile &idle)
{
    IntervalSet set;
    set.active_cycles = idle.active_cycles;
    set.lengths.reserve(idle.intervals.size());
    set.counts.reserve(idle.intervals.size());
    // std::map iterates keys ascending — the same order the scalar
    // path feeds controllers, which the equivalence contract needs.
    for (const auto &[len, count] : idle.intervals) {
        if (len == 0 || count == 0)
            continue; // PolicyEvaluator::feedRuns drops these too
        set.lengths.push_back(len);
        set.counts.push_back(count);
        set.idle_cycles += len * count;
    }
    return set;
}

MultiPointReplay::MultiPointReplay(
    IntervalSet intervals, std::vector<energy::ModelParams> points,
    std::vector<std::string> policy_keys, ReplayOptions options)
    : intervals_(std::move(intervals)), points_(std::move(points)),
      policy_keys_(policy_keys.empty()
                       ? sleep::PolicyRegistry::paperSpecs()
                       : std::move(policy_keys))
{
    const std::size_t num_policies = policy_keys_.size();
    unit_of_.resize(points_.size() * num_policies);

    // Resolve each spec once (parse + registry lookup), then build
    // one controller per (point, policy), deduplicating accumulator
    // units by structural configuration: the per-interval accounting
    // of a point-invariant policy is computed once and fanned out to
    // every consuming (point, policy) slot at finalize() time.
    std::vector<sleep::PolicyRegistry::ResolvedSpec> resolved;
    resolved.reserve(num_policies);
    for (const auto &key : policy_keys_)
        resolved.push_back(
            sleep::PolicyRegistry::instance().resolve(key));

    std::vector<UnitConfig> unit_configs;
    for (std::size_t t = 0; t < points_.size(); ++t) {
        for (std::size_t k = 0; k < num_policies; ++k) {
            // SpecFn-registered policies classify without building a
            // controller; the rest are built and asked (configOf).
            UnitConfig cfg;
            std::unique_ptr<sleep::SleepController> ctrl;
            cfg.spec = resolved[k].trySpec(points_[t]);
            if (!cfg.spec.historyFree()) {
                ctrl = resolved[k].make(points_[t]);
                cfg = configOf(*ctrl);
            }
            std::size_t unit = units_.size();
            if (cfg.dedupable()) {
                for (std::size_t u = 0; u < units_.size(); ++u) {
                    if (cfg.matches(unit_configs[u])) {
                        unit = u;
                        break;
                    }
                }
            }
            if (unit == units_.size()) {
                Unit fresh;
                fresh.proto = ctrl ? std::move(ctrl)
                                   : cfg.spec.makeController();
                fresh.spec = cfg.spec;
                units_.push_back(std::move(fresh));
                unit_configs.push_back(std::move(cfg));
            }
            unit_of_[t * num_policies + k] = unit;
        }
    }

    std::size_t chunk_intervals = options.chunk_intervals;
    if (chunk_intervals == 0)
        chunk_intervals =
            intervals_.numDistinct() >=
                    ReplayOptions::auto_shard_threshold
                ? ReplayOptions::auto_chunk_intervals
                : intervals_.numDistinct();
    chunk_bounds_ = chunkBounds(intervals_, chunk_intervals);
    num_chunks_ = chunk_bounds_.size() - 1;

    // Kernel path: gather history-free units into one batch per
    // policy kind — one SoA lane per deduplicated configuration, so
    // a single pass over the interval arrays fills every technology
    // point's accumulator for that policy.
    if (options.use_kernels) {
        for (std::size_t u = 0; u < units_.size(); ++u) {
            if (!units_[u].spec.historyFree())
                continue;
            KernelGroup *group = nullptr;
            for (auto &g : groups_)
                if (g.batch.kind() == units_[u].spec.kind)
                    group = &g;
            if (!group) {
                groups_.push_back(
                    KernelGroup{kernels::KernelBatch(
                                    units_[u].spec.kind),
                                {}, {}, {}});
                group = &groups_.back();
            }
            group->batch.addLane(units_[u].spec);
            group->units.push_back(u);
            units_[u].kernel = true;
        }
    }

    // Schedulable tasks: one per (group, chunk) for kernel batches,
    // one per (unit, chunk) for shardable fallback units, one whole-
    // stream task for everything history-dependent or unknown.
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        if (num_chunks_ > 1) {
            groups_[g].partial_banks.resize(num_chunks_);
            for (std::size_t c = 0; c < num_chunks_; ++c) {
                groups_[g].partial_banks[c].resize(
                    groups_[g].batch.lanes());
                tasks_.push_back({true, g, c});
            }
        } else {
            groups_[g].bank.resize(groups_[g].batch.lanes());
            tasks_.push_back({true, g, Task::npos});
        }
    }
    for (std::size_t u = 0; u < units_.size(); ++u) {
        if (units_[u].kernel)
            continue;
        if (units_[u].spec.historyFree() && num_chunks_ > 1) {
            units_[u].partials.resize(num_chunks_);
            for (std::size_t c = 0; c < num_chunks_; ++c)
                tasks_.push_back({false, u, c});
        } else {
            tasks_.push_back({false, u, Task::npos});
        }
    }
}

MultiPointReplay::MultiPointReplay(MultiPointReplay &&other) noexcept
    : intervals_(std::move(other.intervals_)),
      points_(std::move(other.points_)),
      policy_keys_(std::move(other.policy_keys_)),
      units_(std::move(other.units_)),
      unit_of_(std::move(other.unit_of_)),
      groups_(std::move(other.groups_)),
      chunk_bounds_(std::move(other.chunk_bounds_)),
      num_chunks_(other.num_chunks_), tasks_(std::move(other.tasks_)),
      finalized_(other.finalized_), moved_from_(other.moved_from_)
{
    other.moved_from_ = true;
}

MultiPointReplay &
MultiPointReplay::operator=(MultiPointReplay &&other) noexcept
{
    if (this == &other)
        return *this;
    intervals_ = std::move(other.intervals_);
    points_ = std::move(other.points_);
    policy_keys_ = std::move(other.policy_keys_);
    units_ = std::move(other.units_);
    unit_of_ = std::move(other.unit_of_);
    groups_ = std::move(other.groups_);
    chunk_bounds_ = std::move(other.chunk_bounds_);
    num_chunks_ = other.num_chunks_;
    tasks_ = std::move(other.tasks_);
    finalized_ = other.finalized_;
    moved_from_ = other.moved_from_;
    other.moved_from_ = true;
    return *this;
}

void
MultiPointReplay::assertUsable(const char *call) const
{
    if (moved_from_)
        fatal("MultiPointReplay::%s: engine was moved from", call);
}

std::size_t
MultiPointReplay::numKernelUnits() const
{
    std::size_t n = 0;
    for (const auto &unit : units_)
        n += unit.kernel ? 1 : 0;
    return n;
}

void
MultiPointReplay::replayRange(sleep::SleepController &ctrl,
                              std::size_t begin, std::size_t end,
                              bool with_active) const
{
    // The exact scalar call sequence (harness::evaluatePolicies via
    // PolicyEvaluator): the active total first, skipped when zero,
    // then each distinct interval length ascending.
    if (with_active && intervals_.active_cycles > 0)
        ctrl.activeRun(intervals_.active_cycles);
    for (std::size_t i = begin; i < end; ++i)
        ctrl.idleRuns(intervals_.lengths[i], intervals_.counts[i]);
}

void
MultiPointReplay::runTask(std::size_t index)
{
    assertUsable("runTask");
    const Task task = tasks_.at(index);
    if (task.kernel) {
        KernelGroup &group = groups_[task.index];
        if (task.chunk == Task::npos) {
            group.batch.run(intervals_, 0, intervals_.numDistinct(),
                            true, group.bank);
        } else {
            // The activeRun prefix belongs to chunk 0 so the merged
            // total matches the sequential accounting.
            group.batch.run(intervals_, chunk_bounds_[task.chunk],
                            chunk_bounds_[task.chunk + 1],
                            task.chunk == 0,
                            group.partial_banks[task.chunk]);
        }
        return;
    }
    Unit &unit = units_[task.index];
    if (task.chunk == Task::npos) {
        replayRange(*unit.proto, 0, intervals_.numDistinct(), true);
        return;
    }
    // Sharded fallback: a fresh controller (reconstructed from the
    // unit's KernelSpec) accumulates this chunk's partial counts.
    auto ctrl = unit.spec.makeController();
    replayRange(*ctrl, chunk_bounds_[task.chunk],
                chunk_bounds_[task.chunk + 1], task.chunk == 0);
    unit.partials[task.chunk] = ctrl->counts();
}

void
MultiPointReplay::runAll()
{
    assertUsable("runAll");
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        runTask(i);
}

std::vector<std::vector<sleep::PolicyResult>>
MultiPointReplay::finalize()
{
    assertUsable("finalize");
    if (finalized_)
        fatal("MultiPointReplay::finalize: called twice");
    finalized_ = true;

    for (Unit &unit : units_) {
        if (unit.kernel)
            continue; // gathered from its kernel group below
        if (unit.partials.empty()) {
            unit.counts = unit.proto->counts();
            continue;
        }
        // Merge partials in chunk order: deterministic for any
        // thread assignment (though the reduction order differs
        // from the unsharded sequential accumulation).
        for (const auto &partial : unit.partials)
            unit.counts += partial;
    }
    for (const KernelGroup &group : groups_) {
        for (std::size_t lane = 0; lane < group.units.size();
             ++lane) {
            Unit &unit = units_[group.units[lane]];
            if (group.partial_banks.empty()) {
                unit.counts = group.bank.counts(lane);
                continue;
            }
            for (const auto &bank : group.partial_banks)
                unit.counts += bank.counts(lane);
        }
    }

    // Per-point results in the exact arithmetic of
    // PolicyEvaluator::results().
    const auto total = static_cast<double>(intervals_.totalCycles());
    std::vector<std::vector<sleep::PolicyResult>> results;
    results.reserve(points_.size());
    for (std::size_t t = 0; t < points_.size(); ++t) {
        const energy::EnergyModel model(points_[t]);
        const double base = model.activeCycleEnergy() * total;
        std::vector<sleep::PolicyResult> at_point;
        at_point.reserve(policy_keys_.size());
        for (std::size_t k = 0; k < policy_keys_.size(); ++k) {
            const Unit &unit =
                units_[unit_of_[t * policy_keys_.size() + k]];
            sleep::PolicyResult r;
            r.name = unit.proto->name();
            r.counts = unit.counts;
            r.breakdown = model.breakdown(r.counts);
            r.energy = r.breakdown.total();
            r.relative_to_base = base > 0.0 ? r.energy / base : 0.0;
            r.leakage_fraction = r.breakdown.leakageFraction();
            at_point.push_back(std::move(r));
        }
        results.push_back(std::move(at_point));
    }
    return results;
}

std::vector<std::vector<sleep::PolicyResult>>
replayProfile(const harness::IdleProfile &idle,
              const std::vector<energy::ModelParams> &points,
              const std::vector<std::string> &policy_keys,
              ReplayOptions options)
{
    MultiPointReplay engine(IntervalSet::fromProfile(idle), points,
                            policy_keys, options);
    engine.runAll();
    return engine.finalize();
}

} // namespace lsim::replay
