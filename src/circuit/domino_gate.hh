/**
 * @file
 * Analytical model of an 8-input OR (OR8) domino gate in three
 * circuit styles (Section 2 / Table 1 of the paper):
 *
 *  - LowVt:       all transistors low-Vt (fast, leaky everywhere);
 *  - DualVt:      low-Vt only on the critical evaluation path,
 *                 high-Vt elsewhere (keeper, precharge, output);
 *  - DualVtSleep: DualVt plus the NS sleep transistor of Figure 2b
 *                 that can force the dynamic node into the low
 *                 leakage state.
 *
 * The gate has two leakage states determined by the internal dynamic
 * node: HI (node precharged high; large leakage through the low-Vt
 * evaluation stack) and LO (node discharged; remaining leakage only
 * through high-Vt devices). In the DualVt styles the LO state leaks
 * ~2000x less than the HI state.
 */

#ifndef LSIM_CIRCUIT_DOMINO_GATE_HH
#define LSIM_CIRCUIT_DOMINO_GATE_HH

#include <string>

#include "circuit/technology.hh"
#include "common/types.hh"

namespace lsim::circuit
{

/** Domino circuit style (rows of the paper's Table 1). */
enum class DominoStyle
{
    LowVt,       ///< all low-Vt devices
    DualVt,      ///< dual-Vt, no sleep capability
    DualVtSleep, ///< dual-Vt with the sleep transistor of Fig. 2b
};

/** @return human-readable style name. */
std::string to_string(DominoStyle style);

/**
 * Characterization record for one gate, mirroring Table 1's columns.
 * Energies are per gate; leakage energies are per clock cycle.
 */
struct GateCharacteristics
{
    DominoStyle style;
    PicoSecond eval_delay_ps;      ///< evaluation propagation delay
    PicoSecond sleep_delay_ps;     ///< sleep-discharge delay (0 if n/a)
    FemtoJoule dynamic_fj;         ///< max switching energy per eval
    FemtoJoule leak_lo_fj;         ///< leakage/cycle, dynamic node LO
    FemtoJoule leak_hi_fj;         ///< leakage/cycle, dynamic node HI
    FemtoJoule sleep_transistor_fj;///< energy to toggle sleep device
    bool has_sleep_mode;           ///< style supports the sleep state
};

/**
 * Analytical OR8 domino gate model.
 *
 * Calibration: four dimensionless constants (effective switched
 * capacitance, keeper contention energy/delay factors, and the LO
 * path width ratio) are fixed so that the default 70 nm Technology
 * reproduces Table 1 of the paper:
 *
 *   style         eval    sleep   dyn    LO lkg    HI lkg   sleep
 *   low-Vt        19.3 ps   --    26.7   1.2       1.4       --
 *   dual-Vt       15.0 ps   --    22.2   7.1e-4    1.4       --
 *   dual-Vt+slp   15.0 ps  16 ps  22.2   7.1e-4    1.4(*)   0.14
 *
 * (*) With sleep asserted the HI state is unreachable, so the
 * effective "Vector HI" leakage of the sleeping gate equals the LO
 * figure, as Table 1 reports.
 *
 * When the Technology is varied away from the default corner the
 * model scales leakage exponentially with Vt and temperature and
 * delay with the alpha-power law, allowing technology-sweep
 * experiments (the paper's leakage factor p sweep).
 */
class DominoGate
{
  public:
    /**
     * @param tech Operating point (validated on construction).
     * @param style Circuit style.
     */
    DominoGate(const Technology &tech, DominoStyle style);

    /** @return full Table-1-style characterization of this gate. */
    GateCharacteristics characterize() const;

    /** Max dynamic (switching) energy of one evaluation, fJ. */
    FemtoJoule dynamicEnergy() const;

    /** Leakage energy per cycle with the dynamic node high, fJ. */
    FemtoJoule leakHi() const;

    /** Leakage energy per cycle with the dynamic node low, fJ. */
    FemtoJoule leakLo() const;

    /** Energy to toggle the sleep transistor once, fJ (0 if none). */
    FemtoJoule sleepTransistorEnergy() const;

    /** Evaluation propagation delay, ps. */
    PicoSecond evalDelay() const;

    /**
     * Delay to force the dynamic node low through the sleep device,
     * ps. Returns 0 for styles without a sleep mode.
     */
    PicoSecond sleepDelay() const;

    /**
     * True when the sleep transition (plus signal distribution)
     * completes within one clock period, i.e. the gate can enter the
     * sleep state in a single cycle as Section 2 argues.
     */
    bool sleepFitsInCycle() const;

    DominoStyle style() const { return style_; }
    const Technology &technology() const { return tech_; }

  private:
    /** Keeper overdrive ratio squared (contention strength). */
    double keeperStrength() const;

    Technology tech_;
    DominoStyle style_;
};

} // namespace lsim::circuit

#endif // LSIM_CIRCUIT_DOMINO_GATE_HH
