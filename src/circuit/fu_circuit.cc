#include "circuit/fu_circuit.hh"

#include <stdexcept>
#include <string>

namespace lsim::circuit
{

FunctionalUnitCircuit::FunctionalUnitCircuit(const Technology &tech)
    : FunctionalUnitCircuit(tech, Shape{})
{
}

FunctionalUnitCircuit::FunctionalUnitCircuit(const Technology &tech,
                                             const Shape &shape)
    : gate_(tech, DominoStyle::DualVtSleep), shape_(shape)
{
    if (shape_.rows == 0 || shape_.cascade_depth == 0)
        throw std::invalid_argument(
            "FunctionalUnitCircuit: degenerate shape " +
            std::to_string(shape_.rows) + "x" +
            std::to_string(shape_.cascade_depth));
}

FemtoJoule
FunctionalUnitCircuit::dynamicEnergy() const
{
    return numGates() * gate_.dynamicEnergy();
}

FemtoJoule
FunctionalUnitCircuit::leakHi() const
{
    return numGates() * gate_.leakHi();
}

FemtoJoule
FunctionalUnitCircuit::leakLo() const
{
    return numGates() * gate_.leakLo();
}

FemtoJoule
FunctionalUnitCircuit::leakAfterEval(double alpha) const
{
    return numGates() *
        (alpha * gate_.leakLo() + (1.0 - alpha) * gate_.leakHi());
}

FemtoJoule
FunctionalUnitCircuit::sleepTransitionEnergy(double alpha) const
{
    // Discharging the (1 - alpha) still-charged nodes costs their
    // dynamic switching energy (they will be precharged again on
    // wakeup); only the first cascade stage carries a sleep
    // transistor but the signal distribution spans the unit.
    const double forced = (1.0 - alpha) * numGates();
    return forced * gate_.dynamicEnergy() +
        numGates() * gate_.sleepTransistorEnergy() +
        shape_.sleep_driver_fj;
}

FemtoJoule
FunctionalUnitCircuit::uncontrolledIdleEnergy(Cycle interval,
                                              double alpha) const
{
    return static_cast<double>(interval) * leakAfterEval(alpha);
}

FemtoJoule
FunctionalUnitCircuit::sleepIdleEnergy(Cycle interval, double alpha) const
{
    return sleepTransitionEnergy(alpha) +
        static_cast<double>(interval) * leakLo();
}

Cycle
FunctionalUnitCircuit::breakevenInterval(double alpha, Cycle limit) const
{
    for (Cycle n = 1; n < limit; ++n) {
        if (sleepIdleEnergy(n, alpha) <= uncontrolledIdleEnergy(n, alpha))
            return n;
    }
    return limit;
}

} // namespace lsim::circuit
