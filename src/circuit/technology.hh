/**
 * @file
 * Process technology parameters and the subthreshold leakage model.
 *
 * The paper characterizes dual threshold voltage (dual-Vt) domino
 * gates with HSPICE in a 70 nm process (Table 1). We cannot run
 * HSPICE, so this module implements the standard analytical
 * subthreshold model
 *
 *     I_leak = I0 * exp(-Vt / (n * vT)),   vT = k*T/q
 *
 * together with an alpha-power-law delay model, and calibrates the
 * proportionality constants so that the default 70 nm operating point
 * reproduces the paper's published Table 1 numbers. The architecture
 * level of the study consumes only energy *ratios* (the leakage
 * factor p, the sleep-state ratio k, and the sleep-transition
 * overhead), so an analytical model anchored at the published
 * operating point exercises exactly the same downstream code paths.
 */

#ifndef LSIM_CIRCUIT_TECHNOLOGY_HH
#define LSIM_CIRCUIT_TECHNOLOGY_HH

#include "common/types.hh"

namespace lsim::circuit
{

/**
 * A process/operating point. Default values describe the paper's
 * 70 nm, Vdd = 1.0 V, 4 GHz, 110 C characterization corner.
 */
struct Technology
{
    /** Drawn feature size in nanometres (documentation only). */
    double node_nm = 70.0;

    /** Supply voltage in volts. */
    double vdd = 1.0;

    /** Threshold voltage of fast/leaky devices (V). */
    double vt_low = 0.20;

    /** Threshold voltage of slow/low-leakage devices (V). */
    double vt_high = 0.55;

    /** Junction temperature in kelvin (110 C). */
    double temperature_k = 383.15;

    /**
     * Subthreshold swing factor n (dimensionless). The default is
     * calibrated so the dual-Vt LO/HI leakage ratio matches the
     * paper's reported factor of ~2000 (Table 1: 7.1e-4 vs 1.4 fJ).
     * It corresponds to a subthreshold swing of ~108 mV/decade at
     * 110 C, typical for a 70 nm process.
     */
    double swing_factor = 1.4263;

    /** Clock frequency in GHz (paper assumes 4 GHz). */
    double clock_ghz = 4.0;

    /** Clock period in picoseconds. */
    double periodPs() const { return 1000.0 / clock_ghz; }

    /** Thermal voltage kT/q in volts. */
    double thermalVoltage() const;

    /**
     * Relative subthreshold leakage current of a device with
     * threshold @p vt: exp(-vt / (n * vT)). Absolute currents are
     * obtained by multiplying with a calibrated width-dependent
     * prefactor (see DominoGate).
     */
    double leakageScale(double vt) const;

    /**
     * Alpha-power-law drive factor 1 / (vdd - vt)^a used by the
     * delay model, normalized so that the default technology returns
     * 1.0 for vt_low. @p vt must be below vdd.
     */
    double delayFactor(double vt) const;

    /** Velocity-saturation exponent for the alpha-power delay law. */
    static constexpr double kAlphaPower = 1.3;

    /** Validate parameter sanity; throws std::invalid_argument on
     * nonsense inputs. */
    void validate() const;
};

} // namespace lsim::circuit

#endif // LSIM_CIRCUIT_TECHNOLOGY_HH
