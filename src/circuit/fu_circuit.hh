/**
 * @file
 * Generic functional-unit circuit: the paper's Section 2.1 approximates
 * a functional unit by 500 OR8 domino gates arranged as 100 rows of
 * five cascaded stages, plus the drivers that distribute the Sleep
 * signal across the unit. This class aggregates per-gate energies to
 * FU-level energies and implements the Figure 3 experiment
 * (uncontrolled idle vs sleep mode energy over an idle interval).
 */

#ifndef LSIM_CIRCUIT_FU_CIRCUIT_HH
#define LSIM_CIRCUIT_FU_CIRCUIT_HH

#include "circuit/domino_gate.hh"
#include "circuit/technology.hh"
#include "common/types.hh"

namespace lsim::circuit
{

/**
 * Aggregate circuit model of one integer functional unit built from
 * identical domino gates with a shared Sleep distribution network.
 */
class FunctionalUnitCircuit
{
  public:
    /** Shape of the generic FU (Section 2.1). */
    struct Shape
    {
        unsigned rows = 100;            ///< parallel rows
        unsigned cascade_depth = 5;     ///< domino stages per row
        /**
         * Energy of the sleep-signal distribution buffers per sleep
         * transition, fJ for the whole FU (~10 OR8 equivalents of
         * buffer switching for a 100-row distribution tree).
         * Calibrated so the alpha = 0.1 breakeven of Figure 3 lands
         * at the paper's reported 17 cycles (the text: "If the
         * circuit is not idle for at least 17 cycles then more
         * energy is used than is saved").
         */
        FemtoJoule sleep_driver_fj = 222.0;
    };

    /**
     * @param tech Operating point.
     * @param shape FU geometry.
     */
    FunctionalUnitCircuit(const Technology &tech, const Shape &shape);

    /** Construct with the paper's default 500-gate geometry. */
    explicit FunctionalUnitCircuit(const Technology &tech);

    /** Total number of domino gates in the unit. */
    unsigned numGates() const { return shape_.rows * shape_.cascade_depth; }

    /** Max dynamic energy of one evaluation across the FU, fJ. */
    FemtoJoule dynamicEnergy() const;

    /** FU leakage per cycle with all dynamic nodes high, fJ. */
    FemtoJoule leakHi() const;

    /** FU leakage per cycle with all dynamic nodes low, fJ. */
    FemtoJoule leakLo() const;

    /**
     * FU leakage per cycle after an evaluation with activity factor
     * @p alpha: fraction alpha of nodes are in the LO state, the rest
     * in the HI state.
     */
    FemtoJoule leakAfterEval(double alpha) const;

    /**
     * Energy of one transition into the sleep state when the previous
     * evaluation had activity factor @p alpha: the (1 - alpha)
     * fraction of nodes that stayed charged must now discharge (and
     * be re-precharged on wakeup, which is where the dynamic energy
     * cost is really paid; the model books it at the transition as
     * the paper does), plus the sleep transistor toggles and the
     * Sleep distribution drivers.
     */
    FemtoJoule sleepTransitionEnergy(double alpha) const;

    /**
     * Total energy of an idle period of @p interval cycles with the
     * clock gated but sleep NOT entered (Figure 3 "uncontrolled
     * idle"): interval * leakAfterEval(alpha).
     */
    FemtoJoule uncontrolledIdleEnergy(Cycle interval, double alpha) const;

    /**
     * Total energy of an idle period of @p interval cycles spent in
     * the sleep state, including the transition (Figure 3 "sleep
     * mode"): sleepTransitionEnergy(alpha) + interval * leakLo().
     */
    FemtoJoule sleepIdleEnergy(Cycle interval, double alpha) const;

    /**
     * Smallest idle interval for which sleeping beats uncontrolled
     * idle (circuit-level breakeven; ~17 cycles at alpha = 0.1 in the
     * default technology). Returns the first integer cycle count at
     * which sleepIdleEnergy <= uncontrolledIdleEnergy, searching up
     * to @p limit; returns limit if never reached.
     */
    Cycle breakevenInterval(double alpha, Cycle limit = 100000) const;

    const DominoGate &gate() const { return gate_; }
    const Shape &shape() const { return shape_; }

  private:
    DominoGate gate_;
    Shape shape_;
};

} // namespace lsim::circuit

#endif // LSIM_CIRCUIT_FU_CIRCUIT_HH
