#include "circuit/domino_gate.hh"

#include <cmath>

#include "common/logging.hh"

namespace lsim::circuit
{

namespace
{

/**
 * Published Table 1 anchor values (70 nm, Vdd = 1 V, 4 GHz). All
 * calibration constants below are solved from these anchors at
 * construction time, so the calibration is self-documenting: change
 * an anchor and the model tracks it.
 */
constexpr FemtoJoule kAnchorDynDual = 22.2;   // dual-Vt dynamic
constexpr FemtoJoule kAnchorDynLow = 26.7;    // low-Vt dynamic
constexpr FemtoJoule kAnchorLeakHi = 1.4;     // HI-state leakage/cycle
constexpr FemtoJoule kAnchorLeakLoLowVt = 1.2;// low-Vt LO leakage
constexpr FemtoJoule kAnchorSleepTr = 0.14;   // sleep transistor toggle
constexpr PicoSecond kAnchorEvalDual = 15.0;  // dual-Vt eval delay
constexpr PicoSecond kAnchorEvalLow = 19.3;   // low-Vt eval delay
constexpr PicoSecond kAnchorSleepDelay = 16.0;// sleep discharge delay

/** Keeper overdrive ratio squared for given keeper threshold. */
double
keeperStrengthFor(const Technology &tech, double vt_keeper)
{
    const double ratio = (tech.vdd - vt_keeper) / (tech.vdd - tech.vt_low);
    return ratio * ratio;
}

/** Calibration constants solved once from the Table 1 anchors. */
struct Calibration
{
    double beta;        ///< keeper contention energy factor
    double e_base_fj;   ///< switched energy at Vdd=1V w/o contention
    double gamma;       ///< keeper contention delay factor
    double d0_ps;       ///< contention-free eval delay at default corner
    double ds0_ps;      ///< sleep delay constant (high-Vt normalized)
    double i0_amps;     ///< leakage current prefactor (eval stack)
    double w_lo;        ///< LO-state leakage path width ratio
};

const Calibration &
calibration()
{
    static const Calibration cal = [] {
        const Technology def{};
        Calibration c{};
        // Energy: E_dyn(style) = e_base * vdd^2 * (1 + beta * ks)
        // with ks the keeper strength; low-Vt keeper has ks = 1.
        const double ks_dual = keeperStrengthFor(def, def.vt_high);
        const double r = kAnchorDynLow / kAnchorDynDual;
        c.beta = (r - 1.0) / (1.0 - r * ks_dual);
        c.e_base_fj = kAnchorDynDual / (1.0 + c.beta * ks_dual);
        // Delay: d_eval = d0 * delayFactor(vt_low) * (1 + gamma * ks).
        const double rd = kAnchorEvalLow / kAnchorEvalDual;
        c.gamma = (rd - 1.0) / (1.0 - rd * ks_dual);
        c.d0_ps = kAnchorEvalDual / (1.0 + c.gamma * ks_dual);
        // Sleep delay through the minimum-size high-Vt NS device.
        c.ds0_ps = kAnchorSleepDelay / def.delayFactor(def.vt_high);
        // Leakage: E = W * I0 * leakageScale(vt) * vdd * period.
        c.i0_amps = (kAnchorLeakHi * 1e-15) /
            (def.leakageScale(def.vt_low) * def.vdd *
             def.periodPs() * 1e-12);
        // LO-state path width, from the low-Vt row where both states
        // leak through identical-Vt devices.
        c.w_lo = kAnchorLeakLoLowVt / kAnchorLeakHi;
        return c;
    }();
    return cal;
}

} // namespace

std::string
to_string(DominoStyle style)
{
    switch (style) {
      case DominoStyle::LowVt:
        return "low-Vt";
      case DominoStyle::DualVt:
        return "dual-Vt";
      case DominoStyle::DualVtSleep:
        return "dual-Vt w/sleep";
    }
    panic("unknown DominoStyle %d", static_cast<int>(style));
}

DominoGate::DominoGate(const Technology &tech, DominoStyle style)
    : tech_(tech), style_(style)
{
    tech_.validate();
}

double
DominoGate::keeperStrength() const
{
    const double vt_keeper =
        style_ == DominoStyle::LowVt ? tech_.vt_low : tech_.vt_high;
    return keeperStrengthFor(tech_, vt_keeper);
}

FemtoJoule
DominoGate::dynamicEnergy() const
{
    const Calibration &c = calibration();
    return c.e_base_fj * tech_.vdd * tech_.vdd *
        (1.0 + c.beta * keeperStrength());
}

FemtoJoule
DominoGate::leakHi() const
{
    // Dynamic node high: leakage flows through the low-Vt evaluation
    // stack in every style.
    const Calibration &c = calibration();
    return c.i0_amps * tech_.leakageScale(tech_.vt_low) * tech_.vdd *
        tech_.periodPs() * 1e-12 * 1e15;
}

FemtoJoule
DominoGate::leakLo() const
{
    // Dynamic node low: the voltage drop is across the precharge /
    // keeper / output path, which is high-Vt in the dual-Vt styles.
    const Calibration &c = calibration();
    const double vt =
        style_ == DominoStyle::LowVt ? tech_.vt_low : tech_.vt_high;
    return c.w_lo * c.i0_amps * tech_.leakageScale(vt) * tech_.vdd *
        tech_.periodPs() * 1e-12 * 1e15;
}

FemtoJoule
DominoGate::sleepTransistorEnergy() const
{
    if (style_ != DominoStyle::DualVtSleep)
        return 0.0;
    // Gate capacitance toggle of the minimally sized NS device.
    return kAnchorSleepTr * tech_.vdd * tech_.vdd;
}

PicoSecond
DominoGate::evalDelay() const
{
    const Calibration &c = calibration();
    return c.d0_ps * tech_.delayFactor(tech_.vt_low) *
        (1.0 + c.gamma * keeperStrength());
}

PicoSecond
DominoGate::sleepDelay() const
{
    if (style_ != DominoStyle::DualVtSleep)
        return 0.0;
    return calibration().ds0_ps * tech_.delayFactor(tech_.vt_high);
}

bool
DominoGate::sleepFitsInCycle() const
{
    return style_ == DominoStyle::DualVtSleep &&
        sleepDelay() <= tech_.periodPs();
}

GateCharacteristics
DominoGate::characterize() const
{
    GateCharacteristics gc{};
    gc.style = style_;
    gc.eval_delay_ps = evalDelay();
    gc.sleep_delay_ps = sleepDelay();
    gc.dynamic_fj = dynamicEnergy();
    gc.leak_lo_fj = leakLo();
    gc.leak_hi_fj = leakHi();
    gc.sleep_transistor_fj = sleepTransistorEnergy();
    gc.has_sleep_mode = style_ == DominoStyle::DualVtSleep;
    return gc;
}

} // namespace lsim::circuit
