#include "circuit/technology.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace lsim::circuit
{

namespace
{
/** Boltzmann constant over elementary charge, volts per kelvin. */
constexpr double kOverQ = 8.617333262e-5;

/** %g-style rendering for exception messages. */
std::string
fmt(double v)
{
    std::ostringstream ss;
    ss << v;
    return ss.str();
}
} // namespace

double
Technology::thermalVoltage() const
{
    return kOverQ * temperature_k;
}

double
Technology::leakageScale(double vt) const
{
    return std::exp(-vt / (swing_factor * thermalVoltage()));
}

double
Technology::delayFactor(double vt) const
{
    // Normalized to the default corner's low-Vt drive so that delay
    // constants calibrated at the default technology are expressed in
    // picoseconds directly.
    const Technology def{};
    const double ref =
        std::pow(def.vdd - def.vt_low, kAlphaPower) / def.vdd;
    return ref * vdd / std::pow(vdd - vt, kAlphaPower);
}

void
Technology::validate() const
{
    // Configuration errors throw (the CLI boundary catches and
    // exits); fatal() would take down a daemon serving other
    // requests.
    const auto reject = [](const std::string &what) {
        throw std::invalid_argument("Technology: " + what);
    };
    if (vdd <= 0.0)
        reject("vdd must be positive (got " + fmt(vdd) + ")");
    if (vt_low <= 0.0 || vt_high <= vt_low)
        reject("require 0 < vt_low < vt_high (got " + fmt(vt_low) +
               ", " + fmt(vt_high) + ")");
    if (vt_high >= vdd)
        reject("vt_high (" + fmt(vt_high) + ") must be below vdd (" +
               fmt(vdd) + ")");
    if (temperature_k <= 0.0)
        reject("temperature must be positive");
    if (clock_ghz <= 0.0)
        reject("clock frequency must be positive");
    if (swing_factor < 1.0 || swing_factor > 3.0)
        reject("swing factor " + fmt(swing_factor) +
               " outside plausible [1,3]");
}

} // namespace lsim::circuit
