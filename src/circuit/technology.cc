#include "circuit/technology.hh"

#include <cmath>

#include "common/logging.hh"

namespace lsim::circuit
{

namespace
{
/** Boltzmann constant over elementary charge, volts per kelvin. */
constexpr double kOverQ = 8.617333262e-5;
} // namespace

double
Technology::thermalVoltage() const
{
    return kOverQ * temperature_k;
}

double
Technology::leakageScale(double vt) const
{
    return std::exp(-vt / (swing_factor * thermalVoltage()));
}

double
Technology::delayFactor(double vt) const
{
    // Normalized to the default corner's low-Vt drive so that delay
    // constants calibrated at the default technology are expressed in
    // picoseconds directly.
    const Technology def{};
    const double ref =
        std::pow(def.vdd - def.vt_low, kAlphaPower) / def.vdd;
    return ref * vdd / std::pow(vdd - vt, kAlphaPower);
}

void
Technology::validate() const
{
    if (vdd <= 0.0)
        fatal("Technology: vdd must be positive (got %g)", vdd);
    if (vt_low <= 0.0 || vt_high <= vt_low)
        fatal("Technology: require 0 < vt_low < vt_high "
              "(got %g, %g)", vt_low, vt_high);
    if (vt_high >= vdd)
        fatal("Technology: vt_high (%g) must be below vdd (%g)",
              vt_high, vdd);
    if (temperature_k <= 0.0)
        fatal("Technology: temperature must be positive");
    if (clock_ghz <= 0.0)
        fatal("Technology: clock frequency must be positive");
    if (swing_factor < 1.0 || swing_factor > 3.0)
        fatal("Technology: swing factor %g outside plausible [1,3]",
              swing_factor);
}

} // namespace lsim::circuit
