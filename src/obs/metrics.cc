#include "obs/metrics.hh"

#include <algorithm>
#include <sstream>

#include "common/files.hh"
#include "common/json.hh"
#include "obs/clock.hh"

namespace lsim
{
namespace obs
{

namespace
{

// 1-2-5 geometric ladder, ms. Keep in sync with Histogram::kBounds.
constexpr double kBucketBoundsMs[Histogram::kBounds] = {
    0.01, 0.02, 0.05, 0.1,  0.2,  0.5,   1.0,   2.0,   5.0,   10.0,
    20.0, 50.0, 100., 200., 500., 1000., 2000., 5000., 10000., 20000.,
    50000.,
};

void
atomicUpdateMin(std::atomic<double> &slot, double v)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicUpdateMax(std::atomic<double> &slot, double v)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

double
Histogram::boundMs(std::size_t i)
{
    return kBucketBoundsMs[i];
}

void
Histogram::observe(double ms)
{
    std::size_t i = 0;
    while (i < kBounds && ms > kBucketBoundsMs[i])
        ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ms, std::memory_order_relaxed);
    atomicUpdateMin(min_, ms);
    atomicUpdateMax(max_, ms);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::min() const
{
    return min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b <= i && b <= kBounds; ++b)
        cum += buckets_[b].load(std::memory_order_relaxed);
    return cum;
}

double
Histogram::percentile(double pct) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;

    // Rank of the target sample, 1-based; pct 0 maps to the first
    // sample (the observed minimum), pct 100 to the last.
    double target = pct / 100.0 * static_cast<double>(n);
    target = std::clamp(target, 1.0, static_cast<double>(n));

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBounds; ++i) {
        const std::uint64_t c =
            buckets_[i].load(std::memory_order_relaxed);
        if (static_cast<double>(cum + c) >= target && c > 0) {
            const double lo = i ? kBucketBoundsMs[i - 1] : 0.0;
            const double hi = kBucketBoundsMs[i];
            const double frac =
                (target - static_cast<double>(cum)) /
                static_cast<double>(c);
            const double v = lo + frac * (hi - lo);
            // Interpolation can't beat the actual observed range.
            return std::clamp(v, min(), max());
        }
        cum += c;
    }
    return max(); // target lies in the overflow bucket
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    MutexLock lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    MutexLock lock(mu_);
    w.beginObject();
    w.field("version", std::uint64_t(1));

    w.beginObject("counters");
    for (const auto &[name, c] : counters_)
        w.field(name, c->value());
    w.endObject();

    w.beginObject("gauges");
    for (const auto &[name, g] : gauges_)
        w.field(name, static_cast<double>(g->value()));
    w.endObject();

    w.beginObject("histograms");
    for (const auto &[name, h] : histograms_) {
        w.beginObject(name);
        const std::uint64_t n = h->count();
        w.field("count", n);
        w.field("sum", n ? h->sum() : 0.0);
        w.field("min", n ? h->min() : 0.0);
        w.field("max", n ? h->max() : 0.0);
        w.field("p50", h->percentile(50.0));
        w.field("p90", h->percentile(90.0));
        w.field("p99", h->percentile(99.0));
        w.beginArray("buckets");
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < Histogram::kBounds; ++i) {
            cum = h->bucketCount(i);
            w.beginObject();
            w.field("le", Histogram::boundMs(i));
            w.field("count", cum);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

std::string
MetricsRegistry::dumpJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    writeJson(w);
    os << "\n";
    return os.str();
}

bool
MetricsRegistry::exportFile(const std::string &path) const
{
    return atomicWriteFile(path, dumpJson());
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

Counter &
counter(const std::string &name)
{
    return MetricsRegistry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return MetricsRegistry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name)
{
    return MetricsRegistry::instance().histogram(name);
}

ScopedTimerMs::ScopedTimerMs(Histogram &h)
    : h_(h), start_us_(monotonicMicros())
{
}

double
ScopedTimerMs::elapsedMs() const
{
    return static_cast<double>(monotonicMicros() - start_us_) /
        1000.0;
}

ScopedTimerMs::~ScopedTimerMs()
{
    h_.observe(elapsedMs());
}

} // namespace obs
} // namespace lsim
