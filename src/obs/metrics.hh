/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms with p50/p90/p99 extraction.
 *
 * Hot-path updates are a single relaxed atomic RMW — no locks, no
 * allocation. The registry mutex is taken only on first lookup of a
 * name (call sites cache the returned reference) and when dumping.
 * Metric objects are never destroyed before process exit, so cached
 * references stay valid for the lifetime of the program.
 *
 * Timing in this module intentionally reads wall/steady clocks; the
 * determinism lint rule covers src/replay and src/sleep only, and
 * src/obs is exempt by design (observability measures real time).
 */

#ifndef LSIM_OBS_METRICS_HH
#define LSIM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace lsim
{

class JsonWriter;

namespace obs
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Instantaneous level (queue depth, workers busy, ...). */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    void sub(std::int64_t n = 1)
    {
        v_.fetch_sub(n, std::memory_order_relaxed);
    }
    std::int64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket histogram for latencies in milliseconds. Bucket upper
 * bounds follow a 1-2-5 geometric ladder from 0.01 ms to 50 s plus an
 * overflow bucket, so one layout serves micro-benchmarks and
 * multi-second batch requests alike. Percentiles are extracted by
 * linear interpolation inside the target bucket; the overflow bucket
 * reports the observed maximum.
 */
class Histogram
{
  public:
    /** Number of finite bucket bounds (the ladder). */
    static constexpr std::size_t kBounds = 21;

    /** Upper bound of finite bucket @p i, in ms. */
    static double boundMs(std::size_t i);

    void observe(double ms);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const;
    double min() const; ///< +inf when empty
    double max() const; ///< -inf when empty

    /** Percentile in [0, 100]; 0 when the histogram is empty. */
    double percentile(double pct) const;

    /** Cumulative count of finite bucket @p i plus all below. */
    std::uint64_t bucketCount(std::size_t i) const;

    void reset();

  private:
    // kBounds finite buckets + 1 overflow.
    std::array<std::atomic<std::uint64_t>, kBounds + 1> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{
        -std::numeric_limits<double>::infinity()};
};

/**
 * Name -> metric map shared by the whole process. Lookup interns the
 * name on first use and returns a stable reference; typical call
 * sites look up once (static local or member) and update lock-free
 * afterwards.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Dump every registered metric as one JSON object:
     * @code
     * {"version": 1,
     *  "counters": {"serve.requests_done": 12, ...},
     *  "gauges": {"serve.queue_depth": 0, ...},
     *  "histograms": {"serve.request_ms":
     *      {"count": 12, "sum": 34.5, "min": 1.2, "max": 9.8,
     *       "p50": 2.5, "p90": 8.0, "p99": 9.6,
     *       "buckets": [{"le": 0.01, "count": 0}, ...]}}}
     * @endcode
     * Names are emitted in sorted order so dumps diff cleanly.
     */
    void writeJson(JsonWriter &w) const;

    /** writeJson() rendered to a string. */
    std::string dumpJson() const;

    /** dumpJson() installed at @p path via atomicWriteFile(). */
    bool exportFile(const std::string &path) const;

    /**
     * Zero every registered metric (values only; registrations and
     * cached references stay valid). For tests sharing one process.
     */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>>
        counters_ GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>>
        gauges_ GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>>
        histograms_ GUARDED_BY(mu_);
};

/** Shorthand accessors against MetricsRegistry::instance(). */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/**
 * RAII histogram timer: records elapsed wall-clock ms into @p h on
 * destruction (steady clock, so immune to wall-clock steps).
 */
class ScopedTimerMs
{
  public:
    explicit ScopedTimerMs(Histogram &h);
    ~ScopedTimerMs();

    ScopedTimerMs(const ScopedTimerMs &) = delete;
    ScopedTimerMs &operator=(const ScopedTimerMs &) = delete;

    /** Elapsed ms so far (for callers that also want the value). */
    double elapsedMs() const;

  private:
    Histogram &h_;
    std::uint64_t start_us_;
};

} // namespace obs
} // namespace lsim

#endif // LSIM_OBS_METRICS_HH
