#include "obs/clock.hh"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace lsim
{
namespace obs
{

namespace
{

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

std::uint64_t
monotonicMicros()
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - processEpoch())
            .count());
}

std::string
isoTimestampNow()
{
    using namespace std::chrono;
    const auto now = system_clock::now();
    const std::time_t secs = system_clock::to_time_t(now);
    const auto ms =
        duration_cast<milliseconds>(now.time_since_epoch()).count() %
        1000;

    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[32];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(ms));
    return buf;
}

} // namespace obs
} // namespace lsim
