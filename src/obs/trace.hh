/**
 * @file
 * RAII trace spans emitting Chrome-trace-format JSON.
 *
 * Disabled by default: a TraceSpan constructed while the session is
 * off reads one relaxed atomic and does nothing else — no clock
 * read, no allocation, no lock. When enabled (LSIM_TRACE=out.json in
 * the environment, or `lsim serve --trace FILE`), each span records
 * a complete "X" (duration) event; flush() installs the JSON
 * atomically so a crash mid-write never leaves a torn file. The
 * output loads directly into chrome://tracing or Perfetto.
 */

#ifndef LSIM_OBS_TRACE_HH
#define LSIM_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace lsim
{
namespace obs
{

/** One completed span, Chrome trace "X" event. */
struct TraceEvent {
    std::string name;
    std::string cat;
    std::uint64_t ts_us;  ///< start, µs since session start
    std::uint64_t dur_us; ///< duration, µs
    std::uint64_t tid;    ///< stable per-thread id
};

/**
 * Process-wide trace sink. start() enables collection and remembers
 * the output path; stop() flushes and disables. flush() may also be
 * called mid-session (e.g. per drain cycle) — it rewrites the whole
 * file with everything collected so far.
 */
class TraceSession
{
  public:
    static TraceSession &instance();

    /** Enable collection, writing to @p path on flush()/stop(). */
    void start(const std::string &path);

    /** Flush and disable. No-op when not started. */
    void stop();

    /**
     * start() with the LSIM_TRACE environment variable when set and
     * non-empty. @return true when tracing was enabled.
     */
    bool startFromEnv();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Append one completed event (called by ~TraceSpan). */
    void record(TraceEvent ev);

    /** Write all collected events to the session path atomically. */
    bool flush();

    /** Collected event count so far (tests/diagnostics). */
    std::size_t eventCount() const;

    /** Drop all collected events and disable (tests only). */
    void resetForTest();

  private:
    TraceSession() = default;

    std::atomic<bool> enabled_{false};
    mutable Mutex mu_;
    std::string path_ GUARDED_BY(mu_);
    std::vector<TraceEvent> events_ GUARDED_BY(mu_);
};

/**
 * RAII scope timer: records a TraceEvent spanning its lifetime when
 * the session is enabled at construction. @p name and @p cat must
 * outlive the span (string literals in practice).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, const char *cat = "lsim");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_;
    const char *cat_;
    std::uint64_t start_us_ = 0;
    bool active_ = false;
};

} // namespace obs
} // namespace lsim

#endif // LSIM_OBS_TRACE_HH
