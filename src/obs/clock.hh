/**
 * @file
 * Clock helpers for the observability layer. These read real clocks
 * on purpose: src/obs is exempt from the determinism lint rule
 * (which covers src/replay and src/sleep), because observability
 * exists precisely to measure wall-clock behaviour.
 */

#ifndef LSIM_OBS_CLOCK_HH
#define LSIM_OBS_CLOCK_HH

#include <cstdint>
#include <string>

namespace lsim
{
namespace obs
{

/**
 * Microseconds on a process-wide steady clock, zeroed at the first
 * call in the process. Used for span timestamps and durations.
 */
std::uint64_t monotonicMicros();

/**
 * Current wall-clock time as UTC ISO-8601 with millisecond
 * precision, e.g. "2026-08-08T12:34:56.789Z".
 */
std::string isoTimestampNow();

} // namespace obs
} // namespace lsim

#endif // LSIM_OBS_CLOCK_HH
