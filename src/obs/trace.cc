#include "obs/trace.hh"

#include <unistd.h>

#include <cstdlib>
#include <sstream>

#include "common/files.hh"
#include "common/json.hh"
#include "obs/clock.hh"

namespace lsim
{
namespace obs
{

namespace
{

std::uint64_t
currentTid()
{
    // Small dense per-thread ids read better in trace viewers than
    // hashed std::thread::id values.
    static std::atomic<std::uint64_t> next{1};
    thread_local std::uint64_t id = next.fetch_add(1);
    return id;
}

} // namespace

TraceSession &
TraceSession::instance()
{
    static TraceSession *session = new TraceSession();
    return *session;
}

void
TraceSession::start(const std::string &path)
{
    {
        MutexLock lock(mu_);
        path_ = path;
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
TraceSession::stop()
{
    if (!enabled())
        return;
    enabled_.store(false, std::memory_order_relaxed);
    flush();
}

bool
TraceSession::startFromEnv()
{
    const char *path = std::getenv("LSIM_TRACE");
    if (!path || !*path)
        return false;
    start(path);
    return true;
}

void
TraceSession::record(TraceEvent ev)
{
    MutexLock lock(mu_);
    events_.push_back(std::move(ev));
}

bool
TraceSession::flush()
{
    std::string path;
    std::vector<TraceEvent> snapshot;
    {
        MutexLock lock(mu_);
        if (path_.empty())
            return false;
        path = path_;
        snapshot = events_;
    }

    const std::uint64_t pid =
        static_cast<std::uint64_t>(::getpid());
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.beginArray("traceEvents");
    for (const auto &ev : snapshot) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", ev.cat);
        w.field("ph", "X");
        w.field("ts", ev.ts_us);
        w.field("dur", ev.dur_us);
        w.field("pid", pid);
        w.field("tid", ev.tid);
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    os << "\n";
    return atomicWriteFile(path, os.str());
}

std::size_t
TraceSession::eventCount() const
{
    MutexLock lock(mu_);
    return events_.size();
}

void
TraceSession::resetForTest()
{
    enabled_.store(false, std::memory_order_relaxed);
    MutexLock lock(mu_);
    events_.clear();
    path_.clear();
}

TraceSpan::TraceSpan(const char *name, const char *cat)
    : name_(name), cat_(cat)
{
    if (!TraceSession::instance().enabled())
        return;
    active_ = true;
    start_us_ = monotonicMicros();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    auto &session = TraceSession::instance();
    if (!session.enabled())
        return; // session stopped mid-span; drop the event
    const std::uint64_t end_us = monotonicMicros();
    session.record(TraceEvent{name_, cat_, start_us_,
                              end_us - start_us_, currentTid()});
}

} // namespace obs
} // namespace lsim
