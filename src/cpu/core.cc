#include "cpu/core.hh"

#include <limits>

#include "common/logging.hh"

namespace lsim::cpu
{

using trace::MicroOp;
using trace::OpClass;

namespace
{
constexpr Cycle kNever = std::numeric_limits<Cycle>::max();
} // namespace

O3Core::O3Core(const CoreConfig &config, trace::TraceGenerator &gen)
    : config_(config),
      gen_(gen),
      mem_(config.mem),
      bpred_(config.bpred),
      int_map_(trace::kNumLogicalRegs, config.int_phys_regs),
      fp_map_(trace::kNumLogicalRegs, config.fp_phys_regs),
      rob_(config.rob_entries),
      int_iq_(config.int_iq_entries),
      fp_iq_(config.fp_iq_entries),
      lsq_(config.load_queue_entries, config.store_queue_entries),
      fu_pool_(config.num_int_fus)
{
    config_.validate();
}

void
O3Core::setFuRunSink(FuPool::RunSink sink)
{
    if (ran_)
        panic("O3Core::setFuRunSink after run()");
    fu_pool_.setRunSink(std::move(sink));
}

RenameMap &
O3Core::fileOf(int logical_reg)
{
    return logical_reg >= trace::kNumLogicalRegs ? fp_map_ : int_map_;
}

const RenameMap &
O3Core::fileOf(int logical_reg) const
{
    return logical_reg >= trace::kNumLogicalRegs ? fp_map_ : int_map_;
}

bool
O3Core::sourcesReady(const RobEntry &entry) const
{
    const auto &op = entry.op;
    if (op.src1 != kNoReg &&
        !fileOf(op.src1).isReady(entry.src1_phys))
        return false;
    if (op.src2 != kNoReg &&
        !fileOf(op.src2).isReady(entry.src2_phys))
        return false;
    return true;
}

void
O3Core::commitStage()
{
    unsigned done = 0;
    while (done < config_.commit_width && !rob_.empty() &&
           rob_.head().state == InstState::Complete) {
        RobEntry &entry = rob_.head();
        if (entry.op.isMem()) {
            if (entry.op.isStore()) {
                // Retire the store to the memory system; write
                // buffers hide the latency from the pipeline.
                (void)mem_.data(entry.op.mem_addr, true);
            }
            lsq_.remove(entry.seq);
        }
        if (entry.dst_phys != kNoPhysReg)
            fileOf(entry.op.dst).release(entry.prev_phys);
        rob_.popHead();
        ++committed_;
        ++done;
        last_commit_cycle_ = now_;
    }
}

void
O3Core::writebackStage()
{
    std::size_t out = 0;
    for (std::size_t i = 0; i < inflight_.size(); ++i) {
        RobEntry &entry = rob_.bySeq(inflight_[i]);
        if (entry.complete_cycle > now_) {
            inflight_[out++] = inflight_[i];
            continue;
        }
        entry.state = InstState::Complete;
        if (entry.dst_phys != kNoPhysReg)
            fileOf(entry.op.dst).setReady(entry.dst_phys);
        if (entry.op.isStore())
            lsq_.setAddrReady(entry.seq);
        if (entry.resteer) {
            // Branch resolved: front end refills after the redirect
            // penalty.
            fetch_resume_cycle_ = now_ + config_.mispredict_penalty;
        }
    }
    inflight_.resize(out);
}

void
O3Core::issueStage()
{
    // Integer side (includes loads/stores/branches): oldest first,
    // bounded by issue width and free FUs.
    unsigned int_issued = 0;
    int_iq_.selectIssue([&](std::uint64_t seq, bool &stop) {
        if (int_issued >= config_.issue_width) {
            stop = true;
            return false;
        }
        RobEntry &entry = rob_.bySeq(seq);
        if (!sourcesReady(entry))
            return false;

        const auto &op = entry.op;
        if (op.isLoad()) {
            if (dcache_ports_used_ >= config_.dcache_ports)
                return false;
            if (!lsq_.olderStoresReady(seq))
                return false;
        }

        // Allocate the unit before touching the cache: a load that
        // fails to get an FU must not perturb cache state (its
        // access happens in the cycle it actually issues).
        const int fu = fu_pool_.allocate();
        if (fu < 0) {
            stop = true; // no unit left: nothing younger can issue
            return false;
        }

        Cycle extra = 0;
        if (op.isLoad()) {
            if (lsq_.forwardsFromStore(seq, op.mem_addr)) {
                extra = 1; // store-to-load forwarding
            } else {
                extra = mem_.data(op.mem_addr, false);
                ++dcache_ports_used_;
            }
        }

        entry.state = InstState::Issued;
        entry.complete_cycle = now_ + trace::execLatency(op.cls) + extra;
        inflight_.push_back(seq);
        ++int_issued;
        return true;
    });

    // Floating point side.
    fp_issued_ = 0;
    fp_iq_.selectIssue([&](std::uint64_t seq, bool &stop) {
        if (fp_issued_ >= config_.fp_issue_width ||
            fp_issued_ >= config_.num_fp_fus) {
            stop = true;
            return false;
        }
        RobEntry &entry = rob_.bySeq(seq);
        if (!sourcesReady(entry))
            return false;
        entry.state = InstState::Issued;
        entry.complete_cycle =
            now_ + trace::execLatency(entry.op.cls);
        inflight_.push_back(seq);
        ++fp_issued_;
        return true;
    });
}

void
O3Core::renameStage()
{
    unsigned done = 0;
    while (done < config_.decode_width && !fetch_queue_.empty()) {
        const FetchedOp &fetched = fetch_queue_.front();
        const MicroOp &op = fetched.op;
        const bool fp = op.isFp();

        if (rob_.full())
            break;
        if (fp ? fp_iq_.full() : int_iq_.full())
            break;
        if (op.dst != kNoReg && !fileOf(op.dst).hasFreeReg())
            break;
        if (op.isLoad() && !lsq_.canInsertLoad())
            break;
        if (op.isStore() && !lsq_.canInsertStore())
            break;

        RobEntry &entry = rob_.allocate();
        entry.op = op;
        entry.state = InstState::Dispatched;
        entry.resteer = fetched.resteer;

        auto mapSrc = [&](int logical) {
            if (logical == kNoReg)
                return kNoPhysReg;
            return fileOf(logical).lookup(
                logical % trace::kNumLogicalRegs);
        };
        entry.src1_phys = mapSrc(op.src1);
        entry.src2_phys = mapSrc(op.src2);
        if (op.dst != kNoReg) {
            entry.dst_is_fp = op.dst >= trace::kNumLogicalRegs;
            entry.dst_phys = fileOf(op.dst).allocate(
                op.dst % trace::kNumLogicalRegs, entry.prev_phys);
        }

        if (op.isMem())
            lsq_.insert(entry.seq, op.mem_addr, op.isStore());
        if (fp)
            fp_iq_.insert(entry.seq);
        else
            int_iq_.insert(entry.seq);

        fetch_queue_.pop_front();
        ++done;
    }
}

void
O3Core::fetchStage()
{
    if (waiting_resteer_) {
        if (now_ < fetch_resume_cycle_)
            return;
        waiting_resteer_ = false;
    }
    if (now_ < icache_ready_cycle_)
        return;

    const Cycle i_hit = config_.mem.l1i.hit_latency;
    unsigned fetched = 0;
    while (fetched < config_.fetch_width &&
           fetch_queue_.size() < config_.fetch_queue_entries) {
        if (!pending_)
            pending_ = gen_.next();

        // Instruction cache: charge a stall when the fetch crosses
        // into a line that misses.
        const Addr line = pending_->pc &
            ~static_cast<Addr>(config_.mem.l1i.line_bytes - 1);
        if (line != cur_fetch_line_) {
            cur_fetch_line_ = line;
            const Cycle lat = mem_.fetch(pending_->pc);
            if (lat > i_hit) {
                icache_ready_cycle_ = now_ + (lat - i_hit);
                return; // op stays pending until the line arrives
            }
        }

        FetchedOp fetched_op;
        fetched_op.op = *pending_;
        pending_.reset();

        bool stop_after = false;
        if (fetched_op.op.isControl()) {
            const BpredResult res = bpred_.predict(fetched_op.op);
            if (res.mispredict) {
                fetched_op.resteer = true;
                waiting_resteer_ = true;
                fetch_resume_cycle_ = kNever; // set at execute
                stop_after = true;
            } else if (res.btb_cold) {
                // Short refetch bubble once the target is computed.
                icache_ready_cycle_ =
                    now_ + config_.btb_miss_penalty;
                stop_after = true;
            } else if (fetched_op.op.taken) {
                stop_after = true; // taken-branch fetch break
            }
        }

        fetch_queue_.push_back(fetched_op);
        ++fetched;
        if (stop_after)
            break;
    }
}

SimResult
O3Core::run(std::uint64_t max_insts)
{
    if (ran_)
        panic("O3Core::run may only be called once");
    ran_ = true;

    while (committed_ < max_insts) {
        ++now_;
        fu_pool_.beginCycle();
        dcache_ports_used_ = 0;

        commitStage();
        writebackStage();
        issueStage();
        renameStage();
        fetchStage();

        fu_pool_.endCycle();

        if (now_ - last_commit_cycle_ > kDeadlockWindow)
            panic("no commit for %llu cycles at cycle %llu "
                  "(rob=%zu iq=%zu fq=%zu)",
                  static_cast<unsigned long long>(kDeadlockWindow),
                  static_cast<unsigned long long>(now_),
                  rob_.size(), int_iq_.size(), fetch_queue_.size());
    }
    fu_pool_.finish();

    SimResult res;
    res.cycles = now_;
    res.committed = committed_;
    res.ipc = now_ ? static_cast<double>(committed_) /
        static_cast<double>(now_) : 0.0;
    res.bpred = bpred_.stats();
    res.l1i = mem_.l1i().stats();
    res.l1d = mem_.l1d().stats();
    res.l2 = mem_.l2().stats();
    res.itlb = mem_.itlb().stats();
    res.dtlb = mem_.dtlb().stats();
    double idle_sum = 0.0;
    for (unsigned fu = 0; fu < fu_pool_.numUnits(); ++fu) {
        res.fu_utilization.push_back(fu_pool_.utilization(fu));
        idle_sum += fu_pool_.idleStats(fu).idleFraction();
    }
    res.mean_fu_idle_fraction =
        idle_sum / static_cast<double>(fu_pool_.numUnits());
    return res;
}

} // namespace lsim::cpu
