/**
 * @file
 * Trace-driven out-of-order core timing model (the paper's Table 2
 * machine, modeled after the Alpha 21264 as configured in
 * SimpleScalar).
 *
 * Pipeline: fetch (with combined branch prediction, I-cache/ITLB and
 * taken-branch fetch break) -> rename/dispatch (ROB, physical
 * registers, issue queues, LSQ) -> out-of-order issue (oldest-first,
 * round-robin integer FU allocation, conservative memory dependence,
 * D-cache/DTLB access at execute) -> writeback (wakeup, branch
 * redirect) -> in-order commit.
 *
 * Stages are evaluated commit-first within a cycle so that a result
 * completing in cycle X can feed a dependent issuing in cycle X
 * (back-to-back single-cycle dependencies, as real bypass networks
 * provide).
 *
 * The trace is pre-executed, so wrong-path instructions are never
 * fetched; the cost of misprediction is charged as a fetch stall
 * from the branch's fetch until its execution plus the configured
 * redirect penalty.
 */

#ifndef LSIM_CPU_CORE_HH
#define LSIM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "cpu/bpred.hh"
#include "cpu/config.hh"
#include "cpu/fu_pool.hh"
#include "cpu/issue_queue.hh"
#include "cpu/lsq.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "trace/generator.hh"

namespace lsim::cpu
{

/** End-of-run summary. */
struct SimResult
{
    Cycle cycles = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;

    BpredStats bpred;
    cache::CacheStats l1i;
    cache::CacheStats l1d;
    cache::CacheStats l2;
    cache::TlbStats itlb;
    cache::TlbStats dtlb;

    /** Per-integer-FU utilization (busy cycles / total cycles). */
    std::vector<double> fu_utilization;

    /** Mean per-FU idle fraction across the integer units. */
    double mean_fu_idle_fraction = 0.0;
};

/** The out-of-order core. Single-shot: construct, run(), read stats. */
class O3Core
{
  public:
    /**
     * @param config Machine configuration (validated).
     * @param gen Dynamic instruction source (not owned; must outlive
     *        the core).
     */
    O3Core(const CoreConfig &config, trace::TraceGenerator &gen);

    /**
     * Register a sink receiving each integer FU's maximal busy/idle
     * runs (the energy harness hook). Must be called before run().
     */
    void setFuRunSink(FuPool::RunSink sink);

    /**
     * Simulate until @p max_insts instructions commit.
     * @return the run summary (also retrievable from accessors).
     */
    SimResult run(std::uint64_t max_insts);

    const FuPool &fuPool() const { return fu_pool_; }
    const cache::MemoryHierarchy &memory() const { return mem_; }
    const BranchPredictor &branchPredictor() const { return bpred_; }
    const CoreConfig &config() const { return config_; }
    Cycle now() const { return now_; }

  private:
    /** Fetch queue entry: a fetched op plus front-end annotations. */
    struct FetchedOp
    {
        trace::MicroOp op;
        bool resteer = false; ///< mispredicted; redirect at execute
    };

    void commitStage();
    void writebackStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    bool sourcesReady(const RobEntry &entry) const;
    RenameMap &fileOf(int logical_reg);
    const RenameMap &fileOf(int logical_reg) const;

    CoreConfig config_;
    trace::TraceGenerator &gen_;
    cache::MemoryHierarchy mem_;
    BranchPredictor bpred_;
    RenameMap int_map_;
    RenameMap fp_map_;
    ReorderBuffer rob_;
    IssueQueue int_iq_;
    IssueQueue fp_iq_;
    LoadStoreQueue lsq_;
    FuPool fu_pool_;

    std::deque<FetchedOp> fetch_queue_;
    std::optional<trace::MicroOp> pending_;

    /** Seqs issued but not yet completed (writeback work list). */
    std::vector<std::uint64_t> inflight_;

    Cycle now_ = 0;
    std::uint64_t committed_ = 0;
    bool ran_ = false;

    // Front-end stall state.
    bool waiting_resteer_ = false;
    Cycle fetch_resume_cycle_ = 0;
    Cycle icache_ready_cycle_ = 0;
    Addr cur_fetch_line_ = ~Addr{0};

    // Per-cycle issue bookkeeping.
    unsigned fp_issued_ = 0;
    unsigned dcache_ports_used_ = 0;

    /** Commit-progress watchdog (deadlock detection). */
    Cycle last_commit_cycle_ = 0;
    static constexpr Cycle kDeadlockWindow = 200000;
};

} // namespace lsim::cpu

#endif // LSIM_CPU_CORE_HH
