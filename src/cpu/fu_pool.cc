#include "cpu/fu_pool.hh"

#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace lsim::cpu
{

FuPool::FuPool(unsigned num_units)
    : num_units_(num_units)
{
    if (num_units_ == 0 || num_units_ > 8)
        throw std::invalid_argument(
            "FuPool: unit count " + std::to_string(num_units_) +
            " outside [1,8]");
    units_.resize(num_units_);
    idle_.resize(num_units_);
}

void
FuPool::beginCycle()
{
    if (in_cycle_)
        panic("FuPool::beginCycle without endCycle");
    in_cycle_ = true;
    allocated_ = 0;
    for (auto &u : units_)
        u.busy_now = false;
}

int
FuPool::allocate()
{
    if (!in_cycle_)
        panic("FuPool::allocate outside a cycle");
    for (unsigned i = 0; i < num_units_; ++i) {
        const unsigned fu = (rr_ptr_ + i) % num_units_;
        if (!units_[fu].busy_now) {
            units_[fu].busy_now = true;
            ++allocated_;
            rr_ptr_ = (fu + 1) % num_units_;
            return static_cast<int>(fu);
        }
    }
    return -1;
}

void
FuPool::closeRun(unsigned fu)
{
    UnitState &u = units_[fu];
    if (u.run_len == 0)
        return;
    if (sink_)
        sink_(fu, u.run_busy, u.run_len);
    if (u.run_busy)
        idle_[fu].activeRun(u.run_len);
    else
        idle_[fu].idleRun(u.run_len);
    u.run_len = 0;
}

void
FuPool::endCycle()
{
    if (!in_cycle_)
        panic("FuPool::endCycle without beginCycle");
    in_cycle_ = false;
    ++cycles_;
    for (unsigned fu = 0; fu < num_units_; ++fu) {
        UnitState &u = units_[fu];
        if (u.busy_now)
            ++u.busy_total;
        if (u.run_len > 0 && u.run_busy != u.busy_now)
            closeRun(fu);
        u.run_busy = u.busy_now;
        ++u.run_len;
    }
}

void
FuPool::finish()
{
    for (unsigned fu = 0; fu < num_units_; ++fu) {
        closeRun(fu);
        idle_[fu].finish();
    }
}

Cycle
FuPool::busyCycles(unsigned fu) const
{
    if (fu >= num_units_)
        panic("FuPool::busyCycles: bad unit %u", fu);
    return units_[fu].busy_total;
}

const sleep::IdleIntervalRecorder &
FuPool::idleStats(unsigned fu) const
{
    if (fu >= num_units_)
        panic("FuPool::idleStats: bad unit %u", fu);
    return idle_[fu];
}

double
FuPool::utilization(unsigned fu) const
{
    return cycles_ ? static_cast<double>(busyCycles(fu)) /
        static_cast<double>(cycles_) : 0.0;
}

} // namespace lsim::cpu
