/**
 * @file
 * Reorder buffer: a bounded circular buffer of in-flight
 * instructions in program order. Entries are addressed by a
 * monotonically increasing sequence number, which stays valid for
 * the entry's lifetime (unlike raw slot indices).
 */

#ifndef LSIM_CPU_ROB_HH
#define LSIM_CPU_ROB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "cpu/rename.hh"
#include "trace/op.hh"

namespace lsim::cpu
{

/** Lifecycle of an in-flight instruction. */
enum class InstState : std::uint8_t
{
    Dispatched, ///< renamed, waiting in an issue queue
    Issued,     ///< executing on a functional unit
    Complete,   ///< result produced, awaiting commit
};

/** One in-flight instruction. */
struct RobEntry
{
    trace::MicroOp op;
    std::uint64_t seq = 0;        ///< program-order sequence number
    InstState state = InstState::Dispatched;
    Cycle complete_cycle = 0;     ///< valid once Issued

    int dst_phys = kNoPhysReg;
    int prev_phys = kNoPhysReg;   ///< freed at commit
    int src1_phys = kNoPhysReg;
    int src2_phys = kNoPhysReg;
    bool dst_is_fp = false;

    /** Redirect fetch when this instruction completes (mispredict). */
    bool resteer = false;
    /** Index in the load/store queue, or -1. */
    int lsq_index = -1;
};

/** The reorder buffer. */
class ReorderBuffer
{
  public:
    explicit ReorderBuffer(unsigned capacity);

    bool full() const { return size_ == capacity_; }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    unsigned capacity() const { return capacity_; }

    /**
     * Allocate the next entry in program order.
     * @return reference to the fresh entry (seq already assigned);
     * panics when full (callers must check).
     */
    RobEntry &allocate();

    /** Oldest entry; panics when empty. */
    RobEntry &head();
    const RobEntry &head() const;

    /** Remove the oldest entry (after commit); panics when empty. */
    void popHead();

    /** Entry with sequence number @p seq; panics if not in flight. */
    RobEntry &bySeq(std::uint64_t seq);

    /** @return true when @p seq is still in flight. */
    bool contains(std::uint64_t seq) const;

    /**
     * Apply @p fn to every in-flight entry, oldest first.
     * @tparam Fn callable taking (RobEntry &).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < size_; ++i)
            fn(entries_[(head_ + i) % capacity_]);
    }

  private:
    std::size_t slotOf(std::uint64_t seq) const;

    unsigned capacity_;
    std::vector<RobEntry> entries_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t head_seq_ = 1; ///< seq of the head entry
};

} // namespace lsim::cpu

#endif // LSIM_CPU_ROB_HH
