#include "cpu/config.hh"

#include <bit>

#include "common/logging.hh"

namespace lsim::cpu
{

namespace
{
void
requirePow2(unsigned value, const char *what)
{
    if (value == 0 || !std::has_single_bit(value))
        fatal("CoreConfig: %s (%u) must be a nonzero power of two",
              what, value);
}
} // namespace

void
BpredConfig::validate() const
{
    requirePow2(bimodal_entries, "bimodal entries");
    requirePow2(gshare_entries, "gshare entries");
    requirePow2(chooser_entries, "chooser entries");
    requirePow2(btb_sets, "BTB sets");
    if (hist_bits == 0 || hist_bits > 20)
        fatal("CoreConfig: history bits %u outside [1,20]", hist_bits);
    if (ras_entries == 0)
        fatal("CoreConfig: RAS must have at least one entry");
    if (btb_assoc == 0)
        fatal("CoreConfig: BTB associativity must be nonzero");
}

void
CoreConfig::validate() const
{
    if (fetch_width == 0 || decode_width == 0 || issue_width == 0 ||
        commit_width == 0)
        fatal("CoreConfig: zero pipeline width");
    if (fetch_queue_entries == 0 || rob_entries == 0 ||
        int_iq_entries == 0 || fp_iq_entries == 0)
        fatal("CoreConfig: zero queue capacity");
    if (int_phys_regs < 32 || fp_phys_regs < 32)
        fatal("CoreConfig: need at least 32 physical registers per "
              "file (architectural state)");
    if (num_int_fus == 0 || num_int_fus > 8)
        fatal("CoreConfig: integer FU count %u outside [1,8]",
              num_int_fus);
    if (num_fp_fus == 0)
        fatal("CoreConfig: need at least one FP unit");
    if (dcache_ports == 0)
        fatal("CoreConfig: need at least one D-cache port");
    bpred.validate();
}

CoreConfig
CoreConfig::withIntFus(unsigned n) const
{
    CoreConfig copy = *this;
    copy.num_int_fus = n;
    return copy;
}

CoreConfig
CoreConfig::withL2Latency(Cycle lat) const
{
    CoreConfig copy = *this;
    copy.mem.l2.hit_latency = lat;
    return copy;
}

} // namespace lsim::cpu
