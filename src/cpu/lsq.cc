#include "cpu/lsq.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace lsim::cpu
{

LoadStoreQueue::LoadStoreQueue(unsigned load_entries,
                               unsigned store_entries)
    : load_cap_(load_entries), store_cap_(store_entries)
{
    if (load_cap_ == 0 || store_cap_ == 0)
        throw std::invalid_argument(
            "LoadStoreQueue: zero capacity");
    entries_.reserve(load_cap_ + store_cap_);
}

void
LoadStoreQueue::insert(std::uint64_t seq, Addr addr, bool is_store)
{
    if (is_store && !canInsertStore())
        panic("LoadStoreQueue: store insert when full");
    if (!is_store && !canInsertLoad())
        panic("LoadStoreQueue: load insert when full");
    if (!entries_.empty() && entries_.back().seq >= seq)
        panic("LoadStoreQueue: insert out of program order");

    LsqEntry e;
    e.seq = seq;
    e.addr = addr;
    e.is_store = is_store;
    e.addr_ready = false;
    e.valid = true;
    entries_.push_back(e);
    if (is_store)
        ++num_stores_;
    else
        ++num_loads_;
}

void
LoadStoreQueue::setAddrReady(std::uint64_t seq)
{
    for (auto &e : entries_) {
        if (e.seq == seq) {
            e.addr_ready = true;
            return;
        }
    }
    panic("LoadStoreQueue::setAddrReady: seq %llu not present",
          static_cast<unsigned long long>(seq));
}

bool
LoadStoreQueue::olderStoresReady(std::uint64_t seq) const
{
    for (const auto &e : entries_) {
        if (e.seq >= seq)
            break;
        if (e.is_store && !e.addr_ready)
            return false;
    }
    return true;
}

bool
LoadStoreQueue::forwardsFromStore(std::uint64_t seq, Addr addr) const
{
    const Addr word = addr >> 3;
    bool forwards = false;
    for (const auto &e : entries_) {
        if (e.seq >= seq)
            break;
        if (e.is_store && e.addr_ready && (e.addr >> 3) == word)
            forwards = true; // youngest older store wins; keep scanning
    }
    return forwards;
}

void
LoadStoreQueue::remove(std::uint64_t seq)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->seq == seq) {
            if (it->is_store)
                --num_stores_;
            else
                --num_loads_;
            entries_.erase(it);
            return;
        }
    }
    panic("LoadStoreQueue::remove: seq %llu not present",
          static_cast<unsigned long long>(seq));
}

} // namespace lsim::cpu
