/**
 * @file
 * Integer functional unit pool with round-robin allocation and
 * per-unit busy/idle tracking.
 *
 * The paper allocates operations to the functional units in round
 * robin fashion and records precise per-FU idle statistics
 * (Section 4). The pool maintains a persistent rotation pointer:
 * each allocation takes the first free unit at or after the pointer
 * and advances it, spreading work evenly so no unit accumulates
 * artificially long idle stretches.
 *
 * Units are fully pipelined: each accepts at most one operation per
 * cycle and is "busy" in exactly the cycles in which it accepts one.
 * Per-FU busy/idle run lengths are forwarded to an optional sink
 * (the energy harness) and to built-in IdleIntervalRecorders
 * (Figure 7).
 */

#ifndef LSIM_CPU_FU_POOL_HH
#define LSIM_CPU_FU_POOL_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sleep/idle_stats.hh"

namespace lsim::cpu
{

/** The integer FU pool. */
class FuPool
{
  public:
    /**
     * Sink receiving maximal per-FU busy/idle runs:
     * (fu index, busy?, run length).
     */
    using RunSink = std::function<void(unsigned, bool, Cycle)>;

    /** @param num_units Integer FU count (1..8). */
    explicit FuPool(unsigned num_units);

    /** Register a run sink (may be empty to disable). */
    void setRunSink(RunSink sink) { sink_ = std::move(sink); }

    /** Start a new cycle: all units begin the cycle free. */
    void beginCycle();

    /**
     * Try to allocate a unit this cycle (round robin).
     * @return the unit index, or -1 if all are busy this cycle.
     */
    int allocate();

    /** Number of units allocated so far this cycle. */
    unsigned allocatedThisCycle() const { return allocated_; }

    /**
     * Close the cycle: fold this cycle's busy bits into the per-FU
     * run-length state, emitting completed runs to the sink and the
     * idle recorders.
     */
    void endCycle();

    /**
     * Flush open runs (end of simulation) into sinks/recorders and
     * finish the idle statistics.
     */
    void finish();

    unsigned numUnits() const { return num_units_; }

    /** Cycles elapsed (beginCycle..endCycle pairs). */
    Cycle cycles() const { return cycles_; }

    /** Busy cycles of unit @p fu. */
    Cycle busyCycles(unsigned fu) const;

    /** Idle statistics of unit @p fu (valid after finish()). */
    const sleep::IdleIntervalRecorder &idleStats(unsigned fu) const;

    /** Utilization of unit @p fu: busy cycles / total cycles. */
    double utilization(unsigned fu) const;

  private:
    struct UnitState
    {
        bool busy_now = false;  ///< allocated this cycle
        bool run_busy = false;  ///< state of the open run
        Cycle run_len = 0;      ///< length of the open run
        Cycle busy_total = 0;
    };

    void closeRun(unsigned fu);

    unsigned num_units_;
    std::vector<UnitState> units_;
    std::vector<sleep::IdleIntervalRecorder> idle_;
    RunSink sink_;
    unsigned rr_ptr_ = 0;
    unsigned allocated_ = 0;
    Cycle cycles_ = 0;
    bool in_cycle_ = false;
};

} // namespace lsim::cpu

#endif // LSIM_CPU_FU_POOL_HH
