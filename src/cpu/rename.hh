/**
 * @file
 * Register renaming: logical-to-physical map, free list, and a
 * physical-register ready scoreboard for one register file (the core
 * instantiates one for the integer file and one for the FP file).
 *
 * The conventional scheme: rename allocates a fresh physical
 * register for each destination and remembers the previous mapping;
 * the previous physical register is freed when the instruction
 * commits. Trace-driven simulation fetches no wrong-path
 * instructions, so no checkpoint/rollback machinery is needed — the
 * timing cost of recovery is charged via the mispredict penalty.
 */

#ifndef LSIM_CPU_RENAME_HH
#define LSIM_CPU_RENAME_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace lsim::cpu
{

/** Sentinel physical register meaning "no register". */
inline constexpr int kNoPhysReg = -1;

/** Rename state for one register file. */
class RenameMap
{
  public:
    /**
     * @param num_logical Logical (architectural) register count.
     * @param num_physical Physical register count (>= num_logical).
     */
    RenameMap(unsigned num_logical, unsigned num_physical);

    /** @return true when a destination can be allocated. */
    bool hasFreeReg() const { return !free_list_.empty(); }

    /** Number of free physical registers. */
    std::size_t numFree() const { return free_list_.size(); }

    /**
     * Look up the current physical mapping of logical register
     * @p logical (for a source operand).
     */
    int lookup(int logical) const;

    /**
     * Allocate a new physical register for @p logical.
     * @param[out] prev_phys The displaced mapping, to be freed when
     *             the allocating instruction commits.
     * @return the new physical register; panics if none free
     *         (callers must check hasFreeReg()).
     */
    int allocate(int logical, int &prev_phys);

    /** Return @p phys to the free list (at commit of the displacing
     * instruction). */
    void release(int phys);

    /** @return true when physical register @p phys holds its value. */
    bool isReady(int phys) const;

    /** Mark @p phys as holding its value (writeback). */
    void setReady(int phys);

    unsigned numLogical() const { return num_logical_; }
    unsigned numPhysical() const { return num_physical_; }

  private:
    unsigned num_logical_;
    unsigned num_physical_;
    std::vector<int> map_;          ///< logical -> physical
    std::vector<int> free_list_;    ///< LIFO free pool
    std::vector<bool> ready_;       ///< physical ready bits
};

} // namespace lsim::cpu

#endif // LSIM_CPU_RENAME_HH
