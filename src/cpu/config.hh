/**
 * @file
 * Core configuration: the paper's Table 2 Alpha-21264-like machine.
 */

#ifndef LSIM_CPU_CONFIG_HH
#define LSIM_CPU_CONFIG_HH

#include <string>

#include "cache/hierarchy.hh"
#include "common/types.hh"

namespace lsim::cpu
{

/** Branch predictor geometry (Table 2). */
struct BpredConfig
{
    unsigned bimodal_entries = 2048;  ///< bimodal 2-bit counters
    unsigned hist_bits = 10;          ///< global history length
    unsigned gshare_entries = 4096;   ///< gshare PHT (global)
    unsigned chooser_entries = 1024;  ///< combining chooser counters
    unsigned ras_entries = 32;        ///< return address stack
    unsigned btb_sets = 4096;         ///< BTB sets
    unsigned btb_assoc = 2;           ///< BTB associativity

    void validate() const;
};

/** Whole-core configuration (Table 2 defaults). */
struct CoreConfig
{
    unsigned fetch_width = 4;
    unsigned decode_width = 4;
    unsigned issue_width = 4;     ///< integer issue per cycle
    unsigned fp_issue_width = 2;  ///< floating point issue per cycle
    unsigned commit_width = 4;

    unsigned fetch_queue_entries = 8;
    unsigned rob_entries = 128;
    unsigned int_iq_entries = 32;
    unsigned fp_iq_entries = 32;
    unsigned int_phys_regs = 96;
    unsigned fp_phys_regs = 96;
    unsigned load_queue_entries = 32;
    unsigned store_queue_entries = 32;

    /**
     * Number of integer functional units (the paper studies 1..4;
     * per-benchmark counts are chosen for >= 95% of 4-FU IPC).
     */
    unsigned num_int_fus = 4;
    unsigned num_fp_fus = 2;
    unsigned dcache_ports = 2;

    Cycle mispredict_penalty = 10; ///< branch mispredict latency
    Cycle btb_miss_penalty = 2;    ///< taken-predict without target

    BpredConfig bpred;
    cache::HierarchyConfig mem;

    void validate() const;

    /** @return a copy with @p n integer functional units. */
    CoreConfig withIntFus(unsigned n) const;

    /** @return a copy with the L2 hit latency set to @p lat. */
    CoreConfig withL2Latency(Cycle lat) const;
};

} // namespace lsim::cpu

#endif // LSIM_CPU_CONFIG_HH
