/**
 * @file
 * Combined branch predictor per Table 2: a bimodal predictor and a
 * gshare (two-level, global-history) predictor arbitrated by a
 * chooser table, plus a branch target buffer and a return address
 * stack. 2-bit saturating counters throughout.
 *
 * Operation follows the usual trace-driven discipline: predict() is
 * called at fetch with the resolved MicroOp, returns the prediction
 * that the hardware would have made, then trains all structures with
 * the actual outcome. Speculative history corruption on wrong paths
 * is not modeled (wrong-path instructions are never fetched in a
 * trace-driven front end); the configured mispredict penalty absorbs
 * the difference.
 */

#ifndef LSIM_CPU_BPRED_HH
#define LSIM_CPU_BPRED_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "cpu/config.hh"
#include "trace/op.hh"

namespace lsim::cpu
{

/** Prediction outcome for one control instruction. */
struct BpredResult
{
    bool pred_taken = false;   ///< predicted direction
    bool dir_correct = false;  ///< direction matched actual outcome
    bool target_known = false; ///< BTB/RAS produced the right target
    /**
     * Full mispredict: wrong direction, or taken with a wrong
     * predicted target (RAS mismatch / BTB stale entry). Costs the
     * configured mispredict penalty.
     */
    bool mispredict = false;
    /**
     * Direction correct &&taken, but the BTB had no entry: the
     * front end discovers the target a couple of cycles later
     * (decode); costs the smaller btb_miss_penalty.
     */
    bool btb_cold = false;
};

/** Aggregate predictor statistics. */
struct BpredStats
{
    std::uint64_t lookups = 0;
    std::uint64_t cond_branches = 0;
    std::uint64_t dir_mispredicts = 0;
    std::uint64_t target_mispredicts = 0;
    std::uint64_t btb_cold_misses = 0;
    std::uint64_t ras_pushes = 0;
    std::uint64_t ras_pops = 0;

    double
    dirMispredictRate() const
    {
        return cond_branches ? static_cast<double>(dir_mispredicts) /
            static_cast<double>(cond_branches) : 0.0;
    }
};

/** The combined predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BpredConfig &config);

    /**
     * Predict and train on one control instruction (op.taken and
     * op.target are the resolved outcome).
     */
    BpredResult predict(const trace::MicroOp &op);

    const BpredStats &stats() const { return stats_; }

    /** Reset tables, history and statistics. */
    void reset();

  private:
    /** 2-bit counter helpers. */
    static bool counterTaken(std::uint8_t ctr) { return ctr >= 2; }
    static std::uint8_t
    counterUpdate(std::uint8_t ctr, bool taken)
    {
        if (taken)
            return ctr < 3 ? ctr + 1 : 3;
        return ctr > 0 ? ctr - 1 : 0;
    }

    bool predictDirection(Addr pc, bool actual_taken);
    bool lookupBtb(Addr pc, Addr &target) const;
    void updateBtb(Addr pc, Addr target);

    BpredConfig config_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;
    std::uint32_t history_ = 0;
    std::uint32_t hist_mask_;

    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };
    std::vector<BtbEntry> btb_;
    std::uint64_t btb_clock_ = 0;

    std::vector<Addr> ras_;
    std::size_t ras_top_ = 0; ///< index of next push slot

    BpredStats stats_;
};

} // namespace lsim::cpu

#endif // LSIM_CPU_BPRED_HH
