#include "cpu/bpred.hh"

#include "common/logging.hh"

namespace lsim::cpu
{

BranchPredictor::BranchPredictor(const BpredConfig &config)
    : config_(config)
{
    config_.validate();
    bimodal_.assign(config_.bimodal_entries, 1);
    gshare_.assign(config_.gshare_entries, 1);
    chooser_.assign(config_.chooser_entries, 1);
    hist_mask_ = (1u << config_.hist_bits) - 1;
    btb_.assign(static_cast<std::size_t>(config_.btb_sets) *
                config_.btb_assoc, BtbEntry{});
    ras_.assign(config_.ras_entries, 0);
}

void
BranchPredictor::reset()
{
    *this = BranchPredictor(config_);
}

bool
BranchPredictor::predictDirection(Addr pc, bool actual_taken)
{
    const std::size_t bi = (pc >> 2) & (config_.bimodal_entries - 1);
    const std::size_t gi =
        ((pc >> 2) ^ history_) & (config_.gshare_entries - 1);
    const std::size_t ci = (pc >> 2) & (config_.chooser_entries - 1);

    const bool bim_pred = counterTaken(bimodal_[bi]);
    const bool gsh_pred = counterTaken(gshare_[gi]);
    const bool use_gshare = counterTaken(chooser_[ci]);
    const bool pred = use_gshare ? gsh_pred : bim_pred;

    // Train: component counters always, chooser only when the
    // components disagree (standard combining predictor update).
    bimodal_[bi] = counterUpdate(bimodal_[bi], actual_taken);
    gshare_[gi] = counterUpdate(gshare_[gi], actual_taken);
    if (bim_pred != gsh_pred)
        chooser_[ci] =
            counterUpdate(chooser_[ci], gsh_pred == actual_taken);
    history_ = ((history_ << 1) | (actual_taken ? 1 : 0)) & hist_mask_;
    return pred;
}

bool
BranchPredictor::lookupBtb(Addr pc, Addr &target) const
{
    const std::size_t set =
        (pc >> 2) & (config_.btb_sets - 1);
    const BtbEntry *base = &btb_[set * config_.btb_assoc];
    for (unsigned way = 0; way < config_.btb_assoc; ++way) {
        if (base[way].valid && base[way].pc == pc) {
            target = base[way].target;
            return true;
        }
    }
    return false;
}

void
BranchPredictor::updateBtb(Addr pc, Addr target)
{
    const std::size_t set =
        (pc >> 2) & (config_.btb_sets - 1);
    BtbEntry *base = &btb_[set * config_.btb_assoc];
    BtbEntry *victim = base;
    for (unsigned way = 0; way < config_.btb_assoc; ++way) {
        BtbEntry &e = base[way];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lru = ++btb_clock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lru = ++btb_clock_;
}

BpredResult
BranchPredictor::predict(const trace::MicroOp &op)
{
    using trace::OpClass;

    ++stats_.lookups;
    BpredResult res;

    switch (op.cls) {
      case OpClass::Branch: {
        ++stats_.cond_branches;
        res.pred_taken = predictDirection(op.pc, op.taken);
        res.dir_correct = res.pred_taken == op.taken;
        if (!res.dir_correct) {
            ++stats_.dir_mispredicts;
            res.mispredict = true;
        } else if (res.pred_taken) {
            Addr target = 0;
            if (lookupBtb(op.pc, target)) {
                res.target_known = target == op.target;
                if (!res.target_known) {
                    // Stale BTB entry: fetched down the wrong path.
                    ++stats_.target_mispredicts;
                    res.mispredict = true;
                }
            } else {
                // Direction right but no target yet: short refetch.
                res.btb_cold = true;
                ++stats_.btb_cold_misses;
            }
        }
        if (op.taken)
            updateBtb(op.pc, op.target);
        break;
      }
      case OpClass::Call: {
        // Calls are unconditionally taken; target through the BTB.
        res.pred_taken = true;
        res.dir_correct = true;
        Addr target = 0;
        if (lookupBtb(op.pc, target)) {
            res.target_known = target == op.target;
            if (!res.target_known) {
                ++stats_.target_mispredicts;
                res.mispredict = true;
            }
        } else {
            res.btb_cold = true;
            ++stats_.btb_cold_misses;
        }
        updateBtb(op.pc, op.target);
        // Push the return address (the instruction after the call).
        ras_[ras_top_ % config_.ras_entries] = op.pc + 4;
        ++ras_top_;
        ++stats_.ras_pushes;
        break;
      }
      case OpClass::Return: {
        res.pred_taken = true;
        res.dir_correct = true;
        ++stats_.ras_pops;
        if (ras_top_ > 0) {
            --ras_top_;
            const Addr predicted =
                ras_[ras_top_ % config_.ras_entries];
            // The generator's return targets are block addresses,
            // not literal call_pc+4; treat a non-empty pop as target
            // known only when it matches.
            res.target_known = predicted == op.target;
        } else {
            res.target_known = false;
        }
        if (!res.target_known) {
            ++stats_.target_mispredicts;
            res.mispredict = true;
        }
        break;
      }
      default:
        panic("predict() on non-control op class %d",
              static_cast<int>(op.cls));
    }
    return res;
}

} // namespace lsim::cpu
