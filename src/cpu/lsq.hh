/**
 * @file
 * Load and store queues. The LSQ tracks in-flight memory operations
 * in program order and enforces a conservative memory dependence
 * discipline: a load may issue only once every older store has
 * computed its address; a load whose address matches an older
 * in-flight store's word is satisfied by forwarding (no cache
 * access). Stores update the data cache at commit.
 */

#ifndef LSIM_CPU_LSQ_HH
#define LSIM_CPU_LSQ_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace lsim::cpu
{

/** One in-flight memory operation. */
struct LsqEntry
{
    std::uint64_t seq = 0;   ///< owning instruction's sequence number
    Addr addr = 0;
    bool is_store = false;
    bool addr_ready = false; ///< address generation completed
    bool valid = false;
};

/** Combined load/store queue with separate capacity accounting. */
class LoadStoreQueue
{
  public:
    LoadStoreQueue(unsigned load_entries, unsigned store_entries);

    /** @return true when a load (store) can be inserted. */
    bool canInsertLoad() const { return num_loads_ < load_cap_; }
    bool canInsertStore() const { return num_stores_ < store_cap_; }

    /** Insert a memory op in program order. */
    void insert(std::uint64_t seq, Addr addr, bool is_store);

    /** Mark address generation done for the entry owned by @p seq. */
    void setAddrReady(std::uint64_t seq);

    /**
     * @return true when every store older than @p seq has its
     * address (conservative load issue condition).
     */
    bool olderStoresReady(std::uint64_t seq) const;

    /**
     * @return true when an older in-flight store to the same word
     * (8-byte granule) as @p addr exists with a known address —
     * the load forwards and skips the cache.
     */
    bool forwardsFromStore(std::uint64_t seq, Addr addr) const;

    /** Remove the entry of @p seq (commit or squash). */
    void remove(std::uint64_t seq);

    std::size_t numLoads() const { return num_loads_; }
    std::size_t numStores() const { return num_stores_; }

  private:
    unsigned load_cap_;
    unsigned store_cap_;
    std::vector<LsqEntry> entries_; ///< program order, compacted
    std::size_t num_loads_ = 0;
    std::size_t num_stores_ = 0;
};

} // namespace lsim::cpu

#endif // LSIM_CPU_LSQ_HH
