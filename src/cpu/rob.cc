#include "cpu/rob.hh"

#include <stdexcept>

#include "common/logging.hh"

namespace lsim::cpu
{

ReorderBuffer::ReorderBuffer(unsigned capacity)
    : capacity_(capacity)
{
    // Configuration error, not a model invariant: throw so the
    // CLI/daemon boundary can report it and keep serving.
    if (capacity_ == 0)
        throw std::invalid_argument("ReorderBuffer: zero capacity");
    entries_.resize(capacity_);
}

RobEntry &
ReorderBuffer::allocate()
{
    if (full())
        panic("ReorderBuffer::allocate when full");
    const std::size_t slot = (head_ + size_) % capacity_;
    ++size_;
    RobEntry &entry = entries_[slot];
    entry = RobEntry{};
    entry.seq = next_seq_++;
    return entry;
}

RobEntry &
ReorderBuffer::head()
{
    if (empty())
        panic("ReorderBuffer::head when empty");
    return entries_[head_];
}

const RobEntry &
ReorderBuffer::head() const
{
    if (empty())
        panic("ReorderBuffer::head when empty");
    return entries_[head_];
}

void
ReorderBuffer::popHead()
{
    if (empty())
        panic("ReorderBuffer::popHead when empty");
    head_ = (head_ + 1) % capacity_;
    --size_;
    ++head_seq_;
}

std::size_t
ReorderBuffer::slotOf(std::uint64_t seq) const
{
    return (head_ + (seq - head_seq_)) % capacity_;
}

RobEntry &
ReorderBuffer::bySeq(std::uint64_t seq)
{
    if (!contains(seq))
        panic("ReorderBuffer::bySeq: %llu not in flight",
              static_cast<unsigned long long>(seq));
    return entries_[slotOf(seq)];
}

bool
ReorderBuffer::contains(std::uint64_t seq) const
{
    return seq >= head_seq_ && seq < head_seq_ + size_;
}

} // namespace lsim::cpu
