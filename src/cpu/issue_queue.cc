#include "cpu/issue_queue.hh"

#include <stdexcept>

namespace lsim::cpu
{

IssueQueue::IssueQueue(unsigned capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        throw std::invalid_argument("IssueQueue: zero capacity");
    seqs_.reserve(capacity_);
}

void
IssueQueue::insert(std::uint64_t seq)
{
    if (full())
        panic("IssueQueue::insert when full");
    if (!seqs_.empty() && seqs_.back() >= seq)
        panic("IssueQueue::insert out of program order");
    seqs_.push_back(seq);
}

} // namespace lsim::cpu
