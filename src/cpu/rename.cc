#include "cpu/rename.hh"

#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace lsim::cpu
{

RenameMap::RenameMap(unsigned num_logical, unsigned num_physical)
    : num_logical_(num_logical), num_physical_(num_physical)
{
    if (num_physical_ < num_logical_)
        throw std::invalid_argument(
            "RenameMap: " + std::to_string(num_physical_) +
            " physical < " + std::to_string(num_logical_) +
            " logical registers");
    map_.resize(num_logical_);
    ready_.assign(num_physical_, false);
    // Architectural state occupies physical registers [0, logical);
    // these hold committed values and are ready.
    for (unsigned i = 0; i < num_logical_; ++i) {
        map_[i] = static_cast<int>(i);
        ready_[i] = true;
    }
    free_list_.reserve(num_physical_ - num_logical_);
    for (unsigned i = num_physical_; i > num_logical_; --i)
        free_list_.push_back(static_cast<int>(i - 1));
}

int
RenameMap::lookup(int logical) const
{
    if (logical < 0 || logical >= static_cast<int>(num_logical_))
        panic("RenameMap::lookup: bad logical register %d", logical);
    return map_[logical];
}

int
RenameMap::allocate(int logical, int &prev_phys)
{
    if (free_list_.empty())
        panic("RenameMap::allocate with empty free list");
    if (logical < 0 || logical >= static_cast<int>(num_logical_))
        panic("RenameMap::allocate: bad logical register %d", logical);
    const int phys = free_list_.back();
    free_list_.pop_back();
    prev_phys = map_[logical];
    map_[logical] = phys;
    ready_[phys] = false;
    return phys;
}

void
RenameMap::release(int phys)
{
    if (phys < 0 || phys >= static_cast<int>(num_physical_))
        panic("RenameMap::release: bad physical register %d", phys);
    if (free_list_.size() >= num_physical_ - num_logical_)
        panic("RenameMap::release: free list overflow");
    free_list_.push_back(phys);
}

bool
RenameMap::isReady(int phys) const
{
    if (phys == kNoPhysReg)
        return true;
    return ready_[phys];
}

void
RenameMap::setReady(int phys)
{
    if (phys < 0 || phys >= static_cast<int>(num_physical_))
        panic("RenameMap::setReady: bad physical register %d", phys);
    ready_[phys] = true;
}

} // namespace lsim::cpu
