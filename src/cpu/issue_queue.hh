/**
 * @file
 * Issue queue: a bounded window of dispatched instructions waiting
 * for operands and a functional unit, selected oldest-first.
 * Instructions are referenced by ROB sequence number.
 */

#ifndef LSIM_CPU_ISSUE_QUEUE_HH
#define LSIM_CPU_ISSUE_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace lsim::cpu
{

/**
 * Capacity-bounded, age-ordered collection of waiting instruction
 * sequence numbers. Insertions arrive in program order, so the
 * underlying vector stays age-sorted; removal compacts it.
 */
class IssueQueue
{
  public:
    explicit IssueQueue(unsigned capacity);

    bool full() const { return seqs_.size() == capacity_; }
    bool empty() const { return seqs_.empty(); }
    std::size_t size() const { return seqs_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Insert @p seq (program order); panics when full. */
    void insert(std::uint64_t seq);

    /**
     * Visit waiting instructions oldest-first; @p fn returns true to
     * issue (remove) the entry, false to leave it. Iteration
     * continues over the remaining entries either way; @p fn may
     * stop the scan early by calling the provided stop token.
     *
     * @tparam Fn callable (std::uint64_t seq) -> bool.
     */
    template <typename Fn>
    void
    selectIssue(Fn &&fn)
    {
        std::size_t out = 0;
        bool stopped = false;
        for (std::size_t i = 0; i < seqs_.size(); ++i) {
            if (!stopped && fn(seqs_[i], stopped)) {
                continue; // issued: drop from the queue
            }
            seqs_[out++] = seqs_[i];
        }
        seqs_.resize(out);
    }

    /** Drop everything (used only by tests). */
    void clear() { seqs_.clear(); }

  private:
    unsigned capacity_;
    std::vector<std::uint64_t> seqs_;
};

} // namespace lsim::cpu

#endif // LSIM_CPU_ISSUE_QUEUE_HH
