#include "api/experiment.hh"

#include <sstream>
#include <stdexcept>

#include "circuit/fu_circuit.hh"
#include "common/csv.hh"
#include "common/json.hh"
#include "common/table.hh"
#include "harness/report.hh"
#include "replay/engine.hh"
#include "sleep/policy_registry.hh"

namespace lsim::api
{

energy::ModelParams
analysisPoint(double p, double alpha)
{
    energy::ModelParams mp;
    mp.p = p;
    mp.alpha = alpha;
    mp.k = 0.001;
    mp.s = 0.01;
    return mp;
}

energy::ModelParams
circuitPoint(double alpha, double duty)
{
    const circuit::FunctionalUnitCircuit fu{circuit::Technology{}};
    return energy::ModelParams::fromCircuit(fu, alpha, duty);
}

void
detail::writePolicyCsvHeader(CsvWriter &csv)
{
    csv.writeRow({"benchmark", "policy_key", "policy", "p", "alpha",
                  "k", "s", "energy", "relative_to_base",
                  "leakage_fraction"});
}

void
detail::writePolicyCsvRows(
    CsvWriter &csv, const std::string &benchmark,
    const std::vector<std::string> &policy_keys,
    const std::vector<sleep::PolicyResult> &policies,
    const energy::ModelParams &params)
{
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const auto &r = policies[i];
        csv.writeRow({benchmark,
                      i < policy_keys.size() ? policy_keys[i] : "",
                      r.name, compactNumber(params.p),
                      compactNumber(params.alpha),
                      compactNumber(params.k), compactNumber(params.s),
                      compactNumber(r.energy),
                      compactNumber(r.relative_to_base),
                      compactNumber(r.leakage_fraction)});
    }
}

const sleep::PolicyResult &
RunResult::policy(const std::string &name) const
{
    for (std::size_t i = 0; i < policies.size(); ++i) {
        if (policies[i].name == name ||
            (i < policy_keys.size() && policy_keys[i] == name))
            return policies[i];
    }
    throw std::invalid_argument("no policy '" + name +
                                "' in this result");
}

void
RunResult::writeJson(std::ostream &os) const
{
    // The legacy report writers are the single source of truth for
    // the JSON schema; composing them keeps the facade output
    // bit-identical to the deprecated writeExperimentJson() path.
    harness::writeExperimentJson(os, sim, technology, policies);
}

void
RunResult::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    detail::writePolicyCsvHeader(csv);
    detail::writePolicyCsvRows(csv, sim.name, policy_keys, policies,
                               technology);
}

std::string
RunResult::toJson() const
{
    std::ostringstream ss;
    writeJson(ss);
    return ss.str();
}

std::string
RunResult::toCsv() const
{
    std::ostringstream ss;
    writeCsv(ss);
    return ss.str();
}

std::vector<sleep::PolicyResult>
evaluateProfile(const harness::IdleProfile &idle,
                const energy::ModelParams &params,
                const std::vector<std::string> &policy_keys)
{
    const auto &keys = policy_keys.empty()
        ? sleep::PolicyRegistry::paperSpecs()
        : policy_keys;
    return harness::evaluatePolicies(
        idle, params,
        sleep::PolicyRegistry::instance().makeSet(keys, params));
}

RunResult
Session::evaluate(const energy::ModelParams &params) const
{
    RunResult result;
    result.sim = sim_;
    result.technology = params;
    result.policy_keys = policy_keys_;
    result.policies = policiesAt(params);
    result.fu_selection = fu_selection_;
    return result;
}

RunResult
Session::evaluate(double p, double alpha) const
{
    return evaluate(analysisPoint(p, alpha));
}

std::vector<sleep::PolicyResult>
Session::policiesAt(const energy::ModelParams &params) const
{
    // Single-point replay still goes through the engine so every
    // facade evaluation exercises the same code path; with one point
    // and one chunk it performs the scalar call sequence exactly.
    return replay::replayProfile(sim_.idle, {params},
                                 policy_keys_)
        .front();
}

std::vector<std::vector<sleep::PolicyResult>>
Session::policiesAt(const std::vector<energy::ModelParams> &points)
    const
{
    return replay::replayProfile(sim_.idle, points, policy_keys_);
}

ExperimentBuilder &
ExperimentBuilder::workload(const std::string &name)
{
    workload_ = name;
    profile_.reset();
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::profile(trace::WorkloadProfile custom)
{
    profile_ = std::move(custom);
    workload_.clear();
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::insts(std::uint64_t n)
{
    insts_ = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::fus(unsigned n)
{
    fus_ = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::config(const cpu::CoreConfig &base)
{
    base_ = base;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::technology(double p, double alpha)
{
    technology_ = analysisPoint(p, alpha);
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::technology(const energy::ModelParams &params)
{
    technology_ = params;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::policies(std::vector<std::string> keys)
{
    policy_keys_ = std::move(keys);
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::paperPolicies()
{
    policy_keys_.clear();
    return *this;
}

const trace::WorkloadProfile &
ExperimentBuilder::resolveProfile() const
{
    if (profile_)
        return *profile_;
    if (workload_.empty())
        throw std::invalid_argument(
            "ExperimentBuilder: set a workload() or profile() first");
    for (const auto &p : trace::table3Profiles())
        if (p.name == workload_)
            return p;
    std::string known;
    for (const auto &p : trace::table3Profiles())
        known += (known.empty() ? "" : ", ") + p.name;
    throw std::invalid_argument("unknown workload '" + workload_ +
                                "' (known: " + known + ")");
}

Session
ExperimentBuilder::session() const
{
    const auto &prof = resolveProfile();

    // Validate policy specs before paying for the simulation.
    const auto &keys = policy_keys_.empty()
        ? sleep::PolicyRegistry::paperSpecs()
        : policy_keys_;
    sleep::PolicyRegistry::instance().makeSet(keys, technology_);

    Session s;
    s.policy_keys_ = keys;

    unsigned fu_count = fus_;
    if (fu_count == auto_select) {
        s.fu_selection_ = harness::selectFuCount(prof, insts_, base_,
                                                 0.95, seed_);
        fu_count = s.fu_selection_->chosen;
    } else if (fu_count == paper_fus) {
        fu_count = prof.paper_fus;
    }

    s.sim_ = harness::simulateWorkload(prof, fu_count, insts_, base_,
                                       seed_);
    return s;
}

RunResult
ExperimentBuilder::run() const
{
    return session().evaluate(technology_);
}

} // namespace lsim::api
