/**
 * @file
 * Batched sweep execution with cross-request simulation dedup.
 *
 * Because every sweep's phase 2 is a pure function of its phase-1
 * IdleProfiles, any two SweepConfigs that agree on a workload's
 * (profile, fus, insts, seed, core config) can share one timing
 * simulation. BatchRunner exploits that: it collects the distinct
 * phase-1 tasks across all requests (consulting the profile store
 * first when a cache directory is set), fans the union across one
 * thread pool, then fans every request's replay grid across the same
 * pool. Each returned SweepResult is byte-identical — CSV and JSON —
 * to running its SweepConfig alone.
 *
 * @code
 *   api::BatchConfig batch;
 *   batch.sweeps = {cfg_a, cfg_b};       // may share workloads
 *   batch.cache_dir = "/var/cache/lsim"; // optional persistence
 *   auto result = api::BatchRunner(batch).run();
 *   result.sweeps[0].writeCsv(...);
 *   // result.stats.unique_sims simulations served
 *   // result.stats.requested_sims requests
 * @endcode
 */

#ifndef LSIM_API_BATCH_HH
#define LSIM_API_BATCH_HH

#include <cstddef>
#include <string>
#include <vector>

#include "api/sweep.hh"

namespace lsim::store
{
class ProfileStore;
}

namespace lsim::api
{

namespace detail
{
class ThreadPool;
}

/** A set of sweep requests executed as one unit. */
struct BatchConfig
{
    std::vector<SweepConfig> sweeps;

    /**
     * Profile store directory shared by the whole batch; when
     * non-empty it overrides every sweep's own cache_dir. Empty
     * keeps each sweep's setting (typically none).
     */
    std::string cache_dir;

    /**
     * Worker threads for both phases; 0 = hardware concurrency.
     * Per-sweep `threads` values are ignored — the batch owns the
     * pool.
     */
    unsigned threads = 0;
};

/** How the batch's phase-1 work was served. */
struct BatchStats
{
    /** Phase-1 simulations the sweeps would run individually. */
    std::size_t requested_sims = 0;

    /** Distinct simulations after dedup. */
    std::size_t unique_sims = 0;

    /** Distinct simulations loaded from the profile store. */
    std::size_t cache_hits = 0;

    /** Distinct simulations actually executed. */
    std::size_t sims_run = 0;
};

/** Outcome of a batch: one SweepResult per request, in order. */
struct BatchResult
{
    std::vector<SweepResult> sweeps;
    BatchStats stats;
};

/**
 * Long-lived resources a caller may inject into a batch run. A
 * one-shot `lsim batch` leaves both null and the runner builds its
 * own; the serve daemon passes its persistent pool (no per-request
 * thread spawn) and its warm ProfileStore (index loaded once,
 * LRU touch-times accumulated across requests).
 */
struct BatchEnv
{
    /** Used for every task whose cache dir equals store->dir()
     * (other dirs still get per-run instances). */
    store::ProfileStore *store = nullptr;

    /** Runs both phases when set; config threads are ignored. */
    detail::ThreadPool *pool = nullptr;

    /**
     * Cooperative cancel hook (per-request deadline, daemon
     * shutdown). Polled between phases and at every simulation /
     * replay task boundary: once it returns true, pending tasks
     * become no-ops, in-flight tasks finish, and run() throws
     * CancelledError instead of returning a partial result. Must be
     * callable from any pool thread.
     */
    std::function<bool()> cancel;
};

/**
 * Request-tier identity of a batch: a 16-hex-digit FNV-1a over
 * everything that determines the batch's *results* — per sweep, the
 * workload names, policy specs, technology grid, inline profiles
 * (full parameter sets, hashed like SimKey), import paths, insts,
 * seed, FU count, base core config, and the phase-2 replay knobs —
 * in sweep order. Execution parameters (cache_dir, threads) are
 * excluded: they change how a batch runs, never what it produces.
 * Two requests agreeing on this fingerprint are guaranteed
 * byte-identical CSV/JSON output, so the serve tier collapses them
 * to one execution (phase-1 dedup lifted to the request tier).
 */
std::string batchFingerprint(const BatchConfig &config);

/** Executes BatchConfigs; stateless apart from the config. */
class BatchRunner
{
  public:
    /**
     * Validates every sweep eagerly (same guarantees as
     * SweepRunner's constructor); throws std::invalid_argument on
     * the first bad request.
     */
    explicit BatchRunner(BatchConfig config);

    /** Run the batch; deterministic for any thread count. */
    BatchResult run() const;

    /** run() with injected resources; same results either way. */
    BatchResult run(const BatchEnv &env) const;

  private:
    BatchConfig config_;
    std::vector<SweepRunner> runners_;
};

} // namespace lsim::api

#endif // LSIM_API_BATCH_HH
