/**
 * @file
 * Parallel workload x technology sweep runner.
 *
 * The paper's Figure 9 observation — every policy's accounting is a
 * pure function of the idle-interval multiset — makes technology
 * sweeps embarrassingly parallel in two phases:
 *
 *  1. simulate each workload ONCE (the expensive timing model),
 *     capturing its IdleProfile sufficient statistic;
 *  2. replay each profile at every technology point (cheap,
 *     O(distinct interval lengths) per policy).
 *
 * SweepRunner fans both phases across a std::thread pool. Results
 * are written into index-addressed slots, so the outcome is
 * bit-identical regardless of thread count or scheduling — a
 * 4-thread sweep matches the single-threaded reference exactly.
 */

#ifndef LSIM_API_SWEEP_HH
#define LSIM_API_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "harness/benchmarks.hh"
#include "trace/profile.hh"

namespace lsim::api
{

/**
 * Thrown by the batch/replay executors when a caller-supplied
 * cancel hook reports true (request deadline exceeded, daemon
 * stopping). Cooperative: polled between phases and at task
 * boundaries, so in-flight tasks finish and thread pools drain
 * cleanly — the work is abandoned, never the workers.
 */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Declarative description of a sweep. */
struct SweepConfig
{
    /**
     * Workload names; may reference Table 3 benchmarks or entries of
     * `profiles`. Empty = the custom `profiles` when any are given,
     * else the full Table 3 suite.
     */
    std::vector<std::string> workloads;

    /** Technology points to evaluate (see pSweep() helper). */
    std::vector<energy::ModelParams> technologies;

    /** PolicyRegistry specs; empty = the paper's four policies. */
    std::vector<std::string> policies;

    /**
     * User-defined workload profiles (e.g. from
     * trace::loadWorkloadProfile), selectable by name alongside the
     * Table 3 suite. Names must be unique and must not shadow a
     * Table 3 benchmark.
     */
    std::vector<trace::WorkloadProfile> profiles;

    /**
     * Paths of externally produced simulations to include as
     * workloads: .lsimprof exports or JSON idle profiles (see
     * store::importAnySim). These skip phase 1 entirely — their
     * stored IdleProfile is replayed at every technology point just
     * like a fresh simulation's.
     */
    std::vector<std::string> imports;

    /** Committed instructions per workload simulation. */
    std::uint64_t insts = 500'000;

    /** Trace generator seed. */
    std::uint64_t seed = 1;

    /**
     * Integer FU count for every workload: api::auto_select derives
     * each workload's count with the Table 3 methodology; the
     * default sentinel uses the profile's paper_fus.
     */
    unsigned fus = ~0u;

    /** Base machine configuration. */
    cpu::CoreConfig base;

    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /**
     * Directory of the persistent profile store (store::ProfileStore)
     * consulted before running any phase-1 timing simulation and
     * updated afterwards; empty disables caching. A warm cache makes
     * re-runs skip phase 1 entirely while producing byte-identical
     * CSV/JSON output.
     */
    std::string cache_dir;

    /**
     * Run phase 2 on the legacy scalar path (one pass over the
     * interval multiset per cell) instead of the multi-point replay
     * engine. The engine is bit-identical below its auto-shard
     * threshold, so this exists for equivalence testing and as an
     * escape hatch, not as a tuning knob.
     */
    bool scalar_replay = false;

    /**
     * Phase-2 shard size: maximum distinct idle-interval lengths per
     * replay chunk (see replay::ReplayOptions). 0 = auto — a single
     * chunk for typical workloads (bit-identical to the scalar
     * path), sharded only for very long simulations whose interval
     * sets pass the auto threshold.
     */
    std::size_t chunk_intervals = 0;
};

/**
 * Evenly spaced leakage-factor grid: @p steps points from @p lo to
 * @p hi inclusive (one point when steps == 1), at the paper's
 * analysis defaults k = 0.001, s = 0.01.
 */
std::vector<energy::ModelParams>
pSweep(double lo, double hi, unsigned steps, double alpha = 0.5);

/** Policy results of one (workload, technology) grid cell. */
struct SweepCell
{
    std::size_t workload = 0;   ///< index into SweepResult::workloads
    std::size_t technology = 0; ///< index into technologies
    std::vector<sleep::PolicyResult> policies;
};

/** Where each phase-1 simulation of a sweep came from. */
struct SweepStats
{
    std::size_t sims_run = 0;    ///< executed by the timing model
    std::size_t cache_hits = 0;  ///< loaded from the profile store
    std::size_t imported = 0;    ///< supplied via SweepConfig::imports
};

/** Complete sweep outcome. */
struct SweepResult
{
    std::vector<std::string> workloads;
    std::vector<energy::ModelParams> technologies;
    std::vector<std::string> policy_keys;

    /** Phase-1 provenance (not serialized; output stays identical
     * whether sims were fresh, cached, or imported). */
    SweepStats stats;

    /** One timing simulation per workload (phase 1). */
    std::vector<harness::WorkloadSim> sims;

    /** Row-major cells: index = workload * technologies.size() +
     * technology. */
    std::vector<SweepCell> cells;

    const SweepCell &cell(std::size_t workload,
                          std::size_t technology) const;

    /**
     * Suite averages at technology point @p technology: each
     * policy's energy relative to NoOverhead and its leakage share
     * (the Figure 9 axes). Requires "no-overhead" among the
     * policies; fatal() otherwise.
     */
    harness::SuitePolicyAverages
    averagesAt(std::size_t technology) const;

    /**
     * CSV rows (benchmark,policy_key,policy,p,alpha,k,s,energy,
     * relative_to_base,leakage_fraction), one per cell x policy,
     * with a header row.
     */
    void writeCsv(std::ostream &os) const;

    /** One JSON object: config echo + per-cell policy results. */
    void writeJson(std::ostream &os) const;
};

namespace detail
{

class ThreadPool;

/**
 * One phase-1 timing simulation, fully specified: what BatchRunner
 * dedupes on and what the profile store keys by. `fus` is the
 * *requested* count, sentinels (auto_select, paper-FUs) included.
 */
struct SimTask
{
    trace::WorkloadProfile profile;
    unsigned fus = ~0u;
    std::uint64_t insts = 0;
    std::uint64_t seed = 0;
    cpu::CoreConfig base;

    /** The profile-store key (see store::SimKey). */
    std::string fingerprint() const;

    /** Execute the timing simulation (no cache interaction). */
    harness::WorkloadSim run() const;
};

/** Compute cell @p i of @p result from its sims (the scalar phase-2
 * unit, kept for SweepConfig::scalar_replay). */
void fillCell(SweepResult &result, std::size_t i);

/**
 * Shared phase-2 executor: fills the cells of every registered
 * SweepResult by fanning replay work across one thread pool. The
 * unit of parallelism is finer than a cell — one task per
 * (workload, interval chunk) on the multi-point engine — so a
 * single very long simulation still spreads across workers.
 * Scalar-flagged sweeps contribute per-cell fillCell tasks instead.
 *
 * Usage: add() every (result, config) pair — cells resized and sims
 * filled — then run() once. Results are deterministic for any
 * thread count.
 */
class ReplayDriver
{
  public:
    ReplayDriver();
    ~ReplayDriver(); ///< out of line: EngineJob is incomplete here

    /** Register @p result for phase 2 under @p config's replay
     * settings. The result's sims must already be populated. */
    void add(SweepResult &result, const SweepConfig &config);

    /** Execute all registered phase-2 work; call once. A non-null
     * @p pool runs the fan-out on that persistent pool instead of
     * spawning @p threads workers. A non-null @p cancel is polled
     * at every task boundary: pending tasks become no-ops once it
     * returns true and run() throws CancelledError after the
     * in-flight tasks drain — cells may then be partially filled,
     * so the caller must discard the results. */
    void run(unsigned threads, ThreadPool *pool = nullptr,
             const std::function<bool()> *cancel = nullptr);

  private:
    struct EngineJob;

    std::vector<EngineJob> jobs_;
    /** Scalar-path cells: (result, cell index). */
    std::vector<std::pair<SweepResult *, std::size_t>> scalar_cells_;
};

} // namespace detail

/** Executes SweepConfigs; stateless apart from the config. */
class SweepRunner
{
  public:
    /**
     * Validates @p config eagerly: unknown workloads, bad custom
     * profiles, unreadable imports, or bad policy specs throw
     * std::invalid_argument here, not from a worker.
     */
    explicit SweepRunner(SweepConfig config);

    /** Run both phases; deterministic for any thread count. */
    SweepResult run() const;

    /** The normalized config: defaults filled, names validated. */
    const SweepConfig &config() const { return config_; }

    /**
     * Phase-1 task of workload @p w, or std::nullopt when that
     * workload is import-backed (BatchRunner's dedup interface).
     */
    std::optional<detail::SimTask> simTask(std::size_t w) const;

    /** Pre-loaded sim of an import-backed workload, else nullptr. */
    const harness::WorkloadSim *importedSim(std::size_t w) const;

  private:
    const trace::WorkloadProfile &
    resolveWorkload(const std::string &name) const;

    SweepConfig config_;
    /** Workload name -> sim loaded from SweepConfig::imports. */
    std::map<std::string, harness::WorkloadSim> imported_;
};

} // namespace lsim::api

#endif // LSIM_API_SWEEP_HH
