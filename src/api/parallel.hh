/**
 * @file
 * The facade's shared thread-pool primitives, used by SweepRunner and
 * BatchRunner for both simulation and replay fan-out.
 *
 * Two forms: parallelFor() spawns a fresh pool per call (fine for a
 * one-shot CLI sweep), and ThreadPool keeps its workers alive across
 * calls — the serve daemon runs every request through one persistent
 * pool so warm requests pay no thread-spawn latency.
 */

#ifndef LSIM_API_PARALLEL_HH
#define LSIM_API_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"

namespace lsim::api::detail
{

/**
 * Run tasks 0..count-1 on a pool of @p threads workers (0 = hardware
 * concurrency). Each worker pulls the next index from a shared
 * atomic counter; tasks write only their own index-addressed output
 * slot, so scheduling cannot affect results.
 */
template <typename Fn>
void
parallelFor(std::size_t count, unsigned threads, Fn &&fn)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, count));
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (auto &worker : pool)
        worker.join();
}

/**
 * A persistent worker pool with the same execution contract as
 * parallelFor(): run(count, fn) executes fn(0..count-1), each index
 * exactly once, with the calling thread participating, and returns
 * when every index has completed. Workers sleep between runs, so a
 * long-lived owner (the serve daemon) pays thread creation once, not
 * per request.
 *
 * Not reentrant: a task must not call run() on its own pool.
 *
 * Synchronization contract (ThreadSanitizer-clean by design; the CI
 * TSan lane runs a many-submitter stress over exactly this code):
 *
 *  - All shared pool state (job_, generation_, stop_) is GUARDED_BY
 *    mu_ and only ever touched under it; clang builds enforce this
 *    at compile time (-Werror=thread-safety).
 *  - A submission publishes Job::fn/count *before* the job pointer
 *    is installed under mu_, so a worker that acquires mu_ and reads
 *    job_ has a happens-before edge to the job's payload.
 *  - Index claiming and completion counting use one atomic each
 *    (Job::next, Job::done, both seq_cst): every index is claimed by
 *    exactly one fetch_add winner, and the submitter's completion
 *    wait observes done == count only after every fn(i) call — each
 *    fn(i) is sequenced before its done increment, which the waiting
 *    reader synchronizes with.
 *  - Stale wakes are benign, not raced: the job is heap-shared, so a
 *    worker that wakes after its generation's run() already returned
 *    still holds *its* job, finds every index claimed, and goes back
 *    to sleep. Concurrent run() calls from several submitters are
 *    likewise safe — workers help the latest generation, and any
 *    overwritten job is completed by its own (participating)
 *    submitter.
 *  - Completion is signalled with Job::done_cv while holding
 *    Job::mu, and awaited under the same mutex, so the notify cannot
 *    slip between the waiter's predicate check and its sleep.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads =
                std::max(1u, std::thread::hardware_concurrency());
        workers_.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            MutexLock lock(mu_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Run fn(0..count-1) across the workers; blocks until done. */
    void run(std::size_t count, std::function<void(std::size_t)> fn)
    {
        if (count == 0)
            return;
        // The job is heap-shared so a worker that wakes late — after
        // this run() already finished and a new one started — still
        // holds *its* generation's job, where every index is claimed
        // and the stale wake degrades to a no-op.
        auto job = std::make_shared<Job>();
        job->fn = std::move(fn);
        job->count = count;
        job->submit_us = obs::monotonicMicros();
        obs::counter("pool.runs").add();
        {
            MutexLock lock(mu_);
            job_ = job;
            ++generation_;
        }
        wake_.notify_all();
        work(*job);
        MutexLock lock(job->mu);
        while (job->done.load() != job->count)
            job->done_cv.wait(lock);
    }

  private:
    struct Job
    {
        std::function<void(std::size_t)> fn;
        std::size_t count = 0;
        std::uint64_t submit_us = 0; ///< obs: queue-wait anchor
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        Mutex mu;
        CondVar done_cv;
    };

    void work(Job &job)
    {
        // Registry lookups once per process (function-local statics);
        // the per-index updates below are single relaxed atomics.
        static obs::Counter &tasks = obs::counter("pool.tasks");
        static obs::Histogram &wait =
            obs::histogram("pool.task_wait_ms");
        for (std::size_t i = job.next.fetch_add(1); i < job.count;
             i = job.next.fetch_add(1)) {
            if (i == 0) {
                // First claim: how long the job sat between submit
                // and the start of execution (dispatch latency).
                wait.observe(static_cast<double>(
                                 obs::monotonicMicros() -
                                 job.submit_us) /
                             1000.0);
            }
            job.fn(i);
            tasks.add();
            if (job.done.fetch_add(1) + 1 == job.count) {
                // Lock pairs with the waiter's predicate check so
                // the notify cannot slip between check and wait.
                MutexLock lock(job.mu);
                job.done_cv.notify_all();
            }
        }
    }

    void workerLoop()
    {
        static obs::Gauge &busy = obs::gauge("pool.workers_busy");
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                MutexLock lock(mu_);
                while (!stop_ && generation_ == seen)
                    wake_.wait(lock);
                if (stop_)
                    return;
                seen = generation_;
                job = job_;
            }
            busy.add();
            work(*job);
            busy.sub();
        }
    }

    std::vector<std::thread> workers_;
    Mutex mu_;
    CondVar wake_;
    std::shared_ptr<Job> job_ GUARDED_BY(mu_);
    std::uint64_t generation_ GUARDED_BY(mu_) = 0;
    bool stop_ GUARDED_BY(mu_) = false;
};

/**
 * Dispatch helper for code that optionally receives a persistent
 * pool: run on @p pool when given, else parallelFor(@p threads).
 */
template <typename Fn>
void
runOn(ThreadPool *pool, std::size_t count, unsigned threads, Fn &&fn)
{
    if (pool)
        pool->run(count, std::function<void(std::size_t)>(
                             std::forward<Fn>(fn)));
    else
        parallelFor(count, threads, std::forward<Fn>(fn));
}

} // namespace lsim::api::detail

#endif // LSIM_API_PARALLEL_HH
