/**
 * @file
 * The facade's shared thread-pool primitive, used by SweepRunner and
 * BatchRunner for both simulation and replay fan-out.
 */

#ifndef LSIM_API_PARALLEL_HH
#define LSIM_API_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace lsim::api::detail
{

/**
 * Run tasks 0..count-1 on a pool of @p threads workers (0 = hardware
 * concurrency). Each worker pulls the next index from a shared
 * atomic counter; tasks write only their own index-addressed output
 * slot, so scheduling cannot affect results.
 */
template <typename Fn>
void
parallelFor(std::size_t count, unsigned threads, Fn &&fn)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, count));
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (auto &worker : pool)
        worker.join();
}

} // namespace lsim::api::detail

#endif // LSIM_API_PARALLEL_HH
