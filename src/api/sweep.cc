#include "api/sweep.hh"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "common/csv.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "harness/report.hh"
#include "sleep/policy_registry.hh"

namespace lsim::api
{

namespace
{

/**
 * Run tasks 0..count-1 on a pool of @p threads workers. Each worker
 * pulls the next index from a shared atomic counter; tasks write
 * only their own index-addressed output slot, so scheduling cannot
 * affect results.
 */
template <typename Fn>
void
parallelFor(std::size_t count, unsigned threads, Fn &&fn)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, count));
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (auto &worker : pool)
        worker.join();
}

} // namespace

std::vector<energy::ModelParams>
pSweep(double lo, double hi, unsigned steps, double alpha)
{
    if (steps == 0)
        throw std::invalid_argument("pSweep: steps must be >= 1");
    std::vector<energy::ModelParams> points;
    points.reserve(steps);
    for (unsigned i = 0; i < steps; ++i) {
        const double p = steps == 1
            ? lo
            : lo + (hi - lo) * static_cast<double>(i) /
                  static_cast<double>(steps - 1);
        points.push_back(analysisPoint(p, alpha));
    }
    return points;
}

const SweepCell &
SweepResult::cell(std::size_t workload, std::size_t technology) const
{
    return cells.at(workload * technologies.size() + technology);
}

harness::SuitePolicyAverages
SweepResult::averagesAt(std::size_t technology) const
{
    harness::SuitePolicyAverages avg;
    bool first = true;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &results = cell(w, technology).policies;
        double no_overhead = 0.0;
        for (const auto &r : results)
            if (r.name == "NoOverhead")
                no_overhead = r.energy;
        if (no_overhead <= 0.0)
            fatal("SweepResult::averagesAt: needs a positive "
                  "NoOverhead energy for '%s' (include the "
                  "'no-overhead' policy)",
                  workloads[w].c_str());
        if (first) {
            for (const auto &r : results) {
                avg.names.push_back(r.name);
                avg.rel_to_nooverhead.push_back(0.0);
                avg.leakage_fraction.push_back(0.0);
            }
            first = false;
        }
        for (std::size_t i = 0; i < results.size(); ++i) {
            avg.rel_to_nooverhead[i] +=
                results[i].energy / no_overhead;
            avg.leakage_fraction[i] += results[i].leakage_fraction;
        }
    }
    const auto n = static_cast<double>(workloads.size());
    for (std::size_t i = 0; i < avg.names.size(); ++i) {
        avg.rel_to_nooverhead[i] /= n;
        avg.leakage_fraction[i] /= n;
    }
    return avg;
}

void
SweepResult::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    detail::writePolicyCsvHeader(csv);
    for (const auto &c : cells)
        detail::writePolicyCsvRows(csv, workloads[c.workload],
                                   policy_keys, c.policies,
                                   technologies[c.technology]);
}

void
SweepResult::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.beginArray("policies");
    for (const auto &key : policy_keys)
        w.value(key);
    w.endArray();
    w.beginArray("simulations");
    for (const auto &sim : sims) {
        w.beginObject();
        writeSimJson(w, sim);
        w.endObject();
    }
    w.endArray();
    w.beginArray("cells");
    for (const auto &c : cells) {
        const auto &mp = technologies[c.technology];
        w.beginObject();
        w.field("benchmark", workloads[c.workload]);
        w.beginObject("technology");
        w.field("p", mp.p);
        w.field("k", mp.k);
        w.field("s", mp.s);
        w.field("alpha", mp.alpha);
        w.field("duty", mp.duty);
        w.endObject();
        harness::writePoliciesJson(w, c.policies);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

SweepRunner::SweepRunner(SweepConfig config)
    : config_(std::move(config))
{
    if (config_.workloads.empty())
        for (const auto &p : trace::table3Profiles())
            config_.workloads.push_back(p.name);
    if (config_.policies.empty())
        config_.policies = sleep::PolicyRegistry::paperSpecs();
    if (config_.technologies.empty())
        throw std::invalid_argument(
            "SweepRunner: no technology points (see pSweep())");

    // Fail fast on unknown names, before any worker starts.
    for (const auto &name : config_.workloads) {
        bool known = false;
        for (const auto &p : trace::table3Profiles())
            known = known || p.name == name;
        if (!known)
            throw std::invalid_argument("unknown workload '" + name +
                                        "'");
    }
    sleep::PolicyRegistry::instance().makeSet(
        config_.policies, config_.technologies.front());
}

SweepResult
SweepRunner::run() const
{
    SweepResult result;
    result.workloads = config_.workloads;
    result.technologies = config_.technologies;
    result.policy_keys = config_.policies;
    result.sims.resize(result.workloads.size());

    // Phase 1: one timing simulation per workload, in parallel.
    parallelFor(result.workloads.size(), config_.threads,
                [&](std::size_t w) {
        auto builder = Experiment::builder()
                           .workload(result.workloads[w])
                           .insts(config_.insts)
                           .seed(config_.seed)
                           .config(config_.base);
        if (config_.fus != ~0u)
            builder.fus(config_.fus);
        result.sims[w] = builder.session().sim();
    });

    // Phase 2: replay every profile at every technology point.
    const std::size_t num_tech = result.technologies.size();
    result.cells.resize(result.workloads.size() * num_tech);
    parallelFor(result.cells.size(), config_.threads,
                [&](std::size_t i) {
        SweepCell &c = result.cells[i];
        c.workload = i / num_tech;
        c.technology = i % num_tech;
        c.policies = evaluateProfile(result.sims[c.workload].idle,
                                     result.technologies[c.technology],
                                     result.policy_keys);
    });
    return result;
}

} // namespace lsim::api
