#include "api/sweep.hh"

#include <atomic>
#include <stdexcept>

#include "api/parallel.hh"
#include "common/csv.hh"
#include "common/json.hh"
#include "harness/report.hh"
#include "obs/metrics.hh"
#include "replay/engine.hh"
#include "sleep/policy_registry.hh"
#include "store/profile_store.hh"

namespace lsim::api
{

std::vector<energy::ModelParams>
pSweep(double lo, double hi, unsigned steps, double alpha)
{
    if (steps == 0)
        throw std::invalid_argument("pSweep: steps must be >= 1");
    std::vector<energy::ModelParams> points;
    points.reserve(steps);
    for (unsigned i = 0; i < steps; ++i) {
        const double p = steps == 1
            ? lo
            : lo + (hi - lo) * static_cast<double>(i) /
                  static_cast<double>(steps - 1);
        points.push_back(analysisPoint(p, alpha));
    }
    return points;
}

const SweepCell &
SweepResult::cell(std::size_t workload, std::size_t technology) const
{
    return cells.at(workload * technologies.size() + technology);
}

harness::SuitePolicyAverages
SweepResult::averagesAt(std::size_t technology) const
{
    harness::SuitePolicyAverages avg;
    bool first = true;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &results = cell(w, technology).policies;
        double no_overhead = 0.0;
        for (const auto &r : results)
            if (r.name == "NoOverhead")
                no_overhead = r.energy;
        if (no_overhead <= 0.0)
            throw std::invalid_argument(
                "SweepResult::averagesAt: needs a positive "
                "NoOverhead energy for '" +
                workloads[w] +
                "' (include the 'no-overhead' policy)");
        if (first) {
            for (const auto &r : results) {
                avg.names.push_back(r.name);
                avg.rel_to_nooverhead.push_back(0.0);
                avg.leakage_fraction.push_back(0.0);
            }
            first = false;
        }
        for (std::size_t i = 0; i < results.size(); ++i) {
            avg.rel_to_nooverhead[i] +=
                results[i].energy / no_overhead;
            avg.leakage_fraction[i] += results[i].leakage_fraction;
        }
    }
    const auto n = static_cast<double>(workloads.size());
    for (std::size_t i = 0; i < avg.names.size(); ++i) {
        avg.rel_to_nooverhead[i] /= n;
        avg.leakage_fraction[i] /= n;
    }
    return avg;
}

void
SweepResult::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    detail::writePolicyCsvHeader(csv);
    for (const auto &c : cells)
        detail::writePolicyCsvRows(csv, workloads[c.workload],
                                   policy_keys, c.policies,
                                   technologies[c.technology]);
}

void
SweepResult::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.beginArray("policies");
    for (const auto &key : policy_keys)
        w.value(key);
    w.endArray();
    w.beginArray("simulations");
    for (const auto &sim : sims) {
        w.beginObject();
        writeSimJson(w, sim);
        w.endObject();
    }
    w.endArray();
    w.beginArray("cells");
    for (const auto &c : cells) {
        const auto &mp = technologies[c.technology];
        w.beginObject();
        w.field("benchmark", workloads[c.workload]);
        w.beginObject("technology");
        w.field("p", mp.p);
        w.field("k", mp.k);
        w.field("s", mp.s);
        w.field("alpha", mp.alpha);
        w.field("duty", mp.duty);
        w.endObject();
        harness::writePoliciesJson(w, c.policies);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

// --------------------------------------------------------- detail

std::string
detail::SimTask::fingerprint() const
{
    store::SimKey key;
    key.profile = profile;
    key.fus = fus;
    key.insts = insts;
    key.seed = seed;
    key.base = base;
    return key.fingerprint();
}

harness::WorkloadSim
detail::SimTask::run() const
{
    auto builder = Experiment::builder()
                       .profile(profile)
                       .insts(insts)
                       .seed(seed)
                       .config(base);
    if (fus != ~0u)
        builder.fus(fus);
    return builder.session().sim();
}

void
detail::fillCell(SweepResult &result, std::size_t i)
{
    const std::size_t num_tech = result.technologies.size();
    SweepCell &c = result.cells[i];
    c.workload = i / num_tech;
    c.technology = i % num_tech;
    c.policies = evaluateProfile(result.sims[c.workload].idle,
                                 result.technologies[c.technology],
                                 result.policy_keys);
}

// -------------------------------------------------- ReplayDriver

/** One workload's multi-point replay within one result. The engine
 * is built in run()'s parallel pre-stage, not in add(): flattening
 * the interval map and constructing per-point controller sets is
 * O(intervals + points) per workload, too much to serialize ahead
 * of the pool on wide grids. */
struct detail::ReplayDriver::EngineJob
{
    SweepResult *result;
    std::size_t workload;
    std::size_t chunk_intervals;
    std::optional<replay::MultiPointReplay> engine;
};

detail::ReplayDriver::ReplayDriver() = default;
detail::ReplayDriver::~ReplayDriver() = default;

void
detail::ReplayDriver::add(SweepResult &result,
                          const SweepConfig &config)
{
    if (config.scalar_replay) {
        for (std::size_t i = 0; i < result.cells.size(); ++i)
            scalar_cells_.emplace_back(&result, i);
        return;
    }
    for (std::size_t w = 0; w < result.workloads.size(); ++w)
        jobs_.push_back(
            {&result, w, config.chunk_intervals, std::nullopt});
}

void
detail::ReplayDriver::run(unsigned threads, ThreadPool *pool,
                          const std::function<bool()> *cancel)
{
    // Cooperative cancellation: polled at task boundaries only, so
    // a task in flight always completes and the pool never sees a
    // half-executed unit. Skipped tasks leave their cells stale —
    // throwing below tells the caller to discard the result.
    const auto cancelled = [cancel] {
        return cancel && *cancel && (*cancel)();
    };
    const auto throwIfCancelled = [&] {
        if (cancelled())
            throw CancelledError(
                "replay cancelled at a task boundary");
    };

    // Pre-stage: construct the engines in parallel (each writes only
    // its own slot). Policy specs were validated by the runner
    // constructors, so construction cannot throw here.
    runOn(pool, jobs_.size(), threads, [&](std::size_t j) {
        if (cancelled())
            return;
        EngineJob &job = jobs_[j];
        replay::ReplayOptions options;
        options.chunk_intervals = job.chunk_intervals;
        job.engine.emplace(
            replay::IntervalSet::fromProfile(
                job.result->sims[job.workload].idle),
            job.result->technologies, job.result->policy_keys,
            options);
    });
    throwIfCancelled();

    // Kernel-vs-fallback coverage, read off the engines here so the
    // replay module itself stays free of the obs registry (and of
    // clocks — its determinism lint rule is textual).
    {
        std::uint64_t kernel = 0, fallback = 0, groups = 0;
        for (const auto &job : jobs_) {
            const std::size_t k = job.engine->numKernelUnits();
            kernel += k;
            fallback += job.engine->numUnits() - k;
            groups += job.engine->numKernelGroups();
        }
        obs::counter("replay.kernel_units").add(kernel);
        obs::counter("replay.fallback_units").add(fallback);
        obs::counter("replay.kernel_groups").add(groups);
        obs::counter("replay.engines")
            .add(static_cast<std::uint64_t>(jobs_.size()));
        obs::counter("replay.scalar_cells")
            .add(static_cast<std::uint64_t>(scalar_cells_.size()));
    }

    // One flat list over every registered result: scalar cells plus
    // each engine job's (workload, chunk) tasks, so a small sweep's
    // work never waits on a big sweep's phase, and one long
    // simulation spreads across workers.
    struct Piece
    {
        std::size_t job;  ///< index into jobs_, or npos for scalar
        std::size_t task; ///< engine task or scalar_cells_ index
    };
    constexpr std::size_t npos = ~std::size_t{0};
    std::vector<Piece> pieces;
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        for (std::size_t t = 0; t < jobs_[j].engine->numTasks();
             ++t)
            pieces.push_back({j, t});
    for (std::size_t i = 0; i < scalar_cells_.size(); ++i)
        pieces.push_back({npos, i});

    runOn(pool, pieces.size(), threads, [&](std::size_t i) {
        if (cancelled())
            return;
        const Piece &piece = pieces[i];
        if (piece.job == npos)
            fillCell(*scalar_cells_[piece.task].first,
                     scalar_cells_[piece.task].second);
        else
            jobs_[piece.job].engine->runTask(piece.task);
    });
    throwIfCancelled();

    // Merge + scatter into cells; independent per job.
    runOn(pool, jobs_.size(), threads, [&](std::size_t j) {
        EngineJob &job = jobs_[j];
        auto results = job.engine->finalize();
        const std::size_t num_tech =
            job.result->technologies.size();
        for (std::size_t t = 0; t < num_tech; ++t) {
            SweepCell &cell =
                job.result->cells[job.workload * num_tech + t];
            cell.workload = job.workload;
            cell.technology = t;
            cell.policies = std::move(results[t]);
        }
    });
}

// ---------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(SweepConfig config)
    : config_(std::move(config))
{
    // Custom profiles: validated, unique, and not shadowing the
    // Table 3 suite (a "gcc" that is secretly something else would
    // poison results and — worse — shared cache directories).
    for (const auto &profile : config_.profiles) {
        const std::string err = profile.validationError();
        if (!err.empty())
            throw std::invalid_argument("custom profile '" +
                                        profile.name + "': " + err);
        if (profile.name.empty())
            throw std::invalid_argument(
                "custom profiles need a non-empty name");
        std::size_t uses = 0;
        for (const auto &other : config_.profiles)
            uses += other.name == profile.name ? 1 : 0;
        if (uses != 1)
            throw std::invalid_argument("duplicate custom profile '" +
                                        profile.name + "'");
        for (const auto &t3 : trace::table3Profiles())
            if (t3.name == profile.name)
                throw std::invalid_argument(
                    "custom profile '" + profile.name +
                    "' shadows a Table 3 benchmark");
    }

    if (config_.workloads.empty()) {
        if (!config_.profiles.empty()) {
            for (const auto &p : config_.profiles)
                config_.workloads.push_back(p.name);
        } else {
            for (const auto &p : trace::table3Profiles())
                config_.workloads.push_back(p.name);
        }
    }

    // Imports join the grid as extra workloads, phase 1 pre-done.
    for (const auto &path : config_.imports) {
        store::ImportedSim entry;
        try {
            entry = store::importAnySim(path);
        } catch (const store::StoreError &err) {
            throw std::invalid_argument(err.what());
        }
        const std::string name = entry.sim.name;
        // Same shadowing rule as custom profiles: an import named
        // like a simulated workload would silently replace that
        // workload's timing simulation with the external data.
        for (const auto &existing : config_.workloads)
            if (existing == name)
                throw std::invalid_argument(
                    "imported workload '" + name + "' (" + path +
                    ") collides with a workload in this sweep");
        for (const auto &profile : config_.profiles)
            if (profile.name == name)
                throw std::invalid_argument(
                    "imported workload '" + name + "' (" + path +
                    ") shadows a custom profile");
        for (const auto &t3 : trace::table3Profiles())
            if (t3.name == name)
                throw std::invalid_argument(
                    "imported workload '" + name + "' (" + path +
                    ") shadows a Table 3 benchmark; rename it");
        if (!imported_.emplace(name, std::move(entry.sim)).second)
            throw std::invalid_argument(
                "duplicate imported workload '" + name + "'");
        config_.workloads.push_back(name);
    }

    if (config_.policies.empty())
        config_.policies = sleep::PolicyRegistry::paperSpecs();
    if (config_.technologies.empty())
        throw std::invalid_argument(
            "SweepRunner: no technology points (see pSweep())");

    // Fail fast on unknown names, before any worker starts.
    for (const auto &name : config_.workloads)
        if (imported_.find(name) == imported_.end())
            resolveWorkload(name);
    sleep::PolicyRegistry::instance().makeSet(
        config_.policies, config_.technologies.front());
}

const trace::WorkloadProfile &
SweepRunner::resolveWorkload(const std::string &name) const
{
    for (const auto &p : config_.profiles)
        if (p.name == name)
            return p;
    for (const auto &p : trace::table3Profiles())
        if (p.name == name)
            return p;
    throw std::invalid_argument("unknown workload '" + name + "'");
}

std::optional<detail::SimTask>
SweepRunner::simTask(std::size_t w) const
{
    const std::string &name = config_.workloads.at(w);
    if (imported_.find(name) != imported_.end())
        return std::nullopt;
    detail::SimTask task;
    task.profile = resolveWorkload(name);
    task.fus = config_.fus;
    task.insts = config_.insts;
    task.seed = config_.seed;
    task.base = config_.base;
    return task;
}

const harness::WorkloadSim *
SweepRunner::importedSim(std::size_t w) const
{
    const auto it = imported_.find(config_.workloads.at(w));
    return it == imported_.end() ? nullptr : &it->second;
}

SweepResult
SweepRunner::run() const
{
    SweepResult result;
    result.workloads = config_.workloads;
    result.technologies = config_.technologies;
    result.policy_keys = config_.policies;
    result.sims.resize(result.workloads.size());

    std::optional<store::ProfileStore> cache;
    if (!config_.cache_dir.empty())
        cache.emplace(config_.cache_dir);

    // Phase 1: one timing simulation per workload, in parallel —
    // imported sims are used as-is and cached sims are loaded
    // instead of re-simulated.
    std::atomic<std::size_t> sims_run{0}, cache_hits{0};
    detail::parallelFor(result.workloads.size(), config_.threads,
                        [&](std::size_t w) {
        if (const harness::WorkloadSim *imp = importedSim(w)) {
            result.sims[w] = *imp;
            return;
        }
        const detail::SimTask task = *simTask(w);
        std::string key;
        if (cache) {
            key = task.fingerprint();
            if (auto cached = cache->load(key)) {
                result.sims[w] = std::move(*cached);
                cache_hits.fetch_add(1);
                return;
            }
        }
        result.sims[w] = task.run();
        sims_run.fetch_add(1);
        if (cache)
            cache->save(key, result.sims[w]);
    });
    result.stats.sims_run = sims_run.load();
    result.stats.cache_hits = cache_hits.load();
    result.stats.imported = imported_.size();

    // Phase 2: replay every profile at every technology point — all
    // points of a workload in one pass over its interval multiset
    // (or per-cell scalar passes under config().scalar_replay).
    result.cells.resize(result.workloads.size() *
                        result.technologies.size());
    detail::ReplayDriver driver;
    driver.add(result, config_);
    driver.run(config_.threads);
    return result;
}

} // namespace lsim::api
