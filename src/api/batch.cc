#include "api/batch.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>

#include "api/parallel.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/profile_store.hh"

namespace lsim::api
{

std::string
batchFingerprint(const BatchConfig &config)
{
    store::Fnv1a h;
    h.addU32(store::kFormatVersion);
    h.addU64(config.sweeps.size());
    for (const SweepConfig &sweep : config.sweeps) {
        h.addU64(sweep.workloads.size());
        for (const std::string &name : sweep.workloads)
            h.addString(name);
        h.addU64(sweep.technologies.size());
        for (const auto &tech : sweep.technologies) {
            h.addDouble(tech.p);
            h.addDouble(tech.k);
            h.addDouble(tech.s);
            h.addDouble(tech.alpha);
            h.addDouble(tech.duty);
        }
        h.addU64(sweep.policies.size());
        for (const std::string &policy : sweep.policies)
            h.addString(policy);
        h.addU64(sweep.profiles.size());
        for (const auto &profile : sweep.profiles)
            store::hashWorkloadProfile(h, profile);
        h.addU64(sweep.imports.size());
        for (const std::string &path : sweep.imports)
            h.addString(path);
        h.addU64(sweep.insts);
        h.addU64(sweep.seed);
        h.addU32(sweep.fus);
        store::hashCoreConfig(h, sweep.base);
        h.addU32(sweep.scalar_replay ? 1 : 0);
        h.addU64(sweep.chunk_intervals);
    }
    return h.hex();
}

BatchRunner::BatchRunner(BatchConfig config)
    : config_(std::move(config))
{
    runners_.reserve(config_.sweeps.size());
    for (SweepConfig sweep : config_.sweeps) {
        if (!config_.cache_dir.empty())
            sweep.cache_dir = config_.cache_dir;
        // The batch owns the pool; per-sweep thread counts would
        // only matter if a runner executed alone.
        sweep.threads = 1;
        runners_.emplace_back(std::move(sweep));
    }
}

BatchResult
BatchRunner::run() const
{
    return run(BatchEnv{});
}

BatchResult
BatchRunner::run(const BatchEnv &env) const
{
    // Cooperative cancellation: checked between phases here and at
    // task boundaries inside them, so a cancelled run abandons its
    // remaining work quickly but never tears a task in half.
    const auto cancelled = [&env] {
        return env.cancel && env.cancel();
    };
    const auto throwIfCancelled = [&](const char *where) {
        if (cancelled())
            throw CancelledError(std::string("batch cancelled ") +
                                 where);
    };

    BatchResult result;
    result.sweeps.resize(runners_.size());
    throwIfCancelled("before phase 1");

    // Collect the distinct phase-1 tasks across every request.
    // fingerprint() covers exactly the simulation-determining state,
    // so it is the dedup identity as well as the store key.
    std::vector<detail::SimTask> unique;
    std::vector<std::string> unique_keys;
    // Per task, the distinct cache dirs of the sweeps that want it
    // (the batch-level override was already folded in by the
    // constructor, so these are the dirs each request agreed to).
    std::vector<std::vector<std::string>> task_dirs;
    std::map<std::string, std::size_t> index_of;
    // refs[s][w]: index into `unique`, or npos for imported sims.
    constexpr std::size_t npos = ~std::size_t{0};
    std::vector<std::vector<std::size_t>> refs(runners_.size());

    for (std::size_t s = 0; s < runners_.size(); ++s) {
        const SweepRunner &runner = runners_[s];
        const std::size_t num_workloads =
            runner.config().workloads.size();
        refs[s].resize(num_workloads, npos);
        for (std::size_t w = 0; w < num_workloads; ++w) {
            auto task = runner.simTask(w);
            if (!task)
                continue;
            ++result.stats.requested_sims;
            const std::string key = task->fingerprint();
            const auto [it, inserted] =
                index_of.emplace(key, unique.size());
            if (inserted) {
                unique.push_back(std::move(*task));
                unique_keys.push_back(key);
                task_dirs.emplace_back();
            }
            const std::string &dir = runner.config().cache_dir;
            auto &dirs = task_dirs[it->second];
            if (!dir.empty() &&
                std::find(dirs.begin(), dirs.end(), dir) ==
                    dirs.end())
                dirs.push_back(dir);
            refs[s][w] = it->second;
        }
    }
    result.stats.unique_sims = unique.size();

    // One ProfileStore per distinct directory (creation validates
    // the path up front, before any simulation time is spent). A
    // caller-injected store is reused for its own directory so its
    // in-memory index stays the single instance across requests.
    std::map<std::string, store::ProfileStore *> stores;
    std::vector<std::unique_ptr<store::ProfileStore>> owned_stores;
    for (const auto &dirs : task_dirs)
        for (const auto &dir : dirs) {
            if (stores.count(dir))
                continue;
            if (env.store && env.store->dir() == dir) {
                stores.emplace(dir, env.store);
                continue;
            }
            owned_stores.push_back(
                std::make_unique<store::ProfileStore>(dir));
            stores.emplace(dir, owned_stores.back().get());
        }

    // Phase 1 over the deduped union: try every store a task's
    // sweeps named, and on a miss simulate once and install the
    // result into all of them.
    std::vector<harness::WorkloadSim> sims(unique.size());
    std::atomic<std::size_t> sims_run{0}, cache_hits{0};
    {
        obs::TraceSpan span("batch.phase1_sim", "batch");
        obs::ScopedTimerMs timer(obs::histogram("batch.sim_ms"));
        detail::runOn(env.pool, unique.size(), config_.threads,
                      [&](std::size_t i) {
            if (cancelled())
                return; // task boundary: abandon, don't tear
            for (const auto &dir : task_dirs[i]) {
                if (auto cached =
                        stores.at(dir)->load(unique_keys[i])) {
                    sims[i] = std::move(*cached);
                    cache_hits.fetch_add(1);
                    return;
                }
            }
            sims[i] = unique[i].run();
            sims_run.fetch_add(1);
            for (const auto &dir : task_dirs[i])
                stores.at(dir)->save(unique_keys[i], sims[i]);
        });
    }
    result.stats.sims_run = sims_run.load();
    result.stats.cache_hits = cache_hits.load();
    throwIfCancelled("between phases");

    obs::counter("batch.requested_sims")
        .add(result.stats.requested_sims);
    obs::counter("batch.unique_sims").add(result.stats.unique_sims);
    // Phase-1 dedup: requests that collapsed onto an already-listed
    // fingerprint before any store lookup happened.
    obs::counter("batch.dedup_hits")
        .add(result.stats.requested_sims - result.stats.unique_sims);
    obs::counter("batch.store_hits").add(result.stats.cache_hits);
    obs::counter("batch.store_misses").add(result.stats.sims_run);

    // Assemble each request's result skeleton from the shared sims.
    for (std::size_t s = 0; s < runners_.size(); ++s) {
        const SweepConfig &cfg = runners_[s].config();
        SweepResult &out = result.sweeps[s];
        out.workloads = cfg.workloads;
        out.technologies = cfg.technologies;
        out.policy_keys = cfg.policies;
        out.sims.resize(cfg.workloads.size());
        out.cells.resize(cfg.workloads.size() *
                         cfg.technologies.size());
        for (std::size_t w = 0; w < cfg.workloads.size(); ++w) {
            if (refs[s][w] == npos) {
                out.sims[w] = *runners_[s].importedSim(w);
                ++out.stats.imported;
            } else {
                out.sims[w] = sims[refs[s][w]];
            }
        }
    }

    // Phase 2: the shared driver flattens every request's replay
    // grid into one task list — multi-point engine jobs per
    // (workload, chunk), scalar cells for flagged sweeps — so a
    // small sweep's cells never wait on a big sweep's phase.
    detail::ReplayDriver driver;
    for (std::size_t s = 0; s < result.sweeps.size(); ++s)
        driver.add(result.sweeps[s], runners_[s].config());
    {
        obs::TraceSpan span("batch.phase2_replay", "batch");
        obs::ScopedTimerMs timer(
            obs::histogram("batch.replay_ms"));
        driver.run(config_.threads, env.pool,
                   env.cancel ? &env.cancel : nullptr);
    }
    return result;
}

} // namespace lsim::api
