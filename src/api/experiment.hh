/**
 * @file
 * Unified experiment facade: one fluent entry point for the paper's
 * simulate-then-evaluate flow.
 *
 * @code
 *   auto result = api::Experiment::builder()
 *                     .workload("gcc")
 *                     .insts(1'000'000)
 *                     .fus(api::auto_select)
 *                     .technology(0.05, 0.5)
 *                     .policies({"max-sleep", "gradual"})
 *                     .run();
 *   result.writeJson(std::cout);
 * @endcode
 *
 * The expensive step — the timing simulation — is factored into a
 * Session: build one with .session(), then evaluate() it at any
 * number of technology points; each evaluation replays the cached
 * IdleProfile sufficient statistic instead of re-simulating (the
 * paper's Figure 9 trick). SweepRunner (api/sweep.hh) parallelizes
 * this across workload x technology grids.
 *
 * Policies are named by sleep::PolicyRegistry specs ("max-sleep",
 * "gradual", "timeout:64", ...). Configuration errors (unknown
 * workload or policy, malformed spec) throw std::invalid_argument at
 * run()/session() time.
 */

#ifndef LSIM_API_EXPERIMENT_HH
#define LSIM_API_EXPERIMENT_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "cpu/config.hh"
#include "energy/params.hh"
#include "harness/experiment.hh"
#include "sleep/accumulator.hh"
#include "trace/profile.hh"

namespace lsim
{
class CsvWriter;
}

namespace lsim::api
{

/**
 * Sentinel FU count for ExperimentBuilder::fus(): derive the count
 * with the paper's Table 3 methodology (min FUs within 95% of the
 * 4-FU IPC) instead of fixing it.
 */
inline constexpr unsigned auto_select = 0;

/**
 * The paper's analysis technology point: leakage factor @p p,
 * activity @p alpha, and the Section 3.1 defaults k = 0.001,
 * s = 0.01 — the single definition behind every facade default.
 */
energy::ModelParams analysisPoint(double p, double alpha = 0.5);

/**
 * Technology point derived from the default circuit-level FU model
 * (500 OR8 domino gates): p, k, s and E_D computed from the circuit
 * characterization, activity @p alpha and duty @p duty passed
 * through — the facade's bridge from the circuit layer to the
 * analytical model (used by the Figure 3/4a reproductions).
 */
energy::ModelParams circuitPoint(double alpha = 0.5,
                                 double duty = 0.5);

/** One experiment outcome: a simulation evaluated at one technology
 * point under a set of policies. */
struct RunResult
{
    harness::WorkloadSim sim;          ///< timing + idle statistics
    energy::ModelParams technology;    ///< evaluation point
    std::vector<std::string> policy_keys; ///< registry specs used
    std::vector<sleep::PolicyResult> policies; ///< same order as keys

    /** Set when the FU count was auto-selected. */
    std::optional<harness::FuSelection> fu_selection;

    /**
     * Result of the policy named @p name (either the registry spec
     * or the controller's report name); throws std::invalid_argument
     * if absent.
     */
    const sleep::PolicyResult &policy(const std::string &name) const;

    /**
     * Serialize as one JSON object: {technology, simulation,
     * policies}. Field-for-field identical to the legacy
     * harness::writeExperimentJson() record.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Serialize the policy results as CSV rows
     * (benchmark,policy_key,policy,p,alpha,k,s,energy,
     *  relative_to_base,leakage_fraction) with a header row.
     */
    void writeCsv(std::ostream &os) const;

    std::string toJson() const;
    std::string toCsv() const;
};

/**
 * A completed timing simulation, reusable across technology points.
 * Obtained from ExperimentBuilder::session(); evaluate() replays the
 * stored IdleProfile, so evaluating N technology points costs one
 * simulation plus N cheap replays.
 */
class Session
{
  public:
    /** Evaluate the cached profile at @p params. */
    RunResult evaluate(const energy::ModelParams &params) const;

    /**
     * Evaluate at leakage factor @p p, activity @p alpha, and the
     * paper's analysis defaults k = 0.001, s = 0.01.
     */
    RunResult evaluate(double p, double alpha = 0.5) const;

    /**
     * Like evaluate() but returns only the policy results — no
     * WorkloadSim copy, for callers sweeping many technology
     * points that don't need per-point simulation records.
     */
    std::vector<sleep::PolicyResult>
    policiesAt(const energy::ModelParams &params) const;

    /**
     * Evaluate every point in @p points with a single pass over the
     * cached idle-interval multiset (the replay::MultiPointReplay
     * fast path). Results[t] is bit-identical to policiesAt(
     * points[t]) evaluated alone.
     */
    std::vector<std::vector<sleep::PolicyResult>>
    policiesAt(const std::vector<energy::ModelParams> &points) const;

    /** The underlying simulation. */
    const harness::WorkloadSim &sim() const { return sim_; }

    /** Registry specs evaluated by evaluate(). */
    const std::vector<std::string> &policyKeys() const
    {
        return policy_keys_;
    }

    /** FU-count selection detail when fus(auto_select) was used. */
    const std::optional<harness::FuSelection> &fuSelection() const
    {
        return fu_selection_;
    }

  private:
    friend class ExperimentBuilder;
    Session() = default;

    harness::WorkloadSim sim_;
    std::vector<std::string> policy_keys_;
    std::optional<harness::FuSelection> fu_selection_;
};

/**
 * Fluent configuration of one experiment. All setters return *this;
 * unset knobs take the paper's defaults (500k instructions, seed 1,
 * the profile's Table 3 FU count, technology p = 0.05 / alpha = 0.5 /
 * k = 0.001 / s = 0.01, and the paper's four policies).
 */
class ExperimentBuilder
{
  public:
    /** Select a Table 3 benchmark by name (throws if unknown). */
    ExperimentBuilder &workload(const std::string &name);

    /** Use a custom workload profile instead of a Table 3 entry. */
    ExperimentBuilder &profile(trace::WorkloadProfile custom);

    /** Committed instructions to simulate. */
    ExperimentBuilder &insts(std::uint64_t n);

    /**
     * Integer FU count; api::auto_select derives it with the Table 3
     * methodology (runs four extra simulations).
     */
    ExperimentBuilder &fus(unsigned n);

    /** Trace generator seed. */
    ExperimentBuilder &seed(std::uint64_t s);

    /** Base machine configuration (FU count still applies on top). */
    ExperimentBuilder &config(const cpu::CoreConfig &base);

    /** Technology point: leakage factor p and activity alpha, with
     * the paper's analysis defaults k = 0.001, s = 0.01. */
    ExperimentBuilder &technology(double p, double alpha = 0.5);

    /** Fully explicit technology point. */
    ExperimentBuilder &technology(const energy::ModelParams &params);

    /** Policies to evaluate, as PolicyRegistry specs. */
    ExperimentBuilder &policies(std::vector<std::string> keys);

    /** The paper's four policies (the default). */
    ExperimentBuilder &paperPolicies();

    /**
     * Run the timing simulation once and return a Session for
     * evaluation at arbitrary technology points.
     */
    Session session() const;

    /** session() + evaluate() at the configured technology point. */
    RunResult run() const;

  private:
    friend struct Experiment;
    ExperimentBuilder() = default;

    const trace::WorkloadProfile &resolveProfile() const;

    std::optional<trace::WorkloadProfile> profile_;
    std::string workload_;
    std::uint64_t insts_ = 500'000;
    std::uint64_t seed_ = 1;
    unsigned fus_ = paper_fus; ///< see sentinel below
    cpu::CoreConfig base_;
    energy::ModelParams technology_;
    std::vector<std::string> policy_keys_;

    /** Internal sentinel: use the profile's Table 3 FU count. */
    static constexpr unsigned paper_fus = ~0u;
};

/** Entry point: api::Experiment::builder()...run(). */
struct Experiment
{
    static ExperimentBuilder builder() { return {}; }
};

/**
 * Evaluate a stored idle profile at @p params under registry-named
 * policies — the facade-level replacement for
 * harness::evaluatePolicies + sleep::makePaperControllers. An empty
 * @p policy_keys means the paper's four policies.
 *
 * This is the *scalar* reference path: one walk over the interval
 * multiset per call. Session and SweepRunner route their replays
 * through replay::MultiPointReplay instead, which is bit-identical
 * (see that header's contract) but amortizes one pass across all
 * technology points; this function remains the ground truth the
 * engine is tested against.
 */
std::vector<sleep::PolicyResult>
evaluateProfile(const harness::IdleProfile &idle,
                const energy::ModelParams &params,
                const std::vector<std::string> &policy_keys = {});

namespace detail
{

/**
 * Shared CSV schema for policy rows — RunResult::writeCsv and
 * SweepResult::writeCsv both emit it, so the column set has one
 * definition.
 */
void writePolicyCsvHeader(CsvWriter &csv);
void writePolicyCsvRows(CsvWriter &csv, const std::string &benchmark,
                        const std::vector<std::string> &policy_keys,
                        const std::vector<sleep::PolicyResult> &policies,
                        const energy::ModelParams &params);

} // namespace detail

} // namespace lsim::api

#endif // LSIM_API_EXPERIMENT_HH
