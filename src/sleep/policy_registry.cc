#include "sleep/policy_registry.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/table.hh"
#include "energy/breakeven.hh"

namespace lsim::sleep
{

namespace
{

/** Round the technology breakeven to a usable slice count (>= 1). */
unsigned
breakevenCycles(const energy::ModelParams &params)
{
    const double be = energy::breakevenInterval(params);
    if (!std::isfinite(be))
        return 1;
    return std::max(1u, static_cast<unsigned>(std::llround(be)));
}

/**
 * Breakeven as a timeout: an infinite breakeven (sleep never pays
 * off) maps to an effectively-never timeout rather than 1.
 */
Cycle
breakevenTimeout(const energy::ModelParams &params)
{
    const double be = energy::breakevenInterval(params);
    return std::isfinite(be) ? static_cast<Cycle>(std::llround(be))
                             : Cycle{1} << 20;
}

[[noreturn]] void
badArg(const std::string &key, const std::string &arg,
       const std::string &expect)
{
    throw std::invalid_argument("policy '" + key + "': bad argument '" +
                                arg + "' (" + expect + ")");
}

unsigned
parseCount(const std::string &key, const std::string &arg)
{
    // stoul accepts a leading '-' (wrapping around); require digits.
    if (arg.empty() || arg[0] < '0' || arg[0] > '9')
        badArg(key, arg, "expected a positive integer");
    std::size_t pos = 0;
    unsigned long v = 0;
    try {
        v = std::stoul(arg, &pos);
    } catch (const std::exception &) {
        badArg(key, arg, "expected a positive integer");
    }
    if (pos != arg.size() || v == 0 ||
        v > std::numeric_limits<unsigned>::max())
        badArg(key, arg, "expected a positive 32-bit integer");
    return static_cast<unsigned>(v);
}

double
parseFraction(const std::string &key, const std::string &arg)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(arg, &pos);
    } catch (const std::exception &) {
        badArg(key, arg, "expected a number in (0, 1]");
    }
    if (pos != arg.size() || !(v > 0.0) || v > 1.0)
        badArg(key, arg, "expected a number in (0, 1]");
    return v;
}

/** Comma-separated slice weights, e.g. "0.5,0.25,0.25". */
std::vector<double>
parseWeights(const std::string &key, const std::string &arg)
{
    std::vector<double> weights;
    std::stringstream ss(arg);
    std::string cell;
    while (std::getline(ss, cell, ','))
        weights.push_back(parseFraction(key, cell));
    if (weights.empty())
        badArg(key, arg, "expected comma-separated weights");
    return weights;
}

} // namespace

PolicyRegistry::PolicyRegistry()
{
    // History-free built-ins register their closed form (SpecFn):
    // the registry derives controllers from the spec, and the replay
    // engine classifies (point, policy) configurations without
    // constructing one controller per technology point.
    add("always-active", "never asserts Sleep (all idle uncontrolled)",
        SpecFn([](const energy::ModelParams &, const std::string &) {
            KernelSpec spec;
            spec.kind = KernelSpec::Kind::AlwaysActive;
            return spec;
        }));
    add("max-sleep", "asserts Sleep on the first idle cycle",
        SpecFn([](const energy::ModelParams &, const std::string &) {
            KernelSpec spec;
            spec.kind = KernelSpec::Kind::MaxSleep;
            return spec;
        }));
    add("no-overhead",
        "MaxSleep with free transitions (unachievable lower bound)",
        SpecFn([](const energy::ModelParams &, const std::string &) {
            KernelSpec spec;
            spec.kind = KernelSpec::Kind::NoOverhead;
            return spec;
        }));
    add("gradual",
        "GradualSleep; slices = breakeven interval, or gradual:<n>",
        SpecFn([](const energy::ModelParams &params,
                  const std::string &arg) {
            KernelSpec spec;
            spec.kind = KernelSpec::Kind::Gradual;
            spec.slices = arg.empty() ? breakevenCycles(params)
                                      : parseCount("gradual", arg);
            return spec;
        }));
    add("weighted-gradual",
        "GradualSleep with unequal slices; default 64-bit datapath "
        "weights, or weighted-gradual:<w1,w2,...> (sum to 1)",
        SpecFn([](const energy::ModelParams &,
                  const std::string &arg) {
            KernelSpec spec;
            spec.kind = KernelSpec::Kind::WeightedGradual;
            spec.weights = arg.empty()
                ? WeightedGradualSleepController::datapathWeights()
                : parseWeights("weighted-gradual", arg);
            return spec;
        }));
    add("timeout",
        "sleep once idle exceeds a timeout; default breakeven, or "
        "timeout:<cycles>",
        SpecFn([](const energy::ModelParams &params,
                  const std::string &arg) {
            KernelSpec spec;
            spec.kind = KernelSpec::Kind::Timeout;
            spec.timeout = arg.empty() ? breakevenTimeout(params)
                                       : parseCount("timeout", arg);
            return spec;
        }));
    add("oracle",
        "knows each interval's length; sleeps iff >= breakeven",
        SpecFn([](const energy::ModelParams &params,
                  const std::string &) {
            KernelSpec spec;
            spec.kind = KernelSpec::Kind::Oracle;
            spec.breakeven = energy::breakevenInterval(params);
            return spec;
        }));
    add("adaptive",
        "EWMA interval predictor; default weight 0.25, or "
        "adaptive:<weight>",
        [](const energy::ModelParams &params, const std::string &arg) {
            const double w =
                arg.empty() ? 0.25 : parseFraction("adaptive", arg);
            return std::make_unique<AdaptiveController>(
                energy::breakevenInterval(params), w);
        });
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

void
PolicyRegistry::add(const std::string &key, const std::string &summary,
                    Factory factory)
{
    if (key.empty() || key.find(':') != std::string::npos)
        throw std::invalid_argument("policy key '" + key +
                                    "' must be non-empty and ':'-free");
    entries_[key] = Entry{summary, std::move(factory), nullptr};
}

void
PolicyRegistry::add(const std::string &key, const std::string &summary,
                    SpecFn spec)
{
    if (key.empty() || key.find(':') != std::string::npos)
        throw std::invalid_argument("policy key '" + key +
                                    "' must be non-empty and ':'-free");
    entries_[key] = Entry{summary, nullptr, std::move(spec)};
}

const PolicyRegistry::Entry &
PolicyRegistry::entryFor(const std::string &spec,
                         std::string &arg) const
{
    const auto colon = spec.find(':');
    arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
    const auto it = entries_.find(spec.substr(0, colon));
    if (it == entries_.end()) {
        std::string known;
        for (const auto &[k, e] : entries_)
            known += (known.empty() ? "" : ", ") + k;
        throw std::invalid_argument("unknown policy '" + spec +
                                    "' (known: " + known + ")");
    }
    return it->second;
}

PolicyRegistry::ResolvedSpec
PolicyRegistry::resolve(const std::string &spec) const
{
    std::string arg;
    const Entry &entry = entryFor(spec, arg);
    return ResolvedSpec(entry.factory, entry.spec, std::move(arg));
}

std::unique_ptr<SleepController>
PolicyRegistry::ResolvedSpec::make(
    const energy::ModelParams &params) const
{
    if (spec_)
        return spec_(params, arg_).makeController();
    return factory_(params, arg_);
}

std::unique_ptr<SleepController>
PolicyRegistry::make(const std::string &spec,
                     const energy::ModelParams &params) const
{
    // Direct lookup-and-call: this is the scalar path's per-cell
    // construction; no throwaway ResolvedSpec copies.
    std::string arg;
    const Entry &entry = entryFor(spec, arg);
    if (entry.spec)
        return entry.spec(params, arg).makeController();
    return entry.factory(params, arg);
}

ControllerSet
PolicyRegistry::makeSet(const std::vector<std::string> &specs,
                        const energy::ModelParams &params) const
{
    ControllerSet set;
    set.reserve(specs.size());
    for (const auto &spec : specs)
        set.push_back(make(spec, params));
    return set;
}

bool
PolicyRegistry::has(const std::string &spec) const
{
    return entries_.count(spec.substr(0, spec.find(':'))) > 0;
}

std::vector<std::string>
PolicyRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[k, e] : entries_)
        out.push_back(k);
    return out;
}

const std::string &
PolicyRegistry::summary(const std::string &key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        throw std::invalid_argument("unknown policy key '" + key + "'");
    return it->second.summary;
}

std::string
PolicyRegistry::keyFor(const SleepController &ctrl)
{
    const std::string name = ctrl.name();
    if (name == "AlwaysActive")
        return "always-active";
    if (name == "MaxSleep")
        return "max-sleep";
    if (name == "NoOverhead")
        return "no-overhead";
    if (name == "GradualSleep") {
        const auto &gs =
            dynamic_cast<const GradualSleepController &>(ctrl);
        return "gradual:" + std::to_string(gs.numSlices());
    }
    if (name == "WeightedGradualSleep") {
        const auto &wg =
            dynamic_cast<const WeightedGradualSleepController &>(
                ctrl);
        std::string spec = "weighted-gradual:";
        for (std::size_t i = 0; i < wg.weights().size(); ++i) {
            if (i)
                spec += ',';
            spec += compactNumber(wg.weights()[i]);
        }
        return spec;
    }
    if (name == "Oracle")
        return "oracle";
    if (name == "Adaptive") {
        const auto &ad =
            dynamic_cast<const AdaptiveController &>(ctrl);
        return "adaptive:" + compactNumber(ad.ewmaWeight());
    }
    // "Timeout(N)" -> "timeout:N"
    if (name.rfind("Timeout(", 0) == 0 && name.back() == ')')
        return "timeout:" +
               name.substr(8, name.size() - 9);
    throw std::invalid_argument("no registry key for controller '" +
                                name + "'");
}

const std::vector<std::string> &
PolicyRegistry::paperSpecs()
{
    static const std::vector<std::string> specs = {
        "max-sleep", "gradual", "always-active", "no-overhead"};
    return specs;
}

const std::vector<std::string> &
PolicyRegistry::extensionSpecs()
{
    static const std::vector<std::string> specs = {"timeout", "oracle",
                                                   "adaptive"};
    return specs;
}

} // namespace lsim::sleep
