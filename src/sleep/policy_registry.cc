#include "sleep/policy_registry.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/table.hh"
#include "energy/breakeven.hh"

namespace lsim::sleep
{

namespace
{

/** Round the technology breakeven to a usable slice count (>= 1). */
unsigned
breakevenCycles(const energy::ModelParams &params)
{
    const double be = energy::breakevenInterval(params);
    if (!std::isfinite(be))
        return 1;
    return std::max(1u, static_cast<unsigned>(std::llround(be)));
}

/**
 * Breakeven as a timeout: an infinite breakeven (sleep never pays
 * off) maps to an effectively-never timeout rather than 1.
 */
Cycle
breakevenTimeout(const energy::ModelParams &params)
{
    const double be = energy::breakevenInterval(params);
    return std::isfinite(be) ? static_cast<Cycle>(std::llround(be))
                             : Cycle{1} << 20;
}

[[noreturn]] void
badArg(const std::string &key, const std::string &arg,
       const std::string &expect)
{
    throw std::invalid_argument("policy '" + key + "': bad argument '" +
                                arg + "' (" + expect + ")");
}

unsigned
parseCount(const std::string &key, const std::string &arg)
{
    // stoul accepts a leading '-' (wrapping around); require digits.
    if (arg.empty() || arg[0] < '0' || arg[0] > '9')
        badArg(key, arg, "expected a positive integer");
    std::size_t pos = 0;
    unsigned long v = 0;
    try {
        v = std::stoul(arg, &pos);
    } catch (const std::exception &) {
        badArg(key, arg, "expected a positive integer");
    }
    if (pos != arg.size() || v == 0 ||
        v > std::numeric_limits<unsigned>::max())
        badArg(key, arg, "expected a positive 32-bit integer");
    return static_cast<unsigned>(v);
}

double
parseFraction(const std::string &key, const std::string &arg)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(arg, &pos);
    } catch (const std::exception &) {
        badArg(key, arg, "expected a number in (0, 1]");
    }
    if (pos != arg.size() || !(v > 0.0) || v > 1.0)
        badArg(key, arg, "expected a number in (0, 1]");
    return v;
}

/** Comma-separated slice weights, e.g. "0.5,0.25,0.25". */
std::vector<double>
parseWeights(const std::string &key, const std::string &arg)
{
    std::vector<double> weights;
    std::stringstream ss(arg);
    std::string cell;
    while (std::getline(ss, cell, ','))
        weights.push_back(parseFraction(key, cell));
    if (weights.empty())
        badArg(key, arg, "expected comma-separated weights");
    return weights;
}

} // namespace

PolicyRegistry::PolicyRegistry()
{
    add("always-active", "never asserts Sleep (all idle uncontrolled)",
        [](const energy::ModelParams &, const std::string &) {
            return std::make_unique<AlwaysActiveController>();
        });
    add("max-sleep", "asserts Sleep on the first idle cycle",
        [](const energy::ModelParams &, const std::string &) {
            return std::make_unique<MaxSleepController>();
        });
    add("no-overhead",
        "MaxSleep with free transitions (unachievable lower bound)",
        [](const energy::ModelParams &, const std::string &) {
            return std::make_unique<NoOverheadController>();
        });
    add("gradual",
        "GradualSleep; slices = breakeven interval, or gradual:<n>",
        [](const energy::ModelParams &params, const std::string &arg) {
            const unsigned slices = arg.empty()
                ? breakevenCycles(params)
                : parseCount("gradual", arg);
            return std::make_unique<GradualSleepController>(slices);
        });
    add("weighted-gradual",
        "GradualSleep with unequal slices; default 64-bit datapath "
        "weights, or weighted-gradual:<w1,w2,...> (sum to 1)",
        [](const energy::ModelParams &, const std::string &arg) {
            auto weights = arg.empty()
                ? WeightedGradualSleepController::datapathWeights()
                : parseWeights("weighted-gradual", arg);
            return std::make_unique<WeightedGradualSleepController>(
                std::move(weights));
        });
    add("timeout",
        "sleep once idle exceeds a timeout; default breakeven, or "
        "timeout:<cycles>",
        [](const energy::ModelParams &params, const std::string &arg) {
            const Cycle timeout = arg.empty()
                ? breakevenTimeout(params)
                : parseCount("timeout", arg);
            return std::make_unique<TimeoutController>(timeout);
        });
    add("oracle",
        "knows each interval's length; sleeps iff >= breakeven",
        [](const energy::ModelParams &params, const std::string &) {
            return std::make_unique<OracleController>(
                energy::breakevenInterval(params));
        });
    add("adaptive",
        "EWMA interval predictor; default weight 0.25, or "
        "adaptive:<weight>",
        [](const energy::ModelParams &params, const std::string &arg) {
            const double w =
                arg.empty() ? 0.25 : parseFraction("adaptive", arg);
            return std::make_unique<AdaptiveController>(
                energy::breakevenInterval(params), w);
        });
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

void
PolicyRegistry::add(const std::string &key, const std::string &summary,
                    Factory factory)
{
    if (key.empty() || key.find(':') != std::string::npos)
        throw std::invalid_argument("policy key '" + key +
                                    "' must be non-empty and ':'-free");
    entries_[key] = Entry{summary, std::move(factory)};
}

std::unique_ptr<SleepController>
PolicyRegistry::make(const std::string &spec,
                     const energy::ModelParams &params) const
{
    const auto colon = spec.find(':');
    const std::string key = spec.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        std::string known;
        for (const auto &[k, e] : entries_)
            known += (known.empty() ? "" : ", ") + k;
        throw std::invalid_argument("unknown policy '" + spec +
                                    "' (known: " + known + ")");
    }
    return it->second.factory(params, arg);
}

ControllerSet
PolicyRegistry::makeSet(const std::vector<std::string> &specs,
                        const energy::ModelParams &params) const
{
    ControllerSet set;
    set.reserve(specs.size());
    for (const auto &spec : specs)
        set.push_back(make(spec, params));
    return set;
}

bool
PolicyRegistry::has(const std::string &spec) const
{
    return entries_.count(spec.substr(0, spec.find(':'))) > 0;
}

std::vector<std::string>
PolicyRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[k, e] : entries_)
        out.push_back(k);
    return out;
}

const std::string &
PolicyRegistry::summary(const std::string &key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        throw std::invalid_argument("unknown policy key '" + key + "'");
    return it->second.summary;
}

std::string
PolicyRegistry::keyFor(const SleepController &ctrl)
{
    const std::string name = ctrl.name();
    if (name == "AlwaysActive")
        return "always-active";
    if (name == "MaxSleep")
        return "max-sleep";
    if (name == "NoOverhead")
        return "no-overhead";
    if (name == "GradualSleep") {
        const auto &gs =
            dynamic_cast<const GradualSleepController &>(ctrl);
        return "gradual:" + std::to_string(gs.numSlices());
    }
    if (name == "WeightedGradualSleep") {
        const auto &wg =
            dynamic_cast<const WeightedGradualSleepController &>(
                ctrl);
        std::string spec = "weighted-gradual:";
        for (std::size_t i = 0; i < wg.weights().size(); ++i)
            spec += (i ? "," : "") + compactNumber(wg.weights()[i]);
        return spec;
    }
    if (name == "Oracle")
        return "oracle";
    if (name == "Adaptive") {
        const auto &ad =
            dynamic_cast<const AdaptiveController &>(ctrl);
        return "adaptive:" + compactNumber(ad.ewmaWeight());
    }
    // "Timeout(N)" -> "timeout:N"
    if (name.rfind("Timeout(", 0) == 0 && name.back() == ')')
        return "timeout:" +
               name.substr(8, name.size() - 9);
    throw std::invalid_argument("no registry key for controller '" +
                                name + "'");
}

const std::vector<std::string> &
PolicyRegistry::paperSpecs()
{
    static const std::vector<std::string> specs = {
        "max-sleep", "gradual", "always-active", "no-overhead"};
    return specs;
}

const std::vector<std::string> &
PolicyRegistry::extensionSpecs()
{
    static const std::vector<std::string> specs = {"timeout", "oracle",
                                                   "adaptive"};
    return specs;
}

} // namespace lsim::sleep
