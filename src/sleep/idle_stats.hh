/**
 * @file
 * Idle-interval statistics for functional units (the paper's
 * Figure 7). Consumes a per-cycle busy/idle stream and records the
 * distribution of idle-interval lengths, weighted by the cycles spent
 * in intervals of each length, in power-of-two buckets with the
 * paper's 8192-cycle clamp.
 */

#ifndef LSIM_SLEEP_IDLE_STATS_HH
#define LSIM_SLEEP_IDLE_STATS_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace lsim::sleep
{

/**
 * Records idle-interval structure from a busy-bit stream.
 *
 * "Fraction of total time the ALU is idle in intervals of length
 * [2^i, 2^(i+1))" is histogram weight / total cycles, matching the
 * y-axis of Figure 7.
 */
class IdleIntervalRecorder
{
  public:
    /** @param clamp Intervals >= clamp accumulate in the last bucket. */
    explicit IdleIntervalRecorder(std::uint64_t clamp = 8192);

    /** Feed one cycle's busy bit. */
    void tick(bool busy);

    /** Feed @p len consecutive idle cycles. */
    void idleRun(Cycle len);

    /**
     * Record @p count complete, separate idle intervals of length
     * @p len (bulk replay path; each interval is implicitly closed
     * by activity).
     */
    void idleRuns(Cycle len, std::uint64_t count);

    /** Feed @p len consecutive busy cycles. */
    void activeRun(Cycle len);

    /**
     * Close out a trailing idle run (call once at end of simulation;
     * further ticks are allowed and start fresh runs).
     */
    void finish();

    /** Total cycles observed. */
    Cycle totalCycles() const { return total_; }

    /** Total idle cycles observed (including any open run). */
    Cycle idleCycles() const { return idle_ + run_; }

    /** Fraction of all cycles that were idle. */
    double idleFraction() const;

    /** Number of completed idle intervals. */
    std::uint64_t numIntervals() const { return intervals_; }

    /** Mean completed idle-interval length (0 if none). */
    double meanInterval() const;

    /**
     * Histogram of idle cycles by interval length (weight = cycles
     * spent in intervals of that bucket). Call finish() first to
     * include a trailing open interval.
     */
    const stats::Log2Histogram &histogram() const { return hist_; }

    /** Per-interval-length statistics (lengths as samples). */
    const stats::Scalar &intervalLengths() const { return lengths_; }

    /** Reset to the empty state. */
    void reset();

  private:
    void closeRun();

    stats::Log2Histogram hist_;
    stats::Scalar lengths_;
    Cycle total_ = 0;
    Cycle idle_ = 0;
    Cycle run_ = 0; ///< length of the currently open idle run
    std::uint64_t intervals_ = 0;
};

} // namespace lsim::sleep

#endif // LSIM_SLEEP_IDLE_STATS_HH
