#include "sleep/idle_stats.hh"

namespace lsim::sleep
{

IdleIntervalRecorder::IdleIntervalRecorder(std::uint64_t clamp)
    : hist_(clamp)
{
}

void
IdleIntervalRecorder::tick(bool busy)
{
    ++total_;
    if (busy) {
        closeRun();
    } else {
        ++run_;
    }
}

void
IdleIntervalRecorder::idleRun(Cycle len)
{
    total_ += len;
    run_ += len;
}

void
IdleIntervalRecorder::idleRuns(Cycle len, std::uint64_t count)
{
    if (len == 0 || count == 0)
        return;
    closeRun();
    const double weight =
        static_cast<double>(len) * static_cast<double>(count);
    hist_.sample(len, weight);
    lengths_.sampleN(static_cast<double>(len), count);
    total_ += len * count;
    idle_ += len * count;
    intervals_ += count;
}

void
IdleIntervalRecorder::activeRun(Cycle len)
{
    if (len == 0)
        return;
    closeRun();
    total_ += len;
}

void
IdleIntervalRecorder::finish()
{
    closeRun();
}

void
IdleIntervalRecorder::closeRun()
{
    if (run_ == 0)
        return;
    hist_.sample(run_, static_cast<double>(run_));
    lengths_.sample(static_cast<double>(run_));
    idle_ += run_;
    ++intervals_;
    run_ = 0;
}
double
IdleIntervalRecorder::idleFraction() const
{
    return total_ ? static_cast<double>(idleCycles()) /
        static_cast<double>(total_) : 0.0;
}

double
IdleIntervalRecorder::meanInterval() const
{
    return lengths_.mean();
}

void
IdleIntervalRecorder::reset()
{
    hist_.reset();
    lengths_.reset();
    total_ = idle_ = run_ = 0;
    intervals_ = 0;
}

} // namespace lsim::sleep
