/**
 * @file
 * String-keyed sleep-policy registry.
 *
 * Policies are constructed from specs of the form "key" or
 * "key:arg" — e.g. "gradual", "gradual:16", "timeout:64",
 * "weighted-gradual", "adaptive:0.5" — so CLI flags, JSON configs,
 * tests and the api:: facade all name policies the same way. Every
 * factory receives the technology point (energy::ModelParams), which
 * supplies breakeven-derived defaults (GradualSleep slice count,
 * timeout, oracle threshold).
 *
 * Unlike most of the library (which fatal()s on user error), lookup
 * failures throw std::invalid_argument: the registry sits on the
 * public API boundary where callers like the CLI want to print
 * usage and the available keys instead of dying.
 */

#ifndef LSIM_SLEEP_POLICY_REGISTRY_HH
#define LSIM_SLEEP_POLICY_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "energy/params.hh"
#include "sleep/controllers.hh"

namespace lsim::sleep
{

/** Maps policy spec strings to sleep-controller factories. */
class PolicyRegistry
{
  public:
    /**
     * Factory signature: @p params is the technology point, @p arg
     * the text after the ':' in the spec (empty when absent).
     * Throws std::invalid_argument on a malformed @p arg.
     */
    using Factory = std::function<std::unique_ptr<SleepController>(
        const energy::ModelParams &params, const std::string &arg)>;

    /**
     * History-free policies may register a spec function instead of
     * a factory: it computes the policy's closed-form KernelSpec at
     * a technology point without constructing a controller, and the
     * registry derives the factory as spec(params, arg)
     * .makeController(). This lets the replay engine classify and
     * deduplicate (point, policy) configurations allocation-free —
     * a sweep constructs controllers only for distinct
     * configurations. Same error contract as Factory.
     */
    using SpecFn = std::function<KernelSpec(
        const energy::ModelParams &params, const std::string &arg)>;

    /** The process-wide registry, with built-ins registered. */
    static PolicyRegistry &instance();

    /**
     * A spec resolved once — key parsed, factory looked up — so a
     * sweep can construct the same policy at many technology points
     * without re-parsing the spec or walking the registry map per
     * point. Obtained from resolve(); stays valid for the registry's
     * lifetime (factories are owned by value).
     */
    class ResolvedSpec
    {
      public:
        /** Construct the policy at technology point @p params. */
        std::unique_ptr<SleepController>
        make(const energy::ModelParams &params) const;

        /**
         * The policy's KernelSpec at @p params, when it was
         * registered through a SpecFn — allocation-free
         * classification for the replay engine. Kind::None for
         * factory-registered (history-dependent/unknown) policies.
         */
        KernelSpec trySpec(const energy::ModelParams &params) const
        {
            return spec_ ? spec_(params, arg_) : KernelSpec{};
        }

      private:
        friend class PolicyRegistry;
        ResolvedSpec(Factory factory, SpecFn spec, std::string arg)
            : factory_(std::move(factory)), spec_(std::move(spec)),
              arg_(std::move(arg))
        {
        }

        Factory factory_; ///< empty when spec_ is set
        SpecFn spec_;
        std::string arg_;
    };

    /**
     * Parse @p spec and look up its factory once. Throws
     * std::invalid_argument for unknown keys, exactly like make();
     * malformed args surface on the first ResolvedSpec::make() call
     * (args are factory-validated against the technology point).
     */
    ResolvedSpec resolve(const std::string &spec) const;

    /**
     * Register @p factory under @p key (no ':' allowed). Replaces an
     * existing registration with the same key.
     *
     * @param summary One-line description for listings.
     */
    void add(const std::string &key, const std::string &summary,
             Factory factory);

    /** Register a history-free policy through its SpecFn. */
    void add(const std::string &key, const std::string &summary,
             SpecFn spec);

    /**
     * Construct the controller named by @p spec ("key" or
     * "key:arg") at technology point @p params. Throws
     * std::invalid_argument for unknown keys or malformed args.
     */
    std::unique_ptr<SleepController>
    make(const std::string &spec,
         const energy::ModelParams &params) const;

    /** Construct one controller per spec, preserving order. */
    ControllerSet makeSet(const std::vector<std::string> &specs,
                          const energy::ModelParams &params) const;

    /** @return true when @p spec 's key is registered. */
    bool has(const std::string &spec) const;

    /** Registered keys, sorted. */
    std::vector<std::string> keys() const;

    /** One-line description of @p key; throws on unknown keys. */
    const std::string &summary(const std::string &key) const;

    /**
     * Reverse lookup: the registry spec that reconstructs a
     * controller equivalent to @p ctrl, derived from its name()
     * and configuration accessors (e.g. "Timeout(64)" ->
     * "timeout:64", a weighted-gradual's weights are re-encoded in
     * the arg). Throws std::invalid_argument when the name maps to
     * no registered key, so spec -> controller -> spec round-trips.
     */
    static std::string keyFor(const SleepController &ctrl);

    /**
     * Specs of the paper's four policies in makePaperControllers
     * order: max-sleep, gradual, always-active, no-overhead.
     */
    static const std::vector<std::string> &paperSpecs();

    /** Specs of the extension set: timeout, oracle, adaptive. */
    static const std::vector<std::string> &extensionSpecs();

  private:
    PolicyRegistry(); ///< registers the built-in policies

    struct Entry
    {
        std::string summary;
        Factory factory; ///< empty for SpecFn registrations
        SpecFn spec;
    };

    /** Split @p spec into key/arg and find its entry; throws the
     * unknown-policy std::invalid_argument otherwise. */
    const Entry &entryFor(const std::string &spec,
                          std::string &arg) const;

    std::map<std::string, Entry> entries_;
};

} // namespace lsim::sleep

#endif // LSIM_SLEEP_POLICY_REGISTRY_HH
