/**
 * @file
 * String-keyed sleep-policy registry.
 *
 * Policies are constructed from specs of the form "key" or
 * "key:arg" — e.g. "gradual", "gradual:16", "timeout:64",
 * "weighted-gradual", "adaptive:0.5" — so CLI flags, JSON configs,
 * tests and the api:: facade all name policies the same way. Every
 * factory receives the technology point (energy::ModelParams), which
 * supplies breakeven-derived defaults (GradualSleep slice count,
 * timeout, oracle threshold).
 *
 * Unlike most of the library (which fatal()s on user error), lookup
 * failures throw std::invalid_argument: the registry sits on the
 * public API boundary where callers like the CLI want to print
 * usage and the available keys instead of dying.
 */

#ifndef LSIM_SLEEP_POLICY_REGISTRY_HH
#define LSIM_SLEEP_POLICY_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "energy/params.hh"
#include "sleep/controllers.hh"

namespace lsim::sleep
{

/** Maps policy spec strings to sleep-controller factories. */
class PolicyRegistry
{
  public:
    /**
     * Factory signature: @p params is the technology point, @p arg
     * the text after the ':' in the spec (empty when absent).
     * Throws std::invalid_argument on a malformed @p arg.
     */
    using Factory = std::function<std::unique_ptr<SleepController>(
        const energy::ModelParams &params, const std::string &arg)>;

    /** The process-wide registry, with built-ins registered. */
    static PolicyRegistry &instance();

    /**
     * Register @p factory under @p key (no ':' allowed). Replaces an
     * existing registration with the same key.
     *
     * @param summary One-line description for listings.
     */
    void add(const std::string &key, const std::string &summary,
             Factory factory);

    /**
     * Construct the controller named by @p spec ("key" or
     * "key:arg") at technology point @p params. Throws
     * std::invalid_argument for unknown keys or malformed args.
     */
    std::unique_ptr<SleepController>
    make(const std::string &spec,
         const energy::ModelParams &params) const;

    /** Construct one controller per spec, preserving order. */
    ControllerSet makeSet(const std::vector<std::string> &specs,
                          const energy::ModelParams &params) const;

    /** @return true when @p spec 's key is registered. */
    bool has(const std::string &spec) const;

    /** Registered keys, sorted. */
    std::vector<std::string> keys() const;

    /** One-line description of @p key; throws on unknown keys. */
    const std::string &summary(const std::string &key) const;

    /**
     * Reverse lookup: the registry spec that reconstructs a
     * controller equivalent to @p ctrl, derived from its name()
     * and configuration accessors (e.g. "Timeout(64)" ->
     * "timeout:64", a weighted-gradual's weights are re-encoded in
     * the arg). Throws std::invalid_argument when the name maps to
     * no registered key, so spec -> controller -> spec round-trips.
     */
    static std::string keyFor(const SleepController &ctrl);

    /**
     * Specs of the paper's four policies in makePaperControllers
     * order: max-sleep, gradual, always-active, no-overhead.
     */
    static const std::vector<std::string> &paperSpecs();

    /** Specs of the extension set: timeout, oracle, adaptive. */
    static const std::vector<std::string> &extensionSpecs();

  private:
    PolicyRegistry(); ///< registers the built-in policies

    struct Entry
    {
        std::string summary;
        Factory factory;
    };

    std::map<std::string, Entry> entries_;
};

} // namespace lsim::sleep

#endif // LSIM_SLEEP_POLICY_REGISTRY_HH
