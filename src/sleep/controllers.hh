/**
 * @file
 * Cycle-level sleep-mode controllers.
 *
 * A controller consumes the per-cycle busy/idle stream of one
 * functional unit and decides, every cycle, which operating category
 * the unit (or which fraction of it, for GradualSleep) is in. The
 * output is a CycleCounts record that the EnergyModel converts to
 * energy — the empirical half of the paper (Section 5).
 *
 * Wake-up is hidden behind the register-read stage (Figure 6), so no
 * controller adds performance cost; they differ only in energy.
 *
 * Beyond the paper's AlwaysActive / MaxSleep / NoOverhead /
 * GradualSleep, two extension controllers are provided for the
 * "would a more complex control strategy be warranted?" ablation:
 * a classic timeout policy and an oracle that knows each idle
 * interval's length in advance.
 */

#ifndef LSIM_SLEEP_CONTROLLERS_HH
#define LSIM_SLEEP_CONTROLLERS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "energy/model.hh"
#include "sleep/kernel_spec.hh"

namespace lsim::sleep
{

/**
 * Abstract sleep controller. Feed cycles with tick()/idleRun()/
 * activeRun() (run variants are a fast path and, for the oracle, the
 * source of lookahead); read back counts() at the end.
 *
 * The run-granularity entry points are non-virtual guards: mixing
 * tick() with explicit idleRun()/activeRun() calls while an idle
 * interval is still accumulating would silently split that interval,
 * so the guards throw std::invalid_argument unless the pending idle
 * run has been flushed with finish(). Policies implement the
 * protected do*() hooks.
 */
class SleepController
{
  public:
    virtual ~SleepController() = default;

    /**
     * Process one cycle; @p busy is true when the FU computes.
     * Consecutive idle ticks accumulate into one interval, delivered
     * to doIdleRun() when activity resumes — call finish() after the
     * last tick to flush a trailing idle interval. Interleaving
     * tick() with explicit idleRun()/activeRun() calls without an
     * intervening finish() is rejected by those guards.
     */
    void
    tick(bool busy)
    {
        if (busy) {
            finish();
            doActiveRun(1);
        } else {
            ++pending_idle_;
        }
    }

    /** Flush the open idle interval accumulated by tick(). */
    void
    finish()
    {
        if (pending_idle_ > 0) {
            const Cycle len = pending_idle_;
            pending_idle_ = 0;
            doIdleRun(len);
        }
    }

    /**
     * Process @p len consecutive idle cycles as one complete
     * interval. Throws if tick()-accumulated idle is pending.
     */
    void
    idleRun(Cycle len)
    {
        assertFlushed("idleRun");
        doIdleRun(len);
    }

    /**
     * Process @p count separate idle runs of @p len cycles each
     * (separated by activity). Throws if tick()-accumulated idle
     * is pending.
     */
    void
    idleRuns(Cycle len, std::uint64_t count)
    {
        assertFlushed("idleRuns");
        doIdleRuns(len, count);
    }

    /**
     * Process @p len consecutive busy cycles. Throws if
     * tick()-accumulated idle is pending.
     */
    void
    activeRun(Cycle len)
    {
        assertFlushed("activeRun");
        doActiveRun(len);
    }

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Self-classification for batch replay (see kernel_spec.hh):
     * history-free policies report their closed-form parameters so
     * the replay engine can deduplicate, shard, and kernelize them.
     * The default — kept by history-dependent policies and any
     * external registration that does not opt in — reports
     * Kind::None, which routes the policy onto the virtual-dispatch
     * fallback path.
     */
    virtual KernelSpec kernelSpec() const { return {}; }

    /** Accumulated operating-category counts. */
    const energy::CycleCounts &counts() const { return counts_; }

    /** Reset accumulated state. */
    virtual void reset();

  protected:
    /** Policy hook: one complete idle interval of @p len cycles. */
    virtual void doIdleRun(Cycle len) = 0;

    /**
     * Policy hook for @p count separate idle runs of @p len cycles
     * each. The default loops over doIdleRun(); controllers whose
     * per-run accounting is independent of history override this
     * with a multiply, enabling O(distinct lengths) replay of
     * idle-interval histograms during technology sweeps.
     */
    virtual void doIdleRuns(Cycle len, std::uint64_t count);

    /** Policy hook: @p len consecutive busy cycles. */
    virtual void doActiveRun(Cycle len);

    energy::CycleCounts counts_;

  private:
    /** Throws std::invalid_argument if tick() left an unflushed
     * idle interval. */
    void assertFlushed(const char *call) const;

    Cycle pending_idle_ = 0;
};

/** Never asserts Sleep: idle cycles are all uncontrolled idle. */
class AlwaysActiveController : public SleepController
{
  public:
    std::string name() const override { return "AlwaysActive"; }

    KernelSpec kernelSpec() const override
    {
        KernelSpec spec;
        spec.kind = KernelSpec::Kind::AlwaysActive;
        return spec;
    }

  protected:
    void doIdleRun(Cycle len) override;
    void doIdleRuns(Cycle len, std::uint64_t count) override;
};

/** Asserts Sleep on the first cycle of every idle interval. */
class MaxSleepController : public SleepController
{
  public:
    std::string name() const override { return "MaxSleep"; }

    KernelSpec kernelSpec() const override
    {
        KernelSpec spec;
        spec.kind = KernelSpec::Kind::MaxSleep;
        return spec;
    }

  protected:
    void doIdleRun(Cycle len) override;
    void doIdleRuns(Cycle len, std::uint64_t count) override;
};

/**
 * MaxSleep with the transition cost waived: the unachievable lower
 * bound of Section 3.1.
 */
class NoOverheadController : public SleepController
{
  public:
    std::string name() const override { return "NoOverhead"; }

    KernelSpec kernelSpec() const override
    {
        KernelSpec spec;
        spec.kind = KernelSpec::Kind::NoOverhead;
        return spec;
    }

  protected:
    void doIdleRun(Cycle len) override;
    void doIdleRuns(Cycle len, std::uint64_t count) override;
};

/**
 * The GradualSleep design of Section 3.2: the unit is divided into
 * @p num_slices slices fed by a shift register; one more slice enters
 * sleep on each successive idle cycle, and all slices wake together.
 * Counts are fractional (in units of whole-FU cycles/transitions).
 */
class GradualSleepController : public SleepController
{
  public:
    /**
     * @param num_slices Slice count; the paper sets this to the
     * technology's breakeven interval (use
     * energy::breakevenInterval + llround, or the convenience factory
     * makeGradualSleep below).
     */
    explicit GradualSleepController(unsigned num_slices);

    std::string name() const override { return "GradualSleep"; }
    void reset() override;

    KernelSpec kernelSpec() const override
    {
        KernelSpec spec;
        spec.kind = KernelSpec::Kind::Gradual;
        spec.slices = slices_;
        return spec;
    }

    unsigned numSlices() const { return slices_; }

  protected:
    void doIdleRun(Cycle len) override;
    void doIdleRuns(Cycle len, std::uint64_t count) override;

  private:
    unsigned slices_;
};

/**
 * Weighted GradualSleep (extension): like GradualSleep but with
 * unequal slice sizes, entering sleep largest-first. This models the
 * paper's Section 6 suggestion of combining GradualSleep with
 * operand-width information (Brooks&Martonosi-style): the high-order
 * bytes of the datapath — usually idle — form a large slice that
 * sleeps on the first idle cycle, while the low-order slices follow.
 * Weights are fractions of the unit's gates and must sum to 1; slice
 * i enters the sleep state at idle cycle i+1.
 */
class WeightedGradualSleepController : public SleepController
{
  public:
    /** @param weights Per-slice gate fractions, sleep order. */
    explicit WeightedGradualSleepController(
        std::vector<double> weights);

    std::string name() const override
    {
        return "WeightedGradualSleep";
    }

    KernelSpec kernelSpec() const override
    {
        KernelSpec spec;
        spec.kind = KernelSpec::Kind::WeightedGradual;
        spec.weights = weights_;
        return spec;
    }

    const std::vector<double> &weights() const { return weights_; }

    /**
     * A 64-bit-datapath default inspired by operand-width studies:
     * the top 32 bits sleep immediately (operands are mostly
     * narrow), then 16, 8, and the busy low byte last.
     */
    static std::vector<double> datapathWeights();

  protected:
    void doIdleRun(Cycle len) override;
    void doIdleRuns(Cycle len, std::uint64_t count) override;

  private:
    std::vector<double> weights_;
    /** Prefix sums: fraction asleep after slice i has transitioned. */
    std::vector<double> asleep_after_;
};

/**
 * Classic timeout policy (extension): idle cycles up to the timeout
 * are uncontrolled; once the run exceeds the timeout the unit
 * transitions to sleep for the remainder. Timeout 0 degenerates to
 * MaxSleep.
 */
class TimeoutController : public SleepController
{
  public:
    explicit TimeoutController(Cycle timeout);

    std::string name() const override;

    KernelSpec kernelSpec() const override
    {
        KernelSpec spec;
        spec.kind = KernelSpec::Kind::Timeout;
        spec.timeout = timeout_;
        return spec;
    }

    Cycle timeout() const { return timeout_; }

  protected:
    void doIdleRun(Cycle len) override;
    void doIdleRuns(Cycle len, std::uint64_t count) override;

  private:
    Cycle timeout_;
};

/**
 * Oracle (extension): knows each idle interval's length when it
 * begins and sleeps immediately iff the interval is at least the
 * supplied breakeven length — the per-interval optimal choice
 * between AlwaysActive and MaxSleep behavior. Requires interval-
 * granularity feeding (idleRun with whole intervals); per-cycle
 * tick(false) calls would deprive it of lookahead and are rejected
 * in favour of correctness (each tick is treated as a length-1 run).
 */
class OracleController : public SleepController
{
  public:
    /** @param breakeven Sleep iff interval length >= breakeven. */
    explicit OracleController(double breakeven);

    std::string name() const override { return "Oracle"; }

    KernelSpec kernelSpec() const override
    {
        KernelSpec spec;
        spec.kind = KernelSpec::Kind::Oracle;
        spec.breakeven = breakeven_;
        return spec;
    }

    double breakeven() const { return breakeven_; }

  protected:
    void doIdleRun(Cycle len) override;
    void doIdleRuns(Cycle len, std::uint64_t count) override;

  private:
    double breakeven_;
};

/**
 * Adaptive predictor (extension): predicts the next idle interval
 * with an exponentially weighted moving average of past interval
 * lengths; sleeps from the first idle cycle when the prediction is
 * at least the breakeven, otherwise behaves as a timeout-at-breakeven
 * policy. This is the kind of "more complex control strategy" the
 * paper's conclusion argues may not be warranted.
 */
class AdaptiveController : public SleepController
{
  public:
    /**
     * @param breakeven Technology breakeven interval, cycles.
     * @param ewma_weight Weight of the newest interval in the EWMA.
     */
    AdaptiveController(double breakeven, double ewma_weight = 0.25);

    std::string name() const override { return "Adaptive"; }
    void reset() override;

    double prediction() const { return predicted_; }
    double ewmaWeight() const { return weight_; }
    double breakeven() const { return breakeven_; }

  protected:
    void doIdleRun(Cycle len) override;

  private:
    double breakeven_;
    double weight_;
    double predicted_;
};

/** Owning collection of one controller per policy under study. */
using ControllerSet = std::vector<std::unique_ptr<SleepController>>;

/**
 * Build the paper's four policies (MaxSleep, GradualSleep,
 * AlwaysActive, NoOverhead) configured for @p params: GradualSleep
 * slice count = round(breakeven interval).
 *
 * @deprecated Thin shim over
 * PolicyRegistry::makeSet(PolicyRegistry::paperSpecs(), params);
 * prefer naming policies through the registry.
 */
ControllerSet makePaperControllers(const energy::ModelParams &params);

/**
 * Build the extension set (Timeout at breakeven, Oracle, Adaptive)
 * for the complex-control ablation.
 *
 * @deprecated Thin shim over
 * PolicyRegistry::makeSet(PolicyRegistry::extensionSpecs(), params).
 */
ControllerSet makeExtensionControllers(const energy::ModelParams &params);

} // namespace lsim::sleep

#endif // LSIM_SLEEP_CONTROLLERS_HH
