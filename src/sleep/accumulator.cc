#include "sleep/accumulator.hh"

#include "common/logging.hh"

namespace lsim::sleep
{

void
RunLengthTrace::append(bool busy, Cycle len)
{
    if (len == 0)
        return;
    if (!runs.empty() && runs.back().busy == busy)
        runs.back().len += len;
    else
        runs.push_back({busy, len});
}

Cycle
RunLengthTrace::totalCycles() const
{
    Cycle total = 0;
    for (const auto &run : runs)
        total += run.len;
    return total;
}

Cycle
RunLengthTrace::busyCycles() const
{
    Cycle total = 0;
    for (const auto &run : runs)
        if (run.busy)
            total += run.len;
    return total;
}

RunLengthTrace
RunLengthTrace::fromBits(const std::vector<bool> &bits)
{
    RunLengthTrace trace;
    for (bool bit : bits)
        trace.append(bit, 1);
    return trace;
}

PolicyEvaluator::PolicyEvaluator(const energy::ModelParams &params,
                                 ControllerSet controllers)
    : model_(params), controllers_(std::move(controllers))
{
    if (controllers_.empty())
        fatal("PolicyEvaluator: no controllers registered");
}

PolicyEvaluator
PolicyEvaluator::paperPolicies(const energy::ModelParams &params)
{
    return PolicyEvaluator(params, makePaperControllers(params));
}

void
PolicyEvaluator::feedRun(bool busy, Cycle len)
{
    if (len == 0)
        return;
    total_ += len;
    if (busy) {
        idle_.activeRun(len);
        for (auto &ctrl : controllers_)
            ctrl->activeRun(len);
    } else {
        // Each feedRun(false, len) is a complete, maximal interval
        // (the FuPool sink emits maximal runs); close it in the
        // recorder so interval counting matches the controllers.
        idle_.idleRuns(len, 1);
        for (auto &ctrl : controllers_)
            ctrl->idleRun(len);
    }
}

void
PolicyEvaluator::feedRuns(Cycle idle_len, std::uint64_t count)
{
    if (idle_len == 0 || count == 0)
        return;
    total_ += idle_len * count;
    idle_.idleRuns(idle_len, count);
    for (auto &ctrl : controllers_)
        ctrl->idleRuns(idle_len, count);
}

void
PolicyEvaluator::feedTrace(const RunLengthTrace &trace)
{
    for (const auto &run : trace.runs)
        feedRun(run.busy, run.len);
}

double
PolicyEvaluator::baseEnergy() const
{
    return model_.activeCycleEnergy() * static_cast<double>(total_);
}

std::vector<PolicyResult>
PolicyEvaluator::results() const
{
    std::vector<PolicyResult> out;
    out.reserve(controllers_.size());
    const double base = baseEnergy();
    for (const auto &ctrl : controllers_) {
        PolicyResult r;
        r.name = ctrl->name();
        r.counts = ctrl->counts();
        r.breakdown = model_.breakdown(r.counts);
        r.energy = r.breakdown.total();
        r.relative_to_base = base > 0.0 ? r.energy / base : 0.0;
        r.leakage_fraction = r.breakdown.leakageFraction();
        out.push_back(std::move(r));
    }
    return out;
}

PolicyResult
PolicyEvaluator::resultFor(const std::string &name) const
{
    for (const auto &r : results())
        if (r.name == name)
            return r;
    fatal("PolicyEvaluator: no controller named '%s'", name.c_str());
}

} // namespace lsim::sleep
