#include "sleep/controllers.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sleep/policy_registry.hh"

namespace lsim::sleep
{

void
SleepController::assertFlushed(const char *call) const
{
    if (pending_idle_ > 0)
        throw std::invalid_argument(
            "SleepController::" + std::string(call) + ": " +
            std::to_string(pending_idle_) +
            " cycles of tick()-fed idle are pending; call finish() "
            "before explicit run calls");
}

void
SleepController::doActiveRun(Cycle len)
{
    counts_.active += static_cast<double>(len);
}

void
SleepController::doIdleRuns(Cycle len, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        doIdleRun(len);
}

void
SleepController::reset()
{
    counts_ = energy::CycleCounts{};
    pending_idle_ = 0;
}

void
AlwaysActiveController::doIdleRun(Cycle len)
{
    counts_.unctrl_idle += static_cast<double>(len);
}

void
AlwaysActiveController::doIdleRuns(Cycle len, std::uint64_t count)
{
    counts_.unctrl_idle +=
        static_cast<double>(len) * static_cast<double>(count);
}

void
MaxSleepController::doIdleRun(Cycle len)
{
    if (len == 0)
        return;
    counts_.transitions += 1.0;
    counts_.sleep += static_cast<double>(len);
}

void
MaxSleepController::doIdleRuns(Cycle len, std::uint64_t count)
{
    if (len == 0)
        return;
    counts_.transitions += static_cast<double>(count);
    counts_.sleep +=
        static_cast<double>(len) * static_cast<double>(count);
}

void
NoOverheadController::doIdleRun(Cycle len)
{
    counts_.sleep += static_cast<double>(len);
}

void
NoOverheadController::doIdleRuns(Cycle len, std::uint64_t count)
{
    counts_.sleep +=
        static_cast<double>(len) * static_cast<double>(count);
}

GradualSleepController::GradualSleepController(unsigned num_slices)
    : slices_(num_slices)
{
    if (slices_ == 0)
        throw std::invalid_argument(
            "GradualSleepController: slice count must be >= 1");
}

void
GradualSleepController::doIdleRun(Cycle len)
{
    // Closed form over the whole run (equivalent to the per-cycle
    // shift register; see GradualSleepModel::idleCounts and the
    // cross-validation tests). m slices entered sleep during the run.
    const double n = static_cast<double>(slices_);
    const double length = static_cast<double>(len);
    const double m = std::min(length, n);

    counts_.transitions += m / n;
    counts_.unctrl_idle +=
        (m * (m - 1.0) / 2.0) / n + (n - m) / n * length;
    counts_.sleep += (m * length - m * (m - 1.0) / 2.0) / n;
}

void
GradualSleepController::doIdleRuns(Cycle len, std::uint64_t count)
{
    // Per-run accounting is history-free: scale one run by count.
    energy::CycleCounts before = counts_;
    doIdleRun(len);
    const double n = static_cast<double>(count);
    counts_.transitions =
        before.transitions + (counts_.transitions - before.transitions) * n;
    counts_.unctrl_idle =
        before.unctrl_idle + (counts_.unctrl_idle - before.unctrl_idle) * n;
    counts_.sleep = before.sleep + (counts_.sleep - before.sleep) * n;
}

void
GradualSleepController::reset()
{
    SleepController::reset();
}

WeightedGradualSleepController::WeightedGradualSleepController(
    std::vector<double> weights)
    : weights_(std::move(weights))
{
    if (weights_.empty())
        throw std::invalid_argument(
            "WeightedGradualSleepController: no slices");
    double total = 0.0;
    for (double w : weights_) {
        if (w <= 0.0)
            throw std::invalid_argument(
                "WeightedGradualSleepController: slice weight " +
                std::to_string(w) + " must be positive");
        total += w;
        asleep_after_.push_back(total);
    }
    if (std::abs(total - 1.0) > 1e-9)
        throw std::invalid_argument(
            "WeightedGradualSleepController: weights sum to " +
            std::to_string(total) + ", expected 1");
    asleep_after_.back() = 1.0; // exact despite rounding
}

std::vector<double>
WeightedGradualSleepController::datapathWeights()
{
    // High 32 bits, then 16, 8, and the low byte of a 64-bit
    // datapath.
    return {32.0 / 64, 16.0 / 64, 8.0 / 64, 8.0 / 64};
}

void
WeightedGradualSleepController::doIdleRun(Cycle len)
{
    doIdleRuns(len, 1);
}

void
WeightedGradualSleepController::doIdleRuns(Cycle len,
                                         std::uint64_t count)
{
    if (len == 0 || count == 0)
        return;
    const double n = static_cast<double>(count);
    const double length = static_cast<double>(len);
    // Slice i (0-based) transitions at idle cycle i+1 when the run
    // is long enough; it idles uncontrolled for i cycles and sleeps
    // for (len - i) cycles. Slices that never transition idle
    // uncontrolled for the whole run.
    const std::size_t m =
        std::min<std::size_t>(weights_.size(),
                              static_cast<std::size_t>(len));
    double trans = 0.0, ui = 0.0, sleep = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        const double w = weights_[i];
        trans += w;
        ui += w * static_cast<double>(i);
        sleep += w * (length - static_cast<double>(i));
    }
    const double awake = 1.0 - (m > 0 ? asleep_after_[m - 1] : 0.0);
    ui += awake * length;
    counts_.transitions += trans * n;
    counts_.unctrl_idle += ui * n;
    counts_.sleep += sleep * n;
}

TimeoutController::TimeoutController(Cycle timeout)
    : timeout_(timeout)
{
}

void
TimeoutController::doIdleRun(Cycle len)
{
    const double length = static_cast<double>(len);
    const double wait = static_cast<double>(std::min(len, timeout_));
    counts_.unctrl_idle += wait;
    if (len > timeout_) {
        counts_.transitions += 1.0;
        counts_.sleep += length - wait;
    }
}

void
TimeoutController::doIdleRuns(Cycle len, std::uint64_t count)
{
    const double n = static_cast<double>(count);
    const double length = static_cast<double>(len);
    const double wait = static_cast<double>(std::min(len, timeout_));
    counts_.unctrl_idle += wait * n;
    if (len > timeout_) {
        counts_.transitions += n;
        counts_.sleep += (length - wait) * n;
    }
}

std::string
TimeoutController::name() const
{
    return "Timeout(" + std::to_string(timeout_) + ")";
}

OracleController::OracleController(double breakeven)
    : breakeven_(breakeven)
{
}

void
OracleController::doIdleRun(Cycle len)
{
    if (static_cast<double>(len) >= breakeven_) {
        counts_.transitions += 1.0;
        counts_.sleep += static_cast<double>(len);
    } else {
        counts_.unctrl_idle += static_cast<double>(len);
    }
}

void
OracleController::doIdleRuns(Cycle len, std::uint64_t count)
{
    const double n = static_cast<double>(count);
    if (static_cast<double>(len) >= breakeven_) {
        counts_.transitions += n;
        counts_.sleep += static_cast<double>(len) * n;
    } else {
        counts_.unctrl_idle += static_cast<double>(len) * n;
    }
}

AdaptiveController::AdaptiveController(double breakeven,
                                       double ewma_weight)
    : breakeven_(breakeven), weight_(ewma_weight),
      predicted_(breakeven)
{
    if (weight_ <= 0.0 || weight_ > 1.0)
        throw std::invalid_argument(
            "AdaptiveController: EWMA weight " +
            std::to_string(weight_) + " outside (0,1]");
}

void
AdaptiveController::doIdleRun(Cycle len)
{
    const double length = static_cast<double>(len);
    if (predicted_ >= breakeven_) {
        // Predicted long: sleep from the first idle cycle.
        counts_.transitions += 1.0;
        counts_.sleep += length;
    } else {
        // Predicted short: hedge with a timeout at the breakeven.
        const double wait = std::min(length, breakeven_);
        counts_.unctrl_idle += wait;
        if (length > breakeven_) {
            counts_.transitions += 1.0;
            counts_.sleep += length - wait;
        }
    }
    predicted_ = weight_ * length + (1.0 - weight_) * predicted_;
}

void
AdaptiveController::reset()
{
    SleepController::reset();
    predicted_ = breakeven_;
}

ControllerSet
makePaperControllers(const energy::ModelParams &params)
{
    return PolicyRegistry::instance().makeSet(
        PolicyRegistry::paperSpecs(), params);
}

ControllerSet
makeExtensionControllers(const energy::ModelParams &params)
{
    return PolicyRegistry::instance().makeSet(
        PolicyRegistry::extensionSpecs(), params);
}

} // namespace lsim::sleep
