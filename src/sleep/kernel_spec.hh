/**
 * @file
 * Controller self-classification for batch replay kernels.
 *
 * A history-free sleep policy's contribution to CycleCounts is a
 * pure function of each idle interval's length, fully determined by
 * a handful of closed-form parameters (slice schedule, timeout,
 * breakeven threshold). KernelSpec is a controller's own statement
 * of those parameters: every built-in history-free controller
 * overrides SleepController::kernelSpec() to describe itself, so
 * the replay engine can
 *
 *  - deduplicate accumulators structurally (two controllers with
 *    equal specs accumulate bit-identical counts),
 *  - replay whole interval arrays through branch-regular batch
 *    kernels (replay/kernels.hh) instead of one virtual dispatch
 *    per interval length, and
 *  - reconstruct fresh controller instances for chunk-sharded
 *    replay without dynamic_cast chains.
 *
 * History-dependent policies (Adaptive) and externally registered
 * controllers that do not override kernelSpec() report Kind::None
 * and transparently take the virtual-dispatch fallback path — the
 * registry remains the single source of policy truth, and an
 * unclassified policy is never silently kernelized.
 */

#ifndef LSIM_SLEEP_KERNEL_SPEC_HH
#define LSIM_SLEEP_KERNEL_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lsim::sleep
{

class SleepController;

/**
 * Closed-form parameters of a history-free policy, as reported by
 * SleepController::kernelSpec(). Only the fields of the reported
 * kind are meaningful; the rest stay value-initialized so the
 * defaulted equality compares whole configurations.
 */
struct KernelSpec
{
    enum class Kind : std::uint8_t
    {
        None,            ///< no closed form (history/unknown): fallback
        AlwaysActive,    ///< all idle uncontrolled
        MaxSleep,        ///< sleep from the first idle cycle
        NoOverhead,      ///< MaxSleep with free transitions
        Gradual,         ///< equal slices; uses `slices`
        WeightedGradual, ///< unequal slices; uses `weights`
        Timeout,         ///< sleep past a timeout; uses `timeout`
        Oracle,          ///< sleep iff len >= threshold; uses `breakeven`
    };

    Kind kind = Kind::None;
    unsigned slices = 0;          ///< Gradual slice count (>= 1)
    Cycle timeout = 0;            ///< Timeout threshold, cycles
    double breakeven = 0.0;       ///< Oracle threshold, cycles
    std::vector<double> weights;  ///< WeightedGradual slice fractions

    /** True when a batch kernel (and chunk sharding) applies. */
    bool historyFree() const { return kind != Kind::None; }

    bool operator==(const KernelSpec &) const = default;

    /** Short diagnostic key, e.g. "gradual:12", "timeout:64". */
    std::string key() const;

    /**
     * A fresh controller with exactly this configuration — the
     * chunk-replay counterpart of the prototype controller. fatal()s
     * on Kind::None (fallback policies cannot be reconstructed).
     */
    std::unique_ptr<SleepController> makeController() const;
};

} // namespace lsim::sleep

#endif // LSIM_SLEEP_KERNEL_SPEC_HH
