/**
 * @file
 * Energy accounting harness tying busy/idle streams, sleep
 * controllers and the analytical energy model together.
 *
 * The simulator (or a synthetic interval source) feeds run-length
 * encoded busy/idle runs; every registered controller sees the same
 * stream and accumulates its own operating-category counts; results
 * are normalized per the paper's E_base (energy if the unit computed
 * on 100% of cycles, eq. 9) to reproduce Figures 8 and 9.
 */

#ifndef LSIM_SLEEP_ACCUMULATOR_HH
#define LSIM_SLEEP_ACCUMULATOR_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "energy/model.hh"
#include "sleep/controllers.hh"
#include "sleep/idle_stats.hh"

namespace lsim::sleep
{

/** Run-length encoded busy/idle stream of one functional unit. */
struct RunLengthTrace
{
    /** One maximal run of consecutive same-state cycles. */
    struct Run
    {
        bool busy;
        Cycle len;
    };

    std::vector<Run> runs;

    /** Append a run, merging with the previous run if same state. */
    void append(bool busy, Cycle len);

    /** Total cycles covered. */
    Cycle totalCycles() const;

    /** Total busy cycles. */
    Cycle busyCycles() const;

    /** Build from a per-cycle busy bit vector. */
    static RunLengthTrace fromBits(const std::vector<bool> &bits);
};

/** Per-policy outcome of one evaluation. */
struct PolicyResult
{
    std::string name;
    energy::CycleCounts counts;
    energy::EnergyBreakdown breakdown; ///< normalized to E_A
    double energy = 0.0;               ///< normalized total (E_A units)
    double relative_to_base = 0.0;     ///< energy / E_base (Fig. 8 axis)
    double leakage_fraction = 0.0;     ///< Fig. 9b axis
};

/**
 * Evaluates a set of controllers against busy/idle streams under one
 * ModelParams technology point.
 */
class PolicyEvaluator
{
  public:
    /**
     * @param params Technology/application parameters.
     * @param controllers Policies to evaluate (takes ownership).
     */
    PolicyEvaluator(const energy::ModelParams &params,
                    ControllerSet controllers);

    /** Convenience: the paper's four policies. */
    static PolicyEvaluator paperPolicies(const energy::ModelParams &p);

    /**
     * Feed one maximal run to every controller (and the idle
     * recorder). An idle run is a complete interval: consecutive
     * idle feedRun calls count as separate intervals.
     */
    void feedRun(bool busy, Cycle len);

    /**
     * Feed @p count separate idle runs of length @p len (bulk path
     * for replaying stored interval histograms).
     */
    void feedRuns(Cycle idle_len, std::uint64_t count);

    /** Feed a whole trace. */
    void feedTrace(const RunLengthTrace &trace);

    /** Total cycles fed so far. */
    Cycle totalCycles() const { return total_; }

    /** Idle statistics across the fed stream. */
    const IdleIntervalRecorder &idleStats() const { return idle_; }

    /**
     * E_base in normalized units: activeCycleEnergy() * totalCycles
     * (the unit computing on every cycle).
     */
    double baseEnergy() const;

    /** Results for every controller, in registration order. */
    std::vector<PolicyResult> results() const;

    /** Result for the controller named @p name; fatal() if absent. */
    PolicyResult resultFor(const std::string &name) const;

    const energy::EnergyModel &model() const { return model_; }

  private:
    energy::EnergyModel model_;
    ControllerSet controllers_;
    IdleIntervalRecorder idle_;
    Cycle total_ = 0;
};

} // namespace lsim::sleep

#endif // LSIM_SLEEP_ACCUMULATOR_HH
