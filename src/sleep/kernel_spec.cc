#include "sleep/kernel_spec.hh"

#include <cstdio>

#include "common/logging.hh"
#include "sleep/controllers.hh"

namespace lsim::sleep
{

std::string
KernelSpec::key() const
{
    switch (kind) {
    case Kind::None:
        return "none";
    case Kind::AlwaysActive:
        return "always-active";
    case Kind::MaxSleep:
        return "max-sleep";
    case Kind::NoOverhead:
        return "no-overhead";
    case Kind::Gradual:
        return "gradual:" + std::to_string(slices);
    case Kind::WeightedGradual: {
        std::string out = "weighted-gradual:";
        char buf[40];
        for (std::size_t i = 0; i < weights.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%a", weights[i]);
            if (i)
                out += ',';
            out += buf;
        }
        return out;
    }
    case Kind::Timeout:
        return "timeout:" + std::to_string(timeout);
    case Kind::Oracle: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%a", breakeven);
        return "oracle:" + std::string(buf);
    }
    }
    fatal("KernelSpec::key: bad kind %d", static_cast<int>(kind));
}

std::unique_ptr<SleepController>
KernelSpec::makeController() const
{
    switch (kind) {
    case Kind::AlwaysActive:
        return std::make_unique<AlwaysActiveController>();
    case Kind::MaxSleep:
        return std::make_unique<MaxSleepController>();
    case Kind::NoOverhead:
        return std::make_unique<NoOverheadController>();
    case Kind::Gradual:
        return std::make_unique<GradualSleepController>(slices);
    case Kind::WeightedGradual:
        return std::make_unique<WeightedGradualSleepController>(
            weights);
    case Kind::Timeout:
        return std::make_unique<TimeoutController>(timeout);
    case Kind::Oracle:
        return std::make_unique<OracleController>(breakeven);
    case Kind::None:
        break;
    }
    fatal("KernelSpec::makeController: '%s' has no closed form",
          key().c_str());
}

} // namespace lsim::sleep
