#include "common/fault.hh"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "obs/metrics.hh"

namespace lsim::fault
{

namespace
{

/** One parsed trigger. `remaining` is mutated as it fires. */
struct Trigger
{
    std::uint64_t after = 0;
    std::uint64_t remaining = ~std::uint64_t{0}; ///< count budget
    std::uint64_t every = 1;
    double prob = 0.0; ///< 0 = unconditional
    std::uint64_t seed = 0;
    int error_code = EIO;
};

/** Per-point trigger list plus hit/fired accounting. */
struct PointState
{
    std::vector<Trigger> triggers;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
};

/** Registry guard. The slow path only runs while faults are armed
 * (tests and chaos runs), so a plain mutex is plenty. */
Mutex &
registryMu()
{
    static Mutex mu;
    return mu;
}

std::map<std::string, PointState> &
registry()
{
    static std::map<std::string, PointState> points;
    return points;
}

/** Stateless per-hit draw: same (seed, n) -> same value, so a prob
 * schedule replays identically for a given hit sequence. */
double
drawUniform(std::uint64_t seed, std::uint64_t n)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (n + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) /
           static_cast<double>(1ull << 53);
}

int
errnoFromName(const std::string &name, const std::string &token)
{
    static const std::map<std::string, int> known = {
        {"EIO", EIO},           {"ENOSPC", ENOSPC},
        {"EACCES", EACCES},     {"EPIPE", EPIPE},
        {"ECONNRESET", ECONNRESET}, {"EAGAIN", EAGAIN},
        {"ETIMEDOUT", ETIMEDOUT},
    };
    const auto it = known.find(name);
    if (it != known.end())
        return it->second;
    try {
        std::size_t used = 0;
        const int code = std::stoi(name, &used);
        if (used == name.size() && code > 0)
            return code;
    } catch (const std::exception &) {
        // fall through to the diagnostic
    }
    throw std::invalid_argument("fault spec '" + token +
                                "': unknown error '" + name + "'");
}

std::uint64_t
parseU64Value(const std::string &value, const std::string &token)
{
    try {
        std::size_t used = 0;
        const std::uint64_t n = std::stoull(value, &used);
        if (used == value.size())
            return n;
    } catch (const std::exception &) {
        // fall through
    }
    throw std::invalid_argument("fault spec '" + token +
                                "': bad number '" + value + "'");
}

bool
validPointName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** Parse one "<point>:key=value:..." token into the registry. */
void
installOne(const std::string &token)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        const std::size_t colon = token.find(':', start);
        parts.push_back(token.substr(
            start, colon == std::string::npos ? colon
                                              : colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    const std::string point = parts.front();
    if (!validPointName(point))
        throw std::invalid_argument("fault spec '" + token +
                                    "': bad point name '" + point +
                                    "'");
    Trigger trigger;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &kv = parts[i];
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "fault spec '" + token + "': expected key=value, "
                "got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "after") {
            trigger.after = parseU64Value(value, token);
        } else if (key == "count") {
            trigger.remaining = parseU64Value(value, token);
            if (trigger.remaining == 0)
                throw std::invalid_argument(
                    "fault spec '" + token + "': count must be > 0");
        } else if (key == "every") {
            trigger.every = parseU64Value(value, token);
            if (trigger.every == 0)
                throw std::invalid_argument(
                    "fault spec '" + token + "': every must be > 0");
        } else if (key == "prob") {
            try {
                std::size_t used = 0;
                trigger.prob = std::stod(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                throw std::invalid_argument(
                    "fault spec '" + token + "': bad probability '" +
                    value + "'");
            }
            if (trigger.prob <= 0.0 || trigger.prob > 1.0)
                throw std::invalid_argument(
                    "fault spec '" + token +
                    "': prob must be in (0, 1]");
        } else if (key == "seed") {
            trigger.seed = parseU64Value(value, token);
        } else if (key == "error") {
            trigger.error_code = errnoFromName(value, token);
        } else {
            throw std::invalid_argument("fault spec '" + token +
                                        "': unknown key '" + key +
                                        "'");
        }
    }
    registry()[point].triggers.push_back(trigger);
}

} // namespace

namespace detail
{

std::atomic<bool> g_armed{false};

bool
shouldFail(const char *point, int *error_code)
{
    MutexLock lock(registryMu());
    auto &points = registry();
    auto it = points.find(point);
    if (it == points.end()) {
        // Unregistered points still count hits so tests can assert
        // a site was reached even with no trigger on it.
        points[point].hits += 1;
        return false;
    }
    PointState &state = it->second;
    state.hits += 1;
    for (Trigger &trigger : state.triggers) {
        if (trigger.remaining == 0)
            continue;
        if (state.hits <= trigger.after)
            continue;
        const std::uint64_t eligible = state.hits - trigger.after;
        if (eligible % trigger.every != 0)
            continue;
        if (trigger.prob > 0.0 &&
            drawUniform(trigger.seed, state.hits) >= trigger.prob)
            continue;
        if (trigger.remaining != ~std::uint64_t{0})
            trigger.remaining -= 1;
        state.fired += 1;
        if (error_code)
            *error_code = trigger.error_code;
        obs::counter("fault.injected").add();
        return true;
    }
    return false;
}

} // namespace detail

void
configure(const std::string &specs)
{
    // Validate-and-install token by token; a throw leaves earlier
    // tokens installed, which configure()'s additive contract allows
    // (callers treat any throw as fatal configuration anyway).
    MutexLock lock(registryMu());
    std::size_t start = 0;
    bool installed = false;
    while (start <= specs.size()) {
        std::size_t end = specs.find_first_of(", \t\n", start);
        if (end == std::string::npos)
            end = specs.size();
        if (end > start) {
            installOne(specs.substr(start, end - start));
            installed = true;
        }
        start = end + 1;
    }
    if (installed)
        detail::g_armed.store(true, std::memory_order_relaxed);
}

void
configureFromEnv()
{
    const char *env = std::getenv("LSIM_FAULTS");
    if (env && *env)
        configure(env);
}

void
reset()
{
    MutexLock lock(registryMu());
    registry().clear();
    detail::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t
hits(const std::string &point)
{
    MutexLock lock(registryMu());
    const auto it = registry().find(point);
    return it == registry().end() ? 0 : it->second.hits;
}

std::uint64_t
fired(const std::string &point)
{
    MutexLock lock(registryMu());
    const auto it = registry().find(point);
    return it == registry().end() ? 0 : it->second.fired;
}

} // namespace lsim::fault
