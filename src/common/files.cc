#include "common/files.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/fault.hh"
#include "common/logging.hh"

namespace lsim
{

namespace fs = std::filesystem;

bool
atomicWriteFile(const std::string &path, const std::string &data)
{
    int injected = 0;
    if (LSIM_FAULT_ERRNO("file.write", &injected)) {
        warn("atomicWriteFile: cannot write '%s': %s [injected]",
             path.c_str(), std::strerror(injected));
        return false;
    }
    // Unique temp name per process x call so concurrent writers
    // (threads or separate processes sharing a directory) never
    // collide; rename() within one directory is atomic on POSIX.
    static std::atomic<unsigned> counter{0};
    const std::string tmp = path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid())) + "." +
        std::to_string(counter.fetch_add(1));

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("atomicWriteFile: cannot write '%s'", tmp.c_str());
            return false;
        }
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        out.flush();
        if (!out) {
            warn("atomicWriteFile: short write to '%s'", tmp.c_str());
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("atomicWriteFile: cannot install '%s': %s", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<FileLock>
FileLock::acquire(const std::string &path, unsigned timeout_ms)
{
    if (LSIM_FAULT("file.lock")) {
        warn("FileLock: timed out after %u ms waiting for '%s' "
             "[injected]",
             timeout_ms, path.c_str());
        return std::nullopt;
    }
    const int fd =
        ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0666);
    if (fd < 0) {
        warn("FileLock: cannot open '%s': %s", path.c_str(),
             std::strerror(errno));
        return std::nullopt;
    }
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (::flock(fd, LOCK_EX | LOCK_NB) == 0)
            return FileLock(fd);
        if (errno != EWOULDBLOCK && errno != EINTR) {
            warn("FileLock: cannot lock '%s': %s", path.c_str(),
                 std::strerror(errno));
            ::close(fd);
            return std::nullopt;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            warn("FileLock: timed out after %u ms waiting for '%s'",
                 timeout_ms, path.c_str());
            ::close(fd);
            return std::nullopt;
        }
        // Holders keep the lock for one small-file rewrite, so a
        // short poll beats the bookkeeping of a blocking wait with
        // its own timeout machinery.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

FileLock::~FileLock()
{
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }
}

FileLock::FileLock(FileLock &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

FileLock &
FileLock::operator=(FileLock &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

} // namespace lsim
