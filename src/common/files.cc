#include "common/files.hh"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"

namespace lsim
{

namespace fs = std::filesystem;

bool
atomicWriteFile(const std::string &path, const std::string &data)
{
    // Unique temp name per process x call so concurrent writers
    // (threads or separate processes sharing a directory) never
    // collide; rename() within one directory is atomic on POSIX.
    static std::atomic<unsigned> counter{0};
    const std::string tmp = path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid())) + "." +
        std::to_string(counter.fetch_add(1));

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("atomicWriteFile: cannot write '%s'", tmp.c_str());
            return false;
        }
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        out.flush();
        if (!out) {
            warn("atomicWriteFile: short write to '%s'", tmp.c_str());
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("atomicWriteFile: cannot install '%s': %s", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace lsim
