#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace lsim
{

JsonWriter::JsonWriter(std::ostream &os)
    : os_(os)
{
}

void
JsonWriter::separator()
{
    if (!first_.empty()) {
        if (!first_.back())
            os_ << ",";
        first_.back() = false;
    }
}

void
JsonWriter::key(const std::string &name)
{
    separator();
    os_ << "\"" << escape(name) << "\":";
}

void
JsonWriter::raw(const std::string &text)
{
    os_ << text;
}

void
JsonWriter::beginObject()
{
    separator();
    os_ << "{";
    first_.push_back(true);
    ++depth_;
    started_ = true;
}

void
JsonWriter::beginObject(const std::string &name)
{
    key(name);
    os_ << "{";
    first_.push_back(true);
    ++depth_;
}

void
JsonWriter::endObject()
{
    if (depth_ == 0)
        panic("JsonWriter::endObject with no open scope");
    os_ << "}";
    first_.pop_back();
    --depth_;
}

void
JsonWriter::beginArray()
{
    separator();
    os_ << "[";
    first_.push_back(true);
    ++depth_;
    started_ = true;
}

void
JsonWriter::beginArray(const std::string &name)
{
    key(name);
    os_ << "[";
    first_.push_back(true);
    ++depth_;
}

void
JsonWriter::endArray()
{
    if (depth_ == 0)
        panic("JsonWriter::endArray with no open scope");
    os_ << "]";
    first_.pop_back();
    --depth_;
}

void
JsonWriter::field(const std::string &name, const std::string &v)
{
    key(name);
    os_ << "\"" << escape(v) << "\"";
}

void
JsonWriter::field(const std::string &name, const char *v)
{
    field(name, std::string(v));
}

void
JsonWriter::field(const std::string &name, double v)
{
    key(name);
    raw(number(v));
}

void
JsonWriter::field(const std::string &name, std::uint64_t v)
{
    key(name);
    os_ << v;
}

void
JsonWriter::field(const std::string &name, unsigned v)
{
    field(name, static_cast<std::uint64_t>(v));
}

void
JsonWriter::field(const std::string &name, bool v)
{
    key(name);
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    separator();
    os_ << "\"" << escape(v) << "\"";
}

void
JsonWriter::value(double v)
{
    separator();
    raw(number(v));
}

void
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

// ------------------------------------------------------------- parsing

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue out;
    out.kind_ = Kind::Number;
    out.number_ = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue out;
    out.kind_ = Kind::Array;
    out.items_ = std::move(items);
    return out;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue out;
    out.kind_ = Kind::Object;
    out.members_ = std::move(members);
    return out;
}

namespace
{

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "a boolean";
      case JsonValue::Kind::Number: return "a number";
      case JsonValue::Kind::String: return "a string";
      case JsonValue::Kind::Array: return "an array";
      case JsonValue::Kind::Object: return "an object";
    }
    return "unknown";
}

[[noreturn]] void
wrongKind(JsonValue::Kind have, const char *want)
{
    throw std::invalid_argument(std::string("JSON value is ") +
                                kindName(have) + ", expected " +
                                want);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        wrongKind(kind_, "a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        wrongKind(kind_, "a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        wrongKind(kind_, "a string");
    return string_;
}

std::uint64_t
JsonValue::asU64() const
{
    const double v = asNumber();
    // The bound is exactly 2^64; v == bound must be rejected too,
    // since the cast back would be undefined.
    if (!(v >= 0.0) || v != std::floor(v) ||
        v >= 1.8446744073709552e19)
        throw std::invalid_argument(
            "JSON number is not a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        wrongKind(kind_, "an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        wrongKind(kind_, "an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members())
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (const JsonValue *v = find(key))
        return *v;
    throw std::invalid_argument("missing JSON field '" + key + "'");
}

namespace
{

/** Recursive-descent RFC 8259 parser over an in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text)
        : text_(text)
    {
    }

    JsonValue parse()
    {
        JsonValue v = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    // Nesting bound: malformed/hostile input must not overflow the
    // parser's call stack.
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void fail(const std::string &message) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw std::invalid_argument(
            "JSON parse error at " + std::to_string(line) + ":" +
            std::to_string(col) + ": " + message);
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char ch)
    {
        if (pos_ >= text_.size() || text_[pos_] != ch)
            fail(std::string("expected '") + ch + "'");
        ++pos_;
    }

    bool consumeKeyword(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        skipWhitespace();
        switch (peek()) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return JsonValue::makeString(parseString());
          case 't':
            if (consumeKeyword("true"))
                return JsonValue::makeBool(true);
            fail("invalid literal");
          case 'f':
            if (consumeKeyword("false"))
                return JsonValue::makeBool(false);
            fail("invalid literal");
          case 'n':
            if (consumeKeyword("null"))
                return JsonValue();
            fail("invalid literal");
          default: return parseNumber();
        }
    }

    JsonValue parseObject(int depth)
    {
        expect('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            members.emplace_back(std::move(key),
                                 parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue::makeObject(std::move(members));
        }
    }

    JsonValue parseArray(int depth)
    {
        expect('[');
        std::vector<JsonValue> items;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return JsonValue::makeArray(std::move(items));
        }
        while (true) {
            items.push_back(parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue::makeArray(std::move(items));
        }
    }

    std::string parseString()
    {
        if (peek() != '"')
            fail("expected a string");
        ++pos_;
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char ch = text_[pos_++];
            if (ch == '"')
                return out;
            if (static_cast<unsigned char>(ch) < 0x20)
                fail("unescaped control character in string");
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("invalid escape sequence");
            }
        }
    }

    unsigned parseHex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char ch = text_[pos_++];
            code <<= 4;
            if (ch >= '0' && ch <= '9')
                code |= static_cast<unsigned>(ch - '0');
            else if (ch >= 'a' && ch <= 'f')
                code |= static_cast<unsigned>(ch - 'a' + 10);
            else if (ch >= 'A' && ch <= 'F')
                code |= static_cast<unsigned>(ch - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return code;
    }

    std::string parseUnicodeEscape()
    {
        unsigned code = parseHex4();
        // Surrogate halves are not characters: a high surrogate must
        // be immediately followed by an escaped low surrogate (the
        // pair encodes one supplementary-plane code point), and a
        // bare low surrogate is always an error. Passing either
        // through would emit invalid UTF-8 that poisons every
        // downstream consumer of the string.
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
                fail("unpaired high surrogate in \\u escape");
            pos_ += 2;
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("unpaired high surrogate in \\u escape");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
        }

        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v)) {
            pos_ = start;
            fail("malformed number '" + token + "'");
        }
        return JsonValue::makeNumber(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::invalid_argument("cannot open JSON file '" + path +
                                    "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        return parseJson(ss.str());
    } catch (const std::invalid_argument &err) {
        throw std::invalid_argument(path + ": " + err.what());
    }
}

} // namespace lsim
