#include "common/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace lsim
{

JsonWriter::JsonWriter(std::ostream &os)
    : os_(os)
{
}

void
JsonWriter::separator()
{
    if (!first_.empty()) {
        if (!first_.back())
            os_ << ",";
        first_.back() = false;
    }
}

void
JsonWriter::key(const std::string &name)
{
    separator();
    os_ << "\"" << escape(name) << "\":";
}

void
JsonWriter::raw(const std::string &text)
{
    os_ << text;
}

void
JsonWriter::beginObject()
{
    separator();
    os_ << "{";
    first_.push_back(true);
    ++depth_;
    started_ = true;
}

void
JsonWriter::beginObject(const std::string &name)
{
    key(name);
    os_ << "{";
    first_.push_back(true);
    ++depth_;
}

void
JsonWriter::endObject()
{
    if (depth_ == 0)
        panic("JsonWriter::endObject with no open scope");
    os_ << "}";
    first_.pop_back();
    --depth_;
}

void
JsonWriter::beginArray()
{
    separator();
    os_ << "[";
    first_.push_back(true);
    ++depth_;
    started_ = true;
}

void
JsonWriter::beginArray(const std::string &name)
{
    key(name);
    os_ << "[";
    first_.push_back(true);
    ++depth_;
}

void
JsonWriter::endArray()
{
    if (depth_ == 0)
        panic("JsonWriter::endArray with no open scope");
    os_ << "]";
    first_.pop_back();
    --depth_;
}

void
JsonWriter::field(const std::string &name, const std::string &v)
{
    key(name);
    os_ << "\"" << escape(v) << "\"";
}

void
JsonWriter::field(const std::string &name, const char *v)
{
    field(name, std::string(v));
}

void
JsonWriter::field(const std::string &name, double v)
{
    key(name);
    raw(number(v));
}

void
JsonWriter::field(const std::string &name, std::uint64_t v)
{
    key(name);
    os_ << v;
}

void
JsonWriter::field(const std::string &name, unsigned v)
{
    field(name, static_cast<std::uint64_t>(v));
}

void
JsonWriter::field(const std::string &name, bool v)
{
    key(name);
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    separator();
    os_ << "\"" << escape(v) << "\"";
}

void
JsonWriter::value(double v)
{
    separator();
    raw(number(v));
}

void
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace lsim
