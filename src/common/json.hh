/**
 * @file
 * Minimal JSON emission for machine-readable statistics dumps. Only
 * writing is supported (the simulator consumes no JSON); values are
 * escaped per RFC 8259.
 */

#ifndef LSIM_COMMON_JSON_HH
#define LSIM_COMMON_JSON_HH

#include <ostream>
#include <string>
#include <vector>

namespace lsim
{

/**
 * Streaming JSON writer with explicit begin/end nesting. Usage:
 * @code
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.field("ipc", 1.25);
 *   w.beginArray("units");
 *   w.value(0.5);
 *   w.endArray();
 *   w.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    /** Open the root or a nested object (named inside objects). */
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();

    /** Open an array (named inside objects). */
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();

    /** Emit a key/value pair inside an object. */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, unsigned value);
    void field(const std::string &key, bool value);

    /** Emit a bare value inside an array. */
    void value(const std::string &value);
    void value(double value);
    void value(std::uint64_t value);

    /** @return true when all opened scopes have been closed. */
    bool balanced() const { return depth_ == 0 && started_; }

  private:
    void separator();
    void key(const std::string &name);
    void raw(const std::string &text);
    static std::string escape(const std::string &text);
    static std::string number(double value);

    std::ostream &os_;
    std::vector<bool> first_; ///< per-scope "no element yet" flags
    int depth_ = 0;
    bool started_ = false;
};

} // namespace lsim

#endif // LSIM_COMMON_JSON_HH
