/**
 * @file
 * Minimal JSON support for machine-readable statistics dumps and for
 * the user-facing ingestion paths (custom workload profiles, batch
 * specs, imported idle profiles). JsonWriter emits RFC 8259 JSON;
 * parseJson() reads it back into a JsonValue tree.
 */

#ifndef LSIM_COMMON_JSON_HH
#define LSIM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lsim
{

/**
 * Streaming JSON writer with explicit begin/end nesting. Usage:
 * @code
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.field("ipc", 1.25);
 *   w.beginArray("units");
 *   w.value(0.5);
 *   w.endArray();
 *   w.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    /** Open the root or a nested object (named inside objects). */
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();

    /** Open an array (named inside objects). */
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();

    /** Emit a key/value pair inside an object. */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, unsigned value);
    void field(const std::string &key, bool value);

    /** Emit a bare value inside an array. */
    void value(const std::string &value);
    void value(double value);
    void value(std::uint64_t value);

    /** @return true when all opened scopes have been closed. */
    bool balanced() const { return depth_ == 0 && started_; }

  private:
    void separator();
    void key(const std::string &name);
    void raw(const std::string &text);
    static std::string escape(const std::string &text);
    static std::string number(double value);

    std::ostream &os_;
    std::vector<bool> first_; ///< per-scope "no element yet" flags
    int depth_ = 0;
    bool started_ = false;
};

/**
 * One parsed JSON value. Structured as a tree: arrays own their
 * element values, objects own ordered (key, value) member pairs.
 *
 * Accessors throw std::invalid_argument when the value is not of the
 * requested kind, so ingestion code can surface "field X is not a
 * number" errors without manual kind checks at every site. These are
 * user-input errors, never programmer errors, hence throw rather
 * than fatal() (the same convention as sleep::PolicyRegistry).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default; ///< null

    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Number checked to be a non-negative integer (fits uint64). */
    std::uint64_t asU64() const;

    /** Array elements, in document order. */
    const std::vector<JsonValue> &items() const;

    /** Object members, in document order (duplicates preserved). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Object member named @p key, or nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Object member named @p key; throws when absent. */
    const JsonValue &at(const std::string &key) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one JSON document from @p text (trailing whitespace only
 * after the value). Throws std::invalid_argument with a line:column
 * position on malformed input.
 */
JsonValue parseJson(const std::string &text);

/** parseJson() over the contents of @p path; throws
 * std::invalid_argument when the file cannot be read. */
JsonValue parseJsonFile(const std::string &path);

} // namespace lsim

#endif // LSIM_COMMON_JSON_HH
