/**
 * @file
 * Clang thread-safety-analysis attribute shim.
 *
 * Wraps the capability attributes behind macros that expand to
 * nothing on compilers without the analysis (gcc), so annotated code
 * stays portable. Clang builds compile with -Werror=thread-safety
 * (see CMakeLists), making the lock discipline these macros declare
 * a build-time invariant: reading a GUARDED_BY member without its
 * mutex, or calling a REQUIRES function unlocked, is a compile
 * error, not a code-review hope.
 *
 * The std::mutex family carries no capability attributes on
 * libstdc++, so annotated code locks through the lsim::Mutex /
 * lsim::MutexLock wrappers in common/mutex.hh instead.
 *
 * Macro names follow the modern Clang documentation (ACQUIRE /
 * RELEASE rather than the deprecated EXCLUSIVE_LOCK_FUNCTION
 * spellings).
 */

#ifndef LSIM_COMMON_THREAD_ANNOTATIONS_HH
#define LSIM_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LSIM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LSIM_THREAD_ANNOTATION
#define LSIM_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Type is a lockable capability (mutexes). */
#define CAPABILITY(x) LSIM_THREAD_ANNOTATION(capability(x))

/** RAII type that acquires a capability for its lifetime. */
#define SCOPED_CAPABILITY LSIM_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be touched while holding @p x. */
#define GUARDED_BY(x) LSIM_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched while holding @p x. */
#define PT_GUARDED_BY(x) LSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function may only be called while holding the listed locks. */
#define REQUIRES(...) \
    LSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function may only be called while NOT holding the listed locks. */
#define EXCLUDES(...) \
    LSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function acquires the listed locks (or `this` when empty). */
#define ACQUIRE(...) \
    LSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed locks (or `this` when empty). */
#define RELEASE(...) \
    LSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the lock iff it returns @p result. */
#define TRY_ACQUIRE(result, ...) \
    LSIM_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/** Function returns a reference to the capability @p x. */
#define RETURN_CAPABILITY(x) LSIM_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: suppress analysis inside this function. */
#define NO_THREAD_SAFETY_ANALYSIS \
    LSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // LSIM_COMMON_THREAD_ANNOTATIONS_HH
