/**
 * @file
 * Capability-annotated locking primitives.
 *
 * libstdc++'s std::mutex carries no thread-safety attributes, so
 * code locking it directly is invisible to clang's analysis. These
 * thin wrappers re-export std::mutex locking through an annotated
 * surface: declare data GUARDED_BY(mu_) and every access is checked
 * at compile time (clang builds run -Werror=thread-safety).
 *
 * Condition variables: std::condition_variable demands a
 * std::unique_lock<std::mutex>, which would bypass the annotations,
 * so waiting code uses CondVar (std::condition_variable_any — works
 * with any BasicLockable, including MutexLock) and spells the
 * predicate as an explicit while loop:
 *
 *     MutexLock lock(mu_);
 *     while (!ready_)          // guarded read, provably under mu_
 *         cv_.wait(lock);
 *
 * The explicit loop (rather than the predicate-lambda overload)
 * keeps the guarded reads inside a scope the analysis can see.
 */

#ifndef LSIM_COMMON_MUTEX_HH
#define LSIM_COMMON_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace lsim
{

/** std::mutex behind an annotated capability surface. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/**
 * RAII lock over a Mutex (the annotated std::lock_guard). Also
 * satisfies BasicLockable so CondVar::wait(lock) can release and
 * reacquire it around the sleep; those calls happen inside system
 * headers, outside the analysis, and re-establish the invariant
 * "held on return" that the annotations describe.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    // BasicLockable, for std::condition_variable_any::wait only.
    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }

  private:
    Mutex &mu_;
};

/** Condition variable that waits on a MutexLock. */
using CondVar = std::condition_variable_any;

} // namespace lsim

#endif // LSIM_COMMON_MUTEX_HH
