/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small, fast xoshiro256** generator is used rather than std::mt19937
 * so that traces are bit-reproducible across standard library
 * implementations (libstdc++/libc++ agree on mersenne twister, but
 * distributions such as std::geometric_distribution are not portable).
 * All distribution sampling is implemented here explicitly.
 */

#ifndef LSIM_COMMON_RANDOM_HH
#define LSIM_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace lsim
{

/**
 * xoshiro256** deterministic PRNG with explicit, portable
 * distribution samplers.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform integer in [0, bound) (bound > 0). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling; the slight
        // modulo bias of the simple form is irrelevant at our bounds
        // but we reject to keep the stream unbiased anyway.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            const std::uint64_t t = (0 - bound) % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return true with probability @p prob (clamped to [0,1]). */
    bool
    chance(double prob)
    {
        return uniform() < prob;
    }

    /**
     * Geometric sample >= 1 with success probability @p prob: the
     * number of trials up to and including the first success.
     */
    std::uint64_t
    geometric(double prob)
    {
        if (prob >= 1.0)
            return 1;
        if (prob <= 0.0)
            return 1;
        const double u = 1.0 - uniform(); // in (0, 1]
        const double val = std::ceil(std::log(u) / std::log1p(-prob));
        return val < 1.0 ? 1 : static_cast<std::uint64_t>(val);
    }

    /** @return integer uniform in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace lsim

#endif // LSIM_COMMON_RANDOM_HH
