/**
 * @file
 * Lightweight statistics primitives: scalar counters, running
 * mean/variance, and the power-of-two interval histogram used for the
 * paper's Figure 7 idle-interval distributions.
 */

#ifndef LSIM_COMMON_STATS_HH
#define LSIM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lsim::stats
{

/**
 * Running scalar statistic: count, sum, min, max, mean and variance
 * via Welford's algorithm.
 */
class Scalar
{
  public:
    /** Accumulate one sample. */
    void sample(double value);

    /** Accumulate @p n identical samples of @p value. */
    void sampleN(double value, std::uint64_t n);

    /** Merge another scalar's samples into this one. */
    void merge(const Scalar &other);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance of the samples seen so far. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Histogram over power-of-two buckets [1,2), [2,4), ... with an
 * overflow clamp bucket, matching the presentation of Figure 7 where
 * idle intervals longer than the clamp accumulate at the last marker.
 *
 * Bucket i covers values in [2^i, 2^(i+1)) except the final bucket
 * which accumulates everything >= clamp. Values of zero are ignored
 * (an idle interval has length >= 1 by construction).
 */
class Log2Histogram
{
  public:
    /**
     * @param clamp_value Values >= this accumulate in the final bucket.
     * Must be a power of two.
     */
    explicit Log2Histogram(std::uint64_t clamp_value = 8192);

    /** Add @p weight at @p value (weight defaults to the value itself
     * when accumulating "total cycles spent in intervals of this
     * size"; callers choose). */
    void sample(std::uint64_t value, double weight = 1.0);

    /** Number of buckets including the clamp bucket. */
    std::size_t numBuckets() const { return weights_.size(); }

    /** Lower bound of bucket @p i (2^i). */
    std::uint64_t bucketLow(std::size_t i) const;

    /** Accumulated weight in bucket @p i. */
    double bucketWeight(std::size_t i) const { return weights_[i]; }

    /** Sum of all bucket weights. */
    double totalWeight() const;

    /** Number of sample() calls that landed in any bucket. */
    std::uint64_t totalCount() const { return count_; }

    /** Merge another histogram with the same clamp. */
    void merge(const Log2Histogram &other);

    /**
     * Reconstruct a histogram from raw bucket state (the
     * deserialization path of the profile store). @p weights must
     * have exactly the bucket count implied by @p clamp_value;
     * fatal() otherwise.
     */
    static Log2Histogram fromBuckets(std::uint64_t clamp_value,
                                     std::vector<double> weights,
                                     std::uint64_t count);

    /** Normalize a copy so bucket weights sum to 1 (no-op if empty). */
    Log2Histogram normalized() const;

    /** Reset all buckets. */
    void reset();

    std::uint64_t clampValue() const { return clamp_; }

  private:
    std::uint64_t clamp_;
    std::vector<double> weights_;
    std::uint64_t count_ = 0;
};

/** @return floor(log2(v)) for v >= 1. */
int floorLog2(std::uint64_t v);

} // namespace lsim::stats

#endif // LSIM_COMMON_STATS_HH
