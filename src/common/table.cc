#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace lsim
{

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        panic("Table row arity %zu != header arity %zu",
              cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
fixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
sci(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
    return buf;
}

std::string
compactNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

} // namespace lsim
