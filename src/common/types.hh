/**
 * @file
 * Fundamental scalar types shared across all lsim subsystems.
 */

#ifndef LSIM_COMMON_TYPES_HH
#define LSIM_COMMON_TYPES_HH

#include <cstdint>

namespace lsim
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Virtual/physical memory address in the simulated machine. */
using Addr = std::uint64_t;

/** Energy in femtojoules. All circuit-level energies use this unit. */
using FemtoJoule = double;

/** Energy in picojoules (used for FU-level aggregates, 1 pJ = 1000 fJ). */
using PicoJoule = double;

/** Time in picoseconds (circuit-level delays). */
using PicoSecond = double;

/** Sentinel for "no register". */
inline constexpr int kNoReg = -1;

} // namespace lsim

#endif // LSIM_COMMON_TYPES_HH
