/**
 * @file
 * Bounded retry with exponential backoff + jitter, for transient
 * failures on shared resources (store writes, the index lock).
 * The jitter decorrelates N daemons retrying against one store so a
 * contended flush does not re-collide on every attempt; it is drawn
 * from a process-local counter, not wall-clock state, and the
 * deterministic subsystems (replay/sleep) never touch this header.
 *
 *     Backoff backoff(3, 2);           // 3 retries, 2 ms base
 *     for (;;) {
 *         if (tryTheThing())
 *             break;
 *         if (!backoff.next())         // sleeps ~2, ~4, ~8 ms
 *             return reportFailure();  // budget exhausted
 *     }
 */

#ifndef LSIM_COMMON_BACKOFF_HH
#define LSIM_COMMON_BACKOFF_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace lsim
{

class Backoff
{
  public:
    /** @p retries sleeps of @p base_ms * 2^k plus jitter in
     * [0, delay/2]. */
    Backoff(unsigned retries, unsigned base_ms)
        : retries_(retries), base_ms_(base_ms)
    {
        static std::atomic<std::uint64_t> salt{0};
        seed_ = salt.fetch_add(1, std::memory_order_relaxed);
    }

    /** Sleep for the next backoff delay. @return false (without
     * sleeping) once the retry budget is exhausted. */
    bool next()
    {
        if (used_ >= retries_)
            return false;
        const std::uint64_t delay_ms =
            static_cast<std::uint64_t>(base_ms_) << used_;
        ++used_;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            delay_ms + jitter(delay_ms / 2)));
        return true;
    }

    /** Retries consumed so far. */
    unsigned used() const { return used_; }

  private:
    std::uint64_t jitter(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // splitmix64 step over the per-instance seed.
        std::uint64_t z =
            (seed_ += 0x9e3779b97f4a7c15ull + used_);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return (z ^ (z >> 31)) % (bound + 1);
    }

    unsigned retries_;
    unsigned base_ms_;
    unsigned used_ = 0;
    std::uint64_t seed_;
};

} // namespace lsim

#endif // LSIM_COMMON_BACKOFF_HH
