/**
 * @file
 * Minimal CSV writer so bench harnesses can optionally dump raw series
 * for external plotting alongside the ASCII tables.
 */

#ifndef LSIM_COMMON_CSV_HH
#define LSIM_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace lsim
{

/**
 * Writes rows of cells to a CSV file or stream. Cells containing
 * commas or quotes are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write to an already-open stream (not owned). */
    explicit CsvWriter(std::ostream &os);

    /** Write one row. */
    void writeRow(const std::vector<std::string> &cells);

    /** @return true if the underlying stream is healthy. */
    bool good() const { return out().good(); }

  private:
    static std::string escape(const std::string &cell);

    std::ostream &out()
    {
        return external_ ? *external_
                         : static_cast<std::ostream &>(file_);
    }
    const std::ostream &out() const
    {
        return external_ ? *external_
                         : static_cast<const std::ostream &>(file_);
    }

    std::ofstream file_;
    std::ostream *external_ = nullptr;
};

} // namespace lsim

#endif // LSIM_COMMON_CSV_HH
