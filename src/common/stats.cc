#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace lsim::stats
{

void
Scalar::sample(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
Scalar::sampleN(double value, std::uint64_t n)
{
    if (n == 0)
        return;
    Scalar block;
    block.count_ = n;
    block.sum_ = value * static_cast<double>(n);
    block.min_ = block.max_ = value;
    block.mean_ = value;
    block.m2_ = 0.0;
    merge(block);
}

void
Scalar::merge(const Scalar &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Scalar::reset()
{
    *this = Scalar();
}

double
Scalar::variance() const
{
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double
Scalar::stddev() const
{
    return std::sqrt(variance());
}

int
floorLog2(std::uint64_t v)
{
    if (v == 0)
        panic("floorLog2(0) is undefined");
    return 63 - std::countl_zero(v);
}

Log2Histogram::Log2Histogram(std::uint64_t clamp_value)
    : clamp_(clamp_value)
{
    if (clamp_ == 0 || (clamp_ & (clamp_ - 1)) != 0)
        fatal("Log2Histogram clamp must be a power of two, got %llu",
              static_cast<unsigned long long>(clamp_));
    // Buckets [1,2), [2,4), ..., [clamp/2, clamp), plus clamp bucket.
    weights_.assign(static_cast<std::size_t>(floorLog2(clamp_)) + 1, 0.0);
}

void
Log2Histogram::sample(std::uint64_t value, double weight)
{
    if (value == 0)
        return;
    ++count_;
    std::size_t idx;
    if (value >= clamp_)
        idx = weights_.size() - 1;
    else
        idx = static_cast<std::size_t>(floorLog2(value));
    weights_[idx] += weight;
}

std::uint64_t
Log2Histogram::bucketLow(std::size_t i) const
{
    return std::uint64_t{1} << i;
}

double
Log2Histogram::totalWeight() const
{
    double total = 0.0;
    for (double w : weights_)
        total += w;
    return total;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    if (other.clamp_ != clamp_)
        fatal("cannot merge Log2Histograms with different clamps");
    for (std::size_t i = 0; i < weights_.size(); ++i)
        weights_[i] += other.weights_[i];
    count_ += other.count_;
}

Log2Histogram
Log2Histogram::normalized() const
{
    Log2Histogram result = *this;
    const double total = totalWeight();
    if (total > 0.0) {
        for (double &w : result.weights_)
            w /= total;
    }
    return result;
}

void
Log2Histogram::reset()
{
    std::fill(weights_.begin(), weights_.end(), 0.0);
    count_ = 0;
}

Log2Histogram
Log2Histogram::fromBuckets(std::uint64_t clamp_value,
                           std::vector<double> weights,
                           std::uint64_t count)
{
    Log2Histogram out(clamp_value);
    if (weights.size() != out.weights_.size())
        fatal("Log2Histogram::fromBuckets: %zu weights for a "
              "%llu-clamp histogram (want %zu)",
              weights.size(),
              static_cast<unsigned long long>(clamp_value),
              out.weights_.size());
    out.weights_ = std::move(weights);
    out.count_ = count;
    return out;
}

} // namespace lsim::stats
