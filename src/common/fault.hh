/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * Every failure domain in the serve/store tier (file writes, lock
 * acquisition, store serialization, socket I/O, queue transitions)
 * consults a named *fault point* before doing the real work. With no
 * faults configured the consult is one relaxed atomic load — the
 * macro below short-circuits before any function call — so shipping
 * the points compiled-in costs nothing on the hot path.
 *
 * Faults are armed from a trigger-spec string (the `LSIM_FAULTS`
 * environment variable, or `lsim serve --faults`):
 *
 *     <point>[:key=value]...[,<point>...]
 *
 *     store.write:after=3:error=EIO      skip 3 hits, then always fail
 *     socket.read:every=4                fail every 4th hit
 *     store.index.lock:count=2           fail the first 2 hits only
 *     file.write:prob=0.25:seed=7        fail ~25% of hits, seeded
 *
 * keys:
 *     after=N   pass the first N hits (default 0)
 *     count=M   fire at most M times (default unlimited)
 *     every=N   fire on every Nth eligible hit (default 1 = all)
 *     prob=P    fire with probability P in (0,1], decided by a
 *               stateless hash of (seed, hit index) — the same seed
 *               and hit sequence always yields the same schedule
 *     seed=S    seed for prob draws (default 0)
 *     error=E   errno to surface: a symbolic name (EIO, ENOSPC,
 *               EACCES, EPIPE, ECONNRESET, EAGAIN, ETIMEDOUT) or a
 *               decimal number (default EIO)
 *
 * Sites use the macros, never detail::shouldFail directly (the
 * linter enforces both the macro-only rule and that every store /
 * serve I/O call site sits behind a point):
 *
 *     if (LSIM_FAULT("store.write"))
 *         return false;                      // injected failure
 *     int err = 0;
 *     if (LSIM_FAULT_ERRNO("file.write", &err))
 *         ... strerror(err) ...
 *
 * The registry is process-global and thread-safe; hit/fired counts
 * per point are exposed for tests and dumped into the obs registry
 * (`fault.injected` total) so chaos runs are observable.
 */

#ifndef LSIM_COMMON_FAULT_HH
#define LSIM_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace lsim::fault
{

namespace detail
{

/** Armed flag: set iff at least one trigger is installed. The ONLY
 * thing a fault-point site touches when injection is off. */
extern std::atomic<bool> g_armed;

/** Slow path: record a hit on @p point and decide whether it fires.
 * When it fires and @p error_code is non-null, receives the
 * configured errno. Never called unless armed. */
bool shouldFail(const char *point, int *error_code);

} // namespace detail

/** True when any trigger is installed (one relaxed load). */
inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * Install triggers from a spec string (grammar above). Additive:
 * repeated calls accumulate triggers; a point may carry several (the
 * first that fires on a hit wins). Throws std::invalid_argument on
 * grammar errors, naming the offending token.
 */
void configure(const std::string &specs);

/** configure() from $LSIM_FAULTS when set and non-empty. */
void configureFromEnv();

/** Remove every trigger and disarm; hit/fired counts clear too. */
void reset();

/** Consults recorded against @p point since the last reset().
 * Counted only while armed (the disabled path records nothing). */
std::uint64_t hits(const std::string &point);

/** Faults actually injected at @p point since the last reset(). */
std::uint64_t fired(const std::string &point);

} // namespace lsim::fault

/** Fault-point site: true when an injected fault should fail the
 * operation here. Compiles to one relaxed atomic load when off. */
#define LSIM_FAULT(point)                                           \
    (lsim::fault::armed() &&                                        \
     lsim::fault::detail::shouldFail((point), nullptr))

/** LSIM_FAULT, surfacing the trigger's errno through @p errp. */
#define LSIM_FAULT_ERRNO(point, errp)                               \
    (lsim::fault::armed() &&                                        \
     lsim::fault::detail::shouldFail((point), (errp)))

#endif // LSIM_COMMON_FAULT_HH
