/**
 * @file
 * gem5-style status and error reporting: panic/fatal for errors,
 * warn/inform for status. panic() indicates an internal simulator bug
 * and aborts; fatal() indicates a user/configuration error and exits.
 */

#ifndef LSIM_COMMON_LOGGING_HH
#define LSIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace lsim
{

/**
 * Report an internal simulator bug and abort(). Use when a condition
 * that should be impossible regardless of user input has occurred.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but non-fatal conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Enable/disable inform() output (warnings and errors are always
 * printed). Benches silence informs to keep table output clean.
 */
void setInformEnabled(bool enabled);

/** @return true when inform() output is enabled. */
bool informEnabled();

/** panic() if @p cond is false; message includes @p msg. */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        panic("%s", msg);
}

} // namespace lsim

#endif // LSIM_COMMON_LOGGING_HH
