#include "common/csv.hh"

#include "common/logging.hh"

namespace lsim
{

CsvWriter::CsvWriter(const std::string &path)
    : file_(path)
{
    if (!file_)
        fatal("cannot open CSV output file '%s'", path.c_str());
}

CsvWriter::CsvWriter(std::ostream &os)
    : external_(&os)
{
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    auto &os = out();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        os << escape(cells[i]);
        if (i + 1 < cells.size())
            os << ',';
    }
    os << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace lsim
