/**
 * @file
 * ASCII table rendering for bench harness output. Bench binaries print
 * the same rows/series as the paper's tables and figures; this helper
 * keeps that output aligned and readable.
 */

#ifndef LSIM_COMMON_TABLE_HH
#define LSIM_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace lsim
{

/**
 * A simple column-aligned ASCII table. Usage:
 * @code
 *   Table t({"policy", "energy"});
 *   t.addRow({"MaxSleep", "0.42"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with header cells. */
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns and a rule under the header. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p digits digits after the decimal point. */
std::string fixed(double value, int digits = 3);

/** Format @p value in scientific notation with @p digits digits. */
std::string sci(double value, int digits = 2);

/**
 * Shortest round-trippable general format (%.12g) — shared by CSV
 * emission and policy-spec encoding.
 */
std::string compactNumber(double value);

} // namespace lsim

#endif // LSIM_COMMON_TABLE_HH
