/**
 * @file
 * Atomic whole-file writes. Result and status files produced by the
 * batch daemon (and the profile-store index) are read by concurrent
 * pollers — scripts watching a results directory, a second daemon
 * sharing a cache — so they must never be observable half-written.
 * POSIX rename() within one directory is atomic: a reader sees
 * either the old file, no file, or the complete new contents.
 */

#ifndef LSIM_COMMON_FILES_HH
#define LSIM_COMMON_FILES_HH

#include <string>

namespace lsim
{

/**
 * Write @p data to @p path atomically: the bytes go to a uniquely
 * named temp file in the same directory, which is then renamed over
 * @p path. An existing file is replaced in one step; no reader ever
 * sees a partial write.
 *
 * @return true on success; false (after a warn()) when the temp file
 * cannot be written or installed. The destination is left untouched
 * on failure.
 */
bool atomicWriteFile(const std::string &path, const std::string &data);

} // namespace lsim

#endif // LSIM_COMMON_FILES_HH
