/**
 * @file
 * Atomic whole-file writes. Result and status files produced by the
 * batch daemon (and the profile-store index) are read by concurrent
 * pollers — scripts watching a results directory, a second daemon
 * sharing a cache — so they must never be observable half-written.
 * POSIX rename() within one directory is atomic: a reader sees
 * either the old file, no file, or the complete new contents.
 */

#ifndef LSIM_COMMON_FILES_HH
#define LSIM_COMMON_FILES_HH

#include <optional>
#include <string>

namespace lsim
{

/**
 * Write @p data to @p path atomically: the bytes go to a uniquely
 * named temp file in the same directory, which is then renamed over
 * @p path. An existing file is replaced in one step; no reader ever
 * sees a partial write.
 *
 * @return true on success; false (after a warn()) when the temp file
 * cannot be written or installed. The destination is left untouched
 * on failure.
 */
bool atomicWriteFile(const std::string &path, const std::string &data);

/**
 * RAII exclusive advisory lock on a file, via flock(2). Used to
 * serialize cross-process read-modify-write cycles (the store
 * index's reload-merge-bump flush): atomic rename alone makes writes
 * torn-free but still last-writer-wins; the lock makes them ordered.
 *
 * flock locks belong to the open file description, so two handles in
 * one process exclude each other exactly like two processes, and the
 * kernel releases the lock if the holder dies — no stale-lockfile
 * recovery is ever needed. The lock file itself is a zero-byte
 * sentinel created on demand and intentionally never deleted
 * (unlinking a lock file that another process has already opened
 * would let a third process lock a *different* inode under the same
 * name).
 */
class FileLock
{
  public:
    /**
     * Try to acquire the exclusive lock on @p path, polling for up
     * to @p timeout_ms milliseconds. @return the held lock, or
     * std::nullopt (after a warn()) on timeout or when the lock file
     * cannot be opened.
     */
    static std::optional<FileLock> acquire(const std::string &path,
                                           unsigned timeout_ms);

    ~FileLock();

    FileLock(FileLock &&other) noexcept;
    FileLock &operator=(FileLock &&other) noexcept;
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    explicit FileLock(int fd)
        : fd_(fd)
    {
    }

    int fd_ = -1;
};

} // namespace lsim

#endif // LSIM_COMMON_FILES_HH
