#include "harness/benchmarks.hh"

#include <stdexcept>

#include "common/logging.hh"

namespace lsim::harness
{

const WorkloadSim &
SuiteRun::byName(const std::string &name) const
{
    for (const auto &ws : sims)
        if (ws.name == name)
            return ws;
    throw std::invalid_argument("no benchmark named '" + name +
                                "' in suite run");
}

stats::Log2Histogram
SuiteRun::combinedIdleHistogram() const
{
    stats::Log2Histogram combined(8192);
    for (const auto &ws : sims)
        combined.merge(ws.idle_hist);
    // Average so each benchmark contributes equally; the per-sim
    // histograms are fractions of each FU's time summed over FUs.
    if (!sims.empty()) {
        stats::Log2Histogram avg(8192);
        for (std::size_t b = 0; b < combined.numBuckets(); ++b) {
            const double w = combined.bucketWeight(b) /
                static_cast<double>(sims.size());
            if (w > 0.0)
                avg.sample(combined.bucketLow(b), w);
        }
        return avg;
    }
    return combined;
}

double
SuiteRun::meanIdleFraction() const
{
    if (sims.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &ws : sims)
        sum += ws.idle.idleFraction();
    return sum / static_cast<double>(sims.size());
}

SuiteRun
runSuite(const SuiteOptions &opts)
{
    SuiteRun run;
    for (const auto &profile : trace::table3Profiles()) {
        const unsigned fus =
            opts.use_paper_fus ? profile.paper_fus : 4;
        inform("simulating %s (%u FUs, %llu insts)",
               profile.name.c_str(), fus,
               static_cast<unsigned long long>(opts.insts));
        run.sims.push_back(simulateWorkload(profile, fus, opts.insts,
                                            opts.base, opts.seed));
    }
    return run;
}

SuitePolicyAverages
averagePolicies(const SuiteRun &suite,
                const energy::ModelParams &params)
{
    SuitePolicyAverages avg;
    bool first = true;
    for (const auto &ws : suite.sims) {
        const auto results = evaluatePaperPolicies(ws.idle, params);
        double no_overhead = 0.0;
        for (const auto &r : results)
            if (r.name == "NoOverhead")
                no_overhead = r.energy;
        if (no_overhead <= 0.0)
            fatal("NoOverhead energy nonpositive for %s",
                  ws.name.c_str());
        if (first) {
            for (const auto &r : results) {
                avg.names.push_back(r.name);
                avg.rel_to_nooverhead.push_back(0.0);
                avg.leakage_fraction.push_back(0.0);
            }
            first = false;
        }
        for (std::size_t i = 0; i < results.size(); ++i) {
            avg.rel_to_nooverhead[i] +=
                results[i].energy / no_overhead;
            avg.leakage_fraction[i] +=
                results[i].leakage_fraction;
        }
    }
    const auto n = static_cast<double>(suite.sims.size());
    for (std::size_t i = 0; i < avg.names.size(); ++i) {
        avg.rel_to_nooverhead[i] /= n;
        avg.leakage_fraction[i] /= n;
    }
    return avg;
}

} // namespace lsim::harness
