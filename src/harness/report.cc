#include "harness/report.hh"

namespace lsim::harness
{

void
writeSimJson(JsonWriter &w, const WorkloadSim &sim)
{
    w.beginObject("simulation");
    w.field("benchmark", sim.name);
    w.field("num_fus", sim.num_fus);
    w.field("cycles", sim.sim.cycles);
    w.field("committed", sim.sim.committed);
    w.field("ipc", sim.sim.ipc);
    w.field("branch_mispredict_rate",
            sim.sim.bpred.dirMispredictRate());
    w.field("l1i_miss_rate", sim.sim.l1i.missRate());
    w.field("l1d_miss_rate", sim.sim.l1d.missRate());
    w.field("l2_miss_rate", sim.sim.l2.missRate());
    w.field("idle_fraction", sim.idle.idleFraction());
    w.field("mean_idle_interval", sim.idle.meanInterval());
    w.field("num_idle_intervals", sim.idle.numIntervals());
    w.beginArray("fu_utilization");
    for (double u : sim.sim.fu_utilization)
        w.value(u);
    w.endArray();
    w.beginArray("idle_histogram");
    const auto &h = sim.idle_hist;
    for (std::size_t b = 0; b < h.numBuckets(); ++b) {
        w.beginObject();
        w.field("interval_low",
                static_cast<std::uint64_t>(h.bucketLow(b)));
        w.field("fraction_of_time", h.bucketWeight(b));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writePoliciesJson(JsonWriter &w,
                  const std::vector<sleep::PolicyResult> &results)
{
    w.beginArray("policies");
    for (const auto &r : results) {
        w.beginObject();
        w.field("name", r.name);
        w.field("energy", r.energy);
        w.field("relative_to_base", r.relative_to_base);
        w.field("leakage_fraction", r.leakage_fraction);
        w.beginObject("counts");
        w.field("active", r.counts.active);
        w.field("unctrl_idle", r.counts.unctrl_idle);
        w.field("sleep", r.counts.sleep);
        w.field("transitions", r.counts.transitions);
        w.endObject();
        w.beginObject("breakdown");
        w.field("dynamic", r.breakdown.dynamic);
        w.field("active_leak", r.breakdown.active_leak);
        w.field("idle_leak", r.breakdown.idle_leak);
        w.field("sleep_leak", r.breakdown.sleep_leak);
        w.field("transition", r.breakdown.transition);
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

void
writeExperimentJson(std::ostream &os, const WorkloadSim &sim,
                    const energy::ModelParams &params,
                    const std::vector<sleep::PolicyResult> &res)
{
    JsonWriter w(os);
    w.beginObject();
    w.beginObject("technology");
    w.field("p", params.p);
    w.field("k", params.k);
    w.field("s", params.s);
    w.field("alpha", params.alpha);
    w.field("duty", params.duty);
    w.endObject();
    writeSimJson(w, sim);
    writePoliciesJson(w, res);
    w.endObject();
    os << "\n";
}

} // namespace lsim::harness
