/**
 * @file
 * Benchmark-suite driver shared by the bench binaries: runs the nine
 * Table 3 workloads through the timing model and exposes the results
 * plus suite-level aggregation helpers used by Figures 7-9.
 */

#ifndef LSIM_HARNESS_BENCHMARKS_HH
#define LSIM_HARNESS_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace lsim::harness
{

/** Options for a suite run. */
struct SuiteOptions
{
    /** Committed instructions per benchmark. */
    std::uint64_t insts = 2'000'000;

    /** Trace generator seed. */
    std::uint64_t seed = 1;

    /**
     * Use the paper's per-benchmark FU counts (Table 3 last column)
     * rather than re-deriving them (the Table 3 bench re-derives).
     */
    bool use_paper_fus = true;

    /** Base machine configuration. */
    cpu::CoreConfig base;
};

/** Results of simulating the whole suite. */
struct SuiteRun
{
    std::vector<WorkloadSim> sims; ///< one per benchmark, paper order

    /** Find a benchmark's sim by name; throws
     * std::invalid_argument if absent. */
    const WorkloadSim &byName(const std::string &name) const;

    /**
     * Suite-combined idle histogram: per-benchmark histograms are
     * already per-FU-fraction weighted; the combination averages
     * them so every benchmark weighs equally (Figure 7 rule).
     */
    stats::Log2Histogram combinedIdleHistogram() const;

    /**
     * Fraction of FU-time idle across the suite (the paper reports
     * 46.8% at a 12-cycle L2).
     */
    double meanIdleFraction() const;
};

/** Run the suite (one timing simulation per benchmark). */
SuiteRun runSuite(const SuiteOptions &opts);

/**
 * Average, over the suite, of each policy's energy relative to the
 * NoOverhead policy at technology point @p params (Figure 9a), and
 * of its leakage-to-total ratio (Figure 9b). Policies appear in
 * makePaperControllers order: MaxSleep, GradualSleep, AlwaysActive,
 * NoOverhead.
 */
struct SuitePolicyAverages
{
    std::vector<std::string> names;
    std::vector<double> rel_to_nooverhead;
    std::vector<double> leakage_fraction;
};

SuitePolicyAverages
averagePolicies(const SuiteRun &suite, const energy::ModelParams &params);

} // namespace lsim::harness

#endif // LSIM_HARNESS_BENCHMARKS_HH
