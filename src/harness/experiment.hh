/**
 * @file
 * Experiment harness: runs workload profiles through the O3 core,
 * captures the sufficient statistics for energy evaluation (the
 * per-FU idle-interval structure), and evaluates sleep policies at
 * arbitrary technology points without re-simulating.
 *
 * The key observation enabling fast technology sweeps: all paper
 * policies account each idle interval independently of history, so
 * the exact multiset of idle-interval lengths (plus total active
 * cycles) fully determines every policy's CycleCounts. One timing
 * simulation therefore supports the whole Figure 9 p-sweep.
 *
 * NOTE: new code should prefer the api:: facade (api/experiment.hh,
 * api/sweep.hh), which wraps these functions behind a builder,
 * string-keyed policies and a parallel sweep runner. The free
 * functions below remain as the facade's engine and as deprecated
 * shims for existing callers.
 */

#ifndef LSIM_HARNESS_EXPERIMENT_HH
#define LSIM_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "cpu/config.hh"
#include "cpu/core.hh"
#include "energy/params.hh"
#include "sleep/accumulator.hh"
#include "sleep/controllers.hh"
#include "trace/profile.hh"

namespace lsim::harness
{

/**
 * Exact idle-interval multiset of one run (aggregated over the
 * integer FUs), the sufficient statistic for history-free policy
 * evaluation.
 */
struct IdleProfile
{
    /** idle interval length -> number of such intervals. */
    std::map<Cycle, std::uint64_t> intervals;
    Cycle active_cycles = 0;
    Cycle idle_cycles = 0;
    unsigned num_fus = 0;

    /** Total cycles summed over FUs. */
    Cycle totalCycles() const { return active_cycles + idle_cycles; }

    /** Fraction of FU-cycles spent idle. */
    double idleFraction() const;

    /** Mean idle interval length. */
    double meanInterval() const;

    /** Number of idle intervals. */
    std::uint64_t numIntervals() const;

    /** Record one maximal run (the FuPool sink feeds this). */
    void addRun(bool busy, Cycle len);

    /** Replay into a controller (order-free; uses idleRuns). */
    void replayTo(sleep::SleepController &ctrl) const;
};

/** One benchmark simulated at one FU count. */
struct WorkloadSim
{
    std::string name;          ///< benchmark name
    unsigned num_fus = 0;      ///< integer FU count simulated
    cpu::SimResult sim;        ///< timing results
    IdleProfile idle;          ///< aggregated idle structure
    /**
     * Per-FU idle-time histograms merged as fractions of each FU's
     * total time (Figure 7's equal-weight combination rule).
     */
    stats::Log2Histogram idle_hist{8192};
};

/**
 * Simulate @p profile for @p insts committed instructions on a core
 * with @p num_fus integer units.
 *
 * @param base Base machine configuration (FU count is overridden).
 * @param seed Trace generator seed.
 */
WorkloadSim simulateWorkload(const trace::WorkloadProfile &profile,
                             unsigned num_fus, std::uint64_t insts,
                             const cpu::CoreConfig &base = {},
                             std::uint64_t seed = 1);

/** Table 3 FU-count selection result. */
struct FuSelection
{
    unsigned chosen = 4;        ///< min FUs with >= 95% of 4-FU IPC
    double max_ipc = 0.0;       ///< IPC with 4 FUs
    double chosen_ipc = 0.0;    ///< IPC with the chosen count
    double ipc_by_fus[4] = {};  ///< IPC at 1..4 FUs
};

/**
 * The paper's FU-count methodology: simulate at 1..4 integer FUs and
 * pick the minimum count achieving at least @p threshold (default
 * 95%) of the 4-FU IPC.
 */
FuSelection selectFuCount(const trace::WorkloadProfile &profile,
                          std::uint64_t insts,
                          const cpu::CoreConfig &base = {},
                          double threshold = 0.95,
                          std::uint64_t seed = 1);

/**
 * Evaluate a controller set against a stored IdleProfile at
 * technology point @p params; results are normalized per the
 * evaluator's E_base convention (Figure 8/9 axes).
 *
 * @deprecated Prefer api::evaluateProfile (registry-named policies)
 * or api::Session::evaluate; this remains as their engine.
 */
std::vector<sleep::PolicyResult>
evaluatePolicies(const IdleProfile &idle,
                 const energy::ModelParams &params,
                 sleep::ControllerSet controllers);

/**
 * Convenience: evaluate the paper's four policies.
 *
 * @deprecated Thin shim over evaluatePolicies +
 * sleep::makePaperControllers; prefer api::Session::evaluate, which
 * defaults to the same four policies.
 */
std::vector<sleep::PolicyResult>
evaluatePaperPolicies(const IdleProfile &idle,
                      const energy::ModelParams &params);

} // namespace lsim::harness

#endif // LSIM_HARNESS_EXPERIMENT_HH
