/**
 * @file
 * Machine-readable reporting: serialize simulation and policy
 * results as JSON so external tooling (plotting scripts, regression
 * trackers) can consume bench output without parsing tables.
 *
 * These writers define the JSON schema; api::RunResult::writeJson
 * composes them, so the facade's output is bit-identical to the
 * legacy writeExperimentJson() record. New code should serialize
 * through api::RunResult / api::SweepResult instead of calling
 * these directly.
 */

#ifndef LSIM_HARNESS_REPORT_HH
#define LSIM_HARNESS_REPORT_HH

#include <ostream>
#include <vector>

#include "common/json.hh"
#include "harness/experiment.hh"

namespace lsim::harness
{

/** Write one benchmark simulation (timing + idle stats) as JSON. */
void writeSimJson(JsonWriter &w, const WorkloadSim &sim);

/** Write a policy evaluation result set as a JSON array. */
void writePoliciesJson(JsonWriter &w,
                       const std::vector<sleep::PolicyResult> &results);

/**
 * Write a complete experiment record: the simulation plus policy
 * results at the given technology point, as one JSON object on
 * @p os.
 *
 * @deprecated Prefer api::RunResult::writeJson (identical output).
 */
void writeExperimentJson(std::ostream &os, const WorkloadSim &sim,
                         const energy::ModelParams &params,
                         const std::vector<sleep::PolicyResult> &res);

} // namespace lsim::harness

#endif // LSIM_HARNESS_REPORT_HH
