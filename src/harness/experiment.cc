#include "harness/experiment.hh"

#include "common/logging.hh"
#include "trace/generator.hh"

namespace lsim::harness
{

double
IdleProfile::idleFraction() const
{
    const Cycle total = totalCycles();
    return total ? static_cast<double>(idle_cycles) /
        static_cast<double>(total) : 0.0;
}

double
IdleProfile::meanInterval() const
{
    const std::uint64_t n = numIntervals();
    return n ? static_cast<double>(idle_cycles) /
        static_cast<double>(n) : 0.0;
}

std::uint64_t
IdleProfile::numIntervals() const
{
    std::uint64_t n = 0;
    for (const auto &[len, count] : intervals)
        n += count;
    return n;
}

void
IdleProfile::addRun(bool busy, Cycle len)
{
    if (busy) {
        active_cycles += len;
    } else {
        idle_cycles += len;
        ++intervals[len];
    }
}

void
IdleProfile::replayTo(sleep::SleepController &ctrl) const
{
    ctrl.activeRun(active_cycles);
    for (const auto &[len, count] : intervals)
        ctrl.idleRuns(len, count);
}

WorkloadSim
simulateWorkload(const trace::WorkloadProfile &profile,
                 unsigned num_fus, std::uint64_t insts,
                 const cpu::CoreConfig &base, std::uint64_t seed)
{
    WorkloadSim ws;
    ws.name = profile.name;
    ws.num_fus = num_fus;
    ws.idle.num_fus = num_fus;

    trace::TraceGenerator gen(profile, seed);
    cpu::O3Core core(base.withIntFus(num_fus), gen);
    core.setFuRunSink([&ws](unsigned, bool busy, Cycle len) {
        ws.idle.addRun(busy, len);
    });
    ws.sim = core.run(insts);

    // Figure 7 combination rule: each FU's histogram contributes as
    // a fraction of that FU's own total time, averaged over the
    // unit count, so the per-benchmark histogram totals that
    // benchmark's mean idle fraction and benchmarks with different
    // window sizes or FU counts weigh equally.
    for (unsigned fu = 0; fu < num_fus; ++fu) {
        const auto &rec = core.fuPool().idleStats(fu);
        const double total = static_cast<double>(rec.totalCycles());
        if (total <= 0.0)
            continue;
        const auto &h = rec.histogram();
        for (std::size_t b = 0; b < h.numBuckets(); ++b) {
            if (h.bucketWeight(b) > 0.0)
                ws.idle_hist.sample(h.bucketLow(b),
                                    h.bucketWeight(b) /
                                        (total * num_fus));
        }
    }
    return ws;
}

FuSelection
selectFuCount(const trace::WorkloadProfile &profile,
              std::uint64_t insts, const cpu::CoreConfig &base,
              double threshold, std::uint64_t seed)
{
    FuSelection sel;
    for (unsigned n = 1; n <= 4; ++n) {
        trace::TraceGenerator gen(profile, seed);
        cpu::O3Core core(base.withIntFus(n), gen);
        const auto res = core.run(insts);
        sel.ipc_by_fus[n - 1] = res.ipc;
    }
    sel.max_ipc = sel.ipc_by_fus[3];
    sel.chosen = 4;
    sel.chosen_ipc = sel.max_ipc;
    for (unsigned n = 1; n <= 4; ++n) {
        if (sel.ipc_by_fus[n - 1] >= threshold * sel.max_ipc) {
            sel.chosen = n;
            sel.chosen_ipc = sel.ipc_by_fus[n - 1];
            break;
        }
    }
    return sel;
}

std::vector<sleep::PolicyResult>
evaluatePolicies(const IdleProfile &idle,
                 const energy::ModelParams &params,
                 sleep::ControllerSet controllers)
{
    sleep::PolicyEvaluator eval(params, std::move(controllers));
    // Feed the active total first (controllers are history-free in
    // active cycles), then the interval multiset. The evaluator's
    // internal idle recorder is bypassed for speed; total cycle
    // accounting still needs one run registration.
    eval.feedRun(true, idle.active_cycles);
    // Direct replay of idle intervals into each controller would
    // bypass the evaluator's totals, so feed through the evaluator:
    for (const auto &[len, count] : idle.intervals)
        eval.feedRuns(len, count);
    return eval.results();
}

std::vector<sleep::PolicyResult>
evaluatePaperPolicies(const IdleProfile &idle,
                      const energy::ModelParams &params)
{
    return evaluatePolicies(idle, params,
                            sleep::makePaperControllers(params));
}

} // namespace lsim::harness
