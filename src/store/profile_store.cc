#include "store/profile_store.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/backoff.hh"
#include "common/fault.hh"
#include "common/files.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace lsim::store
{

namespace fs = std::filesystem;

namespace
{

constexpr char kMagic[8] = {'L', 'S', 'I', 'M', 'P', 'R', 'O', 'F'};

/** Entry-write retry budget: transient failures (a brief ENOSPC, an
 * injected fault) resolve within a couple of short sleeps; anything
 * longer-lived degrades the instance instead of stalling sweeps. */
constexpr unsigned kSaveRetries = 2;
constexpr unsigned kSaveBackoffBaseMs = 1;

} // namespace

void
hashWorkloadProfile(Fnv1a &h, const trace::WorkloadProfile &p)
{
    h.addString(p.name);
    h.addString(p.suite);
    h.addDouble(p.frac_load);
    h.addDouble(p.frac_store);
    h.addDouble(p.frac_branch);
    h.addDouble(p.frac_mult);
    h.addDouble(p.frac_fp);
    h.addDouble(p.dep_density);
    h.addDouble(p.dep_distance_p);
    h.addU32(p.num_blocks);
    h.addDouble(p.branch_bias_strong);
    h.addDouble(p.noisy_taken_prob);
    h.addDouble(p.call_fraction);
    h.addU64(p.working_set);
    h.addDouble(p.local_frac);
    h.addDouble(p.stream_frac);
    h.addDouble(p.irregular_frac);
    h.addDouble(p.strong_taken_bias);
    h.addDouble(p.mean_loop_iters);
    // Table 3 metadata: paper_fus resolves the default FU count, so
    // it shapes the simulation; the reported-IPC fields and window
    // text are cosmetic but cheap to include and keep the rule
    // simple — EVERY profile field is part of the identity.
    h.addDouble(p.paper_max_ipc);
    h.addDouble(p.paper_ipc);
    h.addU32(p.paper_fus);
    h.addString(p.window);
}

void
hashCoreConfig(Fnv1a &h, const cpu::CoreConfig &c)
{
    h.addU32(c.fetch_width);
    h.addU32(c.decode_width);
    h.addU32(c.issue_width);
    h.addU32(c.fp_issue_width);
    h.addU32(c.commit_width);
    h.addU32(c.fetch_queue_entries);
    h.addU32(c.rob_entries);
    h.addU32(c.int_iq_entries);
    h.addU32(c.fp_iq_entries);
    h.addU32(c.int_phys_regs);
    h.addU32(c.fp_phys_regs);
    h.addU32(c.load_queue_entries);
    h.addU32(c.store_queue_entries);
    h.addU32(c.num_int_fus);
    h.addU32(c.num_fp_fus);
    h.addU32(c.dcache_ports);
    h.addU64(c.mispredict_penalty);
    h.addU64(c.btb_miss_penalty);

    const cpu::BpredConfig &b = c.bpred;
    h.addU32(b.bimodal_entries);
    h.addU32(b.hist_bits);
    h.addU32(b.gshare_entries);
    h.addU32(b.chooser_entries);
    h.addU32(b.ras_entries);
    h.addU32(b.btb_sets);
    h.addU32(b.btb_assoc);

    const auto hashCache = [&h](const cache::CacheConfig &cc) {
        h.addU64(cc.size_bytes);
        h.addU32(cc.assoc);
        h.addU32(cc.line_bytes);
        h.addU64(cc.hit_latency);
    };
    const auto hashTlb = [&h](const cache::TlbConfig &tc) {
        h.addU32(tc.entries);
        h.addU32(tc.assoc);
        h.addU64(tc.page_bytes);
        h.addU64(tc.miss_latency);
    };
    hashCache(c.mem.l1i);
    hashCache(c.mem.l1d);
    hashCache(c.mem.l2);
    hashTlb(c.mem.itlb);
    hashTlb(c.mem.dtlb);
    h.addU64(c.mem.memory_latency);
}

namespace
{

/** Keep keys filesystem-safe: [A-Za-z0-9._-], capped length. */
std::string
sanitizeName(const std::string &name)
{
    std::string out;
    for (char ch : name.substr(0, 48)) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '.' ||
                        ch == '_' || ch == '-';
        out += ok ? ch : '_';
    }
    return out.empty() ? std::string("profile") : out;
}

/** Serialize (key, sim) with framing into @p os. */
void
writeEntry(std::ostream &os, const std::string &key,
           const harness::WorkloadSim &sim)
{
    std::ostringstream payload_ss;
    BinaryWriter pw(payload_ss);
    pw.str(key);
    writeWorkloadSim(pw, sim);
    const std::string payload = payload_ss.str();

    Fnv1a checksum;
    for (char ch : payload)
        checksum.addByte(static_cast<std::uint8_t>(ch));

    os.write(kMagic, sizeof(kMagic));
    BinaryWriter w(os);
    w.u32(kFormatVersion);
    w.u64(checksum.value());
    w.u64(payload.size());
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
}

/** Parse a framed entry from @p is (@p what names it in errors). */
ImportedSim
readEntry(std::istream &is, const std::string &what)
{
    char magic[sizeof(kMagic)] = {};
    is.read(magic, sizeof(magic));
    if (is.gcount() != sizeof(magic) ||
        !std::equal(magic, magic + sizeof(magic), kMagic))
        throw StoreError(what + ": not a profile store file "
                                "(bad magic)");

    // Framing fields are small; a generous limit suffices.
    BinaryReader header(is, 20);
    const std::uint32_t version = header.u32();
    if (version != kFormatVersion)
        throw StoreError(what + ": format version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kFormatVersion) + ")");
    const std::uint64_t checksum = header.u64();
    const std::uint64_t payload_size = header.u64();

    std::string payload(static_cast<std::size_t>(payload_size), '\0');
    is.read(payload.data(),
            static_cast<std::streamsize>(payload_size));
    if (static_cast<std::uint64_t>(is.gcount()) != payload_size ||
        is.peek() != std::char_traits<char>::eof())
        throw StoreError(what + ": truncated or oversized payload");

    Fnv1a actual;
    for (char ch : payload)
        actual.addByte(static_cast<std::uint8_t>(ch));
    if (actual.value() != checksum)
        throw StoreError(what + ": checksum mismatch (corrupted)");

    std::istringstream payload_is(payload);
    BinaryReader r(payload_is, payload_size);
    ImportedSim entry;
    entry.key = r.str();
    entry.sim = readWorkloadSim(r);
    if (!r.exhausted())
        throw StoreError(what + ": trailing bytes after payload");
    return entry;
}

/** File mtime -> unix seconds (via the relative age, so no
 * clock_cast dependency); the index's `touched` timebase. */
double
mtimeToUnixSeconds(fs::file_time_type mtime)
{
    const double age = std::chrono::duration<double>(
                           fs::file_time_type::clock::now() - mtime)
                           .count();
    return StoreIndex::now() - age;
}

/** The index row describing @p sim (summary + accounting). */
IndexEntry
indexEntryFor(const harness::WorkloadSim &sim, std::uint64_t bytes,
              double touched)
{
    IndexEntry entry;
    entry.bytes = bytes;
    entry.touched = touched;
    entry.name = sim.name;
    entry.fus = sim.num_fus;
    entry.committed = sim.sim.committed;
    entry.ipc = sim.sim.ipc;
    entry.idle_fraction = sim.idle.idleFraction();
    entry.intervals = sim.idle.numIntervals();
    return entry;
}

} // namespace

std::string
SimKey::fingerprint() const
{
    Fnv1a h;
    h.addU32(kFormatVersion);
    hashWorkloadProfile(h, profile);
    h.addU32(fus);
    h.addU64(insts);
    h.addU64(seed);
    hashCoreConfig(h, base);
    return sanitizeName(profile.name) + "-" + h.hex();
}

ProfileStore::ProfileStore(std::string dir)
    : dir_(std::move(dir)), index_(dir_)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw std::invalid_argument("cache directory '" + dir_ +
                                    "' cannot be created");
}

ProfileStore::~ProfileStore()
{
    MutexLock lock(index_mu_);
    flushIndexLocked();
}

void
ProfileStore::flushIndexLocked() const
{
    if (!index_dirty_)
        return;
    index_.save();
    index_dirty_ = false;
}

std::string
ProfileStore::pathFor(const std::string &key) const
{
    return (fs::path(dir_) / (key + kExtension)).string();
}

std::optional<harness::WorkloadSim>
ProfileStore::loadEntry(const std::string &key,
                        bool *corrupt) const
{
    const std::string path = pathFor(key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt; // plain miss, not worth a warning
    try {
        if (LSIM_FAULT("store.read"))
            throw StoreError(path + ": injected read fault");
        ImportedSim entry = readEntry(in, path);
        if (entry.key != key)
            throw StoreError(path + ": embedded key '" + entry.key +
                             "' does not match its filename");
        return std::move(entry.sim);
    } catch (const StoreError &err) {
        warn("profile store: %s; re-simulating", err.what());
        if (corrupt)
            *corrupt = true;
        return std::nullopt;
    }
}

void
ProfileStore::quarantineLocked(const std::string &key,
                               const std::string &why) const
{
    const fs::path dir = fs::path(dir_) / kQuarantineDir;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec)
        fs::rename(pathFor(key), dir / (key + kExtension), ec);
    if (ec) {
        // Unmovable (read-only dir?): delete rather than leave a
        // poison pill that re-warns on every future hit.
        fs::remove(pathFor(key), ec);
    }
    index_dirty_ |= index_.erase(key);
    obs::counter("store.quarantined").add();
    warn("profile store: quarantined entry '%s' (%s)", key.c_str(),
         why.c_str());
}

std::optional<harness::WorkloadSim>
ProfileStore::load(const std::string &key) const
{
    bool corrupt = false;
    auto sim = loadEntry(key, &corrupt);
    if (sim) {
        // A hit is a use: refresh the LRU signal so gc() never
        // evicts what a warm daemon is actively serving. In memory
        // only — persisting here would put an O(entries) index
        // rewrite on the hot warm-cache path; the next mutating
        // call (or the destructor) flushes.
        MutexLock lock(index_mu_);
        if (index_.find(key)) {
            index_.touch(key, StoreIndex::now());
            index_dirty_ = true;
        }
    } else if (corrupt) {
        MutexLock lock(index_mu_);
        quarantineLocked(key, "failed checksum/version on load");
    }
    return sim;
}

void
ProfileStore::markDegraded(const std::string &why) const
{
    if (degraded_.exchange(true))
        return;
    obs::gauge("store.degraded").set(1);
    warn("profile store: %s; degrading '%s' to compute-without-"
         "cache (reads still served, writes disabled for this "
         "instance)",
         why.c_str(), dir_.c_str());
}

void
ProfileStore::save(const std::string &key,
                   const harness::WorkloadSim &sim) const
{
    if (degraded_.load(std::memory_order_relaxed))
        return; // compute-without-cache: the result is still used
    std::ostringstream ss;
    writeEntry(ss, key, sim);
    const std::string bytes = ss.str();
    bool written = false;
    Backoff backoff(kSaveRetries, kSaveBackoffBaseMs);
    for (;;) {
        if (!LSIM_FAULT("store.write") &&
            atomicWriteFile(pathFor(key), bytes)) {
            written = true;
            break;
        }
        if (!backoff.next())
            break;
        obs::counter("store.retries").add();
    }
    if (!written) {
        markDegraded("cannot write entry '" + key + "' after " +
                     std::to_string(kSaveRetries) + " retries");
        return;
    }
    MutexLock lock(index_mu_);
    index_.put(key, indexEntryFor(sim, bytes.size(),
                                  StoreIndex::now()));
    index_dirty_ = true;
    flushIndexLocked();
}

std::vector<StoreEntry>
ProfileStore::list() const
{
    std::vector<StoreEntry> out;
    for (const auto &de : fs::directory_iterator(dir_)) {
        if (!de.is_regular_file() ||
            de.path().extension() != kExtension)
            continue;
        const std::string key = de.path().stem().string();
        bool corrupt = false;
        if (auto sim = loadEntry(key, &corrupt)) {
            out.push_back({key, std::move(*sim)});
        } else if (corrupt) {
            MutexLock lock(index_mu_);
            quarantineLocked(key, "failed checksum/version on list");
        }
    }
    std::sort(out.begin(), out.end(),
              [](const StoreEntry &a, const StoreEntry &b) {
                  return a.key < b.key;
              });
    return out;
}

std::vector<StoreSummary>
ProfileStore::summaries() const
{
    MutexLock lock(index_mu_);
    std::vector<StoreSummary> out;
    std::set<std::string> on_disk;
    for (const auto &de : fs::directory_iterator(dir_)) {
        if (!de.is_regular_file() ||
            de.path().extension() != kExtension)
            continue;
        const std::string key = de.path().stem().string();
        on_disk.insert(key);
        if (const IndexEntry *indexed = index_.find(key)) {
            out.push_back({key, *indexed});
            continue;
        }
        // Unindexed (pre-index store, or a lost concurrent-writer
        // race): one full read adopts it into the index.
        bool corrupt = false;
        const auto sim = loadEntry(key, &corrupt);
        if (!sim) {
            if (corrupt)
                quarantineLocked(
                    key, "failed checksum/version on summaries");
            continue; // unreadable; loadEntry() warned
        }
        std::error_code ec;
        const std::uint64_t bytes = de.file_size(ec);
        auto mtime = fs::last_write_time(de.path(), ec);
        const double touched =
            ec ? StoreIndex::now() : mtimeToUnixSeconds(mtime);
        IndexEntry entry = indexEntryFor(*sim, bytes, touched);
        index_.put(key, entry);
        index_dirty_ = true;
        out.push_back({key, std::move(entry)});
    }
    // Drop index rows whose file vanished (rm/gc by another
    // process, manual deletion).
    for (auto it = index_.entries().begin();
         it != index_.entries().end();) {
        const std::string key = it->first;
        ++it;
        if (on_disk.find(key) == on_disk.end()) {
            index_.erase(key);
            index_dirty_ = true;
        }
    }
    flushIndexLocked();
    std::sort(out.begin(), out.end(),
              [](const StoreSummary &a, const StoreSummary &b) {
                  return a.key < b.key;
              });
    return out;
}

bool
ProfileStore::remove(const std::string &key) const
{
    std::error_code ec;
    const bool removed = fs::remove(pathFor(key), ec) && !ec;
    MutexLock lock(index_mu_);
    index_dirty_ |= index_.erase(key);
    flushIndexLocked();
    return removed;
}

ProfileStore::GcStats
ProfileStore::gc(const GcOptions &options) const
{
    struct Candidate
    {
        std::string key;
        fs::path path;
        double touched = 0.0; ///< unix seconds of last known use
        std::uint64_t bytes = 0;
    };
    std::vector<Candidate> entries;
    GcStats stats;
    MutexLock lock(index_mu_);
    for (const auto &de : fs::directory_iterator(dir_)) {
        if (!de.is_regular_file() ||
            de.path().extension() != kExtension)
            continue;
        Candidate c;
        c.path = de.path();
        c.key = de.path().stem().string();
        if (const IndexEntry *indexed = index_.find(c.key)) {
            // Index rows carry the LRU signal (loads touch them,
            // mtime never moves on reads) and spare the stat().
            c.touched = indexed->touched;
            c.bytes = indexed->bytes;
        } else {
            std::error_code ec;
            const auto mtime = fs::last_write_time(c.path, ec);
            if (!ec)
                c.bytes = de.file_size(ec);
            if (ec) {
                // Age unknown is not "old": keep the entry and
                // report it rather than letting a default mtime
                // make it first in line for eviction.
                stats.stat_errors += 1;
                continue;
            }
            c.touched = mtimeToUnixSeconds(mtime);
        }
        stats.scanned += 1;
        stats.bytes_before += c.bytes;
        entries.push_back(std::move(c));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.touched < b.touched; // coldest first
              });

    stats.bytes_after = stats.bytes_before;
    const double now = StoreIndex::now();
    const auto evict = [&](const Candidate &c) {
        std::error_code ec;
        const bool removed = fs::remove(c.path, ec);
        if (ec)
            return; // unremovable: conservatively keep counting it
        // Gone either way — we removed it, or a concurrent gc beat
        // us to it; only the former counts as our eviction, but the
        // bytes left the store in both cases.
        stats.bytes_after -= c.bytes;
        index_dirty_ |= index_.erase(c.key);
        if (removed)
            stats.removed += 1;
    };
    std::size_t kept_from = 0;
    if (options.max_age_seconds) {
        while (kept_from < entries.size() &&
               now - entries[kept_from].touched >
                   *options.max_age_seconds) {
            evict(entries[kept_from]);
            ++kept_from;
        }
    }
    if (options.max_bytes) {
        while (kept_from < entries.size() &&
               stats.bytes_after > *options.max_bytes) {
            evict(entries[kept_from]);
            ++kept_from;
        }
    }
    flushIndexLocked();
    return stats;
}

void
exportSim(const std::string &path, const std::string &key,
          const harness::WorkloadSim &sim)
{
    // Atomic like every other persisted artifact: an export landing
    // in a watched directory must never be readable half-written.
    std::ostringstream ss;
    writeEntry(ss, key, sim);
    if (LSIM_FAULT("store.export") ||
        !atomicWriteFile(path, ss.str()))
        throw StoreError("cannot write '" + path + "'");
}

ImportedSim
importSimFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw StoreError("cannot open '" + path + "'");
    return readEntry(in, path);
}

ImportedSim
importAnySim(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw StoreError("cannot open '" + path + "'");
    if (in.peek() == 'L')
        return importSimFile(path);

    // JSON idle profile.
    try {
        ImportedSim entry;
        entry.sim = idleProfileSimFromJson(parseJsonFile(path));
        return entry;
    } catch (const std::invalid_argument &err) {
        throw StoreError(std::string(err.what()));
    }
}

harness::WorkloadSim
idleProfileSimFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw std::invalid_argument(
            "idle profile: expected a JSON object");
    for (const auto &[key, value] : v.members()) {
        (void)value;
        if (key != "name" && key != "num_fus" &&
            key != "active_cycles" && key != "idle_cycles" &&
            key != "intervals")
            throw std::invalid_argument(
                "idle profile: unknown field '" + key + "'");
    }

    harness::WorkloadSim sim;
    sim.name = v.at("name").asString();
    if (sim.name.empty())
        throw std::invalid_argument("idle profile: 'name' is empty");

    harness::IdleProfile &idle = sim.idle;
    const std::uint64_t fus = v.at("num_fus").asU64();
    if (fus == 0 || fus > 1024)
        throw std::invalid_argument(
            "idle profile: 'num_fus' outside [1,1024]");
    idle.num_fus = static_cast<unsigned>(fus);
    sim.num_fus = idle.num_fus;
    idle.active_cycles = v.at("active_cycles").asU64();
    idle.idle_cycles = v.at("idle_cycles").asU64();

    Cycle prev = 0;
    Cycle interval_cycles = 0;
    for (const JsonValue &pair : v.at("intervals").items()) {
        if (!pair.isArray() || pair.items().size() != 2)
            throw std::invalid_argument(
                "idle profile: each 'intervals' entry must be a "
                "[length, count] pair");
        const Cycle len = pair.items()[0].asU64();
        const std::uint64_t count = pair.items()[1].asU64();
        if (len == 0 || count == 0)
            throw std::invalid_argument(
                "idle profile: 'intervals' lengths and counts must "
                "be positive");
        if (len <= prev)
            throw std::invalid_argument(
                "idle profile: 'intervals' lengths must be strictly "
                "increasing");
        prev = len;
        // Guard the consistency sum itself: wrapped arithmetic
        // would both falsely reject huge legitimate profiles and
        // accept crafted inconsistent ones.
        if (count > (std::numeric_limits<Cycle>::max() -
                     interval_cycles) / len)
            throw std::invalid_argument(
                "idle profile: 'intervals' cycle total overflows");
        interval_cycles += len * count;
        idle.intervals.emplace_hint(idle.intervals.end(), len,
                                    count);
    }
    if (interval_cycles != idle.idle_cycles)
        throw std::invalid_argument(
            "idle profile: 'intervals' cover " +
            std::to_string(interval_cycles) +
            " cycles but 'idle_cycles' is " +
            std::to_string(idle.idle_cycles));

    // Approximate the Figure 7 histogram from the aggregate
    // multiset: each interval's total cycles as a fraction of all
    // FU-cycles (per-FU weighting is unavailable post-aggregation).
    if (idle.totalCycles() > 0) {
        const double total =
            static_cast<double>(idle.totalCycles());
        for (const auto &[len, count] : idle.intervals)
            sim.idle_hist.sample(
                len, static_cast<double>(len) *
                         static_cast<double>(count) / total);
    }
    return sim;
}

} // namespace lsim::store
