#include "store/store_index.hh"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/files.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace lsim::store
{

namespace fs = std::filesystem;

namespace
{

constexpr std::uint32_t kIndexVersion = 1;

/** Parse one index row; throws std::invalid_argument on shape
 * errors (the caller treats any throw as "index unusable"). */
std::pair<std::string, IndexEntry>
entryFromJson(const JsonValue &v)
{
    IndexEntry entry;
    const std::string key = v.at("key").asString();
    entry.bytes = v.at("bytes").asU64();
    entry.touched = v.at("touched").asNumber();
    entry.name = v.at("name").asString();
    const std::uint64_t fus = v.at("fus").asU64();
    if (fus > std::numeric_limits<unsigned>::max())
        throw std::invalid_argument("index 'fus' too large");
    entry.fus = static_cast<unsigned>(fus);
    entry.committed = v.at("committed").asU64();
    entry.ipc = v.at("ipc").asNumber();
    entry.idle_fraction = v.at("idle_fraction").asNumber();
    entry.intervals = v.at("intervals").asU64();
    return {key, entry};
}

} // namespace

StoreIndex::StoreIndex(std::string dir)
    : dir_(std::move(dir))
{
    std::ifstream in(path(), std::ios::binary);
    if (!in)
        return; // no index yet: empty, rebuilt lazily
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        const JsonValue doc = parseJson(ss.str());
        if (doc.at("version").asU64() != kIndexVersion)
            throw std::invalid_argument(
                "unsupported index version " +
                std::to_string(doc.at("version").asU64()));
        for (const JsonValue &row : doc.at("entries").items())
            entries_.insert(entryFromJson(row));
    } catch (const std::invalid_argument &err) {
        warn("profile store: ignoring index '%s': %s",
             path().c_str(), err.what());
        entries_.clear();
    }
}

std::string
StoreIndex::path() const
{
    return (fs::path(dir_) / kFileName).string();
}

const IndexEntry *
StoreIndex::find(const std::string &key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

void
StoreIndex::put(const std::string &key, IndexEntry entry)
{
    entries_[key] = std::move(entry);
}

void
StoreIndex::touch(const std::string &key, double when)
{
    const auto it = entries_.find(key);
    if (it != entries_.end())
        it->second.touched = when;
}

bool
StoreIndex::erase(const std::string &key)
{
    return entries_.erase(key) > 0;
}

bool
StoreIndex::save() const
{
    std::ostringstream ss;
    JsonWriter w(ss);
    w.beginObject();
    w.field("version", static_cast<std::uint64_t>(kIndexVersion));
    w.beginArray("entries");
    for (const auto &[key, entry] : entries_) {
        w.beginObject();
        w.field("key", key);
        w.field("bytes", entry.bytes);
        w.field("touched", entry.touched);
        w.field("name", entry.name);
        w.field("fus", entry.fus);
        w.field("committed", entry.committed);
        w.field("ipc", entry.ipc);
        w.field("idle_fraction", entry.idle_fraction);
        w.field("intervals", entry.intervals);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    ss << "\n";
    return atomicWriteFile(path(), ss.str());
}

double
StoreIndex::now()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace lsim::store
