#include "store/store_index.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/backoff.hh"
#include "common/fault.hh"
#include "common/files.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace lsim::store
{

namespace fs = std::filesystem;

namespace
{

/** Current layout (adds "generation"); v1 files still load. */
constexpr std::uint32_t kIndexVersion = 2;
constexpr std::uint32_t kIndexVersionNoGeneration = 1;

/** How long one flush attempt waits for index.lock. Holders keep
 * the lock for one small-file read + rewrite, so timing out means
 * contention or a wedged holder; the flush retries with backoff
 * (kLockRetries extra attempts) before degrading to a
 * last-writer-wins write. */
constexpr unsigned kLockTimeoutMs = 2'000;
constexpr unsigned kLockRetries = 3;
constexpr unsigned kLockBackoffBaseMs = 2;

/**
 * Acquire the index lock with bounded retry + backoff. Transient
 * contention (another daemon mid-flush) resolves on a later
 * attempt; each retry bumps `store.retries`. The fault point
 * simulates an acquisition timeout per attempt.
 */
std::optional<FileLock>
acquireIndexLock(const std::string &path)
{
    Backoff backoff(kLockRetries, kLockBackoffBaseMs);
    for (;;) {
        if (!LSIM_FAULT("store.index.lock")) {
            if (auto lock = FileLock::acquire(path, kLockTimeoutMs))
                return lock;
        }
        if (!backoff.next())
            return std::nullopt;
        obs::counter("store.retries").add();
    }
}

/** Parse one index row; throws std::invalid_argument on shape
 * errors (the caller treats any throw as "index unusable"). */
std::pair<std::string, IndexEntry>
entryFromJson(const JsonValue &v)
{
    IndexEntry entry;
    const std::string key = v.at("key").asString();
    entry.bytes = v.at("bytes").asU64();
    entry.touched = v.at("touched").asNumber();
    entry.name = v.at("name").asString();
    const std::uint64_t fus = v.at("fus").asU64();
    if (fus > std::numeric_limits<unsigned>::max())
        throw std::invalid_argument("index 'fus' too large");
    entry.fus = static_cast<unsigned>(fus);
    entry.committed = v.at("committed").asU64();
    entry.ipc = v.at("ipc").asNumber();
    entry.idle_fraction = v.at("idle_fraction").asNumber();
    entry.intervals = v.at("intervals").asU64();
    return {key, entry};
}

} // namespace

StoreIndex::StoreIndex(std::string dir)
    : dir_(std::move(dir))
{
    loadDisk(&entries_, &generation_);
}

void
StoreIndex::loadDisk(std::map<std::string, IndexEntry> *entries,
                     std::uint64_t *generation) const
{
    entries->clear();
    *generation = 0;
    std::ifstream in(path(), std::ios::binary);
    if (!in)
        return; // no index yet: empty, rebuilt lazily
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        const JsonValue doc = parseJson(ss.str());
        const std::uint64_t version = doc.at("version").asU64();
        if (version != kIndexVersion &&
            version != kIndexVersionNoGeneration)
            throw std::invalid_argument(
                "unsupported index version " +
                std::to_string(version));
        if (const JsonValue *gen = doc.find("generation"))
            *generation = gen->asU64();
        for (const JsonValue &row : doc.at("entries").items())
            entries->insert(entryFromJson(row));
    } catch (const std::invalid_argument &err) {
        warn("profile store: ignoring index '%s': %s",
             path().c_str(), err.what());
        entries->clear();
        *generation = 0;
    }
}

std::string
StoreIndex::path() const
{
    return (fs::path(dir_) / kFileName).string();
}

std::string
StoreIndex::lockPath() const
{
    return (fs::path(dir_) / kLockFileName).string();
}

const IndexEntry *
StoreIndex::find(const std::string &key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

void
StoreIndex::put(const std::string &key, IndexEntry entry)
{
    Pending &p = pending_[key];
    p.erased = false;
    p.has_entry = true;
    p.entry = entry;
    p.has_touch = false;
    entries_[key] = std::move(entry);
}

void
StoreIndex::touch(const std::string &key, double when)
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    it->second.touched = when;
    Pending &p = pending_[key];
    if (p.has_entry) {
        p.entry.touched = when;
    } else {
        p.has_touch = true;
        p.touched = when;
    }
}

bool
StoreIndex::erase(const std::string &key)
{
    const bool existed = entries_.erase(key) > 0;
    Pending &p = pending_[key];
    p = Pending{};
    p.erased = true;
    return existed;
}

bool
StoreIndex::save()
{
    // Serialize flushes across every process (and instance) sharing
    // the directory; within the lock the cycle is read-merge-write,
    // so no writer ever overwrites another's updates.
    auto lock = acquireIndexLock(lockPath());
    std::map<std::string, IndexEntry> merged;
    std::uint64_t disk_generation = 0;
    if (lock) {
        loadDisk(&merged, &disk_generation);
    } else {
        // Degraded mode: we could not serialize, so fall back to
        // writing our local view (the pre-protocol behavior). The
        // index is an accelerator — a lost concurrent update is
        // re-derived on demand, never wrong. Loud once per process,
        // counted always: silent last-writer-wins hid real
        // contention problems.
        static std::atomic<bool> logged{false};
        if (!logged.exchange(true))
            warn("profile store: index lock '%s' timed out after "
                 "%u attempt(s); flushing last-writer-wins (logged "
                 "once per process; see store.lock_timeouts)",
                 lockPath().c_str(), kLockRetries + 1);
        obs::counter("store.lock_timeouts").add();
        merged = entries_;
        disk_generation = generation_;
    }

    for (const auto &[key, p] : pending_) {
        if (p.erased) {
            merged.erase(key);
            continue;
        }
        if (p.has_entry) {
            merged[key] = p.entry;
        } else if (p.has_touch) {
            // A touch asserts the entry's last-use time outright
            // (backdating included — tests and tools rely on it);
            // concurrent touches resolve to whichever flush runs
            // last, which only perturbs LRU order approximately.
            const auto it = merged.find(key);
            if (it != merged.end())
                it->second.touched = p.touched;
        }
    }

    const std::uint64_t generation = disk_generation + 1;
    std::ostringstream ss;
    JsonWriter w(ss);
    w.beginObject();
    w.field("version", static_cast<std::uint64_t>(kIndexVersion));
    w.field("generation", generation);
    w.beginArray("entries");
    for (const auto &[key, entry] : merged) {
        w.beginObject();
        w.field("key", key);
        w.field("bytes", entry.bytes);
        w.field("touched", entry.touched);
        w.field("name", entry.name);
        w.field("fus", entry.fus);
        w.field("committed", entry.committed);
        w.field("ipc", entry.ipc);
        w.field("idle_fraction", entry.idle_fraction);
        w.field("intervals", entry.intervals);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    ss << "\n";
    if (LSIM_FAULT("store.index.write") ||
        !atomicWriteFile(path(), ss.str()))
        return false;

    // Adopt the merged image: entries other writers added become
    // visible to this instance, and the pending deltas are now on
    // disk.
    entries_ = std::move(merged);
    generation_ = generation;
    pending_.clear();
    return true;
}

double
StoreIndex::now()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace lsim::store
