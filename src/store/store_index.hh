/**
 * @file
 * Persisted index over a profile-store directory.
 *
 * The store's flat <key>.lsimprof layout makes listing and eviction
 * O(entries) in *full entry reads* (list) or *stat calls* (gc). The
 * index caches, per key, everything those walks were recomputing —
 * payload size, a last-use timestamp, and the summary columns
 * `lsim profile ls` prints — in one JSON file:
 *
 *     <dir>/index.json
 *     {"version": 1, "entries": [
 *        {"key": "gcc-<hash>", "bytes": 12345,
 *         "touched": 1753700000.25,
 *         "name": "gcc", "fus": 2, "committed": 500000,
 *         "ipc": 1.619, "idle_fraction": 0.41, "intervals": 125}]}
 *
 * `touched` is updated on every save *and* load, so it is a genuine
 * LRU signal: a file's mtime never moves on reads, but the index
 * knows a warm daemon has been serving an entry all week.
 *
 * The index is an accelerator, never the source of truth. Entries
 * missing from it are discovered by a directory scan and re-added;
 * index rows whose file vanished are dropped; a corrupt or deleted
 * index.json just rebuilds lazily. Concurrent processes sharing a
 * directory each rewrite the whole file atomically — the last
 * writer wins and the losers' updates are re-derived on demand.
 */

#ifndef LSIM_STORE_STORE_INDEX_HH
#define LSIM_STORE_STORE_INDEX_HH

#include <cstdint>
#include <map>
#include <string>

namespace lsim::store
{

/** Per-entry index record: accounting plus the `ls` summary. */
struct IndexEntry
{
    std::uint64_t bytes = 0; ///< entry file size
    double touched = 0.0;    ///< unix seconds of last save or load

    // Summary columns (what `lsim profile ls` shows without
    // deserializing the entry).
    std::string name;
    unsigned fus = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;
    double idle_fraction = 0.0;
    std::uint64_t intervals = 0;
};

/** In-memory image of <dir>/index.json. */
class StoreIndex
{
  public:
    /** Index filename inside the store directory. */
    static constexpr const char *kFileName = "index.json";

    /**
     * Load the index of @p dir. A missing, unreadable, or malformed
     * index file yields an empty index (after a warn() for the
     * malformed case) — the store rebuilds it on use.
     */
    explicit StoreIndex(std::string dir);

    const std::map<std::string, IndexEntry> &entries() const
    {
        return entries_;
    }

    /** Entry under @p key, or nullptr. */
    const IndexEntry *find(const std::string &key) const;

    /** Insert or replace the entry under @p key. */
    void put(const std::string &key, IndexEntry entry);

    /** Update @p key's last-use time; no-op when absent. */
    void touch(const std::string &key, double when);

    /** @return true when an entry was removed. */
    bool erase(const std::string &key);

    /** Atomically persist the index to <dir>/index.json. */
    bool save() const;

    /** Current unix time in seconds (the `touched` clock). */
    static double now();

    const std::string &dir() const { return dir_; }

  private:
    std::string path() const;

    std::string dir_;
    std::map<std::string, IndexEntry> entries_;
};

} // namespace lsim::store

#endif // LSIM_STORE_STORE_INDEX_HH
