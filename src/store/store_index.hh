/**
 * @file
 * Persisted index over a profile-store directory.
 *
 * The store's flat <key>.lsimprof layout makes listing and eviction
 * O(entries) in *full entry reads* (list) or *stat calls* (gc). The
 * index caches, per key, everything those walks were recomputing —
 * payload size, a last-use timestamp, and the summary columns
 * `lsim profile ls` prints — in one JSON file:
 *
 *     <dir>/index.json
 *     {"version": 2, "generation": 17, "entries": [
 *        {"key": "gcc-<hash>", "bytes": 12345,
 *         "touched": 1753700000.25,
 *         "name": "gcc", "fus": 2, "committed": 500000,
 *         "ipc": 1.619, "idle_fraction": 0.41, "intervals": 125}]}
 *
 * `touched` is updated on every save *and* load, so it is a genuine
 * LRU signal: a file's mtime never moves on reads, but the index
 * knows a warm daemon has been serving an entry all week.
 *
 * The index is an accelerator, never the source of truth. Entries
 * missing from it are discovered by a directory scan and re-added;
 * index rows whose file vanished are dropped; a corrupt or deleted
 * index.json just rebuilds lazily.
 *
 * Concurrency: N processes (serve daemons sharding one store, a gc
 * run beside them) may flush concurrently. save() is not a blind
 * rewrite — it runs a reload-merge-bump cycle under an flock(2) on
 * <dir>/index.lock: re-read the on-disk image, apply only this
 * instance's pending deltas (puts, erases, touches), stamp
 * generation = disk + 1, and install atomically. Updates made by
 * other writers since our load are preserved instead of clobbered,
 * and the generation counter increments by exactly one per flush —
 * a cheap cross-process consistency probe. A v1 index (no
 * generation) loads as generation 0; if the lock cannot be acquired
 * within a timeout the flush degrades to the historical
 * last-writer-wins write rather than blocking the caller forever.
 */

#ifndef LSIM_STORE_STORE_INDEX_HH
#define LSIM_STORE_STORE_INDEX_HH

#include <cstdint>
#include <map>
#include <string>

namespace lsim::store
{

/** Per-entry index record: accounting plus the `ls` summary. */
struct IndexEntry
{
    std::uint64_t bytes = 0; ///< entry file size
    double touched = 0.0;    ///< unix seconds of last save or load

    // Summary columns (what `lsim profile ls` shows without
    // deserializing the entry).
    std::string name;
    unsigned fus = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;
    double idle_fraction = 0.0;
    std::uint64_t intervals = 0;
};

/** In-memory image of <dir>/index.json plus this instance's
 * unflushed deltas. */
class StoreIndex
{
  public:
    /** Index filename inside the store directory. */
    static constexpr const char *kFileName = "index.json";

    /** flock(2) sentinel guarding the reload-merge-bump flush. */
    static constexpr const char *kLockFileName = "index.lock";

    /**
     * Load the index of @p dir. A missing, unreadable, or malformed
     * index file yields an empty index (after a warn() for the
     * malformed case) — the store rebuilds it on use.
     */
    explicit StoreIndex(std::string dir);

    const std::map<std::string, IndexEntry> &entries() const
    {
        return entries_;
    }

    /** Entry under @p key, or nullptr. */
    const IndexEntry *find(const std::string &key) const;

    /** Insert or replace the entry under @p key. */
    void put(const std::string &key, IndexEntry entry);

    /** Update @p key's last-use time; no-op when absent. */
    void touch(const std::string &key, double when);

    /** @return true when an entry was removed. */
    bool erase(const std::string &key);

    /**
     * Flush to <dir>/index.json with the lock-file protocol: under
     * <dir>/index.lock, re-read the disk image, merge this
     * instance's pending put/erase/touch deltas into it (per-key,
     * this writer's delta wins; untouched keys keep whatever other
     * writers flushed), bump the generation, and install
     * atomically. The in-memory view is replaced by the merged
     * image, so concurrent writers' entries become visible here too.
     */
    bool save();

    /** Generation stamp of the last image read or written. */
    std::uint64_t generation() const { return generation_; }

    /** Current unix time in seconds (the `touched` clock). */
    static double now();

    const std::string &dir() const { return dir_; }

  private:
    /** One key's unflushed local mutations, in application order:
     * an erase cancels a put and vice versa; touches fold into a
     * pending put or ride along as a timestamp override. */
    struct Pending
    {
        bool erased = false;
        bool has_entry = false;
        IndexEntry entry;
        bool has_touch = false;
        double touched = 0.0;
    };

    std::string path() const;
    std::string lockPath() const;

    /** Parse <dir>/index.json into @p entries / @p generation.
     * Malformed content warns and yields an empty image. */
    void loadDisk(std::map<std::string, IndexEntry> *entries,
                  std::uint64_t *generation) const;

    std::string dir_;
    std::map<std::string, IndexEntry> entries_;
    std::map<std::string, Pending> pending_;
    std::uint64_t generation_ = 0;
};

} // namespace lsim::store

#endif // LSIM_STORE_STORE_INDEX_HH
