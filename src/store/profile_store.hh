/**
 * @file
 * Content-addressed on-disk store of completed timing simulations.
 *
 * Layout: one file per simulation in a flat directory,
 *
 *     <dir>/<benchmark>-<fingerprint>.lsimprof
 *
 * where the fingerprint is a 64-bit FNV-1a hash over everything that
 * determines the simulation's outcome: the full WorkloadProfile
 * parameter set, the requested FU count (sentinels included), the
 * instruction budget, the trace seed, the complete CoreConfig
 * (pipeline widths, bpred geometry, cache hierarchy), and the
 * serialization format version. Two runs agreeing on the key are
 * guaranteed the same phase-1 result, so a hit replaces the
 * simulation with a bit-exact deserialized copy; anything that could
 * change the outcome changes the key and misses.
 *
 * Writes are atomic (temp file + rename in the same directory), so
 * concurrent sweeps can safely share one cache directory: the worst
 * case is two processes simulating the same key and one rename
 * winning — both files carried identical bytes.
 *
 * Load failures (corruption, truncation, version mismatch) are
 * reported as a miss and warn()ed, never trusted — and the bad
 * entry is moved to <dir>/quarantine/ (index row erased) so it is
 * inspected at most once instead of being re-read and re-warned on
 * every hit. The caller re-simulates; the fresh save overwrites
 * nothing (the poisoned file is gone from the key's path).
 *
 * Failure hardening: save() retries transient write failures with
 * bounded exponential backoff + jitter (`store.retries` counts
 * them); when the directory stays unwritable (read-only, disk
 * full), the instance degrades to compute-without-cache — loads
 * still serve hits, writes become no-ops — instead of failing
 * requests (`store.degraded` gauge, warn()ed once).
 */

#ifndef LSIM_STORE_PROFILE_STORE_HH
#define LSIM_STORE_PROFILE_STORE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "cpu/config.hh"
#include "store/serialize.hh"
#include "store/store_index.hh"
#include "trace/profile.hh"

namespace lsim::store
{

/**
 * Everything that determines a phase-1 timing simulation's outcome.
 * fingerprint() is the cache key; the FU count is the *requested*
 * value (including api::auto_select and the paper-FUs sentinel), so
 * an auto-selected run caches under the request that produced it.
 */
struct SimKey
{
    trace::WorkloadProfile profile;
    unsigned fus = ~0u;
    std::uint64_t insts = 0;
    std::uint64_t seed = 0;
    cpu::CoreConfig base;

    /** "<sanitized-benchmark-name>-<16 hex digits>". */
    std::string fingerprint() const;
};

/**
 * @name Fingerprint field hashing
 * The building blocks of SimKey::fingerprint(), exposed so other
 * tiers can fingerprint configurations the same way (the serve
 * front door hashes whole batch specs for request coalescing —
 * api::batchFingerprint). Every field of the argument is mixed in;
 * see SimKey for why.
 * @{
 */
void hashWorkloadProfile(Fnv1a &h, const trace::WorkloadProfile &p);
void hashCoreConfig(Fnv1a &h, const cpu::CoreConfig &c);
/** @} */

/** One store entry as listed by ProfileStore::list(). */
struct StoreEntry
{
    std::string key;  ///< filename stem (name + fingerprint)
    harness::WorkloadSim sim;
};

/** One summary row as listed by ProfileStore::summaries(). */
struct StoreSummary
{
    std::string key;
    IndexEntry entry;
};

/**
 * The on-disk store. Cheap to construct. Each instance keeps the
 * directory's StoreIndex in memory (loaded once, updated on every
 * save/load/gc and persisted atomically), so a long-lived instance —
 * the serve daemon's — answers summaries() and gc() without touching
 * the entry files. Instances are not copyable; construct in place.
 */
class ProfileStore
{
  public:
    /** Filename extension of store entries (includes the dot). */
    static constexpr const char *kExtension = ".lsimprof";

    /** Subdirectory entries failing checksum/version move into. */
    static constexpr const char *kQuarantineDir = "quarantine";

    /**
     * @param dir Cache directory; created (with parents) when
     * missing. Throws std::invalid_argument when the path exists but
     * is not a directory or cannot be created.
     */
    explicit ProfileStore(std::string dir);

    /** Flushes any deferred index touch-times (see load()). */
    ~ProfileStore();

    ProfileStore(const ProfileStore &) = delete;
    ProfileStore &operator=(const ProfileStore &) = delete;

    /**
     * Fetch the entry stored under @p key. Returns std::nullopt —
     * after a warn() — when the entry is absent, truncated,
     * corrupted, or written by a different format version; a
     * corrupt entry is additionally quarantined (moved under
     * <dir>/quarantine/, index row erased) so it never warns twice.
     * A hit refreshes the key's index touch-time (the gc LRU
     * signal) in memory; the index file is persisted lazily — by
     * the next mutating call (save/remove/gc/summaries) or the
     * destructor — so the warm path never pays a whole-index
     * rewrite per hit.
     */
    std::optional<harness::WorkloadSim>
    load(const std::string &key) const;

    /**
     * Atomically persist @p sim under @p key (index updated).
     * Transient write failures retry with bounded backoff; a
     * persistent failure flips the instance into degraded
     * (compute-without-cache) mode and the save becomes a no-op.
     */
    void save(const std::string &key,
              const harness::WorkloadSim &sim) const;

    /** True once a persistent write failure disabled caching for
     * this instance (reads still work). Sticky for the instance's
     * lifetime; a fresh instance probes the directory again. */
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    /** All readable entries, sorted by key; unreadable files warn. */
    std::vector<StoreEntry> list() const;

    /**
     * One summary row per entry, sorted by key, served from the
     * index without deserializing entry files. Unindexed files
     * (written by an older version, or by a process whose index
     * update lost a concurrent-writer race) are read once, indexed,
     * and included; index rows whose file vanished are dropped.
     */
    std::vector<StoreSummary> summaries() const;

    /**
     * Delete the entry stored under @p key.
     * @return true when an entry was removed, false when absent.
     */
    bool remove(const std::string &key) const;

    /** Eviction policy for gc(). Unset limits do not evict. */
    struct GcOptions
    {
        /** Evict entries whose file is older than this, seconds. */
        std::optional<double> max_age_seconds;
        /** Then evict oldest-first until the store fits. */
        std::optional<std::uint64_t> max_bytes;
    };

    /** What gc() scanned and removed. */
    struct GcStats
    {
        std::size_t scanned = 0; ///< entries examined
        std::size_t removed = 0; ///< entries deleted
        /** Entries whose file could not be stat()ed (and which have
         * no index row to fall back on). These are *kept* and
         * reported — a stat failure means "age unknown", not "old",
         * so they must never become eviction fodder by default. */
        std::size_t stat_errors = 0;
        std::uint64_t bytes_before = 0;
        std::uint64_t bytes_after = 0;
    };

    /**
     * Evict store entries by age and/or total size: entries older
     * than max_age_seconds go first, then the least-recently-used
     * remaining entries until the store is within max_bytes. Age is
     * the index touch-time where available — updated on loads as
     * well as saves, so an entry a warm daemon serves daily never
     * looks cold no matter its mtime — with a stat() fallback for
     * unindexed files. Only `*.lsimprof` files are touched;
     * unreadable or corrupt entries are regular eviction candidates
     * (their touch-time decides), so a poisoned cache heals over
     * time. Safe to run concurrently with sweeps: a hit on a
     * just-evicted key is an ordinary miss.
     */
    GcStats gc(const GcOptions &options) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string pathFor(const std::string &key) const;

    /** load() minus the index touch (for internal bulk walks).
     * @p corrupt, when non-null, is set when the miss was a
     * corrupted entry (vs simply absent) — the caller quarantines
     * it under the index lock. */
    std::optional<harness::WorkloadSim>
    loadEntry(const std::string &key,
              bool *corrupt = nullptr) const;

    /** Move @p key's entry file into quarantine/ and erase its
     * index row; warns with @p why. At most one warn per entry:
     * after the move the key's path is simply absent. */
    void quarantineLocked(const std::string &key,
                          const std::string &why) const
        REQUIRES(index_mu_);

    /** Flip into compute-without-cache mode (first call warns). */
    void markDegraded(const std::string &why) const;

    /** Persist the index iff a deferred update is pending. */
    void flushIndexLocked() const REQUIRES(index_mu_);

    std::string dir_;

    /** In-memory index; mutable because reads (load) refresh the
     * LRU signal. Guarded by index_mu_ — the annotations make any
     * unlocked access a compile error on clang, and instances are
     * shared across the daemon's pool threads, so this is load-
     * bearing, not documentation. */
    mutable Mutex index_mu_;
    mutable StoreIndex index_ GUARDED_BY(index_mu_);
    mutable bool index_dirty_ GUARDED_BY(index_mu_) = false;

    /** Compute-without-cache switch; atomic so pool threads read it
     * without the index lock. */
    mutable std::atomic<bool> degraded_{false};
};

/**
 * @name Self-describing profile files
 * The store's entry format doubles as an interchange format:
 * exportSim() writes the same bytes a store entry holds (magic,
 * version, checksum, embedded key, payload), importSimFile() reads
 * them back, and importAnySim() additionally accepts a JSON idle
 * profile (see idleProfileSimFromJson) so externally measured idle
 * behavior can enter the pipeline. All throw StoreError on
 * malformed input.
 * @{
 */

/** A profile read from a file: the embedded key may be empty for
 * JSON imports, which carry no generating configuration. */
struct ImportedSim
{
    std::string key;
    harness::WorkloadSim sim;
};

void exportSim(const std::string &path, const std::string &key,
               const harness::WorkloadSim &sim);

ImportedSim importSimFile(const std::string &path);

/**
 * Accept either format: binary .lsimprof (sniffed by magic) or a
 * JSON idle profile object.
 */
ImportedSim importAnySim(const std::string &path);

/**
 * Build a WorkloadSim from an externally produced idle profile:
 *
 *   {"name": "measured-alu", "num_fus": 2,
 *    "active_cycles": 730000, "idle_cycles": 270000,
 *    "intervals": [[1, 41000], [2, 18000], [7, 9500]]}
 *
 * intervals are [length, count] pairs of the aggregate idle-interval
 * multiset (lengths strictly increasing). Only the idle profile — the
 * policy-evaluation sufficient statistic — is exact; timing stats
 * (IPC, cache rates) are absent from such measurements and stay
 * zero, and the Figure 7 histogram is reconstructed from the
 * aggregate multiset. Throws std::invalid_argument naming the
 * offending field.
 */
harness::WorkloadSim idleProfileSimFromJson(const JsonValue &v);

/** @} */

} // namespace lsim::store

#endif // LSIM_STORE_PROFILE_STORE_HH
