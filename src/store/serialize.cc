#include "store/serialize.hh"

#include <cstring>

namespace lsim::store
{

// --------------------------------------------------------------- Fnv1a

void
Fnv1a::addU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        addByte(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Fnv1a::addU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        addByte(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Fnv1a::addDouble(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    addU64(bits);
}

void
Fnv1a::addString(const std::string &text)
{
    addU64(text.size());
    for (char ch : text)
        addByte(static_cast<std::uint8_t>(ch));
}

std::string
Fnv1a::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    std::uint64_t v = hash_;
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

// -------------------------------------------------------- BinaryWriter

void
BinaryWriter::u8(std::uint8_t v)
{
    os_.put(static_cast<char>(v));
}

void
BinaryWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::f64(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
BinaryWriter::str(const std::string &text)
{
    u64(text.size());
    os_.write(text.data(),
              static_cast<std::streamsize>(text.size()));
}

// -------------------------------------------------------- BinaryReader

BinaryReader::BinaryReader(std::istream &is, std::uint64_t limit)
    : is_(is), remaining_(limit)
{
}

void
BinaryReader::need(std::uint64_t bytes)
{
    if (bytes > remaining_)
        throw StoreError("truncated record (wanted " +
                         std::to_string(bytes) + " bytes, have " +
                         std::to_string(remaining_) + ")");
    remaining_ -= bytes;
}

std::uint8_t
BinaryReader::u8()
{
    need(1);
    const int ch = is_.get();
    if (ch == std::char_traits<char>::eof())
        throw StoreError("unexpected end of input");
    return static_cast<std::uint8_t>(ch);
}

std::uint32_t
BinaryReader::u32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
}

std::uint64_t
BinaryReader::u64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
}

double
BinaryReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
BinaryReader::str()
{
    const std::uint64_t len = count(1);
    need(len); // read directly below, not via the primitives
    std::string out(static_cast<std::size_t>(len), '\0');
    is_.read(out.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::uint64_t>(is_.gcount()) != len)
        throw StoreError("unexpected end of input in string");
    return out;
}

std::uint64_t
BinaryReader::count(std::uint64_t element_bytes)
{
    // Validates only; the element reads themselves consume
    // remaining_ through the checked primitives.
    const std::uint64_t n = u64();
    if (element_bytes != 0 && n > remaining_ / element_bytes)
        throw StoreError("element count " + std::to_string(n) +
                         " exceeds remaining input");
    return n;
}

bool
BinaryReader::exhausted()
{
    return remaining_ == 0 &&
           is_.peek() == std::char_traits<char>::eof();
}

// ------------------------------------------------------------ payloads

void
writeIdleProfile(BinaryWriter &w, const harness::IdleProfile &p)
{
    w.u64(p.active_cycles);
    w.u64(p.idle_cycles);
    w.u32(p.num_fus);
    w.u64(p.intervals.size());
    for (const auto &[len, count] : p.intervals) {
        w.u64(len);
        w.u64(count);
    }
}

harness::IdleProfile
readIdleProfile(BinaryReader &r)
{
    harness::IdleProfile p;
    p.active_cycles = r.u64();
    p.idle_cycles = r.u64();
    p.num_fus = r.u32();
    const std::uint64_t n = r.count(16);
    Cycle prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Cycle len = r.u64();
        const std::uint64_t count = r.u64();
        // std::map::emplace_hint(end) is O(1) for sorted input and
        // the sortedness check doubles as a corruption guard.
        if (i > 0 && len <= prev)
            throw StoreError("interval map keys not strictly "
                             "increasing");
        prev = len;
        p.intervals.emplace_hint(p.intervals.end(), len, count);
    }
    return p;
}

namespace
{

void
writeCacheStats(BinaryWriter &w, const cache::CacheStats &s)
{
    w.u64(s.accesses);
    w.u64(s.misses);
    w.u64(s.writebacks);
}

cache::CacheStats
readCacheStats(BinaryReader &r)
{
    cache::CacheStats s;
    s.accesses = r.u64();
    s.misses = r.u64();
    s.writebacks = r.u64();
    return s;
}

void
writeTlbStats(BinaryWriter &w, const cache::TlbStats &s)
{
    w.u64(s.accesses);
    w.u64(s.misses);
}

cache::TlbStats
readTlbStats(BinaryReader &r)
{
    cache::TlbStats s;
    s.accesses = r.u64();
    s.misses = r.u64();
    return s;
}

} // namespace

void
writeWorkloadSim(BinaryWriter &w, const harness::WorkloadSim &sim)
{
    w.str(sim.name);
    w.u32(sim.num_fus);

    const cpu::SimResult &res = sim.sim;
    w.u64(res.cycles);
    w.u64(res.committed);
    w.f64(res.ipc);

    const cpu::BpredStats &bp = res.bpred;
    w.u64(bp.lookups);
    w.u64(bp.cond_branches);
    w.u64(bp.dir_mispredicts);
    w.u64(bp.target_mispredicts);
    w.u64(bp.btb_cold_misses);
    w.u64(bp.ras_pushes);
    w.u64(bp.ras_pops);

    writeCacheStats(w, res.l1i);
    writeCacheStats(w, res.l1d);
    writeCacheStats(w, res.l2);
    writeTlbStats(w, res.itlb);
    writeTlbStats(w, res.dtlb);

    w.u64(res.fu_utilization.size());
    for (double u : res.fu_utilization)
        w.f64(u);
    w.f64(res.mean_fu_idle_fraction);

    writeIdleProfile(w, sim.idle);

    const stats::Log2Histogram &h = sim.idle_hist;
    w.u64(h.clampValue());
    w.u64(h.totalCount());
    w.u64(h.numBuckets());
    for (std::size_t b = 0; b < h.numBuckets(); ++b)
        w.f64(h.bucketWeight(b));
}

harness::WorkloadSim
readWorkloadSim(BinaryReader &r)
{
    harness::WorkloadSim sim;
    sim.name = r.str();
    sim.num_fus = r.u32();

    cpu::SimResult &res = sim.sim;
    res.cycles = r.u64();
    res.committed = r.u64();
    res.ipc = r.f64();

    cpu::BpredStats &bp = res.bpred;
    bp.lookups = r.u64();
    bp.cond_branches = r.u64();
    bp.dir_mispredicts = r.u64();
    bp.target_mispredicts = r.u64();
    bp.btb_cold_misses = r.u64();
    bp.ras_pushes = r.u64();
    bp.ras_pops = r.u64();

    res.l1i = readCacheStats(r);
    res.l1d = readCacheStats(r);
    res.l2 = readCacheStats(r);
    res.itlb = readTlbStats(r);
    res.dtlb = readTlbStats(r);

    const std::uint64_t num_fu = r.count(8);
    res.fu_utilization.reserve(static_cast<std::size_t>(num_fu));
    for (std::uint64_t i = 0; i < num_fu; ++i)
        res.fu_utilization.push_back(r.f64());
    res.mean_fu_idle_fraction = r.f64();

    sim.idle = readIdleProfile(r);

    const std::uint64_t clamp = r.u64();
    if (clamp == 0 || (clamp & (clamp - 1)) != 0)
        throw StoreError("histogram clamp is not a power of two");
    const std::uint64_t hist_count = r.u64();
    const std::uint64_t buckets = r.count(8);
    std::vector<double> weights;
    weights.reserve(static_cast<std::size_t>(buckets));
    for (std::uint64_t b = 0; b < buckets; ++b)
        weights.push_back(r.f64());
    if (weights.size() !=
        static_cast<std::size_t>(stats::floorLog2(clamp)) + 1)
        throw StoreError("histogram bucket count does not match "
                         "its clamp");
    sim.idle_hist = stats::Log2Histogram::fromBuckets(
        clamp, std::move(weights), hist_count);
    return sim;
}

} // namespace lsim::store
