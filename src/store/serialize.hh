/**
 * @file
 * Exact binary serialization of simulation results.
 *
 * The paper's central observation makes a completed timing
 * simulation's IdleProfile a *sufficient statistic*: every sleep
 * policy's energy accounting at every technology point is a pure
 * function of it. Persisting that statistic therefore lets unlimited
 * future sweeps replay a simulation that ran once, possibly in a
 * different process — but only if the round trip is *bit-exact*,
 * because sweeps promise bit-identical results regardless of where
 * the phase-1 data came from.
 *
 * Hence this format:
 *  - integers are fixed-width little-endian;
 *  - doubles are written as their raw IEEE-754 bit patterns (never
 *    through text formatting, which rounds);
 *  - a format-version word gates readers: any mismatch rejects the
 *    payload rather than guessing at field layouts;
 *  - an FNV-1a checksum over the payload detects truncation and
 *    corruption, so a damaged cache entry is re-simulated, never
 *    trusted.
 *
 * Read failures throw StoreError (a user-environment problem, not a
 * simulator bug).
 */

#ifndef LSIM_STORE_SERIALIZE_HH
#define LSIM_STORE_SERIALIZE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "harness/experiment.hh"

namespace lsim::store
{

/** Malformed, truncated, or version-mismatched stored data. */
class StoreError : public std::runtime_error
{
  public:
    explicit StoreError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/**
 * Version of the on-disk layout. Bump on ANY change to the
 * serialized field set or ordering; readers reject other versions
 * and the fingerprint mixes the version in, so stale cache entries
 * miss instead of parsing garbage.
 */
inline constexpr std::uint32_t kFormatVersion = 1;

/** 64-bit FNV-1a accumulator, used for checksums and cache keys. */
class Fnv1a
{
  public:
    void addByte(std::uint8_t byte)
    {
        hash_ ^= byte;
        hash_ *= 0x100000001b3ull;
    }

    void addU32(std::uint32_t v);
    void addU64(std::uint64_t v);
    /** Raw IEEE-754 bits, so -0.0 and 0.0 fingerprint differently. */
    void addDouble(double v);
    /** Length-prefixed, so ("ab","c") != ("a","bc"). */
    void addString(const std::string &text);

    std::uint64_t value() const { return hash_; }

    /** 16-digit lowercase hex of value(). */
    std::string hex() const;

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Little-endian primitive emitter over a std::ostream. */
class BinaryWriter
{
  public:
    explicit BinaryWriter(std::ostream &os)
        : os_(os)
    {
    }

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v); ///< raw IEEE-754 bits
    void str(const std::string &text);

  private:
    std::ostream &os_;
};

/**
 * Checked little-endian reader: every primitive throws StoreError on
 * EOF, and vector counts are validated against the remaining input
 * size before allocation.
 */
class BinaryReader
{
  public:
    /** @param limit Total bytes available (for count sanity checks). */
    explicit BinaryReader(std::istream &is, std::uint64_t limit);

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /**
     * Read an element count that precedes @p element_bytes-sized
     * records; throws when the count could not possibly fit in the
     * remaining input.
     */
    std::uint64_t count(std::uint64_t element_bytes);

    /** @return true when the whole input has been consumed. */
    bool exhausted();

  private:
    void need(std::uint64_t bytes);

    std::istream &is_;
    std::uint64_t remaining_;
};

/** @name WorkloadSim / IdleProfile payloads
 * The writers emit every field that feeds reporting (timing stats,
 * cache/bpred counters, FU utilizations, the idle-interval multiset
 * and the Figure 7 histogram); the readers reconstruct a WorkloadSim
 * whose serialized JSON/CSV output is byte-identical to the
 * original's. All functions handle payload bytes only — file
 * framing (magic, version, checksum) is ProfileStore's concern.
 * @{
 */
void writeIdleProfile(BinaryWriter &w, const harness::IdleProfile &p);
harness::IdleProfile readIdleProfile(BinaryReader &r);

void writeWorkloadSim(BinaryWriter &w, const harness::WorkloadSim &sim);
harness::WorkloadSim readWorkloadSim(BinaryReader &r);
/** @} */

} // namespace lsim::store

#endif // LSIM_STORE_SERIALIZE_HH
