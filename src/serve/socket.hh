/**
 * @file
 * The daemon's network front door: a Unix-domain request socket and
 * the client functions `lsim submit` / `lsim wait` speak to it.
 *
 * ## Protocol
 *
 * One request per connection. The client sends a single JSON
 * *header line* (newline-terminated, no newlines inside), optionally
 * followed by a raw body, and reads newline-delimited JSON response
 * lines shaped exactly like the daemon's status.json documents:
 *
 *     {"cmd": "submit", "name": "run42", "priority": 0,
 *      "wait": false, "spec_bytes": N}\n
 *     <N bytes: the batch-spec JSON, verbatim>
 *
 *     {"cmd": "wait", "name": "run42", "timeout_s": 600}\n
 *
 * For `submit` the daemon answers with one *ack line* — state
 * "queued" (admitted; `coalesced_with` names the in-flight request
 * it rides, when coalescing applied) or "rejected" (bounded queue
 * full, invalid spec, name in use) — and, when `"wait": true` and
 * the ack was not a rejection, a second *terminal line* once the
 * request reaches done/error. For `wait` the daemon answers with the
 * single terminal line (a synthesized error line on timeout).
 *
 * The spec body travels verbatim, but request identity is the parsed
 * fingerprint (api::batchFingerprint), so two clients submitting the
 * same spec with different whitespace still coalesce.
 *
 * The server shares the daemon's admission queue with the spool
 * scanner: connection threads only parse, admit, and wait — every
 * execution happens on the daemon's drain thread over the one
 * ThreadPool and ProfileStore.
 */

#ifndef LSIM_SERVE_SOCKET_HH
#define LSIM_SERVE_SOCKET_HH

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace lsim::serve
{

class Daemon;

/** Accept loop + per-connection request threads over an AF_UNIX
 * listener. Owned by the Daemon; all admissions go through it. */
class SocketServer
{
  public:
    /**
     * Bind @p path (unlinking a stale socket left by a dead daemon)
     * and start accepting. Throws std::invalid_argument when the
     * path cannot be bound (too long for sun_path, bad directory,
     * or busy).
     */
    SocketServer(Daemon &daemon, const std::string &path);

    ~SocketServer();

    /** Stop accepting, unblock in-flight connections, join every
     * thread, and unlink the socket path. Idempotent. */
    void stop();

    const std::string &path() const { return path_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        /** Set by the connection thread on exit so the accept loop
         * can reap (join) finished connections as it goes. */
        std::shared_ptr<std::atomic<bool>> done;
    };

    void acceptLoop();
    void serveConnection(int fd,
                         std::shared_ptr<std::atomic<bool>> done);
    void reapFinished(bool join_all);

    Daemon &daemon_;
    std::string path_;
    int listen_fd_ = -1;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;
    std::thread accept_thread_;

    Mutex conns_mu_;
    std::vector<Connection> conns_ GUARDED_BY(conns_mu_);
};

/** What a client call produced: transport success plus the response
 * lines (status.json-shaped documents) the daemon sent. */
struct ClientResult
{
    bool ok = false;    ///< transport-level success
    std::string error;  ///< connect/read/write failure detail
    std::vector<std::string> lines; ///< ack, then terminal if waited
};

/**
 * Submit @p spec_text as request @p name over the daemon socket at
 * @p socket_path. With @p wait, also block (up to @p timeout_s) for
 * the terminal line. Transport failures land in the result's error;
 * protocol rejections come back as a "rejected" ack line.
 */
ClientResult socketSubmit(const std::string &socket_path,
                          const std::string &name,
                          const std::string &spec_text,
                          int priority, bool wait,
                          double timeout_s);

/** Block until request @p name is terminal on the daemon at
 * @p socket_path (up to @p timeout_s); one response line. */
ClientResult socketWait(const std::string &socket_path,
                        const std::string &name, double timeout_s);

} // namespace lsim::serve

#endif // LSIM_SERVE_SOCKET_HH
