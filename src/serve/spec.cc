#include "serve/spec.hh"

#include <limits>
#include <stdexcept>
#include <string>

#include "trace/profile_json.hh"

namespace lsim::serve
{

api::SweepConfig
sweepConfigFromJson(const JsonValue &v, std::size_t index)
{
    const std::string where =
        "batch spec sweep " + std::to_string(index);
    if (!v.isObject())
        throw std::invalid_argument(where +
                                    ": expected a JSON object");

    api::SweepConfig cfg;
    double p_min = 0.05, p_max = 1.0, alpha = 0.5;
    unsigned steps = 20;
    const auto asU32 = [](const JsonValue &value,
                          const char *field) {
        const std::uint64_t n = value.asU64();
        if (n > std::numeric_limits<unsigned>::max())
            throw std::invalid_argument(std::string(field) +
                                        ": value too large");
        return static_cast<unsigned>(n);
    };
    try {
        for (const auto &[key, value] : v.members()) {
            if (key == "benchmarks") {
                for (const auto &name : value.items())
                    cfg.workloads.push_back(name.asString());
            } else if (key == "policies") {
                for (const auto &spec : value.items())
                    cfg.policies.push_back(spec.asString());
            } else if (key == "profiles") {
                for (const auto &path : value.items())
                    cfg.profiles.push_back(
                        trace::loadWorkloadProfile(path.asString()));
            } else if (key == "imports") {
                for (const auto &path : value.items())
                    cfg.imports.push_back(path.asString());
            } else if (key == "p_min") {
                p_min = value.asNumber();
            } else if (key == "p_max") {
                p_max = value.asNumber();
            } else if (key == "steps") {
                steps = asU32(value, "steps");
            } else if (key == "alpha") {
                alpha = value.asNumber();
            } else if (key == "insts") {
                cfg.insts = value.asU64();
            } else if (key == "seed") {
                cfg.seed = value.asU64();
            } else if (key == "fus") {
                if (value.isString() && value.asString() == "auto")
                    cfg.fus = api::auto_select;
                else
                    cfg.fus = asU32(value, "fus");
            } else {
                throw std::invalid_argument("unknown field '" + key +
                                            "'");
            }
        }
        cfg.technologies = api::pSweep(p_min, p_max, steps, alpha);
    } catch (const std::invalid_argument &err) {
        throw std::invalid_argument(where + ": " + err.what());
    }
    return cfg;
}

api::BatchConfig
batchConfigFromJson(const JsonValue &doc)
{
    if (!doc.isObject() || !doc.find("sweeps"))
        throw std::invalid_argument(
            "batch spec must be an object with a 'sweeps' array");
    for (const auto &[key, value] : doc.members()) {
        (void)value;
        if (key != "sweeps")
            throw std::invalid_argument(
                "batch spec: unknown field '" + key + "'");
    }
    const auto &sweeps = doc.at("sweeps").items();
    if (sweeps.empty())
        throw std::invalid_argument("batch spec: 'sweeps' is empty");

    api::BatchConfig batch;
    for (std::size_t i = 0; i < sweeps.size(); ++i)
        batch.sweeps.push_back(sweepConfigFromJson(sweeps[i], i));
    return batch;
}

} // namespace lsim::serve
