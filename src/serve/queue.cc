#include "serve/queue.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace lsim::serve
{

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
}

Admission
RequestQueue::submit(QueuedRequest req, std::string *primary)
{
    MutexLock lock(mu_);
    if (live_.count(req.name) > 0)
        return Admission::RejectedName;

    // Coalesce before the capacity check: a follower costs a result
    // copy, not an execution slot, so backpressure never applies.
    const auto hit = primaries_.find(req.fingerprint);
    if (hit != primaries_.end()) {
        if (primary)
            *primary = hit->second;
        live_[req.name] = req.fingerprint;
        req.seq = next_seq_++;
        followers_[hit->second].push_back(std::move(req));
        return Admission::Coalesced;
    }

    if (pending_.size() >= capacity_)
        return Admission::RejectedFull;

    live_[req.name] = req.fingerprint;
    primaries_[req.fingerprint] = req.name;
    req.seq = next_seq_++;
    pending_.push_back(std::move(req));
    obs::gauge("serve.queue_depth")
        .set(static_cast<std::int64_t>(pending_.size()));
    cv_.notify_all();
    return Admission::Enqueued;
}

std::size_t
RequestQueue::bestLocked() const
{
    std::size_t best = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (best == pending_.size() ||
            pending_[i].priority > pending_[best].priority ||
            (pending_[i].priority == pending_[best].priority &&
             pending_[i].seq < pending_[best].seq))
            best = i;
    }
    return best;
}

std::optional<QueuedRequest>
RequestQueue::pop()
{
    MutexLock lock(mu_);
    const std::size_t best = bestLocked();
    if (best == pending_.size())
        return std::nullopt;
    QueuedRequest req = std::move(pending_[best]);
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(best));
    obs::gauge("serve.queue_depth")
        .set(static_cast<std::int64_t>(pending_.size()));
    return req;
}

std::vector<QueuedRequest>
RequestQueue::finish(const std::string &name)
{
    MutexLock lock(mu_);
    std::vector<QueuedRequest> out;
    const auto followers = followers_.find(name);
    if (followers != followers_.end()) {
        out = std::move(followers->second);
        followers_.erase(followers);
    }
    const auto fp = live_.find(name);
    if (fp != live_.end()) {
        const auto primary = primaries_.find(fp->second);
        if (primary != primaries_.end() && primary->second == name)
            primaries_.erase(primary);
        live_.erase(fp);
    }
    for (const QueuedRequest &f : out)
        live_.erase(f.name);
    return out;
}

std::vector<QueuedRequest>
RequestQueue::drainPending()
{
    MutexLock lock(mu_);
    std::vector<QueuedRequest> out = std::move(pending_);
    pending_.clear();
    // Followers of a drained primary are abandoned with it (the
    // caller fails them all together); followers of an *executing*
    // primary stay — that request still completes and fans out.
    const std::size_t primaries = out.size();
    for (std::size_t i = 0; i < primaries; ++i) {
        const QueuedRequest &req = out[i];
        const auto fp = live_.find(req.name);
        if (fp != live_.end()) {
            primaries_.erase(fp->second);
            live_.erase(fp);
        }
        const auto followers = followers_.find(req.name);
        if (followers != followers_.end()) {
            for (QueuedRequest &f : followers->second) {
                live_.erase(f.name);
                out.push_back(std::move(f));
            }
            followers_.erase(followers);
        }
    }
    obs::gauge("serve.queue_depth").set(0);
    return out;
}

std::size_t
RequestQueue::depth() const
{
    MutexLock lock(mu_);
    return pending_.size();
}

bool
RequestQueue::full() const
{
    MutexLock lock(mu_);
    return pending_.size() >= capacity_;
}

bool
RequestQueue::live(const std::string &name) const
{
    MutexLock lock(mu_);
    return live_.count(name) > 0;
}

bool
RequestQueue::waitForWork(std::chrono::milliseconds timeout)
{
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (pending_.empty()) {
        if (cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout)
            return !pending_.empty();
    }
    return true;
}

} // namespace lsim::serve
