#include "serve/socket.hh"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/fault.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "serve/daemon.hh"

namespace lsim::serve
{

namespace
{

/** Default terminal-wait budget when the client asked to wait but
 * set no timeout (an hour: a batch, not an RPC). */
constexpr double kDefaultWaitS = 3600.0;

/** Largest accepted header line / spec body; a batch spec is a few
 * KiB, so these bounds only stop a runaway (or hostile) writer. */
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxSpecBytes = 16 * 1024 * 1024;

/** send() the whole buffer; MSG_NOSIGNAL so a client that hung up
 * yields EPIPE, not process death. */
bool
sendAll(int fd, const std::string &data)
{
    // Shared by daemon and clients, so one fault point covers every
    // direction a write can break mid-stream.
    int injected = 0;
    if (LSIM_FAULT_ERRNO("socket.write", &injected)) {
        errno = injected;
        return false;
    }
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendLine(int fd, const std::string &line)
{
    return sendAll(fd, line + "\n");
}

/** Read exactly @p want bytes. @return false on EOF/error. */
bool
recvExactly(int fd, std::size_t want, std::string *out)
{
    int injected = 0;
    if (LSIM_FAULT_ERRNO("socket.read", &injected)) {
        errno = injected;
        return false;
    }
    out->clear();
    out->reserve(want);
    char buf[4096];
    while (out->size() < want) {
        const std::size_t chunk =
            std::min(sizeof buf, want - out->size());
        const ssize_t n = ::recv(fd, buf, chunk, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        out->append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

/** Read up to and including '\n'; the newline is not kept.
 * @return false on EOF before a newline or an oversized line. */
bool
recvLine(int fd, std::string *out)
{
    int injected = 0;
    if (LSIM_FAULT_ERRNO("socket.read", &injected)) {
        errno = injected;
        return false;
    }
    out->clear();
    char c = 0;
    while (out->size() < kMaxHeaderBytes) {
        const ssize_t n = ::recv(fd, &c, 1, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        if (c == '\n')
            return true;
        out->push_back(c);
    }
    return false;
}

std::string
errorLine(const std::string &name, const std::string &message)
{
    std::ostringstream ss;
    JsonWriter w(ss);
    w.beginObject();
    w.field("spec", name.empty() ? "?" : name);
    w.field("state", "error");
    w.field("error", message);
    w.endObject();
    return ss.str();
}

/** Connect to the daemon socket; -1 with @p error set on failure. */
int
connectTo(const std::string &socket_path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        *error = "socket path too long: " + socket_path;
        return -1;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        *error = "cannot connect to '" + socket_path +
                 "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

SocketServer::SocketServer(Daemon &daemon, const std::string &path)
    : daemon_(daemon), path_(path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof addr.sun_path)
        throw std::invalid_argument(
            "serve: socket path too long (max " +
            std::to_string(sizeof addr.sun_path - 1) +
            " bytes): " + path_);
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        throw std::invalid_argument(
            std::string("serve: socket(): ") +
            std::strerror(errno));
    // A stale socket file from a dead daemon blocks bind(); probe
    // with connect() so a *live* daemon's socket is never stolen.
    if (::bind(listen_fd_,
               reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        std::string probe_error;
        const int probe = connectTo(path_, &probe_error);
        if (probe >= 0) {
            ::close(probe);
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw std::invalid_argument(
                "serve: socket '" + path_ +
                "' is served by another daemon");
        }
        ::unlink(path_.c_str());
        if (::bind(listen_fd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0) {
            const std::string detail = std::strerror(errno);
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw std::invalid_argument(
                "serve: cannot bind '" + path_ + "': " + detail);
        }
    }
    if (::listen(listen_fd_, 64) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(path_.c_str());
        throw std::invalid_argument("serve: cannot listen on '" +
                                    path_ + "': " + detail);
    }
    accept_thread_ = std::thread([this] { acceptLoop(); });
    inform("serve: listening on %s", path_.c_str());
}

SocketServer::~SocketServer()
{
    stop();
}

void
SocketServer::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    stopping_.store(true);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    // Unblock every connection thread stuck in recv()/waitFor(),
    // then join them all.
    {
        MutexLock lock(conns_mu_);
        for (Connection &conn : conns_)
            ::shutdown(conn.fd, SHUT_RDWR);
    }
    reapFinished(/*join_all=*/true);
    ::unlink(path_.c_str());
}

void
SocketServer::reapFinished(bool join_all)
{
    std::vector<Connection> finished;
    {
        MutexLock lock(conns_mu_);
        for (std::size_t i = 0; i < conns_.size();) {
            if (join_all || conns_[i].done->load()) {
                finished.push_back(std::move(conns_[i]));
                conns_.erase(conns_.begin() +
                             static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    }
    for (Connection &conn : finished) {
        if (conn.thread.joinable())
            conn.thread.join();
        ::close(conn.fd);
    }
}

void
SocketServer::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        reapFinished(/*join_all=*/false);
        if (ready <= 0)
            continue;
        const int fd =
            ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        if (LSIM_FAULT("socket.accept")) {
            // Injected accept failure: drop the connection exactly
            // as a transient accept4() error would.
            ::close(fd);
            continue;
        }
        auto done = std::make_shared<std::atomic<bool>>(false);
        Connection conn;
        conn.fd = fd;
        conn.done = done;
        conn.thread = std::thread(
            [this, fd, done] { serveConnection(fd, done); });
        MutexLock lock(conns_mu_);
        conns_.push_back(std::move(conn));
    }
}

void
SocketServer::serveConnection(
    int fd, std::shared_ptr<std::atomic<bool>> done)
{
    std::string header;
    if (!recvLine(fd, &header)) {
        done->store(true);
        return;
    }
    std::string name;
    try {
        const JsonValue doc = parseJson(header);
        const std::string cmd = doc.at("cmd").asString();
        if (const JsonValue *n = doc.find("name"))
            name = n->asString();
        if (cmd == "submit") {
            const std::uint64_t spec_bytes =
                doc.at("spec_bytes").asU64();
            if (spec_bytes > kMaxSpecBytes) {
                sendLine(fd,
                         errorLine(name, "spec too large"));
                done->store(true);
                return;
            }
            std::string spec;
            if (!recvExactly(fd, spec_bytes, &spec)) {
                done->store(true);
                return;
            }
            int priority = 0;
            if (const JsonValue *p = doc.find("priority"))
                priority = static_cast<int>(p->asNumber());
            bool wait = false;
            if (const JsonValue *w = doc.find("wait"))
                wait = w->asBool();
            double timeout_s = kDefaultWaitS;
            if (const JsonValue *t = doc.find("timeout_s"))
                timeout_s = t->asNumber();

            std::string ack;
            const SubmitResult admitted = daemon_.submitRequest(
                name, spec, priority, &ack);
            if (!sendLine(fd, ack) ||
                admitted == SubmitResult::Rejected || !wait) {
                done->store(true);
                return;
            }
            sendLine(fd, daemon_.waitFor(name, timeout_s));
        } else if (cmd == "wait") {
            double timeout_s = kDefaultWaitS;
            if (const JsonValue *t = doc.find("timeout_s"))
                timeout_s = t->asNumber();
            sendLine(fd, daemon_.waitFor(name, timeout_s));
        } else {
            sendLine(fd, errorLine(
                             name, "unknown command '" + cmd + "'"));
        }
    } catch (const std::exception &err) {
        sendLine(fd, errorLine(name, std::string("bad request: ") +
                                         err.what()));
    }
    done->store(true);
}

namespace
{

/** Shared client tail: send @p payload, read @p expect_lines. */
ClientResult
roundTrip(const std::string &socket_path,
          const std::string &payload, std::size_t expect_lines)
{
    ClientResult result;
    const int fd = connectTo(socket_path, &result.error);
    if (fd < 0)
        return result;
    if (!sendAll(fd, payload)) {
        result.error = std::string("send failed: ") +
                       std::strerror(errno);
        ::close(fd);
        return result;
    }
    for (std::size_t i = 0; i < expect_lines; ++i) {
        std::string line;
        if (!recvLine(fd, &line)) {
            if (result.lines.empty()) {
                result.error = "connection closed before a "
                               "response arrived";
                ::close(fd);
                return result;
            }
            break; // daemon sent fewer lines (e.g. rejection)
        }
        result.lines.push_back(std::move(line));
    }
    ::close(fd);
    result.ok = !result.lines.empty();
    if (!result.ok && result.error.empty())
        result.error = "empty response";
    return result;
}

} // namespace

ClientResult
socketSubmit(const std::string &socket_path,
             const std::string &name,
             const std::string &spec_text, int priority, bool wait,
             double timeout_s)
{
    std::ostringstream header;
    JsonWriter w(header);
    w.beginObject();
    w.field("cmd", "submit");
    w.field("name", name);
    w.field("priority", static_cast<double>(priority));
    w.field("wait", wait);
    w.field("timeout_s", timeout_s);
    w.field("spec_bytes",
            static_cast<std::uint64_t>(spec_text.size()));
    w.endObject();
    return roundTrip(socket_path,
                     header.str() + "\n" + spec_text,
                     wait ? 2 : 1);
}

ClientResult
socketWait(const std::string &socket_path, const std::string &name,
           double timeout_s)
{
    std::ostringstream header;
    JsonWriter w(header);
    w.beginObject();
    w.field("cmd", "wait");
    w.field("name", name);
    w.field("timeout_s", timeout_s);
    w.endObject();
    return roundTrip(socket_path, header.str() + "\n", 1);
}

} // namespace lsim::serve
