#include "serve/daemon.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/batch.hh"
#include "common/fault.hh"
#include "common/files.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/socket.hh"
#include "serve/spec.hh"

namespace lsim::serve
{

namespace fs = std::filesystem;

namespace
{

constexpr const char *kWorkDir = "work";
constexpr const char *kDoneDir = "done";
constexpr const char *kFailedDir = "failed";
constexpr const char *kStatusFile = "status.json";
constexpr const char *kMetricsFile = "metrics.json";

/** Terminal status lines the completion board keeps (waiters get at
 * most this many lingering results; disk has the rest). */
constexpr std::size_t kBoardCapacity = 256;

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Request names become directory components; reject anything that
 * could escape the results dir or collide with reserved files. */
bool
validName(const std::string &name)
{
    if (name.empty() || name.size() > 128 || name == "." ||
        name == "..")
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Does this status text name a terminal state? (Cheap check for
 * waiters polling result dirs written by *other* daemons.) */
bool
terminalStatus(const std::string &text)
{
    return text.find("\"state\":\"done\"") != std::string::npos ||
           text.find("\"state\":\"error\"") !=
               std::string::npos ||
           text.find("\"state\":\"rejected\"") !=
               std::string::npos;
}

std::string
trimTrailingNewline(std::string text)
{
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
    return text;
}

} // namespace

/** One request's lifecycle state, shared by the status transitions
 * so every write carries everything known so far. */
struct Daemon::Request
{
    std::string spec_label; ///< "spec" field: filename or name
    std::string name;       ///< request name (results dir stem)
    std::string work_path;  ///< claimed spool location; "" = socket
    std::string result_dir; ///< <results>/<name>
    std::size_t sweeps = 0; ///< result count, once known
    double run_ms = 0.0;    ///< BatchRunner::run wall time
    double total_ms = 0.0;  ///< admission-to-final wall time
    std::optional<api::BatchStats> stats;
    std::string coalesced_with; ///< primary name, for followers

    // Wall-clock ISO-8601 stamps, filled as the request advances so
    // per-request latency is reconstructable from the spool alone.
    std::string queued_at;
    std::string started_at;
    std::string finished_at;

    /**
     * Render the status.json document (one line per field, trailing
     * newline). @p state is one of "queued", "running", "done",
     * "error", "rejected"; @p error is the machine-readable failure
     * message for the error/rejected states.
     */
    std::string statusJson(const char *state,
                           const std::string &error = "") const
    {
        std::ostringstream ss;
        JsonWriter w(ss);
        w.beginObject();
        w.field("spec", spec_label);
        w.field("state", state);
        if (!error.empty())
            w.field("error", error);
        if (!coalesced_with.empty())
            w.field("coalesced_with", coalesced_with);
        if (sweeps > 0)
            w.field("sweeps", static_cast<std::uint64_t>(sweeps));
        w.field("run_ms", run_ms);
        w.field("total_ms", total_ms);
        if (!queued_at.empty())
            w.field("queued_at", queued_at);
        if (!started_at.empty())
            w.field("started_at", started_at);
        if (!finished_at.empty())
            w.field("finished_at", finished_at);
        if (stats) {
            w.beginObject("stats");
            w.field("requested_sims",
                    static_cast<std::uint64_t>(
                        stats->requested_sims));
            w.field("unique_sims",
                    static_cast<std::uint64_t>(stats->unique_sims));
            w.field("cache_hits",
                    static_cast<std::uint64_t>(stats->cache_hits));
            w.field("sims_run",
                    static_cast<std::uint64_t>(stats->sims_run));
            w.endObject();
        }
        w.endObject();
        ss << "\n";
        return ss.str();
    }

    /** Atomically (re)write <result_dir>/status.json; @return the
     * document written. A lost status write (injected or real) is
     * survivable: the in-process completion board carries the same
     * line to waiters, and disk pollers see the previous state. */
    std::string writeStatus(const char *state,
                            const std::string &error = "") const
    {
        std::string doc = statusJson(state, error);
        if (!LSIM_FAULT("serve.status"))
            atomicWriteFile(
                (fs::path(result_dir) / kStatusFile).string(),
                doc);
        return doc;
    }
};

Daemon::Daemon(ServeConfig config)
    : config_(std::move(config)),
      results_dir_(config_.results_dir.empty()
                       ? (fs::path(config_.spool_dir) / "results")
                             .string()
                       : config_.results_dir),
      metrics_path_(
          (fs::path(config_.spool_dir) / kMetricsFile).string()),
      pool_(config_.threads), queue_(config_.max_queue)
{
    if (config_.spool_dir.empty())
        throw std::invalid_argument("serve: spool directory not set");
    for (const std::string &dir :
         {config_.spool_dir,
          (fs::path(config_.spool_dir) / kWorkDir).string(),
          (fs::path(config_.spool_dir) / kDoneDir).string(),
          (fs::path(config_.spool_dir) / kFailedDir).string(),
          results_dir_}) {
        std::error_code ec;
        fs::create_directories(dir, ec);
        if (ec || !fs::is_directory(dir))
            throw std::invalid_argument("serve: directory '" + dir +
                                        "' cannot be created");
    }
    if (!config_.cache_dir.empty())
        store_.emplace(config_.cache_dir);
    recoverStale();
    // The socket comes up last so a connecting client never races
    // the spool layout or the store.
    if (!config_.socket_path.empty())
        socket_ =
            std::make_unique<SocketServer>(*this,
                                           config_.socket_path);
}

Daemon::~Daemon()
{
    // Unblock waiters first (their connection threads must be able
    // to finish for stop() to join them), then stop the front door,
    // then fail what was admitted but never ran.
    {
        MutexLock lock(board_mu_);
        shutting_down_ = true;
    }
    board_cv_.notify_all();
    if (socket_)
        socket_->stop();
    abandonQueued();
    socket_.reset();
}

void
Daemon::recoverStale()
{
    // Specs stranded in work/ mean a previous daemon died mid-
    // request; their results are suspect, so re-queue the specs and
    // let this instance redo them from scratch.
    const fs::path work = fs::path(config_.spool_dir) / kWorkDir;
    for (const auto &de : fs::directory_iterator(work)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json")
            continue;
        const fs::path dest =
            fs::path(config_.spool_dir) / de.path().filename();
        std::error_code ec;
        if (fs::exists(dest, ec)) {
            // A same-named spec was submitted since the crash;
            // re-queueing would clobber it with the stale copy.
            // The fresh spec wins — park the stale one in failed/.
            warn("serve: stale spec '%s' shadowed by a newer "
                 "submission; moving it to %s/",
                 de.path().filename().string().c_str(), kFailedDir);
            fs::rename(de.path(),
                       fs::path(config_.spool_dir) / kFailedDir /
                           de.path().filename(),
                       ec);
            continue;
        }
        fs::rename(de.path(), dest, ec);
        if (ec) {
            warn("serve: cannot re-queue stale spec '%s': %s",
                 de.path().string().c_str(), ec.message().c_str());
            continue;
        }
        {
            MutexLock lock(stats_mu_);
            stats_.recovered += 1;
        }
        obs::counter("serve.requests_recovered").add();
        inform("serve: re-queued stale spec '%s'",
               de.path().filename().string().c_str());
    }
}

bool
Daemon::stopped() const
{
    return config_.stop && config_.stop();
}

bool
Daemon::moveTo(const std::string &from, const std::string &subdir,
               const std::string &name, std::string *error)
{
    std::error_code ec;
    fs::rename(from, fs::path(config_.spool_dir) / subdir / name,
               ec);
    if (ec) {
        if (error)
            *error = "cannot move '" + from + "' to " + subdir +
                     "/: " + ec.message();
        return false;
    }
    return true;
}

void
Daemon::publishFinal(const std::string &name,
                     const std::string &status_line)
{
    MutexLock lock(board_mu_);
    const auto [it, inserted] =
        final_.emplace(name, trimTrailingNewline(status_line));
    if (!inserted)
        it->second = trimTrailingNewline(status_line);
    else
        final_order_.push_back(name);
    while (final_order_.size() > kBoardCapacity) {
        final_.erase(final_order_.front());
        final_order_.erase(final_order_.begin());
    }
    board_cv_.notify_all();
}

void
Daemon::admitSpool(const std::string &spec_name)
{
    // Claim by rename: with several daemons sharing one spool,
    // exactly one rename succeeds and the losers skip silently.
    const fs::path spool(config_.spool_dir);
    const std::string stem = fs::path(spec_name).stem().string();
    if (queue_.live(stem))
        return; // a live request owns this name; retry next drain
    if (LSIM_FAULT("serve.claim"))
        return; // injected lost claim: spec survives for a later
                // drain (or another daemon), exactly like a race

    Request req;
    req.spec_label = spec_name;
    req.name = stem;
    req.work_path = (spool / kWorkDir / spec_name).string();
    {
        std::error_code ec;
        fs::rename(spool / spec_name, req.work_path, ec);
        if (ec)
            return; // raced with another daemon, or vanished
    }
    req.result_dir = (fs::path(results_dir_) / stem).string();
    {
        std::error_code ec;
        fs::create_directories(req.result_dir, ec);
        if (ec) {
            warn("serve: cannot create result dir '%s': %s",
                 req.result_dir.c_str(), ec.message().c_str());
            // Without a result dir there is nowhere to report
            // status; park the spec in failed/ and move on.
            moveTo(req.work_path, kFailedDir, spec_name, nullptr);
            obs::counter("serve.requests_failed").add();
            MutexLock lock(stats_mu_);
            stats_.failed += 1;
            stats_.processed += 1;
            return;
        }
    }
    {
        // A re-submitted name must not wait-match its old result.
        MutexLock lock(board_mu_);
        final_.erase(stem);
    }

    const auto admitted = std::chrono::steady_clock::now();
    req.queued_at = obs::isoTimestampNow();
    req.writeStatus("queued");

    QueuedRequest qr;
    qr.name = stem;
    qr.spec_file = spec_name;
    qr.spec_text = readFileText(req.work_path);
    qr.ingress = Ingress::Spool;
    qr.queued_at = req.queued_at;
    qr.admitted = admitted;
    try {
        qr.fingerprint = api::batchFingerprint(
            batchConfigFromJson(parseJson(qr.spec_text)));
    } catch (const std::exception &err) {
        // Malformed specs fail at the door, before they cost a
        // queue slot: error status, spec to failed/.
        req.total_ms = msSince(admitted);
        req.finished_at = obs::isoTimestampNow();
        const std::string line =
            req.writeStatus("error", err.what());
        publishFinal(stem, line);
        obs::counter("serve.requests_failed").add();
        std::string move_error;
        if (!moveTo(req.work_path, kFailedDir, spec_name,
                    &move_error))
            warn("serve: %s", move_error.c_str());
        {
            MutexLock lock(stats_mu_);
            stats_.failed += 1;
            stats_.processed += 1;
        }
        warn("serve: %s failed: %s", spec_name.c_str(),
             err.what());
        return;
    }

    std::string primary;
    switch (queue_.submit(std::move(qr), &primary)) {
    case Admission::Enqueued:
        break;
    case Admission::Coalesced:
        // The identical in-flight request will fan its results out
        // to this one; no queue slot, no execution.
        obs::counter("serve.requests_coalesced").add();
        {
            MutexLock lock(stats_mu_);
            stats_.coalesced += 1;
        }
        inform("serve: %s coalesced with in-flight request '%s'",
               spec_name.c_str(), primary.c_str());
        break;
    case Admission::RejectedFull:
        // Backpressure: un-claim so the spec survives on disk and a
        // later drain (or another daemon) picks it up.
        {
            std::error_code ec;
            fs::rename(req.work_path, spool / spec_name, ec);
        }
        break;
    case Admission::RejectedName:
        // Lost a race with a socket submission using this name.
        warn("serve: %s rejected: request name '%s' is in use",
             spec_name.c_str(), stem.c_str());
        moveTo(req.work_path, kFailedDir, spec_name, nullptr);
        obs::counter("serve.requests_rejected").add();
        {
            MutexLock lock(stats_mu_);
            stats_.rejected += 1;
            stats_.failed += 1;
            stats_.processed += 1;
        }
        break;
    }
}

SubmitResult
Daemon::submitRequest(const std::string &name,
                      const std::string &spec_text, int priority,
                      std::string *response)
{
    const auto reject = [&](const std::string &message,
                            bool write_status) {
        Request req;
        req.spec_label = name.empty() ? "?" : name;
        req.name = req.spec_label;
        if (write_status) {
            req.result_dir =
                (fs::path(results_dir_) / req.name).string();
            std::error_code ec;
            fs::create_directories(req.result_dir, ec);
            if (!ec) {
                req.finished_at = obs::isoTimestampNow();
                req.writeStatus("rejected", message);
            }
        }
        if (response)
            *response = trimTrailingNewline(
                req.statusJson("rejected", message));
        obs::counter("serve.requests_rejected").add();
        MutexLock lock(stats_mu_);
        stats_.rejected += 1;
        return SubmitResult::Rejected;
    };

    if (!validName(name))
        return reject("invalid request name", false);
    if (queue_.live(name))
        return reject("request name '" + name + "' is in use",
                      false);
    if (LSIM_FAULT("serve.admit"))
        return reject("injected admission fault", false);

    QueuedRequest qr;
    qr.name = name;
    qr.spec_text = spec_text;
    qr.priority = priority;
    qr.ingress = Ingress::Socket;
    qr.admitted = std::chrono::steady_clock::now();
    try {
        qr.fingerprint = api::batchFingerprint(
            batchConfigFromJson(parseJson(spec_text)));
    } catch (const std::exception &err) {
        return reject(err.what(), false);
    }

    Request req;
    req.spec_label = name;
    req.name = name;
    req.result_dir = (fs::path(results_dir_) / name).string();
    {
        std::error_code ec;
        fs::create_directories(req.result_dir, ec);
        if (ec)
            return reject("cannot create result dir '" +
                              req.result_dir +
                              "': " + ec.message(),
                          false);
    }
    {
        MutexLock lock(board_mu_);
        final_.erase(name);
    }
    req.queued_at = obs::isoTimestampNow();
    qr.queued_at = req.queued_at;
    // The queued status lands on disk *before* the queue sees the
    // request, so the execution fan-out can never lose a race to
    // this write (its done status always comes later).
    req.writeStatus("queued");

    std::string primary;
    switch (queue_.submit(std::move(qr), &primary)) {
    case Admission::Enqueued:
        if (response)
            *response =
                trimTrailingNewline(req.statusJson("queued"));
        return SubmitResult::Queued;
    case Admission::Coalesced:
        obs::counter("serve.requests_coalesced").add();
        {
            MutexLock lock(stats_mu_);
            stats_.coalesced += 1;
        }
        req.coalesced_with = primary;
        if (response)
            *response =
                trimTrailingNewline(req.statusJson("queued"));
        return SubmitResult::Coalesced;
    case Admission::RejectedFull:
        return reject("queue full (" +
                          std::to_string(config_.max_queue) +
                          " pending)",
                      true);
    case Admission::RejectedName:
        return reject("request name '" + name + "' is in use",
                      false);
    }
    return reject("internal admission error", false);
}

std::string
Daemon::waitFor(const std::string &name, double timeout_s)
{
    const auto synth = [&](const std::string &message) {
        Request req;
        req.spec_label = name;
        req.name = name;
        return trimTrailingNewline(
            req.statusJson("error", message));
    };
    if (!validName(name))
        return synth("invalid request name");

    const std::string status_path =
        (fs::path(results_dir_) / name / kStatusFile).string();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    for (;;) {
        bool shutting_down = false;
        {
            MutexLock lock(board_mu_);
            const auto it = final_.find(name);
            if (it != final_.end())
                return it->second;
            shutting_down = shutting_down_;
        }
        // Fall back to disk: the request may have been served by
        // another daemon sharing this spool, or completed before
        // this daemon restarted.
        {
            const std::string text = readFileText(status_path);
            if (!text.empty() && terminalStatus(text))
                return trimTrailingNewline(text);
        }
        if (shutting_down)
            return synth("daemon stopping");
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline)
            return synth("wait timed out");
        const auto slice =
            std::min<std::chrono::steady_clock::duration>(
                std::chrono::milliseconds(100), deadline - now);
        MutexLock lock(board_mu_);
        board_cv_.wait_for(lock, slice);
    }
}

void
Daemon::failRequest(const QueuedRequest &req,
                    const std::string &message,
                    const std::string &started_at)
{
    Request r;
    r.spec_label =
        req.ingress == Ingress::Spool ? req.spec_file : req.name;
    r.name = req.name;
    r.result_dir = (fs::path(results_dir_) / req.name).string();
    if (req.ingress == Ingress::Spool)
        r.work_path =
            (fs::path(config_.spool_dir) / kWorkDir /
             req.spec_file)
                .string();
    r.queued_at = req.queued_at;
    r.started_at = started_at;
    r.total_ms = msSince(req.admitted);
    r.finished_at = obs::isoTimestampNow();
    // `error` status guarantees no result files: remove anything a
    // partially delivered (or prior same-named) run left behind, so
    // a poller never pairs stale sweeps with a failed status.
    {
        std::error_code ec;
        for (const auto &de :
             fs::directory_iterator(r.result_dir, ec)) {
            const std::string fname =
                de.path().filename().string();
            if (fname.rfind("sweep_", 0) == 0)
                fs::remove(de.path(), ec);
        }
    }
    const std::string line = r.writeStatus("error", message);
    publishFinal(req.name, line);
    obs::counter("serve.requests_failed").add();
    if (!r.work_path.empty()) {
        std::string move_error;
        if (!moveTo(r.work_path, kFailedDir, req.spec_file,
                    &move_error))
            warn("serve: %s", move_error.c_str());
    }
    {
        MutexLock lock(stats_mu_);
        stats_.failed += 1;
        stats_.processed += 1;
    }
    warn("serve: %s failed: %s", r.spec_label.c_str(),
         message.c_str());
}

void
Daemon::execute(const QueuedRequest &qr)
{
    obs::TraceSpan span("serve.request", "serve");
    Request req;
    req.spec_label =
        qr.ingress == Ingress::Spool ? qr.spec_file : qr.name;
    req.name = qr.name;
    req.result_dir = (fs::path(results_dir_) / qr.name).string();
    if (qr.ingress == Ingress::Spool)
        req.work_path =
            (fs::path(config_.spool_dir) / kWorkDir / qr.spec_file)
                .string();
    req.queued_at = qr.queued_at;

    api::BatchResult result;
    std::vector<std::pair<std::string, std::string>> rendered;
    try {
        api::BatchConfig batch =
            batchConfigFromJson(parseJson(qr.spec_text));
        // Execution parameters come from the daemon, not the spec:
        // every request shares the daemon's store and pool.
        batch.cache_dir = config_.cache_dir;
        api::BatchRunner runner(std::move(batch));

        req.started_at = obs::isoTimestampNow();
        req.writeStatus("running");
        const auto run_start = std::chrono::steady_clock::now();
        api::BatchEnv env;
        env.store = store_ ? &*store_ : nullptr;
        env.pool = &pool_;
        if (config_.request_timeout_s > 0.0) {
            // Per-request deadline: the batch layer polls this
            // between phases and at task boundaries, so an expired
            // request lands in `error` without tearing a task.
            const auto deadline =
                run_start +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        config_.request_timeout_s));
            env.cancel = [deadline] {
                return std::chrono::steady_clock::now() >= deadline;
            };
        }
        if (LSIM_FAULT("serve.execute"))
            throw std::runtime_error("injected execute fault");
        result = runner.run(env);
        req.run_ms = msSince(run_start);
    } catch (const api::CancelledError &) {
        obs::counter("serve.deadline_exceeded").add();
        const std::string message =
            "deadline exceeded: request ran past " +
            std::to_string(config_.request_timeout_s) + " s";
        failRequest(qr, message, req.started_at);
        for (const QueuedRequest &f : queue_.finish(qr.name))
            failRequest(f, message, req.started_at);
        return;
    } catch (const std::exception &err) {
        failRequest(qr, err.what(), req.started_at);
        for (const QueuedRequest &f : queue_.finish(qr.name))
            failRequest(f, err.what(), req.started_at);
        return;
    }

    // Render once; the primary and every follower get these bytes.
    rendered.reserve(result.sweeps.size());
    for (const auto &sweep : result.sweeps) {
        std::ostringstream csv, json;
        sweep.writeCsv(csv);
        sweep.writeJson(json);
        rendered.emplace_back(csv.str(), json.str());
    }

    req.sweeps = result.sweeps.size();
    req.stats = result.stats;

    const auto deliver = [&](Request &r,
                             const QueuedRequest &origin) -> bool {
        for (std::size_t i = 0; i < rendered.size(); ++i) {
            const std::string stem_i =
                (fs::path(r.result_dir) /
                 ("sweep_" + std::to_string(i)))
                    .string();
            if (LSIM_FAULT("serve.deliver") ||
                !atomicWriteFile(stem_i + ".csv",
                                 rendered[i].first) ||
                !atomicWriteFile(stem_i + ".json",
                                 rendered[i].second)) {
                failRequest(origin,
                            "cannot write results under '" +
                                r.result_dir + "'",
                            r.started_at);
                return false;
            }
        }
        r.total_ms = msSince(origin.admitted);
        r.finished_at = obs::isoTimestampNow();
        const std::string line = r.writeStatus("done");
        publishFinal(origin.name, line);
        if (!r.work_path.empty()) {
            std::string move_error;
            if (!moveTo(r.work_path, kDoneDir, origin.spec_file,
                        &move_error))
                warn("serve: %s", move_error.c_str());
        }
        {
            MutexLock lock(stats_mu_);
            stats_.done += 1;
            stats_.processed += 1;
        }
        // The latency histogram counts successful requests only, so
        // its count stays equal to serve.requests_done (tested
        // invariant); followers count as requests in both.
        obs::counter("serve.requests_done").add();
        obs::histogram("serve.request_ms").observe(r.total_ms);
        if (origin.ingress == Ingress::Socket)
            obs::histogram("serve.socket_request_ms")
                .observe(r.total_ms);
        return true;
    };

    if (!deliver(req, qr)) {
        // The primary's failure fails its followers too — their
        // promise was "the primary's results".
        for (const QueuedRequest &f : queue_.finish(qr.name))
            failRequest(f, "primary request '" + qr.name +
                               "' failed to deliver results",
                        req.started_at);
        return;
    }
    // Work counters tick once per *execution*; request counters
    // (above) tick once per request, followers included.
    obs::counter("serve.requested_sims")
        .add(result.stats.requested_sims);
    obs::counter("serve.unique_sims").add(result.stats.unique_sims);
    obs::counter("serve.cache_hits").add(result.stats.cache_hits);
    obs::counter("serve.sims_run").add(result.stats.sims_run);
    inform("serve: %s done in %.1f ms (%zu sweep(s), %zu cache "
           "hit(s), %zu simulated)",
           req.spec_label.c_str(), req.total_ms, req.sweeps,
           result.stats.cache_hits, result.stats.sims_run);

    // Fan out: byte-identical results to every coalesced follower.
    for (const QueuedRequest &f : queue_.finish(qr.name)) {
        Request fr;
        fr.spec_label =
            f.ingress == Ingress::Spool ? f.spec_file : f.name;
        fr.name = f.name;
        fr.result_dir =
            (fs::path(results_dir_) / f.name).string();
        if (f.ingress == Ingress::Spool)
            fr.work_path =
                (fs::path(config_.spool_dir) / kWorkDir /
                 f.spec_file)
                    .string();
        fr.queued_at = f.queued_at;
        fr.started_at = req.started_at;
        fr.run_ms = req.run_ms;
        fr.sweeps = req.sweeps;
        fr.stats = req.stats;
        fr.coalesced_with = qr.name;
        std::error_code ec;
        fs::create_directories(fr.result_dir, ec);
        deliver(fr, f);
    }
}

void
Daemon::janitorSweep()
{
    if (config_.ttl_seconds > 0.0) {
        const auto now = fs::file_time_type::clock::now();
        const auto tooOld = [&](const fs::path &p) {
            std::error_code ec;
            const auto mtime = fs::last_write_time(p, ec);
            if (ec)
                return false; // age unknown is not "old"
            return std::chrono::duration<double>(now - mtime)
                       .count() > config_.ttl_seconds;
        };
        auto &removed = obs::counter("serve.janitor_removed");
        // Consumed specs first, then the result dirs they produced
        // (live requests are never pruned).
        for (const char *sub : {kDoneDir, kFailedDir}) {
            const fs::path dir = fs::path(config_.spool_dir) / sub;
            for (const auto &de : fs::directory_iterator(dir)) {
                if (!de.is_regular_file() ||
                    !tooOld(de.path()))
                    continue;
                std::error_code ec;
                if (fs::remove(de.path(), ec))
                    removed.add();
            }
        }
        for (const auto &de :
             fs::directory_iterator(results_dir_)) {
            if (!de.is_directory())
                continue;
            const std::string name =
                de.path().filename().string();
            if (queue_.live(name))
                continue;
            const fs::path status = de.path() / kStatusFile;
            std::error_code ec;
            const fs::path probe =
                fs::exists(status, ec) ? status : de.path();
            if (!tooOld(probe))
                continue;
            fs::remove_all(de.path(), ec);
            if (!ec)
                removed.add();
        }
    }
    if (config_.cache_ttl_seconds > 0.0 && store_) {
        store::ProfileStore::GcOptions gc;
        gc.max_age_seconds = config_.cache_ttl_seconds;
        const auto stats = store_->gc(gc);
        if (stats.removed > 0)
            inform("serve: cache ttl evicted %zu entr%s",
                   stats.removed,
                   stats.removed == 1 ? "y" : "ies");
    }
}

void
Daemon::abandonQueued()
{
    for (const QueuedRequest &req : queue_.drainPending()) {
        if (req.ingress == Ingress::Spool) {
            // Leave the claimed spec in work/: the next daemon's
            // crash recovery re-queues and re-executes it.
            continue;
        }
        failRequest(req, "daemon stopping", "");
    }
}

std::size_t
Daemon::drainOnce()
{
    obs::TraceSpan span("serve.drain", "serve");
    std::vector<std::string> names;
    for (const auto &de :
         fs::directory_iterator(config_.spool_dir)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json")
            continue;
        // The daemon's own metrics snapshot lives in the spool root;
        // it is never a spec (the name is reserved).
        if (de.path().filename() == kMetricsFile)
            continue;
        names.push_back(de.path().filename().string());
    }
    std::sort(names.begin(), names.end());

    std::size_t before = 0;
    {
        MutexLock lock(stats_mu_);
        before = stats_.processed;
    }
    for (const std::string &name : names) {
        if (queue_.full())
            break; // spool backpressure: leave the rest on disk
        admitSpool(name);
    }
    while (auto req = queue_.pop()) {
        execute(*req);
        if (stopped())
            break; // graceful: finish the request, not the queue
    }
    janitorSweep();
    std::size_t drained = 0;
    {
        MutexLock lock(stats_mu_);
        stats_.polls += 1;
        drained = stats_.processed - before;
    }
    obs::counter("serve.polls").add();

    // Publish the metrics snapshot every drain cycle so pollers (and
    // `lsim metrics`) always see a fresh, never-torn file.
    obs::MetricsRegistry::instance().exportFile(metrics_path_);
    auto &trace = obs::TraceSession::instance();
    if (trace.enabled())
        trace.flush();
    return drained;
}

ServeStats
Daemon::stats() const
{
    MutexLock lock(stats_mu_);
    return stats_;
}

ServeStats
Daemon::run()
{
    for (;;) {
        drainOnce();
        if (config_.once || stopped())
            break;
        // Sleep in short slices so a stop signal interrupts the
        // poll delay promptly; a socket submission wakes the loop
        // through the queue's condition variable.
        const auto wake = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.poll_ms);
        while (std::chrono::steady_clock::now() < wake) {
            if (stopped())
                return stats();
            if (queue_.waitForWork(std::chrono::milliseconds(
                    std::min(50u, std::max(1u, config_.poll_ms)))))
                break;
        }
    }
    return stats();
}

} // namespace lsim::serve
