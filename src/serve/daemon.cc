#include "serve/daemon.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/batch.hh"
#include "common/files.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/spec.hh"

namespace lsim::serve
{

namespace fs = std::filesystem;

namespace
{

constexpr const char *kWorkDir = "work";
constexpr const char *kDoneDir = "done";
constexpr const char *kFailedDir = "failed";
constexpr const char *kStatusFile = "status.json";
constexpr const char *kMetricsFile = "metrics.json";

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

/** One claimed spec's lifecycle state, shared by the status
 * transitions so every write carries everything known so far. */
struct Daemon::Request
{
    std::string name;       ///< spec filename, e.g. "req.json"
    std::string work_path;  ///< claimed location under work/
    std::string result_dir; ///< <results>/<stem>
    std::size_t sweeps = 0; ///< result count, once known
    double run_ms = 0.0;    ///< BatchRunner::run wall time
    double total_ms = 0.0;  ///< claim-to-final wall time
    std::optional<api::BatchStats> stats;

    // Wall-clock ISO-8601 stamps, filled as the request advances so
    // per-request latency is reconstructable from the spool alone.
    std::string queued_at;
    std::string started_at;
    std::string finished_at;

    /**
     * Atomically (re)write <result_dir>/status.json. @p state is
     * one of "queued", "running", "done", "error"; @p error is the
     * machine-readable failure message for the error state.
     */
    void writeStatus(const char *state,
                     const std::string &error = "") const
    {
        std::ostringstream ss;
        JsonWriter w(ss);
        w.beginObject();
        w.field("spec", name);
        w.field("state", state);
        if (!error.empty())
            w.field("error", error);
        if (sweeps > 0)
            w.field("sweeps", static_cast<std::uint64_t>(sweeps));
        w.field("run_ms", run_ms);
        w.field("total_ms", total_ms);
        if (!queued_at.empty())
            w.field("queued_at", queued_at);
        if (!started_at.empty())
            w.field("started_at", started_at);
        if (!finished_at.empty())
            w.field("finished_at", finished_at);
        if (stats) {
            w.beginObject("stats");
            w.field("requested_sims",
                    static_cast<std::uint64_t>(
                        stats->requested_sims));
            w.field("unique_sims",
                    static_cast<std::uint64_t>(stats->unique_sims));
            w.field("cache_hits",
                    static_cast<std::uint64_t>(stats->cache_hits));
            w.field("sims_run",
                    static_cast<std::uint64_t>(stats->sims_run));
            w.endObject();
        }
        w.endObject();
        ss << "\n";
        atomicWriteFile(
            (fs::path(result_dir) / kStatusFile).string(),
            ss.str());
    }
};

Daemon::Daemon(ServeConfig config)
    : config_(std::move(config)),
      results_dir_(config_.results_dir.empty()
                       ? (fs::path(config_.spool_dir) / "results")
                             .string()
                       : config_.results_dir),
      metrics_path_(
          (fs::path(config_.spool_dir) / kMetricsFile).string()),
      pool_(config_.threads)
{
    if (config_.spool_dir.empty())
        throw std::invalid_argument("serve: spool directory not set");
    for (const std::string &dir :
         {config_.spool_dir,
          (fs::path(config_.spool_dir) / kWorkDir).string(),
          (fs::path(config_.spool_dir) / kDoneDir).string(),
          (fs::path(config_.spool_dir) / kFailedDir).string(),
          results_dir_}) {
        std::error_code ec;
        fs::create_directories(dir, ec);
        if (ec || !fs::is_directory(dir))
            throw std::invalid_argument("serve: directory '" + dir +
                                        "' cannot be created");
    }
    if (!config_.cache_dir.empty())
        store_.emplace(config_.cache_dir);
    recoverStale();
}

void
Daemon::recoverStale()
{
    // Specs stranded in work/ mean a previous daemon died mid-
    // request; their results are suspect, so re-queue the specs and
    // let this instance redo them from scratch.
    const fs::path work = fs::path(config_.spool_dir) / kWorkDir;
    for (const auto &de : fs::directory_iterator(work)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json")
            continue;
        const fs::path dest =
            fs::path(config_.spool_dir) / de.path().filename();
        std::error_code ec;
        if (fs::exists(dest, ec)) {
            // A same-named spec was submitted since the crash;
            // re-queueing would clobber it with the stale copy.
            // The fresh spec wins — park the stale one in failed/.
            warn("serve: stale spec '%s' shadowed by a newer "
                 "submission; moving it to %s/",
                 de.path().filename().string().c_str(), kFailedDir);
            fs::rename(de.path(),
                       fs::path(config_.spool_dir) / kFailedDir /
                           de.path().filename(),
                       ec);
            continue;
        }
        fs::rename(de.path(), dest, ec);
        if (ec) {
            warn("serve: cannot re-queue stale spec '%s': %s",
                 de.path().string().c_str(), ec.message().c_str());
            continue;
        }
        {
            MutexLock lock(stats_mu_);
            stats_.recovered += 1;
        }
        obs::counter("serve.requests_recovered").add();
        inform("serve: re-queued stale spec '%s'",
               de.path().filename().string().c_str());
    }
}

bool
Daemon::stopped() const
{
    return config_.stop && config_.stop();
}

bool
Daemon::moveTo(const std::string &from, const std::string &subdir,
               const std::string &name, std::string *error)
{
    std::error_code ec;
    fs::rename(from, fs::path(config_.spool_dir) / subdir / name,
               ec);
    if (ec) {
        if (error)
            *error = "cannot move '" + from + "' to " + subdir +
                     "/: " + ec.message();
        return false;
    }
    return true;
}

void
Daemon::process(const std::string &spec_name)
{
    // Claim by rename: with several daemons sharing one spool,
    // exactly one rename succeeds and the losers skip silently.
    obs::TraceSpan span("serve.request", "serve");
    const fs::path spool(config_.spool_dir);
    Request req;
    req.name = spec_name;
    req.work_path = (spool / kWorkDir / spec_name).string();
    {
        std::error_code ec;
        fs::rename(spool / spec_name, req.work_path, ec);
        if (ec)
            return; // raced with another daemon, or vanished
    }
    const std::string stem = fs::path(spec_name).stem().string();
    req.result_dir = (fs::path(results_dir_) / stem).string();
    {
        std::error_code ec;
        fs::create_directories(req.result_dir, ec);
        if (ec) {
            warn("serve: cannot create result dir '%s': %s",
                 req.result_dir.c_str(), ec.message().c_str());
            // Without a result dir there is nowhere to report
            // status; park the spec in failed/ and move on.
            moveTo(req.work_path, kFailedDir, spec_name, nullptr);
            obs::counter("serve.requests_failed").add();
            MutexLock lock(stats_mu_);
            stats_.failed += 1;
            stats_.processed += 1;
            return;
        }
    }

    const auto start = std::chrono::steady_clock::now();
    req.queued_at = obs::isoTimestampNow();
    req.writeStatus("queued");

    const auto fail = [&](const std::string &message) {
        req.total_ms = msSince(start);
        req.finished_at = obs::isoTimestampNow();
        req.writeStatus("error", message);
        obs::counter("serve.requests_failed").add();
        std::string move_error;
        if (!moveTo(req.work_path, kFailedDir, spec_name,
                    &move_error))
            warn("serve: %s", move_error.c_str());
        {
            MutexLock lock(stats_mu_);
            stats_.failed += 1;
            stats_.processed += 1;
        }
        warn("serve: %s failed: %s", spec_name.c_str(),
             message.c_str());
    };

    api::BatchResult result;
    try {
        api::BatchConfig batch =
            batchConfigFromJson(parseJsonFile(req.work_path));
        // Execution parameters come from the daemon, not the spec:
        // every request shares the daemon's store and pool.
        batch.cache_dir = config_.cache_dir;
        api::BatchRunner runner(std::move(batch));

        req.started_at = obs::isoTimestampNow();
        req.writeStatus("running");
        const auto run_start = std::chrono::steady_clock::now();
        api::BatchEnv env;
        env.store = store_ ? &*store_ : nullptr;
        env.pool = &pool_;
        result = runner.run(env);
        req.run_ms = msSince(run_start);
    } catch (const std::exception &err) {
        fail(err.what());
        return;
    }

    req.sweeps = result.sweeps.size();
    req.stats = result.stats;
    for (std::size_t i = 0; i < result.sweeps.size(); ++i) {
        const std::string stem_i =
            (fs::path(req.result_dir) /
             ("sweep_" + std::to_string(i)))
                .string();
        std::ostringstream csv, json;
        result.sweeps[i].writeCsv(csv);
        result.sweeps[i].writeJson(json);
        if (!atomicWriteFile(stem_i + ".csv", csv.str()) ||
            !atomicWriteFile(stem_i + ".json", json.str())) {
            fail("cannot write results under '" + req.result_dir +
                 "'");
            return;
        }
    }

    req.total_ms = msSince(start);
    req.finished_at = obs::isoTimestampNow();
    req.writeStatus("done");
    std::string move_error;
    if (!moveTo(req.work_path, kDoneDir, spec_name, &move_error))
        warn("serve: %s", move_error.c_str());
    {
        MutexLock lock(stats_mu_);
        stats_.done += 1;
        stats_.processed += 1;
    }
    // The latency histogram counts successful requests only, so its
    // count stays equal to serve.requests_done (tested invariant).
    obs::counter("serve.requests_done").add();
    obs::histogram("serve.request_ms").observe(req.total_ms);
    obs::counter("serve.requested_sims")
        .add(result.stats.requested_sims);
    obs::counter("serve.unique_sims").add(result.stats.unique_sims);
    obs::counter("serve.cache_hits").add(result.stats.cache_hits);
    obs::counter("serve.sims_run").add(result.stats.sims_run);
    inform("serve: %s done in %.1f ms (%zu sweep(s), %zu cache "
           "hit(s), %zu simulated)",
           spec_name.c_str(), req.total_ms, req.sweeps,
           result.stats.cache_hits, result.stats.sims_run);
}

std::size_t
Daemon::drainOnce()
{
    obs::TraceSpan span("serve.drain", "serve");
    std::vector<std::string> names;
    for (const auto &de :
         fs::directory_iterator(config_.spool_dir)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json")
            continue;
        // The daemon's own metrics snapshot lives in the spool root;
        // it is never a spec (the name is reserved).
        if (de.path().filename() == kMetricsFile)
            continue;
        names.push_back(de.path().filename().string());
    }
    std::sort(names.begin(), names.end());

    auto &queue_depth = obs::gauge("serve.queue_depth");
    queue_depth.set(static_cast<std::int64_t>(names.size()));

    std::size_t before = 0;
    {
        MutexLock lock(stats_mu_);
        before = stats_.processed;
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        process(names[i]);
        queue_depth.set(
            static_cast<std::int64_t>(names.size() - i - 1));
        if (stopped())
            break; // graceful drain: finish the request, not the scan
    }
    std::size_t drained = 0;
    {
        MutexLock lock(stats_mu_);
        stats_.polls += 1;
        drained = stats_.processed - before;
    }
    obs::counter("serve.polls").add();

    // Publish the metrics snapshot every drain cycle so pollers (and
    // `lsim metrics`) always see a fresh, never-torn file.
    obs::MetricsRegistry::instance().exportFile(metrics_path_);
    auto &trace = obs::TraceSession::instance();
    if (trace.enabled())
        trace.flush();
    return drained;
}

ServeStats
Daemon::stats() const
{
    MutexLock lock(stats_mu_);
    return stats_;
}

ServeStats
Daemon::run()
{
    for (;;) {
        drainOnce();
        if (config_.once || stopped())
            break;
        // Sleep in short slices so a stop signal interrupts the
        // poll delay promptly, not after a full poll_ms.
        const auto wake = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.poll_ms);
        while (std::chrono::steady_clock::now() < wake) {
            if (stopped())
                return stats();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(
                    std::min(50u, std::max(1u, config_.poll_ms))));
        }
    }
    return stats();
}

} // namespace lsim::serve
