/**
 * @file
 * Batch-spec JSON: the request format shared by `lsim batch` and the
 * spool daemon.
 *
 *   {"sweeps": [
 *     {"benchmarks": ["gcc", "mcf"], "steps": 20, "insts": 500000},
 *     {"benchmarks": ["gcc"], "policies": ["max-sleep"],
 *      "p_min": 0.1, "p_max": 0.4, "steps": 4}]}
 *
 * Per-sweep fields: benchmarks, policies, profiles (workload JSON
 * paths), imports, p_min, p_max, steps, alpha, insts, seed, fus
 * (count or "auto").
 *
 * Parsing throws std::invalid_argument naming the offending sweep
 * index and field — never exits — so the daemon can route a
 * malformed spec to failed/ and keep serving. The CLI catches the
 * same exception and die()s.
 */

#ifndef LSIM_SERVE_SPEC_HH
#define LSIM_SERVE_SPEC_HH

#include <cstddef>

#include "api/batch.hh"
#include "common/json.hh"

namespace lsim::serve
{

/**
 * Translate one batch-spec sweep object (element @p index of the
 * "sweeps" array) into a SweepConfig. Throws std::invalid_argument
 * on unknown fields, malformed values, or unreadable profile files.
 */
api::SweepConfig sweepConfigFromJson(const JsonValue &v,
                                     std::size_t index);

/**
 * Translate a whole batch-spec document into a BatchConfig. The
 * document must be an object whose only member is a non-empty
 * "sweeps" array. Cache dir and thread count are execution
 * parameters, not part of the spec; the caller sets them.
 */
api::BatchConfig batchConfigFromJson(const JsonValue &doc);

} // namespace lsim::serve

#endif // LSIM_SERVE_SPEC_HH
