/**
 * @file
 * Spool-directory batch daemon: the library's batch layer as a
 * long-running service.
 *
 * `lsim serve --spool DIR` watches a spool directory for batch-spec
 * JSON files (the exact `lsim batch` format, see serve/spec.hh) and
 * executes each through api::BatchRunner on ONE persistent thread
 * pool and ONE shared ProfileStore — so after the first request
 * warms the store, subsequent sweeps over the same workloads are
 * pure replay with no process startup, no thread spawn, and no
 * phase-1 simulation.
 *
 * Spool layout (subdirectories created on startup):
 *
 *     <spool>/<name>.json      incoming specs (writers SHOULD write
 *                              a temp name and rename into place;
 *                              "metrics.json" is reserved)
 *     <spool>/work/            claimed specs being executed
 *     <spool>/done/            consumed specs that succeeded
 *     <spool>/failed/          malformed or failed specs
 *     <results>/<name>/        per-request results + status
 *
 * where <results> defaults to <spool>/results. Per request <name>
 * (the spec's filename stem), the daemon writes
 *
 *     <results>/<name>/status.json      (atomic at every transition)
 *     <results>/<name>/sweep_<i>.csv    per sweep in the spec
 *     <results>/<name>/sweep_<i>.json
 *
 * byte-identical to `lsim batch <spec> --out-dir`. The status file
 * walks queued -> running -> done|error and carries timings, ISO-8601
 * queued_at/started_at/finished_at wall-clock stamps, plus the batch
 * dedup/cache stats; every write is temp+rename so a poller never
 * reads a torn file. Claiming is also a rename, so multiple daemons
 * may share one spool — exactly one wins each spec.
 *
 * Observability: the daemon feeds the process-wide obs registry
 * (serve.* counters, queue-depth gauge, per-request latency
 * histogram) and atomically rewrites <spool>/metrics.json after
 * every drain cycle — see src/obs/metrics.hh for the schema and
 * `lsim metrics <spool>` for a pretty-printed view.
 *
 * Crash recovery: specs stranded in work/ by a killed daemon are
 * moved back into the spool root on construction and re-executed.
 */

#ifndef LSIM_SERVE_DAEMON_HH
#define LSIM_SERVE_DAEMON_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "api/parallel.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "store/profile_store.hh"

namespace lsim::serve
{

/** Daemon configuration (flags of `lsim serve`). */
struct ServeConfig
{
    /** Spool directory; required. Created when missing. */
    std::string spool_dir;

    /** Results directory; empty = <spool>/results. */
    std::string results_dir;

    /** Shared profile store; empty disables caching. */
    std::string cache_dir;

    /** Worker threads of the persistent pool; 0 = hardware. */
    unsigned threads = 0;

    /** Delay between spool scans, milliseconds. */
    unsigned poll_ms = 500;

    /** Process the specs present at startup, then return. */
    bool once = false;

    /**
     * Polled between requests and while idle: return true to drain
     * and stop (the CLI wires SIGINT/SIGTERM to this). The request
     * in flight always completes — stopping never loses a spec.
     */
    std::function<bool()> stop;
};

/** What the daemon has served so far. */
struct ServeStats
{
    std::size_t processed = 0; ///< specs consumed (done + failed)
    std::size_t done = 0;      ///< executed successfully
    std::size_t failed = 0;    ///< malformed or failed
    std::size_t recovered = 0; ///< stranded work/ specs re-queued
    std::size_t polls = 0;     ///< spool scans
};

/** The spool-watching service loop. */
class Daemon
{
  public:
    /**
     * Creates the spool layout and (when configured) opens the
     * shared store; recovers specs stranded in work/. Throws
     * std::invalid_argument when directories cannot be created.
     */
    explicit Daemon(ServeConfig config);

    /**
     * One spool scan: claim and execute every spec currently in the
     * spool root, oldest filename first. @return specs processed.
     */
    std::size_t drainOnce();

    /** Scan-and-sleep loop until stop() or (with once) the first
     * drain; @return the final stats. */
    ServeStats run();

    /**
     * Snapshot of the counters so far. Thread-safe: the counters are
     * mutex-guarded, so a monitoring thread may poll a daemon whose
     * run() loop is draining on another thread.
     */
    ServeStats stats() const;

    const std::string &resultsDir() const { return results_dir_; }

    /** Where the metrics snapshot lands: <spool>/metrics.json. */
    const std::string &metricsPath() const { return metrics_path_; }

    /** The shared store, when a cache dir is configured. */
    const store::ProfileStore *profileStore() const
    {
        return store_ ? &*store_ : nullptr;
    }

  private:
    struct Request;

    void recoverStale();
    bool stopped() const;
    void process(const std::string &spec_name);
    bool moveTo(const std::string &from, const std::string &subdir,
                const std::string &name, std::string *error);

    ServeConfig config_;
    std::string results_dir_;
    std::string metrics_path_;

    /** Counter mutations happen on the drain thread, reads may come
     * from anywhere (stats()); the guard keeps a live daemon
     * observable without racing its drain loop. */
    mutable Mutex stats_mu_;
    ServeStats stats_ GUARDED_BY(stats_mu_);

    std::optional<store::ProfileStore> store_;
    api::detail::ThreadPool pool_;
};

} // namespace lsim::serve

#endif // LSIM_SERVE_DAEMON_HH
