/**
 * @file
 * Batch daemon: the library's batch layer as a long-running service
 * with two front ends — a spool directory and a request socket —
 * over one admission queue, one persistent thread pool, and one
 * shared ProfileStore.
 *
 * `lsim serve --spool DIR` watches a spool directory for batch-spec
 * JSON files (the exact `lsim batch` format, see serve/spec.hh) and,
 * with --socket PATH, also accepts specs over a Unix-domain socket
 * (see serve/socket.hh for the framing and `lsim submit`/`lsim
 * wait` for clients). Every request — whichever door it came in —
 * passes through one bounded RequestQueue (see serve/queue.hh):
 * identical in-flight specs coalesce to a single execution whose
 * results fan out byte-identically to all waiters, higher-priority
 * requests pop first, and submissions beyond the queue bound are
 * rejected (socket) or left unclaimed (spool backpressure).
 *
 * Spool layout (subdirectories created on startup):
 *
 *     <spool>/<name>.json      incoming specs (writers SHOULD write
 *                              a temp name and rename into place;
 *                              "metrics.json" is reserved)
 *     <spool>/work/            claimed specs being executed
 *     <spool>/done/            consumed specs that succeeded
 *     <spool>/failed/          malformed or failed specs
 *     <spool>/lsim.sock        request socket (with --socket)
 *     <results>/<name>/        per-request results + status
 *
 * where <results> defaults to <spool>/results. Per request <name>
 * (the spec's filename stem, or the submitted request name), the
 * daemon writes
 *
 *     <results>/<name>/status.json      (atomic at every transition)
 *     <results>/<name>/sweep_<i>.csv    per sweep in the spec
 *     <results>/<name>/sweep_<i>.json
 *
 * byte-identical to `lsim batch <spec> --out-dir`. The status file
 * walks queued -> running -> done|error and carries timings, ISO-8601
 * queued_at/started_at/finished_at wall-clock stamps, plus the batch
 * dedup/cache stats; every write is temp+rename so a poller never
 * reads a torn file. Claiming is also a rename, so multiple daemons
 * may share one spool — exactly one wins each spec — and the store
 * index they share is reconciled with the lock-file + generation
 * protocol (see store/store_index.hh).
 *
 * A TTL janitor (--ttl) prunes consumed specs and result
 * directories older than the TTL each drain, and --cache-ttl runs
 * the store's age-based gc alongside it, so an unattended daemon
 * never grows its disk footprint without bound.
 *
 * Observability: the daemon feeds the process-wide obs registry
 * (serve.* counters, queue-depth gauge, request and socket latency
 * histograms, coalesced/rejected counts) and atomically rewrites
 * <spool>/metrics.json after every drain cycle — see
 * src/obs/metrics.hh for the schema and `lsim metrics <spool>` for
 * a pretty-printed view.
 *
 * Crash recovery: specs stranded in work/ by a killed daemon are
 * moved back into the spool root on construction and re-executed.
 */

#ifndef LSIM_SERVE_DAEMON_HH
#define LSIM_SERVE_DAEMON_HH

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/parallel.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "serve/queue.hh"
#include "store/profile_store.hh"

namespace lsim::serve
{

class SocketServer;

/** Daemon configuration (flags of `lsim serve`). */
struct ServeConfig
{
    /** Spool directory; required. Created when missing. */
    std::string spool_dir;

    /** Results directory; empty = <spool>/results. */
    std::string results_dir;

    /** Shared profile store; empty disables caching. */
    std::string cache_dir;

    /** Request socket path; empty = no socket listener. */
    std::string socket_path;

    /** Worker threads of the persistent pool; 0 = hardware. */
    unsigned threads = 0;

    /** Delay between spool scans, milliseconds. */
    unsigned poll_ms = 500;

    /** Admission bound: max requests queued for execution. */
    std::size_t max_queue = 64;

    /** Prune done/failed specs and result dirs older than this,
     * seconds; 0 disables the janitor. */
    double ttl_seconds = 0.0;

    /** Age-evict store entries older than this each drain, seconds;
     * 0 disables (requires a cache_dir). */
    double cache_ttl_seconds = 0.0;

    /**
     * Per-request execution deadline, seconds; 0 = none. Checked
     * cooperatively between batch phases and at replay task
     * boundaries, so an exceeded deadline lands the request in
     * `error` status (partial work discarded, waiters woken) without
     * tearing a task or wedging the pool.
     */
    double request_timeout_s = 0.0;

    /** Process the specs present at startup, then return. */
    bool once = false;

    /**
     * Polled between requests and while idle: return true to drain
     * and stop (the CLI wires SIGINT/SIGTERM to this). The request
     * in flight always completes — stopping never loses a spec.
     */
    std::function<bool()> stop;
};

/** What the daemon has served so far. */
struct ServeStats
{
    std::size_t processed = 0; ///< specs consumed (done + failed)
    std::size_t done = 0;      ///< executed successfully
    std::size_t failed = 0;    ///< malformed or failed
    std::size_t recovered = 0; ///< stranded work/ specs re-queued
    std::size_t polls = 0;     ///< spool scans
    std::size_t coalesced = 0; ///< requests served by fan-out
    std::size_t rejected = 0;  ///< submissions refused (backpressure)
};

/** How a socket submission was admitted (protocol ack states). */
enum class SubmitResult
{
    Queued,    ///< admitted; will execute
    Coalesced, ///< admitted; rides an identical in-flight request
    Rejected   ///< refused (queue full, bad spec, name in use)
};

/** The two-front-door service loop. */
class Daemon
{
  public:
    /**
     * Creates the spool layout, (when configured) opens the shared
     * store and binds the request socket; recovers specs stranded
     * in work/. Throws std::invalid_argument when directories
     * cannot be created or the socket cannot be bound.
     */
    explicit Daemon(ServeConfig config);

    /** Stops the socket listener and abandons queued socket
     * requests; in-flight work has already completed. */
    ~Daemon();

    /**
     * One drain cycle: claim every spec currently in the spool root
     * (oldest filename first, stopping at the queue bound), then
     * execute the queue — spool and socket submissions alike — to
     * empty. @return specs processed.
     */
    std::size_t drainOnce();

    /** Scan-and-sleep loop until stop() or (with once) the first
     * drain; wakes early for socket submissions. @return the final
     * stats. */
    ServeStats run();

    /**
     * Snapshot of the counters so far. Thread-safe: the counters are
     * mutex-guarded, so a monitoring thread may poll a daemon whose
     * run() loop is draining on another thread.
     */
    ServeStats stats() const;

    /**
     * Socket-path admission (called from connection threads; safe
     * against the drain thread). Validates the spec, creates the
     * result dir, writes the queued status, and submits to the
     * shared queue. @p response receives the status.json-shaped ack
     * line (no trailing newline).
     */
    SubmitResult submitRequest(const std::string &name,
                               const std::string &spec_text,
                               int priority, std::string *response);

    /**
     * Block until request @p name reaches a terminal state or
     * @p timeout_s elapses; returns its final status line. Unknown
     * names wait too (the request may be spooled but unclaimed, or
     * executing on another daemon sharing the spool — the result
     * dir is polled alongside this daemon's completion board).
     */
    std::string waitFor(const std::string &name, double timeout_s);

    const std::string &resultsDir() const { return results_dir_; }

    /** Where the metrics snapshot lands: <spool>/metrics.json. */
    const std::string &metricsPath() const { return metrics_path_; }

    /** Bound socket path; empty when the socket is disabled. */
    const std::string &socketPath() const
    {
        return config_.socket_path;
    }

    /** The shared store, when a cache dir is configured. */
    const store::ProfileStore *profileStore() const
    {
        return store_ ? &*store_ : nullptr;
    }

  private:
    struct Request;

    void recoverStale();
    bool stopped() const;

    /** Claim one spool spec and admit it to the queue. */
    void admitSpool(const std::string &spec_name);

    /** Execute one popped request and fan out to its followers. */
    void execute(const QueuedRequest &req);

    /** Fail @p req (status, counters, spool move, board). */
    void failRequest(const QueuedRequest &req,
                     const std::string &message,
                     const std::string &started_at);

    /** Remove consumed specs / result dirs older than the TTL. */
    void janitorSweep();

    /** Record @p name's terminal status line and wake waiters. */
    void publishFinal(const std::string &name,
                      const std::string &status_line);

    /** Fail every queued socket request (shutdown path). */
    void abandonQueued();

    bool moveTo(const std::string &from, const std::string &subdir,
                const std::string &name, std::string *error);

    ServeConfig config_;
    std::string results_dir_;
    std::string metrics_path_;

    /** Counter mutations happen on the drain thread, reads may come
     * from anywhere (stats()); the guard keeps a live daemon
     * observable without racing its drain loop. */
    mutable Mutex stats_mu_;
    ServeStats stats_ GUARDED_BY(stats_mu_);

    /** Terminal status lines by request name, for socket waiters;
     * bounded (oldest trimmed) since results live on disk anyway. */
    mutable Mutex board_mu_;
    CondVar board_cv_;
    std::map<std::string, std::string> final_ GUARDED_BY(board_mu_);
    std::vector<std::string> final_order_ GUARDED_BY(board_mu_);
    bool shutting_down_ GUARDED_BY(board_mu_) = false;

    std::optional<store::ProfileStore> store_;
    api::detail::ThreadPool pool_;
    RequestQueue queue_;

    /** Last member: destroyed first, so connection threads are
     * joined while the rest of the daemon is still valid. */
    std::unique_ptr<SocketServer> socket_;
};

} // namespace lsim::serve

#endif // LSIM_SERVE_DAEMON_HH
