/**
 * @file
 * Admission-controlled request queue: the single funnel both daemon
 * front ends (spool scan, socket listener) feed and one executor
 * drains.
 *
 * Three service properties live here:
 *
 *  - **Bounded admission.** At most `capacity` requests wait for
 *    execution; submissions beyond that are rejected (the socket
 *    path reports `rejected` to the client, the spool scan simply
 *    stops claiming files — spool backpressure is "leave it on
 *    disk").
 *
 *  - **Request coalescing.** Every request carries a fingerprint
 *    (api::batchFingerprint — the request-tier analogue of phase-1
 *    sim dedup). A submission whose fingerprint matches a request
 *    that is pending *or executing* does not enqueue: it attaches
 *    to that primary as a follower, and when the primary finishes
 *    the executor fans the byte-identical results out to every
 *    follower. Followers bypass the capacity check — they cost a
 *    file copy, not an execution.
 *
 *  - **Priorities.** pop() serves the highest priority first,
 *    FIFO (admission order) within a priority.
 *
 * Thread-safety: submissions arrive from socket connection threads
 * while the daemon thread pops; everything is guarded by one mutex,
 * and waitForWork() lets the executor sleep until a submission
 * lands instead of polling.
 */

#ifndef LSIM_SERVE_QUEUE_HH
#define LSIM_SERVE_QUEUE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace lsim::serve
{

/** Which front end admitted a request. */
enum class Ingress
{
    Spool, ///< claimed <spool>/<name>.json file
    Socket ///< submitted over the daemon socket
};

/** One admitted request, as queued and handed to the executor. */
struct QueuedRequest
{
    std::string name;        ///< request name (results dir stem)
    std::string spec_file;   ///< spool filename; empty for socket
    std::string spec_text;   ///< raw batch-spec JSON
    std::string fingerprint; ///< request-tier identity
    int priority = 0;        ///< higher pops first
    Ingress ingress = Ingress::Spool;
    std::uint64_t seq = 0;   ///< admission order (FIFO tiebreak)
    std::string queued_at;   ///< ISO-8601 admission stamp
    /** Admission instant on the steady clock (latency metrics). */
    std::chrono::steady_clock::time_point admitted{};
};

/** Outcome of RequestQueue::submit(). */
enum class Admission
{
    Enqueued,     ///< waiting for the executor
    Coalesced,    ///< attached to an identical in-flight request
    RejectedFull, ///< bounded queue at capacity (backpressure)
    RejectedName  ///< a live request already uses this name
};

/** The bounded, coalescing, priority-ordered admission queue. */
class RequestQueue
{
  public:
    /** @param capacity max requests pending execution (>= 1). */
    explicit RequestQueue(std::size_t capacity);

    /**
     * Admit @p req. On Coalesced, @p primary (when non-null)
     * receives the name of the request the submission attached to.
     * The caller fills every QueuedRequest field except seq.
     */
    Admission submit(QueuedRequest req, std::string *primary);

    /**
     * Highest-priority pending request (FIFO within a priority), or
     * nullopt when none wait. The popped request stays "live" — its
     * name and fingerprint keep coalescing submissions — until
     * finish() is called for it.
     */
    std::optional<QueuedRequest> pop();

    /**
     * Retire the executing request @p name and detach its
     * followers; the caller fans results out to them. After this,
     * the fingerprint and all the names are free again.
     */
    std::vector<QueuedRequest> finish(const std::string &name);

    /**
     * Remove every pending request (shutdown: socket-origin
     * requests are failed by the caller; spool-origin ones stay
     * claimed in work/ for crash recovery). Executing requests are
     * unaffected.
     */
    std::vector<QueuedRequest> drainPending();

    /** Pending (not yet popped) request count. */
    std::size_t depth() const;

    /** depth() >= capacity (would a non-coalescing submit reject?). */
    bool full() const;

    /** Is @p name pending, executing, or a follower of either? */
    bool live(const std::string &name) const;

    /**
     * Block until a request is pending or @p timeout elapses.
     * @return true when work is available.
     */
    bool waitForWork(std::chrono::milliseconds timeout);

  private:
    /** Index of the best pending request; npos when empty. */
    std::size_t bestLocked() const REQUIRES(mu_);

    const std::size_t capacity_;

    mutable Mutex mu_;
    CondVar cv_;
    std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
    std::vector<QueuedRequest> pending_ GUARDED_BY(mu_);
    /** fingerprint -> primary request, pending or executing. */
    std::map<std::string, std::string> primaries_ GUARDED_BY(mu_);
    /** primary name -> attached followers. */
    std::map<std::string, std::vector<QueuedRequest>>
        followers_ GUARDED_BY(mu_);
    /** name -> fingerprint for every live request (dup detection,
     * and finish() uses it to release the primaries_ row). */
    std::map<std::string, std::string> live_ GUARDED_BY(mu_);
};

} // namespace lsim::serve

#endif // LSIM_SERVE_QUEUE_HH
