#include "trace/op.hh"

#include "common/logging.hh"

namespace lsim::trace
{

std::string
to_string(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return "IntAlu";
      case OpClass::IntMult:
        return "IntMult";
      case OpClass::Load:
        return "Load";
      case OpClass::Store:
        return "Store";
      case OpClass::Branch:
        return "Branch";
      case OpClass::Call:
        return "Call";
      case OpClass::Return:
        return "Return";
      case OpClass::FpAlu:
        return "FpAlu";
      case OpClass::FpMult:
        return "FpMult";
    }
    panic("unknown OpClass %d", static_cast<int>(cls));
}

bool
isIntClass(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return:
        return true;
      default:
        return false;
    }
}

bool
isMemClass(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

bool
isControlClass(OpClass cls)
{
    return cls == OpClass::Branch || cls == OpClass::Call ||
        cls == OpClass::Return;
}

bool
isFpClass(OpClass cls)
{
    return cls == OpClass::FpAlu || cls == OpClass::FpMult;
}

Cycle
execLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return:
        return 1;
      case OpClass::IntMult:
        return 7;
      case OpClass::Load:
      case OpClass::Store:
        return 1; // address generation; cache latency added separately
      case OpClass::FpAlu:
        return 4;
      case OpClass::FpMult:
        return 4;
    }
    panic("unknown OpClass %d", static_cast<int>(cls));
}

} // namespace lsim::trace
