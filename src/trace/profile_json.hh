/**
 * @file
 * Custom-workload ingestion: build trace::WorkloadProfile from
 * user-supplied JSON so scenarios beyond the nine synthetic Table 3
 * benchmarks flow through the same generator, facade, and sweep
 * machinery.
 *
 * The schema is the WorkloadProfile struct itself: one JSON object
 * whose keys are the struct's field names ("frac_load",
 * "dep_density", "working_set", ...). "name" is required; every
 * other field defaults as in the struct. Unknown keys are errors
 * (they are almost always typos of real knobs, and silently
 * ignoring them would simulate a different workload than the user
 * described). All errors — unknown key, wrong type, out-of-range
 * value — throw std::invalid_argument naming the offending field.
 *
 * Example:
 *
 *   {"name": "webserver", "suite": "custom",
 *    "frac_load": 0.30, "frac_store": 0.12, "frac_branch": 0.18,
 *    "dep_density": 0.45, "num_blocks": 4000,
 *    "working_set": 8388608, "irregular_frac": 0.08}
 */

#ifndef LSIM_TRACE_PROFILE_JSON_HH
#define LSIM_TRACE_PROFILE_JSON_HH

#include <string>

#include "common/json.hh"
#include "trace/profile.hh"

namespace lsim::trace
{

/** Build a validated profile from a parsed JSON object. */
WorkloadProfile workloadProfileFromJson(const JsonValue &v);

/** Parse + build from JSON text. */
WorkloadProfile workloadProfileFromJsonText(const std::string &text);

/** Parse + build from a JSON file. */
WorkloadProfile loadWorkloadProfile(const std::string &path);

} // namespace lsim::trace

#endif // LSIM_TRACE_PROFILE_JSON_HH
