#include "trace/profile_json.hh"

#include <stdexcept>

namespace lsim::trace
{

namespace
{

/** Wrap accessor errors so they name the field being read. */
template <typename Fn>
void
readField(const char *field, Fn &&fn)
{
    try {
        fn();
    } catch (const std::invalid_argument &err) {
        throw std::invalid_argument("profile field '" +
                                    std::string(field) +
                                    "': " + err.what());
    }
}

} // namespace

WorkloadProfile
workloadProfileFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw std::invalid_argument(
            "workload profile: expected a JSON object");

    WorkloadProfile p;
    bool have_name = false;
    for (const auto &[key, value] : v.members()) {
        const JsonValue &val = value; // lambdas cannot bind [key,value]
        const auto number = [&](double &target) {
            readField(key.c_str(),
                      [&] { target = val.asNumber(); });
        };
        const auto u32 = [&](unsigned &target) {
            readField(key.c_str(), [&] {
                const std::uint64_t n = val.asU64();
                if (n > 0xffffffffull)
                    throw std::invalid_argument("value too large");
                target = static_cast<unsigned>(n);
            });
        };

        if (key == "name") {
            readField("name", [&] { p.name = val.asString(); });
            have_name = !p.name.empty();
        } else if (key == "suite") {
            readField("suite", [&] { p.suite = val.asString(); });
        } else if (key == "window") {
            readField("window", [&] { p.window = val.asString(); });
        } else if (key == "frac_load") {
            number(p.frac_load);
        } else if (key == "frac_store") {
            number(p.frac_store);
        } else if (key == "frac_branch") {
            number(p.frac_branch);
        } else if (key == "frac_mult") {
            number(p.frac_mult);
        } else if (key == "frac_fp") {
            number(p.frac_fp);
        } else if (key == "dep_density") {
            number(p.dep_density);
        } else if (key == "dep_distance_p") {
            number(p.dep_distance_p);
        } else if (key == "num_blocks") {
            u32(p.num_blocks);
        } else if (key == "branch_bias_strong") {
            number(p.branch_bias_strong);
        } else if (key == "noisy_taken_prob") {
            number(p.noisy_taken_prob);
        } else if (key == "call_fraction") {
            number(p.call_fraction);
        } else if (key == "working_set") {
            readField("working_set",
                      [&] { p.working_set = val.asU64(); });
        } else if (key == "local_frac") {
            number(p.local_frac);
        } else if (key == "stream_frac") {
            number(p.stream_frac);
        } else if (key == "irregular_frac") {
            number(p.irregular_frac);
        } else if (key == "strong_taken_bias") {
            number(p.strong_taken_bias);
        } else if (key == "mean_loop_iters") {
            number(p.mean_loop_iters);
        } else if (key == "paper_max_ipc") {
            number(p.paper_max_ipc);
        } else if (key == "paper_ipc") {
            number(p.paper_ipc);
        } else if (key == "paper_fus") {
            u32(p.paper_fus);
        } else {
            throw std::invalid_argument(
                "workload profile: unknown field '" + key +
                "' (keys must name WorkloadProfile knobs)");
        }
    }
    if (!have_name)
        throw std::invalid_argument(
            "workload profile: required field 'name' is missing or "
            "empty");

    const std::string err = p.validationError();
    if (!err.empty())
        throw std::invalid_argument("workload profile '" + p.name +
                                    "': " + err);
    return p;
}

WorkloadProfile
workloadProfileFromJsonText(const std::string &text)
{
    return workloadProfileFromJson(parseJson(text));
}

WorkloadProfile
loadWorkloadProfile(const std::string &path)
{
    // parseJsonFile prefixes its own errors with the path; only the
    // semantic (schema/validation) errors still need it added.
    const JsonValue doc = parseJsonFile(path);
    try {
        return workloadProfileFromJson(doc);
    } catch (const std::invalid_argument &err) {
        throw std::invalid_argument(path + ": " + err.what());
    }
}

} // namespace lsim::trace
