#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace lsim::trace
{

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), rng_(seed ^ 0xa5a5'5a5a'1234'9876ull)
{
    profile_.validate();
    buildProgram();
}

TraceGenerator::StaticInst
TraceGenerator::makeStaticInst(OpClass cls)
{
    StaticInst si{};
    si.cls = cls;
    si.mem_site = -1;
    const bool fp = isFpClass(cls);
    switch (cls) {
      case OpClass::Load:
        si.dst = pickDest(false);
        si.src1 = pickSource(false); // address base register
        si.src2 = kNoReg;
        si.mem_site = static_cast<std::int32_t>(mem_sites_.size());
        mem_sites_.push_back(makeMemSite());
        break;
      case OpClass::Store:
        si.dst = kNoReg;
        si.src1 = pickSource(false); // address base register
        si.src2 = pickSource(false); // data register
        si.mem_site = static_cast<std::int32_t>(mem_sites_.size());
        mem_sites_.push_back(makeMemSite());
        break;
      default:
        si.dst = pickDest(fp);
        si.src1 = pickSource(fp);
        si.src2 = pickSource(fp);
        break;
    }
    if (si.dst != kNoReg) {
        auto &recent = fp ? recent_fp_ : recent_int_;
        recent.push_back(si.dst);
    }
    return si;
}

std::int16_t
TraceGenerator::pickSource(bool fp)
{
    auto &recent = fp ? recent_fp_ : recent_int_;
    const std::int16_t file_base = fp ? kNumLogicalRegs : 0;
    if (!recent.empty() && rng_.chance(profile_.dep_density)) {
        // Producer at a geometric static distance: larger
        // dep_distance_p means closer producers (tighter chains).
        const std::uint64_t dist =
            rng_.geometric(profile_.dep_distance_p);
        const std::size_t idx =
            recent.size() >= dist ? recent.size() - dist : 0;
        return recent[idx];
    }
    // Long-lived global value.
    return file_base + static_cast<std::int16_t>(rng_.below(8));
}

std::int16_t
TraceGenerator::pickDest(bool fp)
{
    const std::int16_t file_base = fp ? kNumLogicalRegs : 0;
    // Destinations come from the non-global registers 8..31.
    return file_base + 8 + static_cast<std::int16_t>(rng_.below(24));
}

void
TraceGenerator::buildRegionPools()
{
    const Addr ws = profile_.working_set;
    // A handful of shared arrays: many static sites traverse the
    // same data, as in real programs. Pool footprint stays well
    // inside the working set.
    const unsigned n_res = 8;
    for (unsigned i = 0; i < n_res; ++i) {
        Region r;
        r.size = Addr{4096} << rng_.below(2); // 4-8 KB
        r.base = kDataBase + rng_.below(ws / 4096) * 4096 % ws;
        resident_pool_.push_back(r);
    }
    const unsigned n_stream = 4;
    for (unsigned i = 0; i < n_stream; ++i) {
        Region r;
        r.size = std::clamp(ws / 4, Addr{64 * 1024}, ws);
        r.base = kDataBase + rng_.below(ws / 4096) * 4096 % ws;
        stream_pool_.push_back(r);
    }
}

std::size_t
TraceGenerator::apportion(const double *fracs, std::size_t n,
                          std::vector<double> &assigned)
{
    if (assigned.size() != n)
        assigned.assign(n, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += assigned[i];
    std::size_t best = 0;
    double best_deficit = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
        const double deficit = fracs[i] * (total + 1.0) - assigned[i];
        if (deficit > best_deficit) {
            best_deficit = deficit;
            best = i;
        }
    }
    assigned[best] += 1.0;
    return best;
}

TraceGenerator::MemSite
TraceGenerator::makeMemSite()
{
    MemSite site{};
    const Addr ws = profile_.working_set;
    const double fracs[4] = {
        profile_.local_frac,
        profile_.stream_frac,
        profile_.irregular_frac,
        1.0 - profile_.local_frac - profile_.stream_frac -
            profile_.irregular_frac,
    };
    const std::size_t kind = apportion(fracs, 4, mem_assigned_);
    if (kind == 0) {
        // Stack/locals: a 256-byte window within a shared 16 KB
        // stack frame region — spills and locals that essentially
        // always hit the L1.
        site.kind = SiteKind::Local;
        site.region = 256;
        site.base = kStackBase + rng_.below(16 * 1024 / 256) * 256;
        site.stride = 8;
        site.pos = 0;
    } else if (kind == 1) {
        // Streaming sweep: full-line stride over a large shared
        // slice; every access touches a new line (misses L1,
        // L2-resident while the slice fits the L2).
        const Region &r = stream_pool_[rng_.below(stream_pool_.size())];
        site.kind = SiteKind::Streaming;
        site.stride = 64;
        site.region = r.size;
        site.base = r.base;
        site.pos = rng_.below(site.region) & ~Addr{63};
    } else if (kind == 2) {
        // Irregular site: most accesses fall in a hot eighth of the
        // working set, the rest anywhere (pointer-chasing-like).
        site.kind = SiteKind::Irregular;
        site.stride = 0;
        site.region = ws;
        site.base = kDataBase;
        site.pos = 0;
    } else {
        // Cache-resident small-stride sweep of a shared small array.
        const Region &r =
            resident_pool_[rng_.below(resident_pool_.size())];
        site.kind = SiteKind::Resident;
        static constexpr Addr kStrides[] = {4, 8, 8, 16};
        site.stride = kStrides[rng_.below(std::size(kStrides))];
        site.region = r.size;
        site.base = r.base;
        site.pos = rng_.below(site.region) & ~Addr{3};
    }
    return site;
}

Addr
TraceGenerator::nextAddress(MemSite &site)
{
    switch (site.kind) {
      case SiteKind::Local:
      case SiteKind::Resident:
      case SiteKind::Streaming:
        site.pos = (site.pos + site.stride) % site.region;
        return site.base + site.pos;
      case SiteKind::Irregular: {
        const Addr hot = std::max(site.region / 8, Addr{4096});
        const Addr span = rng_.chance(0.8) ? hot : site.region;
        return site.base + (rng_.below(span) & ~Addr{3});
      }
    }
    panic("bad SiteKind");
}

OpClass
TraceGenerator::drawBodyClass()
{
    // Body mix excludes control classes (the terminator supplies the
    // branch fraction); renormalize the remaining fractions.
    const double denom = 1.0 - profile_.frac_branch;
    double u = rng_.uniform() * denom;
    if ((u -= profile_.frac_load) < 0)
        return OpClass::Load;
    if ((u -= profile_.frac_store) < 0)
        return OpClass::Store;
    if ((u -= profile_.frac_mult) < 0)
        return OpClass::IntMult;
    if ((u -= profile_.frac_fp) < 0)
        return rng_.chance(0.5) ? OpClass::FpAlu : OpClass::FpMult;
    return OpClass::IntAlu;
}

void
TraceGenerator::buildProgram()
{
    buildRegionPools();
    const unsigned total = profile_.num_blocks;
    // Function-entry blocks live at the top of the index space and
    // are reachable only through calls; they end in Return.
    const unsigned funcs = std::max(1u,
        static_cast<unsigned>(total * profile_.call_fraction));
    num_normal_ = total - funcs;
    if (num_normal_ < 2)
        fatal("profile %s: too few normal blocks (%u)",
              profile_.name.c_str(), num_normal_);

    // Mean body length so that terminators make up frac_branch of
    // the dynamic stream: B = (1 - f) / f.
    const double mean_len =
        (1.0 - profile_.frac_branch) / profile_.frac_branch;
    const double geo_p = 1.0 / std::max(1.0, mean_len);

    // First pass: block bodies and addresses.
    blocks_.resize(total);
    Addr pc = kCodeBase;
    for (unsigned b = 0; b < total; ++b) {
        Block &blk = blocks_[b];
        blk.pc = pc;
        blk.first_inst = static_cast<std::uint32_t>(insts_.size());
        const auto len = static_cast<std::uint32_t>(std::min<Cycle>(
            rng_.geometric(geo_p), static_cast<Cycle>(4 * mean_len) + 1));
        for (std::uint32_t i = 0; i < len; ++i)
            insts_.push_back(makeStaticInst(drawBodyClass()));
        blk.num_insts = len;
        pc += Addr{4} * (len + 1); // body + terminator
    }

    // Second pass: organize the normal blocks into loop nests. Each
    // nest is a contiguous run of 1-8 blocks whose last block loops
    // back to the nest head with probability 1 - 1/mean_loop_iters;
    // internal branches stay inside the nest. The program thus walks
    // nest by nest through its whole footprint, iterating each —
    // execution is spread deterministically (stable statistics)
    // while staying loop-structured (realistic predictor and cache
    // behavior).
    const double p_loop = 1.0 - 1.0 / profile_.mean_loop_iters;
    unsigned b = 0;
    while (b < num_normal_) {
        const unsigned nest_size = 1 +
            static_cast<unsigned>(rng_.below(8));
        const unsigned s = b;
        const unsigned e =
            std::min(s + nest_size, num_normal_) - 1;
        for (unsigned i = s; i <= e; ++i) {
            Block &blk = blocks_[i];
            blk.term_src = pickSource(false);
            blk.fall_succ = (i + 1) % num_normal_;
            blk.call_target = 0;
            const double cfracs[2] = {
                profile_.call_fraction,
                1.0 - profile_.call_fraction,
            };
            if (i == e) {
                // Loop-back branch: strongly taken until exit.
                blk.term_cls = OpClass::Branch;
                blk.taken_succ = s;
                blk.taken_prob = p_loop;
            } else if (apportion(cfracs, 2, call_assigned_) == 0) {
                blk.term_cls = OpClass::Call;
                blk.taken_prob = 1.0;
                blk.call_target = num_normal_ +
                    static_cast<std::uint32_t>(rng_.below(funcs));
                blk.taken_succ = blk.call_target;
            } else {
                // Internal branch within the nest: forward-only
                // (like compiler-emitted if/else skips), so only the
                // loop-back edge creates repetition and no seed can
                // produce a pathological inner trap. Strong/noisy
                // categories are striped so every nest carries a
                // representative mix; strong forward branches are
                // rarely taken.
                blk.term_cls = OpClass::Branch;
                const double bfracs[2] = {
                    profile_.branch_bias_strong,
                    1.0 - profile_.branch_bias_strong,
                };
                if (apportion(bfracs, 2, branch_assigned_) == 0)
                    blk.taken_prob = 1.0 - profile_.strong_taken_bias;
                else
                    blk.taken_prob = profile_.noisy_taken_prob;
                blk.taken_succ = static_cast<std::uint32_t>(
                    i + 1 + rng_.below(e - i));
            }
        }
        b = e + 1;
    }

    // Function blocks end in Return.
    for (unsigned f = num_normal_; f < total; ++f) {
        Block &blk = blocks_[f];
        blk.term_cls = OpClass::Return;
        blk.term_src = pickSource(false);
        blk.taken_prob = 1.0;
        blk.taken_succ = 0; // actual target comes from the stack
        blk.fall_succ = 0;
        blk.call_target = 0;
    }
    code_bytes_ = pc - kCodeBase;
    num_static_ = insts_.size() + blocks_.size();
    cur_block_ = 0;
    cursor_ = 0;
}

MicroOp
TraceGenerator::next()
{
    ++icount_;
    const Block &blk = blocks_[cur_block_];
    MicroOp op{};

    if (cursor_ < blk.num_insts) {
        const StaticInst &si = insts_[blk.first_inst + cursor_];
        op.pc = blk.pc + Addr{4} * cursor_;
        op.cls = si.cls;
        op.dst = si.dst;
        op.src1 = si.src1;
        op.src2 = si.src2;
        if (si.mem_site >= 0)
            op.mem_addr = nextAddress(mem_sites_[si.mem_site]);
        ++cursor_;
        return op;
    }

    // Terminator.
    op.pc = blk.termPc();
    op.cls = blk.term_cls;
    op.src1 = blk.term_src;
    op.dst = kNoReg;

    std::uint32_t next_block;
    switch (blk.term_cls) {
      case OpClass::Branch:
        op.taken = rng_.chance(blk.taken_prob);
        next_block = op.taken ? blk.taken_succ : blk.fall_succ;
        op.target = blocks_[blk.taken_succ].pc;
        break;
      case OpClass::Call:
        op.taken = true;
        op.target = blocks_[blk.call_target].pc;
        next_block = blk.call_target;
        if (call_stack_.size() < kMaxCallDepth)
            call_stack_.push_back(blk.fall_succ);
        break;
      case OpClass::Return:
        op.taken = true;
        if (!call_stack_.empty()) {
            next_block = call_stack_.back();
            call_stack_.pop_back();
        } else {
            next_block = 0;
        }
        op.target = blocks_[next_block].pc;
        break;
      default:
        panic("block %u has non-control terminator", cur_block_);
    }

    cur_block_ = next_block;
    cursor_ = 0;
    return op;
}

} // namespace lsim::trace
