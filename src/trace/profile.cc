#include "trace/profile.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace lsim::trace
{

namespace
{

std::string
numberToText(double v)
{
    std::ostringstream ss;
    ss << v;
    return ss.str();
}

/**
 * "<field> <value> outside <range>" check for one double-valued
 * knob. Written so a NaN always FAILS the range test (NaN
 * comparisons are false, so the naive `v < lo || v > hi` would
 * silently accept it — exactly the wrong behavior for untrusted
 * JSON-loaded profiles).
 */
std::string
checkRange(const char *field, double v, double lo, double hi,
           bool lo_open = false, bool hi_open = false)
{
    const bool lo_ok = lo_open ? v > lo : v >= lo;
    const bool hi_ok = hi_open ? v < hi : v <= hi;
    if (std::isfinite(v) && lo_ok && hi_ok)
        return "";
    return std::string(field) + " " + numberToText(v) + " outside " +
           (lo_open ? "(" : "[") + numberToText(lo) + "," +
           numberToText(hi) + (hi_open ? ")" : "]");
}

} // namespace

std::string
WorkloadProfile::validationError() const
{
    // Per-field checks first, so the error names the exact knob.
    struct Check
    {
        const char *field;
        double value;
        double lo, hi;
        bool lo_open = false, hi_open = false;
    };
    const Check checks[] = {
        {"frac_load", frac_load, 0.0, 1.0},
        {"frac_store", frac_store, 0.0, 1.0},
        {"frac_branch", frac_branch, 0.0, 0.5, true, true},
        {"frac_mult", frac_mult, 0.0, 1.0},
        {"frac_fp", frac_fp, 0.0, 1.0},
        {"dep_density", dep_density, 0.0, 1.0},
        {"dep_distance_p", dep_distance_p, 0.0, 1.0, true, false},
        {"branch_bias_strong", branch_bias_strong, 0.0, 1.0},
        {"noisy_taken_prob", noisy_taken_prob, 0.0, 1.0},
        {"call_fraction", call_fraction, 0.0, 0.5},
        {"local_frac", local_frac, 0.0, 1.0},
        {"stream_frac", stream_frac, 0.0, 1.0},
        {"irregular_frac", irregular_frac, 0.0, 1.0},
        {"strong_taken_bias", strong_taken_bias, 0.5, 1.0, true,
         true},
        {"mean_loop_iters", mean_loop_iters, 2.0, 1e9},
        {"paper_max_ipc", paper_max_ipc, 0.0, 16.0},
        {"paper_ipc", paper_ipc, 0.0, 16.0},
    };
    for (const Check &c : checks) {
        std::string err = checkRange(c.field, c.value, c.lo, c.hi,
                                     c.lo_open, c.hi_open);
        if (!err.empty())
            return err;
    }

    const double mix =
        frac_load + frac_store + frac_branch + frac_mult + frac_fp;
    if (!(mix <= 1.0))
        return "instruction mix (frac_load + frac_store + "
               "frac_branch + frac_mult + frac_fp) sums to " +
               numberToText(mix) + " > 1";
    const double mem_frac = local_frac + stream_frac + irregular_frac;
    if (!(mem_frac <= 1.0))
        return "memory site fractions (local_frac + stream_frac + "
               "irregular_frac) sum to " + numberToText(mem_frac) +
               " > 1";

    if (num_blocks < 4)
        return "num_blocks " + std::to_string(num_blocks) +
               " below the 4-block minimum";
    if (working_set < 4096)
        return "working_set " + std::to_string(working_set) +
               " below one 4096-byte page";
    if (paper_fus < 1 || paper_fus > 4)
        return "paper_fus " + std::to_string(paper_fus) +
               " outside [1,4]";
    return "";
}

void
WorkloadProfile::validate() const
{
    // Profile errors throw (the CLI boundary catches and exits);
    // fatal() would take down a daemon serving other requests.
    const std::string err = validationError();
    if (!err.empty())
        throw std::invalid_argument("profile " + name + ": " + err);
}

namespace
{

std::vector<WorkloadProfile>
buildProfiles()
{
    std::vector<WorkloadProfile> out;

    // Olden health: pointer-chasing over linked lists of patients;
    // tiny code, almost no ILP, large random data footprint.
    {
        WorkloadProfile p;
        p.name = "health";
        p.suite = "Olden";
        p.frac_load = 0.34;
        p.frac_store = 0.09;
        p.frac_branch = 0.17;
        p.frac_mult = 0.00;
        p.dep_density = 0.62;
        p.dep_distance_p = 0.28;
        p.num_blocks = 220;
        p.branch_bias_strong = 0.85;
        p.noisy_taken_prob = 0.45;
        p.call_fraction = 0.06;
        p.working_set = Addr{24} << 20;
        p.local_frac = 0.50;
        p.stream_frac = 0.02;
        p.irregular_frac = 0.13;
        p.mean_loop_iters = 15.0;
        p.paper_max_ipc = 0.560;
        p.paper_ipc = 0.554;
        p.paper_fus = 2;
        p.window = "80M-140M";
        out.push_back(p);
    }

    // Olden mst: minimum spanning tree; hash lookups mixed with
    // regular traversal, moderate ILP.
    {
        WorkloadProfile p;
        p.name = "mst";
        p.suite = "Olden";
        p.frac_load = 0.28;
        p.frac_store = 0.08;
        p.frac_branch = 0.16;
        p.frac_mult = 0.01;
        p.dep_density = 0.30;
        p.dep_distance_p = 0.10;
        p.num_blocks = 300;
        p.branch_bias_strong = 0.96;
        p.noisy_taken_prob = 0.40;
        p.call_fraction = 0.05;
        p.working_set = Addr{2} << 20;
        p.local_frac = 0.55;
        p.stream_frac = 0.03;
        p.irregular_frac = 0.012;
        p.mean_loop_iters = 40.0;
        p.paper_max_ipc = 1.748;
        p.paper_ipc = 1.748;
        p.paper_fus = 4;
        p.window = "entire pgm 14M";
        out.push_back(p);
    }

    // SPEC95 gcc: very large static code footprint, branchy,
    // moderate data locality.
    {
        WorkloadProfile p;
        p.name = "gcc";
        p.suite = "SPEC95 INT";
        p.frac_load = 0.26;
        p.frac_store = 0.12;
        p.frac_branch = 0.18;
        p.frac_mult = 0.00;
        p.dep_density = 0.40;
        p.dep_distance_p = 0.13;
        p.num_blocks = 9000;
        p.branch_bias_strong = 0.96;
        p.noisy_taken_prob = 0.42;
        p.call_fraction = 0.06;
        p.working_set = Addr{4} << 20;
        p.local_frac = 0.60;
        p.stream_frac = 0.01;
        p.irregular_frac = 0.012;
        p.mean_loop_iters = 20.0;
        p.paper_max_ipc = 1.622;
        p.paper_ipc = 1.619;
        p.paper_fus = 2;
        p.window = "1650M-1750M";
        out.push_back(p);
    }

    // SPEC2K gzip: compression loops, small hot code, L2-resident
    // window buffer swept with strides, high ILP.
    {
        WorkloadProfile p;
        p.name = "gzip";
        p.suite = "SPEC2K INT";
        p.frac_load = 0.22;
        p.frac_store = 0.09;
        p.frac_branch = 0.15;
        p.frac_mult = 0.00;
        p.dep_density = 0.50;
        p.dep_distance_p = 0.22;
        p.num_blocks = 450;
        p.branch_bias_strong = 0.93;
        p.noisy_taken_prob = 0.35;
        p.call_fraction = 0.03;
        p.working_set = Addr{512} << 10;
        p.local_frac = 0.55;
        p.stream_frac = 0.03;
        p.irregular_frac = 0.01;
        p.strong_taken_bias = 0.98;
        p.mean_loop_iters = 60.0;
        p.paper_max_ipc = 2.120;
        p.paper_ipc = 2.120;
        p.paper_fus = 4;
        p.window = "2000M-2050M";
        out.push_back(p);
    }

    // SPEC2K mcf: network simplex; dominated by dependent loads that
    // miss in L2 (paper-era footprint ~100 MB).
    {
        WorkloadProfile p;
        p.name = "mcf";
        p.suite = "SPEC2K INT";
        p.frac_load = 0.33;
        p.frac_store = 0.09;
        p.frac_branch = 0.17;
        p.frac_mult = 0.00;
        p.dep_density = 0.50;
        p.dep_distance_p = 0.18;
        p.num_blocks = 260;
        p.branch_bias_strong = 0.90;
        p.noisy_taken_prob = 0.48;
        p.call_fraction = 0.03;
        p.working_set = Addr{48} << 20;
        p.local_frac = 0.45;
        p.stream_frac = 0.03;
        p.irregular_frac = 0.17;
        p.mean_loop_iters = 20.0;
        p.paper_max_ipc = 0.523;
        p.paper_ipc = 0.503;
        p.paper_fus = 2;
        p.window = "1000M-1050M";
        out.push_back(p);
    }

    // SPEC2K parser: dictionary lookups, recursive parsing; medium
    // everything with noticeable branch noise.
    {
        WorkloadProfile p;
        p.name = "parser";
        p.suite = "SPEC2K INT";
        p.frac_load = 0.25;
        p.frac_store = 0.10;
        p.frac_branch = 0.17;
        p.frac_mult = 0.00;
        p.dep_density = 0.44;
        p.dep_distance_p = 0.15;
        p.num_blocks = 1800;
        p.branch_bias_strong = 0.93;
        p.noisy_taken_prob = 0.42;
        p.call_fraction = 0.07;
        p.working_set = Addr{1} << 20;
        p.local_frac = 0.60;
        p.stream_frac = 0.02;
        p.irregular_frac = 0.02;
        p.paper_max_ipc = 1.692;
        p.paper_ipc = 1.692;
        p.paper_fus = 4;
        p.window = "2000M-2100M";
        out.push_back(p);
    }

    // SPEC2K twolf: place-and-route; fp-tinged integer code with
    // moderately random cell data accesses.
    {
        WorkloadProfile p;
        p.name = "twolf";
        p.suite = "SPEC2K INT";
        p.frac_load = 0.24;
        p.frac_store = 0.08;
        p.frac_branch = 0.16;
        p.frac_mult = 0.02;
        p.frac_fp = 0.02;
        p.dep_density = 0.50;
        p.dep_distance_p = 0.20;
        p.num_blocks = 1400;
        p.branch_bias_strong = 0.94;
        p.noisy_taken_prob = 0.45;
        p.call_fraction = 0.05;
        p.working_set = Addr{2} << 20;
        p.local_frac = 0.55;
        p.stream_frac = 0.03;
        p.irregular_frac = 0.025;
        p.mean_loop_iters = 35.0;
        p.paper_max_ipc = 1.542;
        p.paper_ipc = 1.475;
        p.paper_fus = 3;
        p.window = "1000M-1100M";
        out.push_back(p);
    }

    // SPEC2K vortex: object database; big code, very predictable
    // control, high ILP.
    {
        WorkloadProfile p;
        p.name = "vortex";
        p.suite = "SPEC2K INT";
        p.frac_load = 0.24;
        p.frac_store = 0.13;
        p.frac_branch = 0.14;
        p.frac_mult = 0.00;
        p.dep_density = 0.32;
        p.dep_distance_p = 0.10;
        p.num_blocks = 5000;
        p.branch_bias_strong = 0.98;
        p.noisy_taken_prob = 0.30;
        p.call_fraction = 0.08;
        p.working_set = Addr{2} << 20;
        p.local_frac = 0.60;
        p.stream_frac = 0.01;
        p.irregular_frac = 0.008;
        p.strong_taken_bias = 0.99;
        p.mean_loop_iters = 100.0;
        p.paper_max_ipc = 2.387;
        p.paper_ipc = 2.387;
        p.paper_fus = 4;
        p.window = "2000M-2100M";
        out.push_back(p);
    }

    // SPEC2K vpr: FPGA place & route; moderate ILP with some branch
    // noise from simulated annealing accept/reject.
    {
        WorkloadProfile p;
        p.name = "vpr";
        p.suite = "SPEC2K INT";
        p.frac_load = 0.26;
        p.frac_store = 0.09;
        p.frac_branch = 0.16;
        p.frac_mult = 0.01;
        p.frac_fp = 0.03;
        p.dep_density = 0.54;
        p.dep_distance_p = 0.22;
        p.num_blocks = 1100;
        p.branch_bias_strong = 0.92;
        p.noisy_taken_prob = 0.47;
        p.call_fraction = 0.05;
        p.working_set = Addr{1} << 20;
        p.local_frac = 0.55;
        p.stream_frac = 0.03;
        p.irregular_frac = 0.04;
        p.paper_max_ipc = 1.481;
        p.paper_ipc = 1.431;
        p.paper_fus = 3;
        p.window = "2000M-2100M";
        out.push_back(p);
    }

    for (auto &p : out)
        p.validate();
    return out;
}

} // namespace

const std::vector<WorkloadProfile> &
table3Profiles()
{
    static const std::vector<WorkloadProfile> profiles = buildProfiles();
    return profiles;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    for (const auto &p : table3Profiles())
        if (p.name == name)
            return p;
    throw std::invalid_argument("unknown workload profile '" + name +
                                "' (see 'lsim list')");
}

} // namespace lsim::trace
