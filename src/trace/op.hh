/**
 * @file
 * Dynamic micro-operation record produced by the workload generator
 * and consumed by the timing model. The trace is "pre-executed":
 * branch outcomes and memory addresses are already resolved, and the
 * timing model's job is to discover how fast the machine could have
 * run it (standard trace-driven simulation).
 */

#ifndef LSIM_TRACE_OP_HH
#define LSIM_TRACE_OP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace lsim::trace
{

/** Operation classes, a condensed Alpha-like mix. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer ALU op
    IntMult,  ///< integer multiply (long latency, pipelined)
    Load,     ///< memory load (agen on an integer ALU + D-cache)
    Store,    ///< memory store (agen on an integer ALU)
    Branch,   ///< conditional branch (executes on an integer ALU)
    Call,     ///< subroutine call (pushes RAS, integer ALU)
    Return,   ///< subroutine return (pops RAS, integer ALU)
    FpAlu,    ///< floating point add/sub/cmp
    FpMult,   ///< floating point multiply/divide
};

/** Number of distinct op classes. */
inline constexpr unsigned kNumOpClasses = 9;

/** @return mnemonic for an op class. */
std::string to_string(OpClass cls);

/** @return true for classes executed by the integer functional units
 * (including load/store address generation, as in SimpleScalar). */
bool isIntClass(OpClass cls);

/** @return true for loads and stores. */
bool isMemClass(OpClass cls);

/** @return true for control transfer classes. */
bool isControlClass(OpClass cls);

/** @return true for floating point classes. */
bool isFpClass(OpClass cls);

/** Logical register count per file (int and fp each). */
inline constexpr int kNumLogicalRegs = 32;

/** One dynamic instruction. */
struct MicroOp
{
    Addr pc = 0;             ///< instruction address
    OpClass cls = OpClass::IntAlu;
    std::int16_t dst = kNoReg;  ///< destination logical register
    std::int16_t src1 = kNoReg; ///< first source logical register
    std::int16_t src2 = kNoReg; ///< second source logical register
    Addr mem_addr = 0;       ///< effective address (mem classes)
    bool taken = false;      ///< resolved direction (control classes)
    Addr target = 0;         ///< resolved target (control classes)

    bool isInt() const { return isIntClass(cls); }
    bool isMem() const { return isMemClass(cls); }
    bool isControl() const { return isControlClass(cls); }
    bool isFp() const { return isFpClass(cls); }
    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
};

/** Execution latency in cycles of each op class (post-issue). */
Cycle execLatency(OpClass cls);

} // namespace lsim::trace

#endif // LSIM_TRACE_OP_HH
