/**
 * @file
 * Workload profiles: parameterized synthetic stand-ins for the
 * paper's Table 3 benchmarks (SPEC95/SPEC2K INT and Olden).
 *
 * We cannot ship or run the original binaries, so each benchmark is
 * described by the levers that determine functional-unit idleness in
 * an out-of-order core: instruction mix, dependency structure (ILP),
 * control-flow predictability, and instruction/data memory locality.
 * The generator (generator.hh) expands a profile into a synthetic
 * program (basic-block graph with per-site branch bias and per-site
 * memory access patterns) and produces a pre-executed dynamic trace.
 *
 * Profiles are tuned so the simulated 4-FU IPC lands near the
 * paper's "Max IPC" column and the benchmark's qualitative character
 * (mcf/health memory-bound, vortex/gzip ILP-rich, ...) is preserved.
 */

#ifndef LSIM_TRACE_PROFILE_HH
#define LSIM_TRACE_PROFILE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace lsim::trace
{

/** Tunable description of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;   ///< benchmark name (Table 3 column 1)
    std::string suite;  ///< originating suite (Table 3 column 2)

    /**
     * @name Instruction mix
     * Fractions of the dynamic stream; the remainder after all
     * listed classes is IntAlu. Branches are additionally split into
     * plain branches and call/return pairs by the generator.
     * @{
     */
    double frac_load = 0.25;
    double frac_store = 0.10;
    double frac_branch = 0.15;
    double frac_mult = 0.01;
    double frac_fp = 0.00;
    /** @} */

    /**
     * @name Dependency structure
     * Each source operand is, with probability dep_density, the
     * result of a recent earlier instruction at geometric distance
     * (parameter dep_distance_p; larger means closer producers and
     * hence less ILP). Otherwise it reads a long-lived value.
     * @{
     */
    double dep_density = 0.7;
    double dep_distance_p = 0.3;
    /** @} */

    /**
     * @name Control flow
     * num_blocks sets the static instruction footprint (I-cache
     * behavior); block body lengths are geometric with mean
     * (1 - frac_branch) / frac_branch so the dynamic branch fraction
     * matches the mix. A branch site is "strongly biased" with probability
     * branch_bias_strong (taken prob 0.97 or 0.03 chosen per site);
     * otherwise the site is noisy with per-execution taken
     * probability noisy_taken_prob. call_fraction of blocks end in a
     * call to a function block (exercising the RAS).
     * @{
     */
    unsigned num_blocks = 1200;
    double branch_bias_strong = 0.85;
    double noisy_taken_prob = 0.45;
    double call_fraction = 0.04;
    /** @} */

    /**
     * @name Memory behavior
     * Load/store sites fall into four categories:
     *  - local (local_frac): stack/locals; tiny shared region,
     *    effectively always L1-resident;
     *  - streaming (stream_frac): line-stride sweeps over a large
     *    slice of the working set — miss L1 on every line, hit L2
     *    while the slice fits;
     *  - irregular (irregular_frac): uniformly random within
     *    working_set (pointer-chasing); L1/L2 behavior follows the
     *    footprint size;
     *  - the remainder: small-stride sweeps of small regions that
     *    stay cache-resident after warmup.
     * The aggregate L1D miss rate is approximately stream_frac +
     * irregular_frac * P(footprint escape), giving direct control
     * over each benchmark's memory character.
     * @{
     */
    Addr working_set = 1u << 20;  ///< total data footprint, bytes
    double local_frac = 0.55;
    double stream_frac = 0.03;
    double irregular_frac = 0.05;
    /** @} */

    /** Taken-probability of strongly biased branch sites. */
    double strong_taken_bias = 0.97;

    /**
     * Mean iteration count of each loop nest. The program is a
     * sequence of loop nests (1-8 blocks each) executed repeatedly;
     * higher values concentrate execution in loops (predictable,
     * I-cache friendly), lower values make control flow call/branch
     * dominated.
     */
    double mean_loop_iters = 25.0;

    /**
     * @name Table 3 metadata (paper-reported, for harness output)
     * @{
     */
    double paper_max_ipc = 0.0; ///< IPC with 4 integer FUs
    double paper_ipc = 0.0;     ///< IPC with the chosen FU count
    unsigned paper_fus = 4;     ///< paper's chosen integer FU count
    std::string window;         ///< paper's simulation window
    /** @} */

    /**
     * Check parameter sanity. @return the empty string when the
     * profile is valid, otherwise one message naming the offending
     * field and its value (e.g. "frac_load 1.2 outside [0,1]").
     * Non-finite values (NaN/inf, possible in untrusted JSON-loaded
     * profiles) are rejected explicitly.
     */
    std::string validationError() const;

    /** Throws std::invalid_argument (with validationError()'s
     * message) when the profile is invalid. */
    void validate() const;
};

/** @return the nine Table 3 benchmark profiles, in paper order
 * (gcc, gzip, health, mcf, mst, parser, twolf, vortex, vpr ordered
 * as the paper's table: health, mst, gcc, gzip, mcf, parser, twolf,
 * vortex, vpr). */
const std::vector<WorkloadProfile> &table3Profiles();

/** @return profile by name; throws std::invalid_argument if
 * unknown. */
const WorkloadProfile &profileByName(const std::string &name);

} // namespace lsim::trace

#endif // LSIM_TRACE_PROFILE_HH
