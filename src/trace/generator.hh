/**
 * @file
 * Synthetic program generator.
 *
 * At construction a WorkloadProfile is expanded into a static
 * program: a basic-block graph whose blocks carry concrete static
 * instructions (op class, register operands, per-site memory access
 * pattern) and terminators (branch with a per-site taken bias, call,
 * or return). next() then walks the graph, resolving branch outcomes
 * and memory addresses, and emits a pre-executed dynamic MicroOp
 * stream — the moral equivalent of a SimpleScalar functional-mode
 * trace for a program with the profile's statistics.
 *
 * Register convention: integer logical registers are encoded 0..31,
 * floating point registers 32..63. Registers 0..7 (and 32..39) act
 * as long-lived "global" values; destinations are drawn from the
 * remaining registers.
 */

#ifndef LSIM_TRACE_GENERATOR_HH
#define LSIM_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/op.hh"
#include "trace/profile.hh"

namespace lsim::trace
{

/** Base virtual address of the synthetic code region. */
inline constexpr Addr kCodeBase = 0x0040'0000;

/** Base virtual address of the synthetic data region. */
inline constexpr Addr kDataBase = 0x1000'0000;

/** Base virtual address of the synthetic stack/locals region. */
inline constexpr Addr kStackBase = 0x7fff'0000;

/** Deterministic dynamic instruction source. */
class TraceGenerator
{
  public:
    /**
     * @param profile Workload description (validated).
     * @param seed PRNG seed; identical (profile, seed) pairs yield
     *        identical dynamic streams.
     */
    explicit TraceGenerator(const WorkloadProfile &profile,
                            std::uint64_t seed = 1);

    /** Generate the next dynamic instruction. */
    MicroOp next();

    /** Dynamic instructions generated so far. */
    std::uint64_t icount() const { return icount_; }

    /** Static instruction footprint in bytes (code size). */
    Addr codeFootprint() const { return code_bytes_; }

    /** Number of static instructions (bodies + terminators). */
    std::uint64_t numStaticInsts() const { return num_static_; }

    const WorkloadProfile &profile() const { return profile_; }

  private:
    /** Memory access pattern categories (see WorkloadProfile docs). */
    enum class SiteKind : std::uint8_t
    {
        Local,     ///< stack/locals: tiny shared hot region
        Resident,  ///< small-stride sweep of a cache-resident region
        Streaming, ///< line-stride sweep of a large slice
        Irregular, ///< random within the working set
    };

    /** Per-static-site memory access pattern state. */
    struct MemSite
    {
        SiteKind kind;
        Addr base;    ///< region base address
        Addr region;  ///< region size, bytes
        Addr stride;  ///< advance per access (strided sites)
        Addr pos;     ///< current offset within region
    };

    /** One static (non-terminator) instruction. */
    struct StaticInst
    {
        OpClass cls;
        std::int16_t dst;
        std::int16_t src1;
        std::int16_t src2;
        std::int32_t mem_site; ///< index into mem_sites_, or -1
    };

    /** A basic block: straight-line body plus one terminator. */
    struct Block
    {
        Addr pc;                        ///< address of first body inst
        std::uint32_t first_inst;       ///< index into insts_
        std::uint32_t num_insts;        ///< body length
        OpClass term_cls;               ///< Branch, Call, or Return
        std::int16_t term_src;          ///< terminator source register
        double taken_prob;              ///< branch taken bias
        std::uint32_t taken_succ;       ///< successor when taken
        std::uint32_t fall_succ;        ///< fall-through successor
        std::uint32_t call_target;      ///< callee block (calls)

        Addr termPc() const { return pc + Addr{4} * num_insts; }
    };

    /** A shared data region (arrays are traversed from many sites). */
    struct Region
    {
        Addr base;
        Addr size;
    };

    void buildProgram();
    void buildRegionPools();
    StaticInst makeStaticInst(OpClass cls);

    /**
     * Largest-remainder apportionment over categories: returns the
     * category whose assigned share lags its target fraction the
     * most. Deterministic striping keeps every dynamically hot
     * region of the program representative of the profile's
     * fractions, which makes run statistics stable across seeds
     * (independent per-site coin flips made hot loops lottery
     * draws).
     */
    static std::size_t apportion(const double *fracs, std::size_t n,
                                 std::vector<double> &assigned);
    std::int16_t pickSource(bool fp);
    std::int16_t pickDest(bool fp);
    MemSite makeMemSite();
    Addr nextAddress(MemSite &site);
    OpClass drawBodyClass();

    WorkloadProfile profile_;
    Rng rng_;

    /** Shared array regions for resident and streaming sites. */
    std::vector<Region> resident_pool_;
    std::vector<Region> stream_pool_;

    /** Apportionment state for memory site categories. */
    std::vector<double> mem_assigned_;
    /** Apportionment state for branch site categories. */
    std::vector<double> branch_assigned_;
    /** Apportionment state for call/branch terminator choice. */
    std::vector<double> call_assigned_;

    std::vector<StaticInst> insts_;
    std::vector<MemSite> mem_sites_;
    std::vector<Block> blocks_;
    std::uint32_t num_normal_ = 0; ///< blocks [0, num_normal_) normal
    Addr code_bytes_ = 0;
    std::uint64_t num_static_ = 0;

    /**
     * Recent destination registers in static generation order, used
     * to synthesize dependencies at geometric distances.
     */
    std::vector<std::int16_t> recent_int_;
    std::vector<std::int16_t> recent_fp_;

    // Dynamic walk state.
    std::uint32_t cur_block_ = 0;
    std::uint32_t cursor_ = 0;
    std::vector<std::uint32_t> call_stack_;
    std::uint64_t icount_ = 0;

    static constexpr std::size_t kMaxCallDepth = 64;
};

} // namespace lsim::trace

#endif // LSIM_TRACE_GENERATOR_HH
