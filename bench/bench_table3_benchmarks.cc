/**
 * @file
 * Reproduces Tables 2 and 3: the machine configuration and, per
 * benchmark, the maximum IPC with four integer functional units, the
 * FU count selected by the paper's methodology (minimum count with
 * >= 95% of the 4-FU IPC), and the IPC achieved at that count.
 *
 * Built on the api facade: each benchmark's selection comes from an
 * Experiment session with fus(api::auto_select), whose FuSelection
 * record carries the full 1..4-FU IPC ladder.
 *
 * Arguments: insts=<n> (default 1000000), seed=<n>.
 */

#include <iostream>

#include "api/experiment.hh"
#include "args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "trace/profile.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;

    setInformEnabled(false);
    bench::Args opts(1'000'000);
    opts.parse(argc, argv);

    const cpu::CoreConfig cfg;
    std::cout << "Table 2: architectural parameters\n\n";
    Table t2({"Parameter", "Value"});
    t2.addRow({"Fetch queue",
               std::to_string(cfg.fetch_queue_entries) + " entries"});
    t2.addRow({"Branch predictor",
               "bimodal " + std::to_string(cfg.bpred.bimodal_entries) +
               " + gshare " + std::to_string(cfg.bpred.gshare_entries) +
               " (hist " + std::to_string(cfg.bpred.hist_bits) +
               "), chooser " +
               std::to_string(cfg.bpred.chooser_entries)});
    t2.addRow({"RAS / BTB",
               std::to_string(cfg.bpred.ras_entries) + " / " +
               std::to_string(cfg.bpred.btb_sets) + " sets 2-way"});
    t2.addRow({"Branch mispred. latency",
               std::to_string(cfg.mispredict_penalty) + " cycles"});
    t2.addRow({"Fetch/decode/issue width",
               std::to_string(cfg.fetch_width) + " instructions"});
    t2.addRow({"Reorder buffer",
               std::to_string(cfg.rob_entries) + " entries"});
    t2.addRow({"Integer/FP issue queues",
               std::to_string(cfg.int_iq_entries) + " / " +
               std::to_string(cfg.fp_iq_entries) + " entries"});
    t2.addRow({"Physical registers (int/fp)",
               std::to_string(cfg.int_phys_regs) + " / " +
               std::to_string(cfg.fp_phys_regs)});
    t2.addRow({"Load/store queues",
               std::to_string(cfg.load_queue_entries) + " / " +
               std::to_string(cfg.store_queue_entries) + " entries"});
    t2.addRow({"L1 I/D caches", "64 KB 4-way 64 B, 2 cycles"});
    t2.addRow({"L2 unified", "2 MB 8-way 128 B, 12 cycles"});
    t2.addRow({"TLBs", "256/512 entry 4-way, 8K pages, 30-cycle miss"});
    t2.addRow({"Memory latency",
               std::to_string(cfg.mem.memory_latency) + " cycles"});
    t2.print(std::cout);

    std::cout << "\nTable 3: benchmarks (" << opts.insts
              << " committed instructions per run)\n\n";
    Table t3({"App", "Suite", "Max IPC (sim)", "IPC (sim)",
              "FUs (sim)", "Max IPC (paper)", "IPC (paper)",
              "FUs (paper)"});
    for (const auto &p : trace::table3Profiles()) {
        const auto session = api::Experiment::builder()
                                 .workload(p.name)
                                 .insts(opts.insts)
                                 .seed(opts.seed)
                                 .fus(api::auto_select)
                                 .session();
        const auto &sel = *session.fuSelection();
        t3.addRow({
            p.name,
            p.suite,
            fixed(sel.max_ipc, 3),
            fixed(sel.chosen_ipc, 3),
            std::to_string(sel.chosen),
            fixed(p.paper_max_ipc, 3),
            fixed(p.paper_ipc, 3),
            std::to_string(p.paper_fus),
        });
    }
    t3.print(std::cout);
    std::cout << "\nExpected shape (paper): mcf/health lowest IPC "
                 "needing 2 FUs; vortex/gzip highest\nneeding 4; "
                 "relative ordering preserved.\n";
    return 0;
}
