/**
 * @file
 * Reproduces Figures 9a and 9b: suite-average policy energy relative
 * to the NoOverhead policy, and the leakage-to-total energy ratio,
 * across the technology space 0.05 <= p <= 1.0 (alpha = 0.5).
 *
 * Runs on api::SweepRunner: one timing simulation per benchmark
 * supports the whole sweep (the stored idle-interval multisets are
 * re-evaluated at each p), and both the simulations and the
 * 9 benchmarks x 20 points replay grid are fanned across a thread
 * pool — results are identical for any thread count.
 *
 * Arguments: insts=<n> (default 1000000), seed=<n>.
 */

#include <iostream>

#include "api/sweep.hh"
#include "args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness/benchmarks.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;
    using namespace lsim::harness;

    setInformEnabled(false);
    bench::Args opts(1'000'000);
    opts.parse(argc, argv);

    api::SweepConfig cfg;
    cfg.insts = opts.insts;
    cfg.seed = opts.seed;
    // 20 evenly spaced points: p = 0.05, 0.10, ..., 1.00.
    cfg.technologies = api::pSweep(0.05, 1.0, 20);
    const auto sweep = api::SweepRunner(cfg).run();

    std::cout << "Figure 9a: average energy relative to the "
                 "NoOverhead policy (alpha = 0.5)\n\n";
    Table t9a({"p", "MaxSleep", "GradualSleep", "AlwaysActive"});

    std::vector<SuitePolicyAverages> sweeps;
    for (std::size_t t = 0; t < cfg.technologies.size(); ++t)
        sweeps.push_back(sweep.averagesAt(t));

    for (std::size_t t = 0; t < sweeps.size(); ++t) {
        const auto &avg = sweeps[t];
        t9a.addRow({fixed(cfg.technologies[t].p, 2),
                    fixed(avg.rel_to_nooverhead[0], 3),
                    fixed(avg.rel_to_nooverhead[1], 3),
                    fixed(avg.rel_to_nooverhead[2], 3)});
    }
    t9a.print(std::cout);
    std::cout << "\nExpected shape (paper): AlwaysActive best at "
                 "small p, MaxSleep best at large p,\nGradualSleep "
                 "well-behaved across the whole range and best near "
                 "the crossover.\n\n";

    std::cout << "Figure 9b: ratio of leakage to total energy "
                 "(alpha = 0.5)\n\n";
    Table t9b({"p", "MaxSleep", "GradualSleep", "AlwaysActive",
               "NoOverhead"});
    for (std::size_t t = 0; t < sweeps.size(); ++t) {
        const auto &avg = sweeps[t];
        t9b.addRow({fixed(cfg.technologies[t].p, 2),
                    fixed(avg.leakage_fraction[0], 3),
                    fixed(avg.leakage_fraction[1], 3),
                    fixed(avg.leakage_fraction[2], 3),
                    fixed(avg.leakage_fraction[3], 3)});
    }
    t9b.print(std::cout);
    std::cout << "\nPaper anchors: AlwaysActive leakage share ~13% "
                 "at p=0.05 rising to ~60% at p=0.5;\nNoOverhead is "
                 "the lower bound (active-mode leakage only), which "
                 "dominates at large p.\n";
    return 0;
}
