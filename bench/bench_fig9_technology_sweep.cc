/**
 * @file
 * Reproduces Figures 9a and 9b: suite-average policy energy relative
 * to the NoOverhead policy, and the leakage-to-total energy ratio,
 * across the technology space 0.1 <= p <= 1.0 (alpha = 0.5).
 *
 * One timing simulation per benchmark supports the whole sweep: the
 * stored idle-interval multisets are re-evaluated at each p.
 *
 * Arguments: insts=<n> (default 1000000), seed=<n>.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness/benchmarks.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;
    using namespace lsim::harness;

    setInformEnabled(false);
    SuiteOptions opts;
    opts.insts = 1'000'000;
    opts.parseArgs(argc, argv);

    const SuiteRun suite = runSuite(opts);

    std::cout << "Figure 9a: average energy relative to the "
                 "NoOverhead policy (alpha = 0.5)\n\n";
    Table t9a({"p", "MaxSleep", "GradualSleep", "AlwaysActive"});
    std::cout.flush();

    std::vector<SuitePolicyAverages> sweeps;
    for (int step = 1; step <= 20; ++step) {
        energy::ModelParams mp;
        mp.p = step * 0.05;
        mp.alpha = 0.5;
        mp.k = 0.001;
        mp.s = 0.01;
        sweeps.push_back(averagePolicies(suite, mp));
    }

    for (int step = 1; step <= 20; ++step) {
        const auto &avg = sweeps[step - 1];
        t9a.addRow({fixed(step * 0.05, 2),
                    fixed(avg.rel_to_nooverhead[0], 3),
                    fixed(avg.rel_to_nooverhead[1], 3),
                    fixed(avg.rel_to_nooverhead[2], 3)});
    }
    t9a.print(std::cout);
    std::cout << "\nExpected shape (paper): AlwaysActive best at "
                 "small p, MaxSleep best at large p,\nGradualSleep "
                 "well-behaved across the whole range and best near "
                 "the crossover.\n\n";

    std::cout << "Figure 9b: ratio of leakage to total energy "
                 "(alpha = 0.5)\n\n";
    Table t9b({"p", "MaxSleep", "GradualSleep", "AlwaysActive",
               "NoOverhead"});
    for (int step = 1; step <= 20; ++step) {
        const auto &avg = sweeps[step - 1];
        t9b.addRow({fixed(step * 0.05, 2),
                    fixed(avg.leakage_fraction[0], 3),
                    fixed(avg.leakage_fraction[1], 3),
                    fixed(avg.leakage_fraction[2], 3),
                    fixed(avg.leakage_fraction[3], 3)});
    }
    t9b.print(std::cout);
    std::cout << "\nPaper anchors: AlwaysActive leakage share ~13% "
                 "at p=0.05 rising to ~60% at p=0.5;\nNoOverhead is "
                 "the lower bound (active-mode leakage only), which "
                 "dominates at large p.\n";
    return 0;
}
