/**
 * @file
 * Reproduces Figures 4b-4d: closed-form policy energies (relative to
 * the 100%-computation baseline E_base) across the leakage factor p,
 * for the AlwaysActive / MaxSleep / NoOverhead policies.
 *
 *  4b: mean idle interval 10 cycles, usage 10% and 90%;
 *  4c: mean idle interval 100 cycles, usage 10% and 90%;
 *  4d: worst case — idle interval 1 cycle, usage 50%.
 */

#include <iostream>

#include "api/experiment.hh"
#include "common/table.hh"
#include "energy/policy_model.hh"

namespace
{

using namespace lsim;
using namespace lsim::energy;

void
printPlane(const char *title, double idle_interval,
           std::initializer_list<double> usages)
{
    std::cout << title << "\n\n";
    std::vector<std::string> header{"p"};
    for (double u : usages) {
        const std::string tag = " f_U=" + fixed(u, 2);
        header.push_back("AA" + tag);
        header.push_back("MS" + tag);
        header.push_back("NO" + tag);
    }
    Table table(header);
    for (int step = 1; step <= 20; ++step) {
        const double p = step * 0.05;
        // The facade's single definition of the paper's analysis
        // point (k = 0.001, s = 0.01).
        const ModelParams mp = api::analysisPoint(p);
        std::vector<std::string> row{fixed(p, 2)};
        for (double u : usages) {
            WorkloadPoint w;
            w.usage = u;
            w.idle_interval = idle_interval;
            PolicyModel pm(mp, w);
            row.push_back(
                fixed(pm.relativeEnergy(Policy::AlwaysActive), 4));
            row.push_back(
                fixed(pm.relativeEnergy(Policy::MaxSleep), 4));
            row.push_back(
                fixed(pm.relativeEnergy(Policy::NoOverhead), 4));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    printPlane("Figure 4b: relative energy vs p, idle interval = 10 "
               "cycles (alpha = 0.5)",
               10.0, {0.10, 0.90});
    printPlane("Figure 4c: relative energy vs p, idle interval = 100 "
               "cycles (alpha = 0.5)",
               100.0, {0.10, 0.90});
    printPlane("Figure 4d: worst case, idle interval = 1 cycle, "
               "f_U = 0.5 (alpha = 0.5)",
               1.0, {0.50});
    std::cout
        << "Expected shapes (paper): MaxSleep tracks NoOverhead in "
           "parallel; AlwaysActive rises\nsteeply with p; at small p "
           "with short intervals MaxSleep costs more than "
           "AlwaysActive;\nat 100-cycle intervals MaxSleep nearly "
           "touches NoOverhead; in 4d the MaxSleep\ntransition "
           "overhead dominates everything.\n";
    return 0;
}
