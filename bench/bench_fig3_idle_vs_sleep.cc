/**
 * @file
 * Reproduces Figure 3: energy of an idle period under uncontrolled
 * idle (clock gating only) versus the sleep mode, for the generic
 * 500-gate functional unit at activity factors 0.1 / 0.5 / 0.9.
 */

#include <iostream>

#include "circuit/fu_circuit.hh"
#include "common/table.hh"

int
main()
{
    using namespace lsim;
    using namespace lsim::circuit;

    const FunctionalUnitCircuit fu{Technology{}};
    std::cout << "Figure 3: uncontrolled idle versus sleep mode "
                 "(500 OR8 gates, energies in pJ)\n\n";

    const double alphas[] = {0.1, 0.5, 0.9};
    Table table({"Idle (cyc)", "idle a=0.1", "sleep a=0.1",
                 "idle a=0.5", "sleep a=0.5", "idle a=0.9",
                 "sleep a=0.9"});
    for (Cycle n = 0; n <= 25; ++n) {
        std::vector<std::string> row{std::to_string(n)};
        for (double alpha : alphas) {
            row.push_back(
                fixed(fu.uncontrolledIdleEnergy(n, alpha) / 1000.0, 2));
            row.push_back(
                fixed(fu.sleepIdleEnergy(n, alpha) / 1000.0, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nCircuit-level breakeven intervals (cycles):\n";
    for (double alpha : alphas)
        std::cout << "  alpha=" << alpha << ": "
                  << fu.breakevenInterval(alpha) << "\n";
    std::cout << "Paper: ~17 cycles at alpha=0.1, relatively "
                 "insensitive to alpha.\n";
    return 0;
}
