/**
 * @file
 * Reproduces Figure 3: energy of an idle period under uncontrolled
 * idle (clock gating only) versus the sleep mode, for the generic
 * 500-gate functional unit at activity factors 0.1 / 0.5 / 0.9.
 *
 * Runs on the facade's analytical layer: api::circuitPoint derives
 * the (p, k, s, E_D) model parameters from the circuit
 * characterization, and the per-cycle/per-transition terms of
 * energy::EnergyModel — the same terms every sleep-policy
 * evaluation uses — produce the two curves. The circuit-level
 * integer breakeven search is kept as a cross-check against the
 * model's closed form (equation 5).
 */

#include <iostream>

#include "api/experiment.hh"
#include "circuit/fu_circuit.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "energy/model.hh"

int
main()
{
    using namespace lsim;

    std::cout << "Figure 3: uncontrolled idle versus sleep mode "
                 "(500 OR8 gates, energies in pJ)\n\n";

    const double alphas[] = {0.1, 0.5, 0.9};
    std::vector<energy::EnergyModel> models;
    for (double alpha : alphas)
        models.emplace_back(api::circuitPoint(alpha));

    Table table({"Idle (cyc)", "idle a=0.1", "sleep a=0.1",
                 "idle a=0.5", "sleep a=0.5", "idle a=0.9",
                 "sleep a=0.9"});
    for (Cycle n = 0; n <= 25; ++n) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto &model : models) {
            // The model's terms are normalized to E_A = alpha*E_D;
            // scale back to absolute pJ for the paper's axes.
            const double ea_pj =
                model.params().activeEnergyFj() / 1000.0;
            const double cycles = static_cast<double>(n);
            row.push_back(fixed(
                cycles * model.unctrlIdleCycleEnergy() * ea_pj, 2));
            row.push_back(
                fixed((model.transitionEnergy() +
                       cycles * model.sleepCycleEnergy()) * ea_pj,
                      2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nBreakeven intervals (cycles; model closed form "
                 "vs circuit-level search):\n";
    const circuit::FunctionalUnitCircuit fu{circuit::Technology{}};
    for (std::size_t i = 0; i < models.size(); ++i)
        std::cout << "  alpha=" << alphas[i] << ": "
                  << fixed(energy::breakevenInterval(
                               models[i].params()), 1)
                  << " (circuit: " << fu.breakevenInterval(alphas[i])
                  << ")\n";
    std::cout << "Paper: ~17 cycles at alpha=0.1, relatively "
                 "insensitive to alpha.\n";
    return 0;
}
