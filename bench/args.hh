/**
 * @file
 * Shared command-line parsing for the figure/table bench harnesses:
 * the historical "insts=<n> seed=<n>" overrides every bench accepts.
 *
 * This replaces the retired harness::SuiteOptions::parseArgs so the
 * benches depend only on the api:: facade (plus this header) rather
 * than on the legacy suite driver.
 */

#ifndef LSIM_BENCH_ARGS_HH
#define LSIM_BENCH_ARGS_HH

#include <cstdint>
#include <cstring>
#include <cstdlib>

#include "common/logging.hh"

namespace lsim::bench
{

/** Instruction-count and seed overrides shared by every harness. */
struct Args
{
    std::uint64_t insts;
    std::uint64_t seed = 1;

    explicit Args(std::uint64_t default_insts) : insts(default_insts)
    {
    }

    /** Parse "insts=<n>" / "seed=<n>"; warns on anything else. */
    void
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strncmp(arg, "insts=", 6) == 0) {
                insts = std::strtoull(arg + 6, nullptr, 0);
                if (insts == 0)
                    fatal("bad insts= argument '%s'", arg);
            } else if (std::strncmp(arg, "seed=", 5) == 0) {
                seed = std::strtoull(arg + 5, nullptr, 0);
            } else {
                warn("ignoring unrecognized argument '%s'", arg);
            }
        }
    }
};

} // namespace lsim::bench

#endif // LSIM_BENCH_ARGS_HH
