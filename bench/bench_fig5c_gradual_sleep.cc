/**
 * @file
 * Reproduces Figure 5c: the energy expended over one idle interval
 * (relative to E_A) under MaxSleep, GradualSleep, and AlwaysActive
 * at p = 0.05, alpha = 0.5, with the GradualSleep slice count set to
 * the technology's breakeven interval.
 */

#include <iostream>

#include "api/experiment.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "energy/gradual_sleep_model.hh"

int
main()
{
    using namespace lsim;
    using namespace lsim::energy;

    const ModelParams mp = api::analysisPoint(0.05);

    const GradualSleepModel gs(mp);
    std::cout << "Figure 5c: energy to transition to the sleep mode "
                 "(relative to E_A)\n"
              << "p=0.05, alpha=0.5, GradualSleep slices = "
              << gs.numSlices() << " (= breakeven interval "
              << fixed(breakevenInterval(mp), 1) << ")\n\n";

    Table table({"Idle (cyc)", "MaxSleep", "GradualSleep",
                 "AlwaysActive"});
    for (Cycle n = 0; n <= 100; n += 2) {
        table.addRow({
            std::to_string(n),
            fixed(gs.maxSleepIdleEnergy(n), 3),
            fixed(gs.idleEnergy(n), 3),
            fixed(gs.alwaysActiveIdleEnergy(n), 3),
        });
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper): GradualSleep saves over "
                 "MaxSleep for short intervals,\nbeats AlwaysActive "
                 "for long ones, and exceeds both near the breakeven "
                 "point.\n";
    return 0;
}
