/**
 * @file
 * Phase-2 replay performance across three dimensions:
 *
 *  1. Workload grids — scalar per-cell replay (one pass over the
 *     interval multiset per technology point, the pre-engine
 *     SweepRunner hot loop) versus the multi-point engine across
 *     grid sizes on simulated Table 3 workloads. The reference grid
 *     is 20 technology points x 4 workloads under the paper's four
 *     policies; CI gates on the engine being at least --min-speedup
 *     times the scalar path there.
 *  2. Kernel vs virtual — the batched closed-form kernels versus the
 *     same engine with per-unit virtual dispatch
 *     (ReplayOptions::use_kernels = false, the PR 3 inner loop), on
 *     a dense synthetic 20-point grid whose interval multiset is
 *     rich enough (kDenseDistinct distinct lengths) that replay
 *     work, not per-sweep setup, dominates — the regime the kernels
 *     exist for. CI gates with --min-kernel-speedup.
 *  3. Sharded/threaded — the chunk-sharded engine on an interval
 *     multiset above the auto-shard threshold, replayed at 1/4/8
 *     threads through the same parallelFor the sweep runner uses.
 *     CI gates the best multi-thread speedup with
 *     --min-threaded-speedup.
 *  4. Spool daemon — end-to-end `lsim serve` request latency
 *     through a temp spool: cold (first request simulates) vs warm
 *     (shared store + persistent pool, pure replay), plus the warm
 *     latency of the same request through the daemon's AF_UNIX
 *     socket front door (a full submit-and-wait round trip,
 *     including protocol framing and the completion board).
 *     Reported and recorded for the trajectory; not gated (absolute
 *     latency is machine-dependent).
 *
 * Emits BENCH_replay.json for the perf-regression trajectory
 * (tools/bench_trend.py diffs these across runs) and prints tables.
 *
 * Single-thread dimensions are timed on one thread so ratios measure
 * the algorithmic win, not pool scheduling. Before timing, engine
 * results are checked against the scalar path (bit-exact for
 * unchunked runs, 1e-12 relative for the chunked configuration), so
 * a broken engine can never post a winning number.
 *
 * Arguments:
 *   insts=<n>                committed instructions per workload
 *                            (200000)
 *   seed=<n>                 trace generator seed (1)
 *   --json <file>            output path (default BENCH_replay.json)
 *   --min-speedup <x>        exit 1 if the reference-grid
 *                            engine-vs-scalar speedup is below <x>
 *                            (default 0 = report only)
 *   --min-kernel-speedup <x> exit 1 if the dense-grid
 *                            kernel-vs-virtual speedup is below <x>
 *   --min-threaded-speedup <x> exit 1 if the best sharded
 *                            multi-thread speedup is below <x>
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment.hh"
#include "api/parallel.hh"
#include "api/sweep.hh"
#include "args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "replay/engine.hh"
#include "serve/daemon.hh"
#include "serve/socket.hh"
#include "sleep/policy_registry.hh"
#include "trace/profile.hh"

namespace
{

using namespace lsim;

constexpr const char *kWorkloads[] = {"gcc", "mcf", "vortex", "mst"};
constexpr std::size_t kReferencePoints = 20;

/** Distinct interval lengths in the dense kernel-vs-virtual grid
 * (kept below the auto-shard threshold: single chunk, bit-exact). */
constexpr std::size_t kDenseDistinct = 3500;

/** Distinct lengths in the sharded/threaded grid (above the
 * auto-shard threshold, so chunking engages as in production). */
constexpr std::size_t kShardedDistinct = 24'000;

/** Wall time of @p fn, best of enough repeats to exceed ~20 ms per
 * measurement (replays on small profiles run in microseconds). */
template <typename Fn>
double
timeMs(Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    std::size_t iters = 1;
    for (;;) {
        const auto start = clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            fn();
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() -
                                                      start)
                .count();
        if (ms >= 20.0)
            return ms / static_cast<double>(iters);
        iters *= ms < 2.0 ? 8 : 2;
    }
}

struct GridResult
{
    std::size_t points = 0;
    std::size_t workloads = 0;
    std::size_t distinct_intervals = 0; ///< summed over workloads
    std::size_t units = 0;              ///< engine accumulators
    double scalar_ms = 0.0;
    double multi_ms = 0.0;   ///< the engine (kernel path)
    double virtual_ms = 0.0; ///< the engine, use_kernels = false

    double speedup() const
    {
        return multi_ms > 0.0 ? scalar_ms / multi_ms : 0.0;
    }

    double kernelSpeedup() const
    {
        return multi_ms > 0.0 ? virtual_ms / multi_ms : 0.0;
    }
};

/** One sharded measurement at a thread count. */
struct ThreadedResult
{
    unsigned threads = 0;
    double ms = 0.0;
    double speedup = 0.0; ///< vs the 1-thread sharded run
};

bool
sameResults(const std::vector<sleep::PolicyResult> &a,
            const std::vector<sleep::PolicyResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].name != b[i].name || a[i].energy != b[i].energy ||
            a[i].relative_to_base != b[i].relative_to_base)
            return false;
    return true;
}

bool
nearResults(const std::vector<sleep::PolicyResult> &a,
            const std::vector<sleep::PolicyResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double scale = std::max(
            {1.0, std::abs(a[i].energy), std::abs(b[i].energy)});
        if (a[i].name != b[i].name ||
            std::abs(a[i].energy - b[i].energy) > 1e-12 * scale)
            return false;
    }
    return true;
}

/**
 * Equivalence gate shared by every dimension: the kernel engine and
 * the virtual engine must both reproduce the scalar path bit for
 * bit on @p idle before any of their times can count.
 */
void
checkEquivalence(const harness::IdleProfile &idle,
                 const std::vector<energy::ModelParams> &points,
                 const std::vector<std::string> &keys,
                 const char *what)
{
    replay::ReplayOptions virt;
    virt.use_kernels = false;
    const auto kernel = replay::replayProfile(idle, points, keys);
    const auto virtual_path =
        replay::replayProfile(idle, points, keys, virt);
    for (std::size_t t = 0; t < points.size(); ++t) {
        const auto scalar =
            api::evaluateProfile(idle, points[t], keys);
        if (!sameResults(kernel[t], scalar))
            fatal("kernel/scalar mismatch: %s at p=%g", what,
                  points[t].p);
        if (!sameResults(virtual_path[t], scalar))
            fatal("virtual/scalar mismatch: %s at p=%g", what,
                  points[t].p);
    }
}

GridResult
measureGrid(const std::vector<harness::WorkloadSim> &sims,
            std::size_t num_points)
{
    const auto points = api::pSweep(0.05, 1.0,
                                    static_cast<unsigned>(num_points));
    const auto &keys = sleep::PolicyRegistry::paperSpecs();

    GridResult grid;
    grid.points = num_points;
    grid.workloads = sims.size();

    for (const auto &ws : sims) {
        checkEquivalence(ws.idle, points, keys, ws.name.c_str());
        replay::MultiPointReplay probe(
            replay::IntervalSet::fromProfile(ws.idle), points, keys);
        grid.distinct_intervals += probe.intervals().numDistinct();
        grid.units += probe.numUnits();
    }

    // The scalar phase 2: one evaluateProfile per (workload, point)
    // cell, exactly what detail::fillCell runs under scalar_replay.
    grid.scalar_ms = timeMs([&] {
        for (const auto &ws : sims)
            for (const auto &mp : points)
                api::evaluateProfile(ws.idle, mp, keys);
    });

    // The engine phase 2: per workload, one pass over the multiset
    // for all points (construction included — it is part of the
    // per-cell cost the sweep pays).
    grid.multi_ms = timeMs([&] {
        for (const auto &ws : sims)
            replay::replayProfile(ws.idle, points, keys);
    });
    replay::ReplayOptions virt;
    virt.use_kernels = false;
    grid.virtual_ms = timeMs([&] {
        for (const auto &ws : sims)
            replay::replayProfile(ws.idle, points, keys, virt);
    });
    return grid;
}

/**
 * Deterministic synthetic idle profile with @p distinct interval
 * lengths under a power-law-ish count decay — the interval-rich
 * regime of production-scale traces, which the simulated 200k-inst
 * workloads (only ~125 distinct lengths each) cannot reach.
 */
harness::IdleProfile
syntheticProfile(std::size_t distinct)
{
    harness::IdleProfile idle;
    idle.num_fus = 2;
    idle.active_cycles = 50'000'000;
    for (Cycle len = 1; len <= distinct; ++len) {
        const std::uint64_t count =
            1 + 2'000'000 / (len * len + 100);
        idle.intervals[len] = count;
        idle.idle_cycles += len * count;
    }
    return idle;
}

/**
 * Kernel-vs-virtual on the dense synthetic grid. The IntervalSet is
 * flattened once outside the timed region (a sweep flattens once per
 * workload regardless of replay path); each iteration pays engine
 * construction, replay, and finalize.
 */
GridResult
measureDense(const harness::IdleProfile &idle)
{
    const auto points = api::pSweep(
        0.05, 1.0, static_cast<unsigned>(kReferencePoints));
    const auto &keys = sleep::PolicyRegistry::paperSpecs();
    checkEquivalence(idle, points, keys, "dense");

    const auto set = replay::IntervalSet::fromProfile(idle);
    GridResult grid;
    grid.points = kReferencePoints;
    grid.workloads = 1;
    grid.distinct_intervals = set.numDistinct();
    {
        replay::MultiPointReplay probe(set, points, keys);
        grid.units = probe.numUnits();
    }

    grid.scalar_ms = timeMs([&] {
        for (const auto &mp : points)
            api::evaluateProfile(idle, mp, keys);
    });
    grid.multi_ms = timeMs([&] {
        replay::MultiPointReplay engine(set, points, keys);
        engine.runAll();
        (void)engine.finalize();
    });
    replay::ReplayOptions virt;
    virt.use_kernels = false;
    grid.virtual_ms = timeMs([&] {
        replay::MultiPointReplay engine(set, points, keys, virt);
        engine.runAll();
        (void)engine.finalize();
    });
    return grid;
}

/**
 * The sharded/threaded configuration: chunked replay through the
 * same parallelFor the sweep runner uses (thread spawn included —
 * that is what a sweep pays per workload batch).
 */
std::vector<ThreadedResult>
measureThreaded(const harness::IdleProfile &idle)
{
    const auto points = api::pSweep(
        0.05, 1.0, static_cast<unsigned>(kReferencePoints));
    const auto &keys = sleep::PolicyRegistry::paperSpecs();
    const auto set = replay::IntervalSet::fromProfile(idle);

    // Chunked results must agree with the unchunked engine to 1e-12
    // before the sharded configuration may post a time.
    {
        replay::ReplayOptions unchunked;
        unchunked.chunk_intervals = set.numDistinct();
        replay::MultiPointReplay ref(set, points, keys, unchunked);
        ref.runAll();
        const auto ref_results = ref.finalize();

        replay::MultiPointReplay chunked(set, points, keys);
        if (chunked.numChunks() < 2)
            fatal("sharded grid did not auto-shard (%zu distinct)",
                  set.numDistinct());
        chunked.runAll();
        const auto chunk_results = chunked.finalize();
        for (std::size_t t = 0; t < points.size(); ++t)
            if (!nearResults(chunk_results[t], ref_results[t]))
                fatal("chunked/unchunked mismatch at p=%g",
                      points[t].p);
    }

    std::vector<ThreadedResult> results;
    for (unsigned threads : {1u, 4u, 8u}) {
        ThreadedResult r;
        r.threads = threads;
        r.ms = timeMs([&] {
            replay::MultiPointReplay engine(set, points, keys);
            api::detail::parallelFor(engine.numTasks(), threads,
                                     [&](std::size_t i) {
                engine.runTask(i);
            });
            (void)engine.finalize();
        });
        r.speedup = results.empty() ? 1.0 : results[0].ms / r.ms;
        results.push_back(r);
    }
    return results;
}

/** Spool-daemon request latency: cold (first request simulates)
 * and warm (shared store + persistent pool, pure replay). */
struct ServeResult
{
    std::size_t points = 0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    double socket_warm_ms = 0.0;
};

/**
 * End-to-end daemon latency through a temp spool: drop a one-sweep
 * gcc spec, drain, read nothing back (the daemon's own status/result
 * writes are part of the serving cost being measured). The warm
 * number is what an interactive client of `lsim serve` actually
 * waits per request once the store knows the workload.
 */
ServeResult
measureServe(std::uint64_t insts, std::uint64_t seed)
{
    namespace fs = std::filesystem;
    constexpr std::size_t kPoints = 8;
    const fs::path root =
        fs::temp_directory_path() / "lsim_bench_serve";
    fs::remove_all(root);

    std::atomic<bool> stop_pump{false};
    serve::ServeConfig cfg;
    cfg.spool_dir = (root / "spool").string();
    cfg.cache_dir = (root / "cache").string();
    cfg.socket_path = (root / "lsim.sock").string();
    cfg.stop = [&stop_pump] { return stop_pump.load(); };
    serve::Daemon daemon(cfg);

    std::ostringstream spec;
    spec << "{\"sweeps\": [{\"benchmarks\": [\"gcc\"], \"steps\": "
         << kPoints << ", \"insts\": " << insts
         << ", \"seed\": " << seed << "}]}";
    std::size_t n = 0;
    const auto drop = [&] {
        std::ofstream out(fs::path(cfg.spool_dir) /
                          ("req" + std::to_string(n++) + ".json"));
        out << spec.str();
    };

    ServeResult result;
    result.points = kPoints;
    {
        const auto start = std::chrono::steady_clock::now();
        drop();
        daemon.drainOnce();
        result.cold_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
    }
    result.warm_ms = timeMs([&] {
        drop();
        daemon.drainOnce();
    });

    // Socket front door: the same warm request as a submit-and-wait
    // round trip over AF_UNIX, with the daemon loop pumping the
    // queue. Distinct names keep the requests from coalescing, so
    // each round trip is a real execution. One untimed round trip
    // first so thread spin-up is not on the clock.
    std::thread pump([&daemon] { daemon.run(); });
    const std::string spec_text = spec.str();
    const auto round_trip = [&](const std::string &name) {
        const auto res = serve::socketSubmit(
            daemon.socketPath(), name, spec_text, 0,
            /*wait=*/true, /*timeout_s=*/120.0);
        if (!res.ok)
            fatal("serve bench: socket submit failed: %s",
                  res.error.c_str());
    };
    round_trip("sock_warmup");
    constexpr int kSocketReps = 4;
    result.socket_warm_ms = timeMs([&] {
        for (int i = 0; i < kSocketReps; ++i)
            round_trip("sock_warm" + std::to_string(i));
    }) / kSocketReps;
    stop_pump.store(true);
    pump.join();

    if (daemon.stats().failed != 0 ||
        daemon.stats().done != daemon.stats().processed)
        fatal("serve bench: %zu of %zu request(s) failed",
              daemon.stats().failed, daemon.stats().processed);
    fs::remove_all(root);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::string json_path = "BENCH_replay.json";
    double min_speedup = 0.0;
    double min_kernel_speedup = 0.0;
    double min_threaded_speedup = 0.0;
    std::vector<char *> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--min-speedup") == 0 &&
                 i + 1 < argc)
            min_speedup = std::strtod(argv[++i], nullptr);
        else if (std::strcmp(argv[i], "--min-kernel-speedup") == 0 &&
                 i + 1 < argc)
            min_kernel_speedup = std::strtod(argv[++i], nullptr);
        else if (std::strcmp(argv[i], "--min-threaded-speedup") ==
                     0 &&
                 i + 1 < argc)
            min_threaded_speedup = std::strtod(argv[++i], nullptr);
        else
            passthrough.push_back(argv[i]);
    }
    bench::Args opts(200'000);
    opts.parse(static_cast<int>(passthrough.size()),
               passthrough.data());

    // Phase 1 once: the replay benchmarks share the simulations.
    std::vector<harness::WorkloadSim> sims;
    for (const char *name : kWorkloads)
        sims.push_back(api::Experiment::builder()
                           .workload(name)
                           .insts(opts.insts)
                           .seed(opts.seed)
                           .session()
                           .sim());

    const std::size_t grids[] = {1, 4, 8, 20};
    std::vector<GridResult> results;
    GridResult reference;
    for (std::size_t points : grids) {
        results.push_back(measureGrid(sims, points));
        if (points == kReferencePoints)
            reference = results.back();
    }
    const GridResult dense =
        measureDense(syntheticProfile(kDenseDistinct));
    const std::vector<ThreadedResult> threaded =
        measureThreaded(syntheticProfile(kShardedDistinct));
    const ServeResult served = measureServe(opts.insts, opts.seed);
    double best_threaded = 0.0;
    for (const auto &t : threaded)
        if (t.threads > 1)
            best_threaded = std::max(best_threaded, t.speedup);

    Table table({"grid", "points", "intervals", "units",
                 "scalar (ms)", "virtual (ms)", "kernel (ms)",
                 "vs scalar", "vs virtual"});
    const auto addRow = [&](const char *name, const GridResult &g) {
        table.addRow({name, std::to_string(g.points),
                      std::to_string(g.distinct_intervals),
                      std::to_string(g.units),
                      fixed(g.scalar_ms, 3), fixed(g.virtual_ms, 3),
                      fixed(g.multi_ms, 3), fixed(g.speedup(), 2),
                      fixed(g.kernelSpeedup(), 2)});
    };
    for (const auto &g : results)
        addRow("workloads", g);
    addRow("dense", dense);
    table.print(std::cout);

    Table tthr({"threads", "sharded (ms)", "speedup"});
    for (const auto &t : threaded)
        tthr.addRow({std::to_string(t.threads), fixed(t.ms, 3),
                     fixed(t.speedup, 2)});
    std::cout << "\nSharded grid (" << kShardedDistinct
              << " distinct intervals x " << kReferencePoints
              << " points):\n";
    tthr.print(std::cout);

    std::cout << "\nSpool daemon (" << served.points
              << "-point gcc spec, shared store + persistent "
                 "pool): cold "
              << fixed(served.cold_ms, 3) << " ms, warm "
              << fixed(served.warm_ms, 3) << " ms/request, socket warm "
              << fixed(served.socket_warm_ms, 3) << " ms/request\n";

    std::cout << "\nReference grid (" << kReferencePoints
              << " points x " << sims.size()
              << " workloads): " << fixed(reference.speedup(), 2)
              << "x vs scalar; dense kernel path "
              << fixed(dense.kernelSpeedup(), 2)
              << "x vs virtual dispatch\n";

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_replay_perf: cannot write '" << json_path
                  << "'\n";
        return 2;
    }
    {
        JsonWriter w(out);
        w.beginObject();
        w.field("bench", "replay_perf");
        w.field("insts", opts.insts);
        w.field("seed", opts.seed);
        w.beginArray("grids");
        for (const auto &g : results) {
            w.beginObject();
            w.field("points", static_cast<std::uint64_t>(g.points));
            w.field("workloads",
                    static_cast<std::uint64_t>(g.workloads));
            w.field("distinct_intervals",
                    static_cast<std::uint64_t>(g.distinct_intervals));
            w.field("units", static_cast<std::uint64_t>(g.units));
            w.field("scalar_ms", g.scalar_ms);
            w.field("multi_ms", g.multi_ms);
            w.field("virtual_ms", g.virtual_ms);
            w.field("speedup", g.speedup());
            w.field("kernel_speedup", g.kernelSpeedup());
            w.endObject();
        }
        w.endArray();
        w.beginObject("dense");
        w.field("points", static_cast<std::uint64_t>(dense.points));
        w.field("distinct_intervals",
                static_cast<std::uint64_t>(dense.distinct_intervals));
        w.field("units", static_cast<std::uint64_t>(dense.units));
        w.field("scalar_ms", dense.scalar_ms);
        w.field("multi_ms", dense.multi_ms);
        w.field("virtual_ms", dense.virtual_ms);
        w.field("speedup", dense.speedup());
        w.field("kernel_speedup", dense.kernelSpeedup());
        w.endObject();
        w.beginArray("threaded");
        for (const auto &t : threaded) {
            w.beginObject();
            w.field("threads",
                    static_cast<std::uint64_t>(t.threads));
            w.field("distinct_intervals",
                    static_cast<std::uint64_t>(kShardedDistinct));
            w.field("ms", t.ms);
            w.field("speedup", t.speedup);
            w.endObject();
        }
        w.endArray();
        w.beginObject("serve");
        w.field("points",
                static_cast<std::uint64_t>(served.points));
        w.field("cold_request_ms", served.cold_ms);
        w.field("warm_request_ms", served.warm_ms);
        w.field("socket_warm_request_ms", served.socket_warm_ms);
        w.endObject();
        w.beginObject("reference");
        w.field("points",
                static_cast<std::uint64_t>(reference.points));
        w.field("workloads",
                static_cast<std::uint64_t>(reference.workloads));
        w.field("speedup", reference.speedup());
        w.field("kernel_speedup", dense.kernelSpeedup());
        w.field("threaded_speedup", best_threaded);
        w.field("min_required", min_speedup);
        w.field("min_kernel_required", min_kernel_speedup);
        w.field("min_threaded_required", min_threaded_speedup);
        w.endObject();
        w.endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    int rc = 0;
    if (min_speedup > 0.0 && reference.speedup() < min_speedup) {
        std::cerr << "bench_replay_perf: reference speedup "
                  << fixed(reference.speedup(), 2) << "x below the "
                  << fixed(min_speedup, 2) << "x gate\n";
        rc = 1;
    }
    if (min_kernel_speedup > 0.0 &&
        dense.kernelSpeedup() < min_kernel_speedup) {
        std::cerr << "bench_replay_perf: dense kernel speedup "
                  << fixed(dense.kernelSpeedup(), 2)
                  << "x below the "
                  << fixed(min_kernel_speedup, 2) << "x gate\n";
        rc = 1;
    }
    if (min_threaded_speedup > 0.0 &&
        best_threaded < min_threaded_speedup) {
        std::cerr << "bench_replay_perf: best sharded speedup "
                  << fixed(best_threaded, 2) << "x below the "
                  << fixed(min_threaded_speedup, 2) << "x gate\n";
        rc = 1;
    }
    return rc;
}
