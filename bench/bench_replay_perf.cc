/**
 * @file
 * Phase-2 replay performance: scalar per-cell replay (one pass over
 * the interval multiset per technology point — the pre-engine
 * SweepRunner hot loop) versus the multi-point engine (all points in
 * one pass, deduped accumulators) across grid sizes.
 *
 * Emits BENCH_replay.json for the perf-regression trajectory and
 * prints a table. The reference grid is 8 technology points x 4
 * workloads under the paper's four policies; CI gates on the engine
 * being at least 2x the scalar path there (--min-speedup).
 *
 * Both paths are timed single-threaded so the ratio measures the
 * algorithmic win, not pool scheduling. Before timing, the engine's
 * results are checked against the scalar path (bit-exact), so a
 * broken engine can never post a winning number.
 *
 * Arguments:
 *   insts=<n>          committed instructions per workload (200000)
 *   seed=<n>           trace generator seed (1)
 *   --json <file>      output path (default BENCH_replay.json)
 *   --min-speedup <x>  exit 1 if the reference-grid speedup is
 *                      below <x> (default 0 = report only)
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "api/sweep.hh"
#include "args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "replay/engine.hh"
#include "sleep/policy_registry.hh"
#include "trace/profile.hh"

namespace
{

using namespace lsim;

constexpr const char *kWorkloads[] = {"gcc", "mcf", "vortex", "mst"};

/** Wall time of @p fn, best of enough repeats to exceed ~20 ms per
 * measurement (replays on small profiles run in microseconds). */
template <typename Fn>
double
timeMs(Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    std::size_t iters = 1;
    for (;;) {
        const auto start = clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            fn();
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() -
                                                      start)
                .count();
        if (ms >= 20.0)
            return ms / static_cast<double>(iters);
        iters *= ms < 2.0 ? 8 : 2;
    }
}

struct GridResult
{
    std::size_t points = 0;
    std::size_t workloads = 0;
    std::size_t distinct_intervals = 0; ///< summed over workloads
    std::size_t units = 0;              ///< engine accumulators
    double scalar_ms = 0.0;
    double multi_ms = 0.0;

    double speedup() const
    {
        return multi_ms > 0.0 ? scalar_ms / multi_ms : 0.0;
    }
};

bool
sameResults(const std::vector<sleep::PolicyResult> &a,
            const std::vector<sleep::PolicyResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].name != b[i].name || a[i].energy != b[i].energy ||
            a[i].relative_to_base != b[i].relative_to_base)
            return false;
    return true;
}

GridResult
measureGrid(const std::vector<harness::WorkloadSim> &sims,
            std::size_t num_points)
{
    const auto points = api::pSweep(0.05, 1.0,
                                    static_cast<unsigned>(num_points));
    const auto &keys = sleep::PolicyRegistry::paperSpecs();

    GridResult grid;
    grid.points = num_points;
    grid.workloads = sims.size();

    // Correctness gate: the engine must reproduce the scalar path
    // bit-exactly before its time can count.
    for (const auto &ws : sims) {
        const auto multi =
            replay::replayProfile(ws.idle, points, keys);
        for (std::size_t t = 0; t < points.size(); ++t) {
            const auto scalar =
                api::evaluateProfile(ws.idle, points[t], keys);
            if (!sameResults(multi[t], scalar))
                fatal("engine/scalar mismatch: %s at p=%g",
                      ws.name.c_str(), points[t].p);
        }
        replay::MultiPointReplay probe(
            replay::IntervalSet::fromProfile(ws.idle), points, keys);
        grid.distinct_intervals += probe.intervals().numDistinct();
        grid.units += probe.numUnits();
    }

    // The scalar phase 2: one evaluateProfile per (workload, point)
    // cell, exactly what detail::fillCell runs under scalar_replay.
    grid.scalar_ms = timeMs([&] {
        for (const auto &ws : sims)
            for (const auto &mp : points)
                api::evaluateProfile(ws.idle, mp, keys);
    });

    // The engine phase 2: per workload, one pass over the multiset
    // for all points (construction included — it is part of the
    // per-cell cost the sweep pays).
    grid.multi_ms = timeMs([&] {
        for (const auto &ws : sims)
            replay::replayProfile(ws.idle, points, keys);
    });
    return grid;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::string json_path = "BENCH_replay.json";
    double min_speedup = 0.0;
    std::vector<char *> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--min-speedup") == 0 &&
                 i + 1 < argc)
            min_speedup = std::strtod(argv[++i], nullptr);
        else
            passthrough.push_back(argv[i]);
    }
    bench::Args opts(200'000);
    opts.parse(static_cast<int>(passthrough.size()),
               passthrough.data());

    // Phase 1 once: the replay benchmarks share the simulations.
    std::vector<harness::WorkloadSim> sims;
    for (const char *name : kWorkloads)
        sims.push_back(api::Experiment::builder()
                           .workload(name)
                           .insts(opts.insts)
                           .seed(opts.seed)
                           .session()
                           .sim());

    const std::size_t grids[] = {1, 4, 8, 20};
    constexpr std::size_t kReferencePoints = 8;
    std::vector<GridResult> results;
    GridResult reference;
    for (std::size_t points : grids) {
        results.push_back(measureGrid(sims, points));
        if (points == kReferencePoints)
            reference = results.back();
    }

    Table table({"points", "workloads", "intervals", "units",
                 "scalar (ms)", "multi (ms)", "speedup"});
    for (const auto &g : results)
        table.addRow({std::to_string(g.points),
                      std::to_string(g.workloads),
                      std::to_string(g.distinct_intervals),
                      std::to_string(g.units),
                      fixed(g.scalar_ms, 3), fixed(g.multi_ms, 3),
                      fixed(g.speedup(), 2)});
    table.print(std::cout);
    std::cout << "\nReference grid (" << kReferencePoints
              << " points x " << sims.size()
              << " workloads): " << fixed(reference.speedup(), 2)
              << "x\n";

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_replay_perf: cannot write '" << json_path
                  << "'\n";
        return 2;
    }
    {
        JsonWriter w(out);
        w.beginObject();
        w.field("bench", "replay_perf");
        w.field("insts", opts.insts);
        w.field("seed", opts.seed);
        w.beginArray("grids");
        for (const auto &g : results) {
            w.beginObject();
            w.field("points", static_cast<std::uint64_t>(g.points));
            w.field("workloads",
                    static_cast<std::uint64_t>(g.workloads));
            w.field("distinct_intervals",
                    static_cast<std::uint64_t>(g.distinct_intervals));
            w.field("units", static_cast<std::uint64_t>(g.units));
            w.field("scalar_ms", g.scalar_ms);
            w.field("multi_ms", g.multi_ms);
            w.field("speedup", g.speedup());
            w.endObject();
        }
        w.endArray();
        w.beginObject("reference");
        w.field("points",
                static_cast<std::uint64_t>(reference.points));
        w.field("workloads",
                static_cast<std::uint64_t>(reference.workloads));
        w.field("speedup", reference.speedup());
        w.field("min_required", min_speedup);
        w.endObject();
        w.endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    if (min_speedup > 0.0 && reference.speedup() < min_speedup) {
        std::cerr << "bench_replay_perf: reference speedup "
                  << fixed(reference.speedup(), 2) << "x below the "
                  << fixed(min_speedup, 2) << "x gate\n";
        return 1;
    }
    return 0;
}
