/**
 * @file
 * Reproduces Table 1: OR8 gate characteristics (70 nm, Vdd = 1 V,
 * 4 GHz) for the low-Vt, dual-Vt, and dual-Vt-with-sleep-mode
 * circuit styles, plus the analytical-model point the facade derives
 * from this characterization (api::circuitPoint — the bridge the
 * Figure 3/4a reproductions evaluate at).
 */

#include <iostream>

#include "api/experiment.hh"
#include "circuit/domino_gate.hh"
#include "common/table.hh"

int
main()
{
    using namespace lsim;
    using namespace lsim::circuit;

    const Technology tech;
    std::cout << "Table 1: OR8 gate characteristics (" << tech.node_nm
              << " nm, Vdd=" << tech.vdd << " V, T="
              << tech.temperature_k - 273.15 << " C, Period="
              << tech.periodPs() << " ps)\n\n";

    Table table({"Circuit", "Eval (ps)", "Sleep (ps)", "Dynamic (fJ)",
                 "Vector LO Lkg (fJ)", "Vector HI Lkg (fJ)",
                 "Sleep (fJ)"});

    for (auto style : {DominoStyle::LowVt, DominoStyle::DualVt,
                       DominoStyle::DualVtSleep}) {
        const DominoGate gate(tech, style);
        const auto c = gate.characterize();
        // With the sleep mode enabled the HI-vector state is forced
        // low, so its effective leakage equals the LO figure — the
        // starred entry of the paper's table.
        const bool slept = style == DominoStyle::DualVtSleep;
        table.addRow({
            to_string(style),
            fixed(c.eval_delay_ps, 1),
            c.has_sleep_mode ? fixed(c.sleep_delay_ps, 1) : "na",
            fixed(c.dynamic_fj, 1),
            sci(c.leak_lo_fj, 1),
            slept ? sci(c.leak_lo_fj, 1) + "*" : sci(c.leak_hi_fj, 1),
            c.has_sleep_mode ? fixed(c.sleep_transistor_fj, 2) : "na",
        });
    }
    table.print(std::cout);
    std::cout << "\n* sleep mode enabled forces the low leakage "
                 "state regardless of the input vector\n";
    std::cout << "\nPaper reference row (dual-Vt): eval 15.0 ps, "
                 "sleep 16.0 ps, dynamic 22.2 fJ,\n"
                 "  LO 7.1e-04 fJ, HI 1.4 fJ, sleep transistor "
                 "0.14 fJ\n";

    const auto mp = api::circuitPoint();
    std::cout << "\nDerived model point (api::circuitPoint, "
                 "alpha = duty = 0.5): p = "
              << sci(mp.p, 2) << ", k = " << sci(mp.k, 2)
              << ", s = " << sci(mp.s, 2) << "\n";
    return 0;
}
