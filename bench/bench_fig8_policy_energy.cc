/**
 * @file
 * Reproduces Figures 8a and 8b: per-benchmark total energy of the
 * MaxSleep / GradualSleep / AlwaysActive / NoOverhead policies,
 * normalized to the 100%-activity baseline, at leakage factors
 * p = 0.05 and p = 0.50. The primary numbers use alpha = 0.5; the
 * alpha = 0.25 / 0.75 variants (the paper's range bars) are printed
 * for MaxSleep as a representative.
 *
 * Built on api::Experiment sessions: each benchmark is simulated
 * once, and all six (p, alpha) evaluation points replay its cached
 * IdleProfile in a single engine pass (Session::policiesAt with the
 * whole point list).
 *
 * Arguments: insts=<n> (default 1000000), seed=<n>.
 */

#include <iostream>
#include <vector>

#include "api/experiment.hh"
#include "args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "trace/profile.hh"

namespace
{

using namespace lsim;

energy::ModelParams
params(double p, double alpha)
{
    energy::ModelParams mp;
    mp.p = p;
    mp.alpha = alpha;
    mp.k = 0.001;
    mp.s = 0.01;
    return mp;
}

void
printFigure(const std::vector<api::Session> &sessions, double p)
{
    std::cout << "Figure 8" << (p < 0.25 ? 'a' : 'b')
              << ": normalized energy (to 100% activity), p = "
              << fixed(p, 2) << ", alpha = 0.5\n\n";

    Table table({"App (FUs)", "MaxSleep", "GradualSleep",
                 "AlwaysActive", "NoOverhead", "MS a=0.25",
                 "MS a=0.75"});
    double sum[4] = {0, 0, 0, 0};
    for (const auto &session : sessions) {
        const auto &ws = session.sim();
        // All three alpha variants in one pass over the interval
        // multiset (and no WorkloadSim copies per point).
        const auto at = session.policiesAt(std::vector{
            params(p, 0.5), params(p, 0.25), params(p, 0.75)});
        const auto &res = at[0];
        const auto &lo = at[1];
        const auto &hi = at[2];
        for (int i = 0; i < 4; ++i)
            sum[i] += res[i].relative_to_base;
        table.addRow({
            ws.name + " (" + std::to_string(ws.num_fus) + ")",
            fixed(res[0].relative_to_base, 3),
            fixed(res[1].relative_to_base, 3),
            fixed(res[2].relative_to_base, 3),
            fixed(res[3].relative_to_base, 3),
            fixed(lo[0].relative_to_base, 3),
            fixed(hi[0].relative_to_base, 3),
        });
    }
    const auto n = static_cast<double>(sessions.size());
    table.addRow({"Average", fixed(sum[0] / n, 3),
                  fixed(sum[1] / n, 3), fixed(sum[2] / n, 3),
                  fixed(sum[3] / n, 3), "", ""});
    table.print(std::cout);

    const double ms = sum[0] / n, gs = sum[1] / n, aa = sum[2] / n,
                 no = sum[3] / n;
    if (p < 0.25) {
        std::cout << "\nMaxSleep vs AlwaysActive: "
                  << fixed(100.0 * (ms - aa) / aa, 1)
                  << "% (paper: +8.3% — MaxSleep wastes energy at "
                     "low leakage)\n"
                  << "AlwaysActive vs NoOverhead: "
                  << fixed(100.0 * (aa - no) / no, 1)
                  << "% (paper: +5.3%)\n"
                  << "GradualSleep vs AlwaysActive: "
                  << fixed(100.0 * (gs - aa) / aa, 1)
                  << "% (paper: within 2.0%)\n\n";
    } else {
        std::cout << "\nMaxSleep savings over AlwaysActive: "
                  << fixed(100.0 * (aa - ms) / aa, 1)
                  << "% (paper: 19.2%)\n"
                  << "Share of the NoOverhead potential captured: "
                  << fixed(100.0 * (aa - ms) / (aa - no), 1)
                  << "% (paper: 70.4%)\n"
                  << "GradualSleep vs MaxSleep: "
                  << fixed(100.0 * (gs - ms) / ms, 1)
                  << "% (paper: essentially identical)\n\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsim;

    setInformEnabled(false);
    bench::Args opts(1'000'000);
    opts.parse(argc, argv);

    std::vector<api::Session> sessions;
    for (const auto &profile : trace::table3Profiles())
        sessions.push_back(api::Experiment::builder()
                               .workload(profile.name)
                               .insts(opts.insts)
                               .seed(opts.seed)
                               .session());

    printFigure(sessions, 0.05);
    printFigure(sessions, 0.50);
    return 0;
}
